"""Private information retrieval / encrypted search (paper Sec. III-A).

The paper lists "private information retrieval or encrypted search in a
table of 2^16 entries" among the depth-4 applications. This module
implements the standard PIR-by-selection-product protocol:

* the client encrypts its index *bitwise* (k ciphertexts for a 2^k
  table);
* the server computes, for every entry e, the selector
  ``sel(e) = prod_j (b_j if e_j = 1 else 1 - b_j)`` — a product of k
  encrypted bits, evaluated as a balanced tree of depth ceil(log2 k);
* the reply is ``sum_e sel(e) * T[e]`` (plaintext-weighted sum).

A 16-entry table needs k = 4 index bits and multiplicative depth 2,
comfortably inside the paper's depth-4 budget; a 2^16-entry table needs
k = 16 and depth 4 — exactly the sizing claim of Sec. III-A.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..fv.ciphertext import Ciphertext
from ..fv.encoder import Plaintext
from ..fv.keys import KeySet
from ..fv.evaluator import Evaluator
from ..fv.scheme import FvContext


def selection_depth(table_size: int) -> int:
    """Multiplicative depth of the selector tree for a table of this size."""
    bits = max(1, (table_size - 1).bit_length())
    return max(1, (bits - 1).bit_length()) if bits > 1 else 0


class EncryptedLookupTable:
    """Server holding a public table, queried with encrypted indices."""

    def __init__(self, context: FvContext, keys: KeySet,
                 table: list[int]) -> None:
        if context.params.t <= max(table, default=0):
            raise ParameterError(
                "table values must fit below the plaintext modulus"
            )
        size = len(table)
        if size & (size - 1) or size < 2:
            raise ParameterError("table size must be a power of two >= 2")
        self.context = context
        self.keys = keys
        self.evaluator = Evaluator(context)
        self.table = list(table)
        self.index_bits = (size - 1).bit_length()

    # -- client side ---------------------------------------------------------------

    def encrypt_index(self, index: int) -> list[Ciphertext]:
        """Encrypt each index bit in its own ciphertext (constant slot)."""
        if not 0 <= index < len(self.table):
            raise ParameterError(f"index {index} outside the table")
        n, t = self.context.params.n, self.context.params.t
        cts = []
        for j in range(self.index_bits):
            bit = (index >> j) & 1
            plain = Plaintext.from_list([bit], n, t)
            cts.append(self.context.encrypt(plain, self.keys.public))
        return cts

    # -- server side ----------------------------------------------------------------

    def _bit_selector(self, bit_ct: Ciphertext, want: int) -> Ciphertext:
        """Encrypted (b) when want=1, (1 - b) when want=0."""
        if want:
            return bit_ct
        n, t = self.context.params.n, self.context.params.t
        one = Plaintext.from_list([1], n, t)
        return self.context.add_plain(self.context.negate(bit_ct), one)

    def _product_tree(self, factors: list[Ciphertext]) -> Ciphertext:
        """Balanced multiplication tree (minimises depth)."""
        layer = factors
        while len(layer) > 1:
            next_layer = []
            for i in range(0, len(layer) - 1, 2):
                next_layer.append(
                    self.evaluator.multiply(layer[i], layer[i + 1],
                                            self.keys.relin)
                )
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]

    def lookup(self, index_bits: list[Ciphertext]) -> Ciphertext:
        """PIR reply: sum_e sel(e) * T[e], all under encryption."""
        if len(index_bits) != self.index_bits:
            raise ParameterError(
                f"expected {self.index_bits} encrypted index bits"
            )
        n, t = self.context.params.n, self.context.params.t
        reply = None
        for entry, value in enumerate(self.table):
            factors = [
                self._bit_selector(index_bits[j], (entry >> j) & 1)
                for j in range(self.index_bits)
            ]
            selector = self._product_tree(factors)
            weighted = self.context.mul_plain(
                selector, Plaintext.from_list([value], n, t)
            )
            reply = weighted if reply is None else self.context.add(
                reply, weighted
            )
        return reply

    # -- client side again --------------------------------------------------------------

    def decrypt_reply(self, reply: Ciphertext) -> int:
        plain = self.context.decrypt(reply, self.keys.secret)
        return int(plain.coeffs[0])
