"""Private information retrieval / encrypted search (paper Sec. III-A).

The paper lists "private information retrieval or encrypted search in a
table of 2^16 entries" among the depth-4 applications. This module
implements the standard PIR-by-selection-product protocol:

* the client encrypts its index *bitwise* (k ciphertexts for a 2^k
  table);
* the server computes, for every entry e, the selector
  ``sel(e) = prod_j (b_j if e_j = 1 else 1 - b_j)`` — a product of k
  encrypted bits, evaluated as a balanced tree of depth ceil(log2 k);
* the reply is ``sum_e sel(e) * T[e]`` (plaintext-weighted sum).

A 16-entry table needs k = 4 index bits and multiplicative depth 2,
comfortably inside the paper's depth-4 budget; a 2^16-entry table needs
k = 16 and depth 4 — exactly the sizing claim of Sec. III-A.

The server side is written against the :mod:`repro.api` facade: the
reply is a *lazy expression* over ciphertext handles, so the same
lookup compiles to an :class:`~repro.api.HEProgram` that either runs
functionally or replays against the simulated serving cluster
(:meth:`EncryptedLookupTable.lookup_program`).
"""

from __future__ import annotations

from ..api.program import CiphertextHandle, HEProgram
from ..errors import ParameterError
from ._compat import adopt_session, as_handle, unwrap


def selection_depth(table_size: int) -> int:
    """Multiplicative depth of the selector tree for a table of this size."""
    bits = max(1, (table_size - 1).bit_length())
    return max(1, (bits - 1).bit_length()) if bits > 1 else 0


class EncryptedLookupTable:
    """Server holding a public table, queried with encrypted indices.

    Construct with ``EncryptedLookupTable(session, table)``; the legacy
    ``(context, keys, table)`` spelling still works but is deprecated.
    """

    def __init__(self, session, keys_or_table=None, table=None) -> None:
        if table is None:
            self.session, self._legacy = adopt_session(
                session, app="EncryptedLookupTable")
            table = keys_or_table
        else:
            self.session, self._legacy = adopt_session(
                session, keys_or_table, app="EncryptedLookupTable")
        if table is None:
            raise ParameterError("the lookup table is required")
        if self.session.params.t <= max(table, default=0):
            raise ParameterError(
                "table values must fit below the plaintext modulus"
            )
        size = len(table)
        if size & (size - 1) or size < 2:
            raise ParameterError("table size must be a power of two >= 2")
        self.table = list(table)
        self.index_bits = (size - 1).bit_length()

    # -- client side ---------------------------------------------------------------

    def encrypt_index(self, index: int) -> list:
        """Encrypt each index bit in its own ciphertext (constant slot)."""
        if not 0 <= index < len(self.table):
            raise ParameterError(f"index {index} outside the table")
        return [
            unwrap(self.session.encrypt([(index >> j) & 1]), self._legacy)
            for j in range(self.index_bits)
        ]

    # -- server side ----------------------------------------------------------------

    def _product_tree(self,
                      factors: list[CiphertextHandle]) -> CiphertextHandle:
        """Balanced multiplication tree (minimises depth)."""
        layer = factors
        while len(layer) > 1:
            next_layer = [
                layer[i] * layer[i + 1]
                for i in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]

    def reply_expr(self, index_bits: list) -> CiphertextHandle:
        """The PIR reply as a lazy expression: sum_e sel(e) * T[e]."""
        if len(index_bits) != self.index_bits:
            raise ParameterError(
                f"expected {self.index_bits} encrypted index bits"
            )
        bits = [as_handle(self.session, b) for b in index_bits]
        # Build each negated bit once so every table entry shares the
        # same subexpression node (the graph dedups by identity).
        negated = [1 - b for b in bits]
        reply = None
        for entry, value in enumerate(self.table):
            factors = [
                bits[j] if (entry >> j) & 1 else negated[j]
                for j in range(self.index_bits)
            ]
            weighted = self._product_tree(factors) * value
            reply = weighted if reply is None else reply + weighted
        return reply

    def lookup(self, index_bits: list):
        """PIR reply (handle; a raw ciphertext for legacy callers)."""
        return unwrap(self.reply_expr(index_bits), self._legacy)

    def lookup_program(self, index_bits: list, *,
                       check: bool = True) -> HEProgram:
        """Compile one lookup into a backend-agnostic program."""
        return self.session.compile(self.reply_expr(index_bits),
                                    name="encrypted-lookup", check=check)

    # -- client side again -------------------------------------------------------------

    def decrypt_reply(self, reply) -> int:
        return int(self.session.decrypt(reply)[0])
