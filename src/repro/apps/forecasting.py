"""Privacy-friendly smart-grid statistics (paper refs [4], Sec. III-A).

Smart meters encrypt their readings; the utility's cloud computes
aggregate statistics without ever seeing an individual household's data.
With the batching encoder a single ciphertext carries thousands of
readings, and:

* totals and means need only ciphertext additions;
* weighted forecasts (the GMDH-style predictor of [4] is a weighted sum
  of lagged readings) need plaintext multiplications;
* variances need one ciphertext-ciphertext multiplication — the
  operation the paper's coprocessor accelerates (depth 1 of the
  available 4).

All methods return ciphertexts; the utility can only decrypt the
aggregate it is authorised for.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..fv.ciphertext import Ciphertext
from ..fv.encoder import BatchEncoder
from ..fv.keys import KeySet
from ..fv.evaluator import Evaluator
from ..fv.scheme import FvContext


class SmartGridAggregator:
    """Server-side aggregation over encrypted meter readings."""

    def __init__(self, context: FvContext, keys: KeySet) -> None:
        self.context = context
        self.keys = keys
        self.encoder = BatchEncoder(context.params)
        self.evaluator = Evaluator(context)

    # -- client side -------------------------------------------------------------

    def encrypt_readings(self, readings) -> Ciphertext:
        """A meter encrypts one batch of readings (one slot each)."""
        plain = self.encoder.encode(np.asarray(readings, dtype=np.int64))
        return self.context.encrypt(plain, self.keys.public)

    # -- server side (never sees plaintext) -----------------------------------------

    def total(self, meter_cts: list[Ciphertext]) -> Ciphertext:
        """Slot-wise sum over all meters (pure additions)."""
        if not meter_cts:
            raise ParameterError("no meter ciphertexts supplied")
        acc = meter_cts[0]
        for ct in meter_cts[1:]:
            acc = self.context.add(acc, ct)
        return acc

    def weighted_forecast(self, lagged_cts: list[Ciphertext],
                          weights: list[int]) -> Ciphertext:
        """GMDH-style linear predictor: sum_i w_i * x_{t-i}.

        Weights are public model coefficients (plaintext multiplications,
        no relinearisation needed).
        """
        if len(lagged_cts) != len(weights):
            raise ParameterError("one weight per lagged ciphertext required")
        acc = None
        for ct, weight in zip(lagged_cts, weights):
            w_plain = self.encoder.encode(
                np.full(self.encoder.slot_count, weight, dtype=np.int64)
            )
            term = self.context.mul_plain(ct, w_plain)
            acc = term if acc is None else self.context.add(acc, term)
        return acc

    def squared(self, ct: Ciphertext) -> Ciphertext:
        """Slot-wise square (one homomorphic multiplication)."""
        return self.evaluator.multiply(ct, ct, self.keys.relin)

    def sum_of_squares(self, meter_cts: list[Ciphertext]) -> Ciphertext:
        """sum_i x_i^2 — with the total, gives the variance."""
        squares = [self.squared(ct) for ct in meter_cts]
        acc = squares[0]
        for ct in squares[1:]:
            acc = self.context.add(acc, ct)
        return acc

    def grand_total(self, meter_cts: list[Ciphertext],
                    summation_keys: dict) -> Ciphertext:
        """One ciphertext whose every slot holds the total over all
        meters *and* all slots (rotate-and-add via Galois keys).

        Build ``summation_keys`` once with
        ``GaloisEngine(context).summation_keygen(secret)`` on the client.
        """
        from ..fv.galois import GaloisEngine

        engine = GaloisEngine(self.context)
        return engine.sum_all_slots(self.total(meter_cts), summation_keys)

    # -- authority side -----------------------------------------------------------------

    def decrypt_slots(self, ct: Ciphertext, count: int) -> np.ndarray:
        plain = self.context.decrypt(ct, self.keys.secret)
        return self.encoder.decode(plain)[:count]


def plaintext_reference(readings_matrix: np.ndarray, weights: list[int],
                        t: int) -> dict:
    """What the aggregates should equal, computed in the clear (mod t)."""
    total = readings_matrix.sum(axis=0) % t
    sum_sq = (readings_matrix ** 2).sum(axis=0) % t
    forecast = sum(
        w * readings_matrix[i] for i, w in enumerate(weights)
    ) % t
    return {"total": total, "sum_of_squares": sum_sq, "forecast": forecast}
