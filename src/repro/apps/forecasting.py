"""Privacy-friendly smart-grid statistics (paper refs [4], Sec. III-A).

Smart meters encrypt their readings; the utility's cloud computes
aggregate statistics without ever seeing an individual household's data.
With the batching encoder a single ciphertext carries thousands of
readings, and:

* totals and means need only ciphertext additions;
* weighted forecasts (the GMDH-style predictor of [4] is a weighted sum
  of lagged readings) need plaintext multiplications;
* variances need one ciphertext-ciphertext multiplication — the
  operation the paper's coprocessor accelerates (depth 1 of the
  available 4).

The aggregator speaks the :mod:`repro.api` facade: methods take and
return opaque ciphertext handles and stay lazy until decrypted, so a
whole aggregation pipeline can also be compiled into one
:class:`~repro.api.HEProgram` and priced on the simulated cluster.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ._compat import adopt_session, as_handle, unwrap


class SmartGridAggregator:
    """Server-side aggregation over encrypted meter readings.

    Construct with ``SmartGridAggregator(session)`` (the session must
    use the batch encoder, i.e. an NTT-friendly plaintext modulus); the
    legacy ``(context, keys)`` spelling is deprecated.
    """

    def __init__(self, session, keys=None) -> None:
        self.session, self._legacy = adopt_session(
            session, keys, encoder="batch", app="SmartGridAggregator")
        if self.session.encoder_kind != "batch":
            raise ParameterError(
                "SmartGridAggregator needs a batch-encoder session "
                "(NTT-friendly plaintext modulus); got "
                f"{self.session.encoder_kind!r}"
            )
        self.encoder = self.session.encoder

    # -- client side -------------------------------------------------------------

    def encrypt_readings(self, readings):
        """A meter encrypts one batch of readings (one slot each)."""
        return unwrap(
            self.session.encrypt(np.asarray(readings, dtype=np.int64)),
            self._legacy,
        )

    # -- server side (never sees plaintext) -----------------------------------------

    def total(self, meter_cts: list):
        """Slot-wise sum over all meters (pure additions)."""
        if not meter_cts:
            raise ParameterError("no meter ciphertexts supplied")
        handles = [as_handle(self.session, ct) for ct in meter_cts]
        acc = handles[0]
        for handle in handles[1:]:
            acc = acc + handle
        return unwrap(acc, self._legacy)

    def weighted_forecast(self, lagged_cts: list, weights: list[int]):
        """GMDH-style linear predictor: sum_i w_i * x_{t-i}.

        Weights are public model coefficients (plaintext multiplications,
        no relinearisation needed).
        """
        if len(lagged_cts) != len(weights):
            raise ParameterError("one weight per lagged ciphertext required")
        acc = None
        for ct, weight in zip(lagged_cts, weights, strict=True):
            term = as_handle(self.session, ct) * int(weight)
            acc = term if acc is None else acc + term
        return unwrap(acc, self._legacy)

    def squared(self, ct):
        """Slot-wise square (one homomorphic multiplication)."""
        handle = as_handle(self.session, ct)
        return unwrap(handle * handle, self._legacy)

    def sum_of_squares(self, meter_cts: list):
        """sum_i x_i^2 — with the total, gives the variance."""
        squares = [as_handle(self.session, self.squared(ct))
                   for ct in meter_cts]
        acc = squares[0]
        for handle in squares[1:]:
            acc = acc + handle
        return unwrap(acc, self._legacy)

    def grand_total(self, meter_cts: list, summation_keys: dict | None = None):
        """One ciphertext whose every slot holds the total over all
        meters *and* all slots (rotate-and-add via Galois keys).

        The session generates and caches the summation keys on first
        use; passing them explicitly (the legacy spelling) seeds that
        cache instead.
        """
        if summation_keys is not None:
            self.session.use_summation_keys(summation_keys)
        handles = [as_handle(self.session, ct) for ct in meter_cts]
        total = as_handle(self.session, self.total(handles))
        return unwrap(total.sum_slots(), self._legacy)

    # -- authority side ----------------------------------------------------------------

    def decrypt_slots(self, ct, count: int) -> np.ndarray:
        return self.session.decrypt(ct, size=count)


def plaintext_reference(readings_matrix: np.ndarray, weights: list[int],
                        t: int) -> dict:
    """What the aggregates should equal, computed in the clear (mod t)."""
    total = readings_matrix.sum(axis=0) % t
    sum_sq = (readings_matrix ** 2).sum(axis=0) % t
    forecast = sum(
        w * readings_matrix[i] for i, w in enumerate(weights)
    ) % t
    return {"total": total, "sum_of_squares": sum_sq, "forecast": forecast}
