"""Cloud applications from the paper's introduction and Sec. III-A.

The paper sizes its parameter set (depth 4) for "several statistical
applications such as privacy-friendly forecasting for the smart grid [4],
evaluation of low-complexity block ciphers such as Rasta [25] on
ciphertext, private information retrieval or encrypted search". Each of
those three application families is implemented here on top of the public
FV API, with plaintext reference computations for verification.
"""

from .comparator import EncryptedComparator
from .forecasting import SmartGridAggregator
from .lookup import EncryptedLookupTable
from .matmul import EncryptedMatmul
from .rasta_like import RastaLikeCipher

__all__ = [
    "SmartGridAggregator",
    "EncryptedLookupTable",
    "EncryptedMatmul",
    "RastaLikeCipher",
    "EncryptedComparator",
]
