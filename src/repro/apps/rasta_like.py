"""Homomorphic evaluation of a Rasta-like low-AND-depth cipher.

Paper Sec. III-A: the depth-4 parameter set supports "evaluation of
low-complexity block ciphers such as Rasta [25] on ciphertext" — the
transciphering use case, where a client sends data encrypted under a
cheap symmetric cipher and the cloud converts it into FV ciphertexts by
evaluating the cipher's decryption homomorphically.

This module implements a toy cipher with the structure that makes Rasta
FHE-friendly: rounds of a public GF(2) affine layer followed by the
chi nonlinear layer ``y_i = x_i XOR (x_{i+1} AND x_{i+2}) XOR x_{i+2}``
(one AND — one homomorphic multiplication — of depth per round). Over
F_2 (t = 2), XOR is addition and AND is multiplication, so a 4-round
instance consumes exactly the paper's multiplicative depth of 4.

Homomorphic evaluation is expressed over :mod:`repro.api` ciphertext
handles — ``evaluate_encrypted(session, bit_handles)``; the legacy
``(context, keys, bit_cts)`` spelling is deprecated but still works.
"""

from __future__ import annotations

import numpy as np

from ..api.session import Session
from ..errors import ParameterError
from ._compat import adopt_session, as_handle, unwrap


class RastaLikeCipher:
    """A toy chi-based cipher over bit vectors of length `width`."""

    def __init__(self, width: int, rounds: int, seed: int = 1) -> None:
        if width < 3:
            raise ParameterError("chi needs at least three state bits")
        self.width = width
        self.rounds = rounds
        rng = np.random.default_rng(seed)
        # Public per-round affine layers: invertible not required for the
        # demo; matrices and constants over GF(2).
        self.matrices = [
            rng.integers(0, 2, size=(width, width)).astype(np.int64)
            for _ in range(rounds)
        ]
        self.constants = [
            rng.integers(0, 2, size=width).astype(np.int64)
            for _ in range(rounds)
        ]

    # -- plaintext reference -----------------------------------------------------------

    def _chi(self, state: np.ndarray) -> np.ndarray:
        rot1 = np.roll(state, -1)
        rot2 = np.roll(state, -2)
        return (state + rot1 * rot2 + rot2) % 2

    def encrypt_reference(self, bits: np.ndarray) -> np.ndarray:
        """Evaluate the cipher in the clear (the ground truth)."""
        state = np.asarray(bits, dtype=np.int64) % 2
        if state.shape != (self.width,):
            raise ParameterError(f"state must have {self.width} bits")
        for matrix, constant in zip(self.matrices, self.constants, strict=True):
            state = (matrix @ state + constant) % 2
            state = self._chi(state)
        return state

    # -- homomorphic evaluation --------------------------------------------------------

    def evaluate_encrypted(self, session, keys_or_bits,
                           bit_cts=None) -> list:
        """Run the cipher over per-bit handles (t must be 2)."""
        if isinstance(session, Session) and bit_cts is None:
            bit_cts = keys_or_bits
            keys = None
        else:
            keys = keys_or_bits
        session, legacy = adopt_session(session, keys,
                                        app="RastaLikeCipher")
        if session.params.t != 2:
            raise ParameterError("homomorphic chi works over t = 2")
        if bit_cts is None or len(bit_cts) != self.width:
            raise ParameterError(f"need {self.width} encrypted state bits")
        state = [as_handle(session, ct) for ct in bit_cts]
        for matrix, constant in zip(self.matrices, self.constants, strict=True):
            # Affine layer: XOR of selected bits plus a public constant.
            new_state = []
            for row in range(self.width):
                acc = None
                for col in range(self.width):
                    if matrix[row, col]:
                        acc = (state[col] if acc is None
                               else acc + state[col])
                if acc is None:
                    # Degenerate all-zero row: encrypt-free zero via
                    # subtracting a ciphertext from itself.
                    acc = state[0] - state[0]
                if constant[row]:
                    acc = acc + 1
                new_state.append(acc)
            # chi layer: one AND per output bit (depth 1 per round).
            state = []
            for i in range(self.width):
                and_term = (new_state[(i + 1) % self.width]
                            * new_state[(i + 2) % self.width])
                term = new_state[i] + and_term
                state.append(term + new_state[(i + 2) % self.width])
        return [unwrap(handle, legacy) for handle in state]

    @staticmethod
    def decrypt_state(session, keys_or_state, state=None) -> np.ndarray:
        """Decrypt the output bits (session + handles, or legacy triple)."""
        if isinstance(session, Session) and state is None:
            state = keys_or_state
        else:
            session, _ = adopt_session(session, keys_or_state,
                                       app="RastaLikeCipher")
        bits = [int(session.decrypt(ct)[0]) for ct in state]
        return np.array(bits, dtype=np.int64)
