"""Encrypted blocked matrix multiplication (the FAME workload shape).

Matrix products over encrypted operands are the canonical
rotation-heavy HE kernel: row i of A and column j of B are packed
slot-wise into ciphertexts in blocks of the inner dimension, each
block pair is multiplied element-wise, and a rotate-and-add ladder
(:func:`~repro.api.sum_slots`) collapses the block's slots into the
partial dot product:

    C[i][j] = sum over blocks K of sum_slots(a[i][K] * b[K][j])

Written naively — as this module deliberately does — every block pays
a relinearisation *and* a full log2(n) rotation ladder, so an entry
with ``nb`` inner blocks spends ``nb * (1 + rounds)`` keyswitches.
The :mod:`repro.optim` pass stack is built for exactly this shape:
rotation folding rewrites ``sum_slots(x) + sum_slots(y)`` into
``sum_slots(x + y)`` (one ladder per entry), and relinearisation
placement keeps the block products in raw three-part form through the
additions so one keyswitch relinearises the whole sum — ``1 + rounds``
keyswitches per entry regardless of ``nb``.

The server side is lazy expressions over ciphertext handles, like the
other apps: the same product compiles into an
:class:`~repro.api.HEProgram` that runs functionally or prices on the
simulated cluster, with or without the optimiser.
"""

from __future__ import annotations

from ..api.program import CiphertextHandle, HEProgram
from ..errors import ParameterError
from ._compat import adopt_session, as_handle, unwrap


class EncryptedMatmul:
    """Blocked matmul over two encrypted matrices.

    Construct with ``EncryptedMatmul(session)``; the session's
    parameters should batch (``t = 1 mod 2n``) so slot packing is
    element-wise. ``block_slots`` caps how many inner-dimension
    elements share one ciphertext (default: all ``n`` slots).
    """

    def __init__(self, session, keys=None, *,
                 block_slots: int | None = None) -> None:
        self.session, self._legacy = adopt_session(
            session, keys, app="EncryptedMatmul")
        n = self.session.params.n
        if block_slots is None:
            block_slots = n
        if not 1 <= block_slots <= n:
            raise ParameterError(
                f"block_slots must be in [1, {n}], got {block_slots}"
            )
        self.block_slots = block_slots

    # -- plaintext reference -------------------------------------------------------

    @staticmethod
    def reference(a: list[list[int]], b: list[list[int]],
                  t: int) -> list[list[int]]:
        """Plain ``A @ B mod t`` for verification."""
        inner = len(b)
        return [
            [sum(row[x] * b[x][j] for x in range(inner)) % t
             for j in range(len(b[0]))]
            for row in a
        ]

    # -- client side ---------------------------------------------------------------

    def _blocks(self, vector: list[int]) -> list[list[int]]:
        step = self.block_slots
        return [list(vector[i:i + step])
                for i in range(0, len(vector), step)]

    def encrypt_rows(self, matrix: list[list[int]]) -> list[list]:
        """Encrypt each matrix row as one ciphertext per inner block."""
        self._check(matrix)
        return [
            [unwrap(self.session.encrypt(block), self._legacy)
             for block in self._blocks(row)]
            for row in matrix
        ]

    def encrypt_cols(self, matrix: list[list[int]]) -> list[list]:
        """Encrypt each matrix *column* as one ciphertext per block."""
        self._check(matrix)
        columns = [list(col) for col in zip(*matrix)]
        return [
            [unwrap(self.session.encrypt(block), self._legacy)
             for block in self._blocks(col)]
            for col in columns
        ]

    def _check(self, matrix: list[list[int]]) -> None:
        if not matrix or not matrix[0]:
            raise ParameterError("matrices must be non-empty")
        width = len(matrix[0])
        if any(len(row) != width for row in matrix):
            raise ParameterError("matrix rows must have equal length")
        t = self.session.params.t
        if any(not 0 <= v < t for row in matrix for v in row):
            raise ParameterError(
                "matrix entries must lie in [0, t)"
            )

    # -- server side ----------------------------------------------------------------

    def entry_expr(self, row_blocks: list,
                   col_blocks: list) -> CiphertextHandle:
        """One output entry: the naive per-block ladder sum."""
        if len(row_blocks) != len(col_blocks):
            raise ParameterError("row/column block counts differ")
        entry = None
        for a, b in zip(row_blocks, col_blocks):
            term = (as_handle(self.session, a)
                    * as_handle(self.session, b)).sum_slots()
            entry = term if entry is None else entry + term
        return entry

    def product_expr(self, rows: list[list],
                     cols: list[list]) -> list[list[CiphertextHandle]]:
        """All ``len(rows) x len(cols)`` entries as lazy expressions."""
        return [[self.entry_expr(row, col) for col in cols]
                for row in rows]

    def matmul_program(self, rows: list[list], cols: list[list], *,
                       name: str = "encrypted-matmul",
                       check: bool = True,
                       optimize: bool = False) -> HEProgram:
        """Compile the full product; outputs are labelled ``c<i>_<j>``."""
        entries = self.product_expr(rows, cols)
        outputs = {
            f"c{i}_{j}": entry
            for i, row in enumerate(entries)
            for j, entry in enumerate(row)
        }
        return self.session.compile(outputs, name=name, check=check,
                                    optimize=optimize)

    # -- client side again -----------------------------------------------------------

    def decrypt_entry(self, value) -> int:
        """Every slot of an entry ciphertext holds the dot product."""
        return int(self.session.decrypt(value)[0])
