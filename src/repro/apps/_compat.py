"""Session adoption shim shared by the application modules.

Every app is Session-first: construct with a :class:`repro.api.Session`
and work in opaque ciphertext handles. The pre-facade spelling —
handing each app a raw ``(FvContext, KeySet)`` pair and moving
:class:`~repro.fv.ciphertext.Ciphertext` objects by hand — still works
through this shim, but warns: the pair is wrapped into a session, and
results are materialised back to raw ciphertexts so old call sites see
the types they always did.
"""

from __future__ import annotations

import warnings

from ..api.program import CiphertextHandle
from ..api.session import Session
from ..errors import ParameterError
from ..fv.scheme import FvContext


def adopt_session(first, keys=None, *, encoder: str = "auto",
                  app: str = "this application") -> tuple[Session, bool]:
    """Resolve the dual constructor: (Session) or legacy (context, keys).

    Returns ``(session, legacy)`` — ``legacy=True`` keeps the app's
    outward types raw (ciphertexts in, ciphertexts out) for
    compatibility with pre-facade call sites.
    """
    if isinstance(first, Session):
        return first, False
    if isinstance(first, FvContext):
        if keys is None:
            raise ParameterError(
                f"{app} needs a KeySet alongside the FvContext"
            )
        warnings.warn(
            f"constructing {app} from (FvContext, KeySet) is deprecated; "
            "pass a repro.api.Session instead",
            DeprecationWarning, stacklevel=3,
        )
        return Session.from_parts(first, keys, encoder=encoder), True
    raise ParameterError(
        f"{app} expects a repro.api.Session (or a legacy FvContext)"
    )


def as_handle(session: Session, value) -> CiphertextHandle:
    """Accept a handle or a raw ciphertext (legacy callers)."""
    if isinstance(value, CiphertextHandle):
        return value
    return session.wrap(value)


def unwrap(handle: CiphertextHandle, legacy: bool):
    """Return the handle, or materialise it for legacy callers."""
    return handle.ciphertext if legacy else handle
