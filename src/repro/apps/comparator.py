"""Encrypted comparison and two-element sorting (paper Sec. III-A).

The paper lists "encrypted sorting etc." among the depth-4 applications.
The primitive underneath any oblivious sorting network is the
compare-and-swap on encrypted values; this module implements it for
k-bit integers encrypted bit-wise over t = 2:

* ``less_than`` — the standard ripple comparator
  ``lt_i = (1 - a_i) b_i  +  (1 - a_i - b_i)^2 * lt_{i-1}`` evaluated
  MSB-first; over F_2 the equality factor is ``1 + a_i + b_i`` and each
  bit level costs two multiplications (depth grows linearly in k — which
  is exactly why the paper's depth budget limits sorting to short
  values);
* ``compare_and_swap`` — min/max via the encrypted multiplexer
  ``min_i = lt * a_i + (1 - lt) * b_i`` (one more multiplication).

A 3-bit compare-and-swap therefore consumes depth 4: the largest
comparator the paper's parameter set supports, and a concrete
quantitative form of its "encrypted sorting" sizing remark.
"""

from __future__ import annotations

from ..errors import ParameterError
from ..fv.ciphertext import Ciphertext
from ..fv.encoder import Plaintext
from ..fv.keys import KeySet
from ..fv.evaluator import Evaluator
from ..fv.scheme import FvContext


def comparator_depth(bits: int) -> int:
    """Multiplicative depth of less_than on k-bit values."""
    # Each bit level below the MSB multiplies the running lt by the
    # equality chain (depth +1 per level); the final mux adds one.
    return max(1, bits)


class EncryptedComparator:
    """Bitwise comparator over per-bit FV ciphertexts (t = 2)."""

    def __init__(self, context: FvContext, keys: KeySet, bits: int) -> None:
        if context.params.t != 2:
            raise ParameterError("the comparator works over t = 2")
        if bits < 1:
            raise ParameterError("need at least one bit")
        self.context = context
        self.keys = keys
        self.bits = bits
        self.evaluator = Evaluator(context)
        self._one = Plaintext.from_list([1], context.params.n, 2)

    # -- client side -------------------------------------------------------------

    def encrypt_value(self, value: int) -> list[Ciphertext]:
        """Encrypt a k-bit integer as k bit ciphertexts (LSB first)."""
        if not 0 <= value < (1 << self.bits):
            raise ParameterError(
                f"value {value} does not fit in {self.bits} bits"
            )
        n = self.context.params.n
        return [
            self.context.encrypt(
                Plaintext.from_list([(value >> i) & 1], n, 2),
                self.keys.public,
            )
            for i in range(self.bits)
        ]

    def decrypt_value(self, bit_cts: list[Ciphertext]) -> int:
        value = 0
        for i, ct in enumerate(bit_cts):
            bit = int(self.context.decrypt(ct, self.keys.secret).coeffs[0])
            value |= bit << i
        return value

    def decrypt_bit(self, ct: Ciphertext) -> int:
        return int(self.context.decrypt(ct, self.keys.secret).coeffs[0])

    # -- homomorphic building blocks -----------------------------------------------

    def _not(self, ct: Ciphertext) -> Ciphertext:
        return self.context.add_plain(ct, self._one)

    def _and(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.evaluator.multiply(a, b, self.keys.relin)

    def _xor(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.context.add(a, b)

    def _xnor(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self._not(self._xor(a, b))

    # -- comparison ------------------------------------------------------------------

    def less_than(self, a: list[Ciphertext],
                  b: list[Ciphertext]) -> Ciphertext:
        """Encrypted [a < b] for two bit-decomposed values (LSB first).

        MSB-first ripple: lt = (~a_k b_k) + eq_k * ( ... ), where over
        F_2 the XOR-accumulation is exact because at most one term of the
        standard OR can be 1 at a time.
        """
        if len(a) != self.bits or len(b) != self.bits:
            raise ParameterError(f"operands must have {self.bits} bits")
        msb = self.bits - 1
        # lt and eq for the most significant bit.
        lt = self._and(self._not(a[msb]), b[msb])
        eq = self._xnor(a[msb], b[msb])
        for i in range(msb - 1, -1, -1):
            bit_lt = self._and(self._not(a[i]), b[i])
            lt = self._xor(lt, self._and(eq, bit_lt))
            if i > 0:
                eq = self._and(eq, self._xnor(a[i], b[i]))
        return lt

    def multiplex(self, select: Ciphertext, when_one: list[Ciphertext],
                  when_zero: list[Ciphertext]) -> list[Ciphertext]:
        """Bitwise mux: select * when_one + (1 - select) * when_zero.

        Over F_2: out = when_zero + select * (when_one - when_zero).
        """
        out = []
        for one_bit, zero_bit in zip(when_one, when_zero):
            diff = self.context.sub(one_bit, zero_bit)
            out.append(
                self.context.add(zero_bit, self._and(select, diff))
            )
        return out

    def compare_and_swap(self, a: list[Ciphertext], b: list[Ciphertext]):
        """Oblivious (min, max) — the cell of every sorting network."""
        a_lt_b = self.less_than(a, b)
        minimum = self.multiplex(a_lt_b, a, b)
        maximum = self.multiplex(a_lt_b, b, a)
        return minimum, maximum

    def sort_two(self, x: int, y: int) -> tuple[int, int]:
        """End-to-end demo: encrypt, oblivious sort, decrypt."""
        ct_x = self.encrypt_value(x)
        ct_y = self.encrypt_value(y)
        low, high = self.compare_and_swap(ct_x, ct_y)
        return self.decrypt_value(low), self.decrypt_value(high)
