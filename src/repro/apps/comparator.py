"""Encrypted comparison and two-element sorting (paper Sec. III-A).

The paper lists "encrypted sorting etc." among the depth-4 applications.
The primitive underneath any oblivious sorting network is the
compare-and-swap on encrypted values; this module implements it for
k-bit integers encrypted bit-wise over t = 2:

* ``less_than`` — the standard ripple comparator
  ``lt_i = (1 - a_i) b_i  +  (1 - a_i - b_i)^2 * lt_{i-1}`` evaluated
  MSB-first; over F_2 the equality factor is ``1 + a_i + b_i`` and each
  bit level costs two multiplications (depth grows linearly in k — which
  is exactly why the paper's depth budget limits sorting to short
  values);
* ``compare_and_swap`` — min/max via the encrypted multiplexer
  ``min_i = lt * a_i + (1 - lt) * b_i`` (one more multiplication).

A 3-bit compare-and-swap therefore consumes depth 4: the largest
comparator the paper's parameter set supports, and a concrete
quantitative form of its "encrypted sorting" sizing remark.

The comparator speaks the :mod:`repro.api` facade — bits are opaque
ciphertext handles and the whole circuit stays a lazy expression graph
until something is decrypted (shared subterms like the running equality
chain are then computed once, not per use).
"""

from __future__ import annotations

from ..errors import ParameterError
from ._compat import adopt_session, as_handle, unwrap


def comparator_depth(bits: int) -> int:
    """Multiplicative depth of less_than on k-bit values."""
    # Each bit level below the MSB multiplies the running lt by the
    # equality chain (depth +1 per level); the final mux adds one.
    return max(1, bits)


class EncryptedComparator:
    """Bitwise comparator over per-bit FV ciphertexts (t = 2).

    Construct with ``EncryptedComparator(session, bits=k)``; the legacy
    ``(context, keys, bits)`` spelling is deprecated.
    """

    def __init__(self, session, keys=None, bits: int | None = None) -> None:
        if bits is None and isinstance(keys, int):
            keys, bits = None, keys     # new-style positional bit count
        self.session, self._legacy = adopt_session(
            session, keys, app="EncryptedComparator")
        if self.session.params.t != 2:
            raise ParameterError("the comparator works over t = 2")
        if bits is None or bits < 1:
            raise ParameterError("need at least one bit")
        self.bits = bits

    # -- client side -------------------------------------------------------------

    def encrypt_value(self, value: int) -> list:
        """Encrypt a k-bit integer as k bit ciphertexts (LSB first)."""
        if not 0 <= value < (1 << self.bits):
            raise ParameterError(
                f"value {value} does not fit in {self.bits} bits"
            )
        return [
            unwrap(self.session.encrypt([(value >> i) & 1]), self._legacy)
            for i in range(self.bits)
        ]

    def decrypt_value(self, bit_cts: list) -> int:
        value = 0
        for i, ct in enumerate(bit_cts):
            value |= self.decrypt_bit(ct) << i
        return value

    def decrypt_bit(self, ct) -> int:
        return int(self.session.decrypt(ct)[0])

    # -- homomorphic building blocks -----------------------------------------------

    def _lift(self, ct):
        return as_handle(self.session, ct)

    def _not(self, ct):
        return self._lift(ct) + 1

    def _and(self, a, b):
        return self._lift(a) * self._lift(b)

    def _xor(self, a, b):
        return self._lift(a) + self._lift(b)

    def _xnor(self, a, b):
        return self._not(self._xor(a, b))

    # -- comparison ------------------------------------------------------------------

    def less_than(self, a: list, b: list):
        """Encrypted [a < b] for two bit-decomposed values (LSB first).

        MSB-first ripple: lt = (~a_k b_k) + eq_k * ( ... ), where over
        F_2 the XOR-accumulation is exact because at most one term of the
        standard OR can be 1 at a time.
        """
        if len(a) != self.bits or len(b) != self.bits:
            raise ParameterError(f"operands must have {self.bits} bits")
        msb = self.bits - 1
        # lt and eq for the most significant bit.
        lt = self._and(self._not(a[msb]), b[msb])
        eq = self._xnor(a[msb], b[msb])
        for i in range(msb - 1, -1, -1):
            bit_lt = self._and(self._not(a[i]), b[i])
            lt = self._xor(lt, self._and(eq, bit_lt))
            if i > 0:
                eq = self._and(eq, self._xnor(a[i], b[i]))
        return unwrap(lt, self._legacy)

    def multiplex(self, select, when_one: list, when_zero: list) -> list:
        """Bitwise mux: select * when_one + (1 - select) * when_zero.

        Over F_2: out = when_zero + select * (when_one - when_zero).
        """
        sel = self._lift(select)
        out = []
        for one_bit, zero_bit in zip(when_one, when_zero, strict=True):
            diff = self._lift(one_bit) - self._lift(zero_bit)
            out.append(
                unwrap(self._lift(zero_bit) + sel * diff, self._legacy)
            )
        return out

    def compare_and_swap(self, a: list, b: list):
        """Oblivious (min, max) — the cell of every sorting network."""
        a_lt_b = self.less_than(a, b)
        minimum = self.multiplex(a_lt_b, a, b)
        maximum = self.multiplex(a_lt_b, b, a)
        return minimum, maximum

    def sort_two(self, x: int, y: int) -> tuple[int, int]:
        """End-to-end demo: encrypt, oblivious sort, decrypt."""
        ct_x = self.encrypt_value(x)
        ct_y = self.encrypt_value(y)
        low, high = self.compare_and_swap(ct_x, ct_y)
        return self.decrypt_value(low), self.decrypt_value(high)
