"""Scale Q->q units (paper Figs. 8 and 9).

* :class:`HpsScaleUnit` (Fig. 9) — four small-arithmetic blocks compute
  the scaled value in the p-basis, then the result is base-extended back
  to the q-basis *through the lift datapath* (the hardware literally
  reuses the Fig. 6 pipeline; this model reuses its cycle formula). All
  blocks run in the same block-level pipeline, so throughput stays at
  ``hps_block_cycles`` cycles per coefficient per core and the overall
  Scale time lands within a pipeline-fill of the Lift time — reproducing
  the near-equality of the paper's Table II rows.
* :class:`TraditionalScaleUnit` (Fig. 8) — multi-precision: reconstruct
  over Q (390 bits), divide with a >571-bit reciprocal, round, reduce.
  The division block is ~4x the lift's division cost (paper Sec. V-C);
  throughput calibrated to the measured 4.3 ms single-core Scale at
  225 MHz (Sec. VI-C) = ~236 cycles per coefficient.
"""

from __future__ import annotations

import numpy as np

from ..rns.basis import ScaleContext
from ..rns.scale import scale_hps, scale_traditional
from .config import HardwareConfig
from .lift_unit import HPS_LIFT_BLOCKS

#: Fig. 9 adds four blocks in front of the reused Fig. 6 chain.
HPS_SCALE_BLOCKS = 4 + HPS_LIFT_BLOCKS

#: Calibrated Fig. 8 throughput (Sec. VI-C: 4096 coeff in 4.3 ms at
#: 225 MHz = 236 cycles/coeff; the paper attributes the ~4x over Lift to
#: the doubled dividend width and doubled reciprocal precision).
TRADITIONAL_SCALE_CYCLES_PER_COEFF = 236


class HpsScaleUnit:
    """The Fig. 9 scale core cluster (``config.scale_cores`` cores)."""

    def __init__(self, context: ScaleContext, config: HardwareConfig) -> None:
        self.context = context
        self.config = config

    @property
    def cores(self) -> int:
        return self.config.scale_cores

    def run(self, residues: np.ndarray) -> tuple[np.ndarray, int]:
        """Scale a full-basis residue matrix to the q basis."""
        result = scale_hps(self.context, residues)
        return result, self.cycles(residues.shape[1])

    def cycles(self, n: int) -> int:
        """Closed form of the nine-block pipeline (validated against the
        event-driven recurrence in the tests)."""
        from .block_pipeline import pipeline_total_cycles

        per_core = -(-n // self.cores)
        return pipeline_total_cycles(per_core, self.block_latencies())

    def block_latencies(self) -> tuple[int, ...]:
        """Fig. 9's four front blocks plus the reused Fig. 6 chain."""
        b = self.config.hps_block_cycles
        return (b, b, 6, b) + (6, b, b, b, b)

    # -- structural figures ------------------------------------------------------------

    @property
    def mac_count(self) -> int:
        """Blocks 1+2 MACs (integer and fractional accumulation paths)."""
        return 2 * self.context.q_basis.size

    @property
    def constant_rom_words(self) -> int:
        k_q = self.context.q_basis.size
        k_p = self.context.p_basis.size
        # I_i mod p_j table, 60-bit R_i (two words each), own-channel terms.
        return k_q * k_p + 2 * k_q + 2 * k_p


class TraditionalScaleUnit:
    """The Fig. 8 multi-precision scale core cluster."""

    def __init__(self, context: ScaleContext, config: HardwareConfig) -> None:
        self.context = context
        self.config = config

    @property
    def cores(self) -> int:
        return self.config.scale_cores

    def run(self, residues: np.ndarray) -> tuple[np.ndarray, int]:
        result = scale_traditional(self.context, residues)
        return result, self.cycles(residues.shape[1])

    def cycles(self, n: int) -> int:
        per_core = -(-n // self.cores)
        return per_core * TRADITIONAL_SCALE_CYCLES_PER_COEFF
