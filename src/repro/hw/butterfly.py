"""Butterfly core (paper Fig. 4): the arithmetic engine of the NTT.

One butterfly computes ``(u, t) -> (u + w*t, u - w*t) mod q`` through the
pipelined 30x30 multiplier, the sliding-window reduction, and the modular
add/sub. The scalar :meth:`compute` path routes through the exact circuit
models; the vectorised :meth:`compute_many` is mathematically identical
and is used by the fast executor (tests prove both equal).
"""

from __future__ import annotations

import numpy as np

from .config import HardwareConfig
from .datapath import ModAddSub, PipelinedMultiplier
from .modred import SlidingWindowReducer


class ButterflyCore:
    """One of the two butterfly cores inside an RPAU."""

    def __init__(self, modulus: int, config: HardwareConfig) -> None:
        self.modulus = modulus
        self.config = config
        self.multiplier = PipelinedMultiplier(stages=config.multiplier_stages)
        self.reducer = SlidingWindowReducer(
            modulus, window_bits=config.sliding_window_bits
        )
        self.addsub = ModAddSub(stages=config.addsub_stages)

    @property
    def pipeline_depth(self) -> int:
        """Cycles from operand read to result availability."""
        return (self.multiplier.latency + self.reducer.pipeline_stages
                + self.addsub.latency)

    def compute(self, u: int, t: int, twiddle: int) -> tuple[int, int]:
        """Bit-exact single butterfly through the circuit models."""
        product = self.multiplier.multiply(int(t), int(twiddle))
        reduced = self.reducer.reduce(product)
        hi = self.addsub.add(int(u), reduced, self.modulus)
        lo = self.addsub.sub(int(u), reduced, self.modulus)
        return hi, lo

    def compute_many(self, u: np.ndarray, t: np.ndarray,
                     twiddles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised butterflies (same function, used for large rings)."""
        reduced = (t * twiddles) % self.modulus
        return (u + reduced) % self.modulus, (u - reduced) % self.modulus
