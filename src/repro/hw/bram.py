"""BRAM models: paired-coefficient polynomial memory (paper Sec. V-A3).

A residue polynomial of n coefficients is stored as n/2 virtual words of
60 bits, two 30-bit coefficients per word. The words are split across two
"brown blocks" (Fig. 3): the lower block serves addresses [0, W/2) and
the upper block [W/2, W), where W = n/2. Each block is built from two
address-aligned BRAM36K primitives (1024 x 36 bits each), giving the
paper's four BRAM36K per residue polynomial at n = 4096.

Each block exposes one read port and one write port per cycle (the paper
dedicates one BRAM port to reads and the other to writes during the NTT).
The strict executor passes cycle stamps; oversubscribing a port raises
:class:`~repro.errors.MemoryConflictError`, turning Fig. 3's conflict-
freedom claim into an executable property.
"""

from __future__ import annotations

import numpy as np

from ..errors import HardwareModelError, MemoryConflictError
from ..utils import is_power_of_two

BRAM36K_WORDS = 1024
BRAM36K_WIDTH = 36
COEFF_BITS = 30
WORD_COEFFS = 2


class BramBlock:
    """One Fig.-3 block: `depth` words of two coefficients, 1R + 1W per cycle."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.data = np.zeros((depth, WORD_COEFFS), dtype=np.int64)
        self._reads_at: dict[int, int] = {}
        self._writes_at: dict[int, int] = {}

    @property
    def bram36k_count(self) -> int:
        """Physical primitives: 60-bit words need two 36-bit BRAMs, and
        depths beyond 1024 need cascading."""
        rows = -(-self.depth // BRAM36K_WORDS)
        return 2 * max(rows, 1)

    def read(self, addr: int, cycle: int | None = None) -> tuple[int, int]:
        self._check_addr(addr)
        if cycle is not None:
            count = self._reads_at.get(cycle, 0)
            if count >= 1:
                raise MemoryConflictError(
                    f"second read on block read port in cycle {cycle}"
                )
            self._reads_at[cycle] = count + 1
        lo, hi = self.data[addr]
        return int(lo), int(hi)

    def write(self, addr: int, pair: tuple[int, int],
              cycle: int | None = None) -> None:
        self._check_addr(addr)
        if cycle is not None:
            count = self._writes_at.get(cycle, 0)
            if count >= 1:
                raise MemoryConflictError(
                    f"second write on block write port in cycle {cycle}"
                )
            self._writes_at[cycle] = count + 1
        self.data[addr] = (int(pair[0]), int(pair[1]))

    def reset_ports(self) -> None:
        """Forget port history (called between instructions)."""
        self._reads_at.clear()
        self._writes_at.clear()

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.depth:
            raise HardwareModelError(
                f"address {addr} outside block depth {self.depth}"
            )


class PairedPolyMemory:
    """The two-block paired-word memory holding one residue polynomial."""

    def __init__(self, n: int) -> None:
        if not is_power_of_two(n) or n < 8:
            raise HardwareModelError(
                "paired memory needs a power-of-two degree of at least 8"
            )
        self.n = n
        self.words = n // 2
        self.block_depth = self.words // 2
        self.lower = BramBlock(self.block_depth)
        self.upper = BramBlock(self.block_depth)

    @property
    def bram36k_count(self) -> int:
        return self.lower.bram36k_count + self.upper.bram36k_count

    def block_of(self, addr: int) -> tuple[BramBlock, int]:
        """Map a virtual word address to (block, local address)."""
        if not 0 <= addr < self.words:
            raise HardwareModelError(
                f"word address {addr} outside memory of {self.words} words"
            )
        if addr < self.block_depth:
            return self.lower, addr
        return self.upper, addr - self.block_depth

    def read_word(self, addr: int, cycle: int | None = None) -> tuple[int, int]:
        block, local = self.block_of(addr)
        return block.read(local, cycle)

    def write_word(self, addr: int, pair: tuple[int, int],
                   cycle: int | None = None) -> None:
        block, local = self.block_of(addr)
        block.write(local, pair, cycle)

    def reset_ports(self) -> None:
        self.lower.reset_ports()
        self.upper.reset_ports()

    # -- bulk access for the fast executor ------------------------------------------

    def load_pairs(self, pairs: np.ndarray) -> None:
        """Fill the memory from a (words x 2) array in one model step."""
        if pairs.shape != (self.words, WORD_COEFFS):
            raise HardwareModelError(
                f"expected ({self.words} x 2) pairs, got {pairs.shape}"
            )
        self.lower.data[:] = pairs[: self.block_depth]
        self.upper.data[:] = pairs[self.block_depth:]

    def dump_pairs(self) -> np.ndarray:
        return np.concatenate([self.lower.data, self.upper.data], axis=0)
