"""Sliding-window modular reduction circuit (paper Sec. V-A4, Fig. 4).

The paper avoids Barrett reduction (several extra multiplications) with a
table-driven method: to reduce a 60-bit product modulo a 30-bit prime, a
"reduction table" stores ``w * 2^30 mod q_i`` for every value ``w`` of the
most-significant window (6 bits in the paper). Each step replaces the top
window of the operand by its tabulated 30-bit equivalent, shrinking the
operand by ``window`` bits; the steps are fully unrolled and pipelined in
the RTL. A final conditional subtraction of q or 2q produces the result.

Both a bit-exact functional model (scalar and vectorised) and the
structural properties (table size, step count = pipeline stages) live
here. :class:`BarrettReducer` is included for the design-space comparison
the paper alludes to.
"""

from __future__ import annotations

import numpy as np

from ..errors import HardwareModelError, ParameterError

RESIDUE_BITS = 30
"""Width of the reduced result (the paper's 30-bit primes)."""


class SlidingWindowReducer:
    """Reduction of up to ``input_bits``-wide values modulo one 30-bit prime."""

    def __init__(self, modulus: int, window_bits: int = 6,
                 input_bits: int = 60) -> None:
        if modulus.bit_length() > RESIDUE_BITS:
            raise ParameterError(
                f"modulus {modulus} wider than the {RESIDUE_BITS}-bit datapath"
            )
        if modulus < 2:
            raise ParameterError("modulus must be at least 2")
        self.modulus = modulus
        self.window_bits = window_bits
        self.input_bits = input_bits
        # Table of w * 2^RESIDUE_BITS mod q for each window value w. The
        # RTL keeps one such ROM per supported prime of the RPAU.
        self.table = np.array(
            [(w << RESIDUE_BITS) % modulus for w in range(1 << window_bits)],
            dtype=np.int64,
        )
        # Number of unrolled steps: each step removes `window_bits` bits
        # above bit RESIDUE_BITS until at most 31 bits remain.
        excess = max(0, input_bits - (RESIDUE_BITS + 1))
        self.steps = -(-excess // window_bits)

    # -- structural properties (consumed by the resource model) -------------------

    @property
    def table_entries(self) -> int:
        return 1 << self.window_bits

    @property
    def pipeline_stages(self) -> int:
        """One pipeline stage per unrolled step plus the final correction."""
        return self.steps + 1

    # -- functional model -----------------------------------------------------------

    def reduce(self, value: int) -> int:
        """Scalar bit-exact reduction (mirrors the RTL step by step)."""
        if value < 0 or value.bit_length() > self.input_bits:
            raise HardwareModelError(
                f"operand {value} outside the {self.input_bits}-bit datapath"
            )
        work = value
        for _ in range(self.steps):
            if work.bit_length() <= RESIDUE_BITS + 1:
                # The RTL still burns the stage; the value passes through.
                continue
            shift = work.bit_length() - self.window_bits
            # Keep the window anchored above bit RESIDUE_BITS.
            shift = max(shift, RESIDUE_BITS)
            window = work >> shift
            low = work - (window << shift)
            # window * 2^shift mod q = table[window] * 2^(shift-30) folded in.
            folded = int(self.table[window]) << (shift - RESIDUE_BITS)
            work = low + folded
        # Final correction: the value is now at most ~32 bits; subtract q
        # or 2q (paper: "might require a subtraction of qi or 2qi").
        while work >= self.modulus:
            work -= self.modulus
        return work

    def reduce_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorised reduction used by the fast executors.

        numpy's ``%`` computes the same mathematical function the unrolled
        circuit computes; :meth:`reduce` is kept scalar and structural so
        tests can prove the equivalence exhaustively.
        """
        return np.asarray(values, dtype=np.int64) % self.modulus


class BarrettReducer:
    """Barrett reduction [31], the alternative the paper decided against.

    Needs two extra wide multiplications per reduction; the resource model
    uses its multiplier count to quantify the paper's design choice.
    """

    def __init__(self, modulus: int, input_bits: int = 60) -> None:
        if modulus < 2:
            raise ParameterError("modulus must be at least 2")
        self.modulus = modulus
        self.shift = input_bits
        self.mu = (1 << self.shift) // modulus

    @property
    def extra_multipliers(self) -> int:
        return 2

    def reduce(self, value: int) -> int:
        if value < 0 or value >= (1 << self.shift):
            raise HardwareModelError("operand outside the Barrett range")
        estimate = (value * self.mu) >> self.shift
        remainder = value - estimate * self.modulus
        while remainder >= self.modulus:
            remainder -= self.modulus
        return remainder


class MontgomeryReducer:
    """Montgomery reduction — the third classic option in the design space.

    Works in the Montgomery domain (values scaled by R = 2^30 mod q), so
    it suits long chains of multiplications (NTT butterflies qualify) but
    needs domain entry/exit conversions the sliding-window design avoids.
    One extra multiplier per reduction; no ROM.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 3 or modulus % 2 == 0:
            raise ParameterError("Montgomery needs an odd modulus >= 3")
        if modulus.bit_length() > RESIDUE_BITS:
            raise ParameterError(
                f"modulus wider than the {RESIDUE_BITS}-bit datapath"
            )
        self.modulus = modulus
        self.r_bits = RESIDUE_BITS
        self.r = 1 << self.r_bits
        self.r_mask = self.r - 1
        # -q^-1 mod R.
        self.q_inv_neg = (-pow(modulus, -1, self.r)) % self.r
        self.r_squared = (self.r * self.r) % modulus

    @property
    def extra_multipliers(self) -> int:
        return 1

    def to_montgomery(self, value: int) -> int:
        """Enter the Montgomery domain: value * R mod q."""
        return self.reduce(value * self.r_squared)

    def from_montgomery(self, value: int) -> int:
        """Leave the Montgomery domain: value * R^-1 mod q."""
        return self.reduce(value)

    def reduce(self, value: int) -> int:
        """REDC: value * R^-1 mod q for value < q * R."""
        if value < 0 or value >= self.modulus * self.r:
            raise HardwareModelError("operand outside the REDC range")
        m = (value & self.r_mask) * self.q_inv_neg & self.r_mask
        t = (value + m * self.modulus) >> self.r_bits
        return t - self.modulus if t >= self.modulus else t

    def modmul(self, a_mont: int, b_mont: int) -> int:
        """Product of two Montgomery-domain residues, still in-domain."""
        return self.reduce(a_mont * b_mont)
