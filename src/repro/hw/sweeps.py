"""Design-space sweeps (paper Sec. VII: cost/performance trade-offs).

The paper closes by noting the architecture "offers trade-offs between
hardware cost and performance ... design decisions can be tweaked to
meet different requirements" and sketches an Amazon F1 port with ten
coprocessors. The sweep functions here produce the data series behind
those claims: latency/throughput/resources as functions of each design
knob, consumed by the design-space example and the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..params import ParameterSet
from ..system.server import CloudServer
from .config import HardwareConfig
from .resources import ResourceEstimator, Utilization


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    label: str
    config: HardwareConfig
    mult_seconds: float
    throughput_per_second: float
    resources: Utilization

    def row(self) -> str:
        return (f"{self.label:<34}{self.mult_seconds * 1e3:>9.2f} ms"
                f"{self.throughput_per_second:>9.0f}/s"
                f"{self.resources.luts:>10,}{self.resources.bram36:>7}"
                f"{self.resources.dsps:>6}")


def evaluate_point(params: ParameterSet, label: str,
                   config: HardwareConfig) -> DesignPoint:
    server = CloudServer(params, config)
    resources = ResourceEstimator(params, config).single_coprocessor()
    return DesignPoint(
        label=label,
        config=config,
        mult_seconds=server.mult_compute_seconds(),
        throughput_per_second=server.mult_throughput_per_second(),
        resources=resources,
    )


def sweep_coprocessor_count(params: ParameterSet,
                            counts=(1, 2, 4, 10)) -> list[DesignPoint]:
    """Throughput vs coprocessor instances (the paper's F1 projection).

    Ten coprocessors is the paper's estimate for one Amazon F1 FPGA
    ("five times more resources than our Zynq").
    """
    base = HardwareConfig()
    return [
        evaluate_point(params, f"{count} coprocessor(s)",
                       replace(base, num_coprocessors=count))
        for count in counts
    ]


def sweep_conversion_cores(params: ParameterSet,
                           counts=(1, 2, 4)) -> list[DesignPoint]:
    """Mult latency vs lift/scale core count."""
    base = HardwareConfig()
    return [
        evaluate_point(params, f"{count} lift + {count} scale cores",
                       replace(base, lift_cores=count, scale_cores=count))
        for count in counts
    ]


def sweep_butterfly_cores(params: ParameterSet) -> list[DesignPoint]:
    base = HardwareConfig()
    return [
        evaluate_point(params, f"{count} butterfly core(s)/RPAU",
                       replace(base, butterfly_cores_per_rpau=count))
        for count in (1, 2)
    ]


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """Points not dominated in (latency, LUT cost)."""
    front = []
    for point in points:
        dominated = any(
            other.mult_seconds <= point.mult_seconds
            and other.resources.luts < point.resources.luts
            or other.mult_seconds < point.mult_seconds
            and other.resources.luts <= point.resources.luts
            for other in points if other is not point
        )
        if not dominated:
            front.append(point)
    return front
