"""On-chip memory file of the coprocessor (paper Fig. 10, the 'M' boxes).

The paper sizes the on-chip memory so that a full FV.Mult runs without
touching DDR except for the relinearisation keys. This module defines the
concrete memory map used by the compiler, tracks allocations, and counts
BRAM36K primitives for the resource model:

* every *residue polynomial row* occupies n/2 paired 60-bit words =
  4 BRAM36K at n = 4096 (see :mod:`repro.hw.bram`);
* twiddle ROMs store the forward stage tables (the inverse tables are the
  same table read in reverse index order) plus the merged psi post-scale
  table per prime;
* the lift/scale constant ROMs are counted by their owning units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CapacityError
from ..params import ParameterSet
from .bram import BRAM36K_WIDTH, BRAM36K_WORDS
from .config import HardwareConfig

COEFF_BITS = 30


@dataclass
class MemoryRegion:
    """A named region holding a number of residue polynomial rows."""

    name: str
    rows: int
    purpose: str

    def bram36k(self, n: int) -> int:
        # Two blocks per residue row, each two aligned BRAM36K per 1024
        # words of depth (the paired-word geometry of repro.hw.bram).
        depth_per_block = n // 4
        brams_per_block = 2 * max(1, -(-depth_per_block // BRAM36K_WORDS))
        return self.rows * 2 * brams_per_block


@dataclass
class MemoryFile:
    """The coprocessor's polynomial memory map.

    The regions below mirror the working set of the Fig. 2 dataflow with
    the aliasing a BRAM-constrained design needs (the paper's Table IV
    shows the design is memory-bound at 89% BRAM utilisation):

    * ``operands``: the two input ciphertexts' q-basis rows; after the
      forward NTTs these same rows hold the transformed operands.
    * ``lifted``: the extension (p-basis) rows produced by Lift.
    * ``accumulators``: full-basis rows for c~0/c~1/c~2 beyond what can
      alias onto the operand rows, plus the scaled q-basis results.
    * ``relin``: the streaming buffer for one relinearisation key
      component (double-buffering is what `rlk_buffers=2` would model).
    """

    params: ParameterSet
    config: HardwareConfig
    regions: list[MemoryRegion] = field(default_factory=list)

    def __post_init__(self) -> None:
        k_q, k_p, k_total = (self.params.k_q, self.params.k_p,
                             self.params.k_total)
        self.regions = [
            MemoryRegion("operands", 4 * k_q,
                         "two input ciphertexts (q rows, reused post-NTT)"),
            MemoryRegion("lifted", 4 * k_p,
                         "extension rows of the four lifted polynomials"),
            MemoryRegion("accumulators", k_total + k_q,
                         "tensor accumulator + scaled result staging"),
            MemoryRegion("relin", k_q,
                         "relinearisation key streaming buffer"),
        ]

    # -- BRAM accounting ------------------------------------------------------------

    def poly_bram36k(self) -> int:
        return sum(region.bram36k(self.params.n) for region in self.regions)

    def twiddle_rom_bram36k(self) -> int:
        """Per prime: forward stage twiddles (n words) + psi post-scale
        table (n words), 30 bits each."""
        bits_per_prime = 2 * self.params.n * COEFF_BITS
        per_prime = -(-bits_per_prime // (BRAM36K_WORDS * BRAM36K_WIDTH))
        return self.params.k_total * per_prime

    def total_bram36k(self) -> int:
        return self.poly_bram36k() + self.twiddle_rom_bram36k()

    def breakdown(self) -> dict[str, int]:
        report = {
            region.name: region.bram36k(self.params.n)
            for region in self.regions
        }
        report["twiddle_roms"] = self.twiddle_rom_bram36k()
        report["total"] = self.total_bram36k()
        return report

    def check_budget(self, available_bram36k: int) -> None:
        total = self.total_bram36k()
        if total > available_bram36k:
            raise CapacityError(
                f"memory map needs {total} BRAM36K, only "
                f"{available_bram36k} available"
            )
