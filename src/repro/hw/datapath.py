"""Low-level pipelined arithmetic circuits (paper Figs. 4 and 7).

These models carry both the functional operation and the structural
figures (latency, DSP/LUT cost) consumed by the cycle and resource models.
All datapaths are fully pipelined: latency is ``stages`` cycles, the
initiation interval is one operation per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareModelError

#: DSP48E2 slices for a pipelined 30x30 multiplier (2x2 tiling of the
#: 27x18 hardened multiplier).
DSP_PER_30X30 = 4

#: DSP slices for the 30x60 fixed-point reciprocal multiplier of the HPS
#: lift (Fig. 6 Block 3): twice the 30x30 tile count.
DSP_PER_30X60 = 8


@dataclass(frozen=True)
class PipelinedMultiplier:
    """30x30 (or 30x60) integer multiplier built from DSP slices."""

    stages: int
    a_bits: int = 30
    b_bits: int = 30

    def multiply(self, a: int, b: int) -> int:
        if a.bit_length() > self.a_bits or b.bit_length() > self.b_bits:
            raise HardwareModelError(
                f"operands exceed the {self.a_bits}x{self.b_bits} multiplier"
            )
        return a * b

    @property
    def dsp_cost(self) -> int:
        """One DSP48 per 27x18 partial-product tile (2x2 = 4 for 30x30)."""
        tiles_a = -(-self.a_bits // 27)
        tiles_b = -(-self.b_bits // 18)
        return tiles_a * tiles_b

    @property
    def latency(self) -> int:
        return self.stages


@dataclass(frozen=True)
class ModAddSub:
    """Modular adder/subtractor (add then conditional correction)."""

    stages: int

    def add(self, a: int, b: int, modulus: int) -> int:
        total = a + b
        return total - modulus if total >= modulus else total

    def sub(self, a: int, b: int, modulus: int) -> int:
        diff = a - b
        return diff + modulus if diff < 0 else diff

    @property
    def latency(self) -> int:
        return self.stages


@dataclass(frozen=True)
class MacUnit:
    """Multiply-and-accumulate circuit of Fig. 7 (blue accumulate path).

    Used by the lift/scale blocks: multiply a coefficient with a ROM
    constant, reduce, optionally accumulate. Initiation interval one.
    """

    multiplier_stages: int
    modred_stages: int

    @property
    def latency(self) -> int:
        return self.multiplier_stages + self.modred_stages + 1

    def mac(self, acc: int, a: int, constant: int, modulus: int) -> int:
        return (acc + a * constant) % modulus
