"""Randomised hardware-vs-software equivalence campaigns.

The paper "verified its correctness" on the ZCU102 by checking hardware
results against software. This module packages the same methodology for
the simulator: given a hardware configuration, run a campaign of random
homomorphic operations through both the coprocessor model and the
software evaluator, compare bit-for-bit, decrypt, and report. It backs
``python -m repro verify`` and the release checklist in the README.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..fv.encoder import Plaintext
from ..fv.evaluator import Evaluator
from ..fv.scheme import FvContext
from ..nttmath.ntt import negacyclic_convolution
from ..params import ParameterSet, mini
from .config import HardwareConfig
from .coprocessor import Coprocessor


@dataclass
class CampaignResult:
    """Outcome of one equivalence campaign."""

    params_name: str
    operations: int = 0
    bit_exact_matches: int = 0
    decrypt_matches: int = 0
    failures: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return (not self.failures
                and self.bit_exact_matches == self.operations
                and self.decrypt_matches == self.operations)

    def report(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"equivalence campaign on {self.params_name}: {status}",
            f"  operations:        {self.operations}",
            f"  bit-exact matches: {self.bit_exact_matches}",
            f"  decrypt matches:   {self.decrypt_matches}",
            f"  wall time:         {self.wall_seconds:.1f} s",
        ]
        lines.extend(f"  failure: {f}" for f in self.failures)
        return "\n".join(lines)


def run_campaign(params: ParameterSet | None = None,
                 config: HardwareConfig | None = None,
                 operations: int = 10,
                 seed: int = 12345) -> CampaignResult:
    """Random Mult/Add operations through HW model and SW evaluator.

    Each round draws fresh random plaintexts, encrypts them, runs the
    operation on both paths, requires bit-identical ciphertexts, and
    checks the decryption against the plaintext ring computation.
    """
    params = params or mini()
    config = config or HardwareConfig()
    start = time.perf_counter()
    context = FvContext(params, seed=seed)
    keys = context.keygen()
    evaluator = Evaluator(context)
    coprocessor = Coprocessor(params, config)
    rng = np.random.default_rng(seed + 1)
    result = CampaignResult(params_name=params.name)

    for round_index in range(operations):
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = context.encrypt(a, keys.public)
        ct_b = context.encrypt(b, keys.public)
        is_mult = round_index % 2 == 0
        if is_mult:
            hw_ct, _ = coprocessor.mult(ct_a, ct_b, keys.relin)
            sw_ct = evaluator.multiply(ct_a, ct_b, keys.relin)
            expected = negacyclic_convolution(
                a.coeffs.tolist(), b.coeffs.tolist(), params.t
            )
        else:
            hw_ct, _ = coprocessor.add(ct_a, ct_b)
            sw_ct = context.add(ct_a, ct_b)
            expected = ((a.coeffs + b.coeffs) % params.t).tolist()
        result.operations += 1

        bit_exact = all(
            np.array_equal(h.residues, s.residues)
            for h, s in zip(hw_ct.parts, sw_ct.parts, strict=True)
        )
        if bit_exact:
            result.bit_exact_matches += 1
        else:
            result.failures.append(
                f"round {round_index}: HW != SW "
                f"({'mult' if is_mult else 'add'})"
            )
        decrypted = context.decrypt(hw_ct, keys.secret)
        if decrypted.coeffs.tolist() == expected:
            result.decrypt_matches += 1
        else:
            result.failures.append(
                f"round {round_index}: HW result decrypts incorrectly"
            )
    result.wall_seconds = time.perf_counter() - start
    return result


def run_configuration_matrix(operations: int = 4,
                             seed: int = 777) -> list[CampaignResult]:
    """Campaigns across the design-space corners of the paper.

    Fast coprocessor, pinned-key variant, single-butterfly variant, and
    the no-ROM variant — all must be functionally indistinguishable (the
    design knobs trade cycles, never results).
    """
    from dataclasses import replace

    base = HardwareConfig()
    corners = [
        ("fast (paper)", base),
        ("relin key on-chip", replace(base, relin_key_on_chip=True)),
        ("single butterfly core", replace(base,
                                          butterfly_cores_per_rpau=1)),
        ("no twiddle ROM", replace(base, twiddle_rom=False)),
    ]
    results = []
    for name, config in corners:
        result = run_campaign(config=config, operations=operations,
                              seed=seed)
        result.params_name = f"{result.params_name} / {name}"
        results.append(result)
    return results
