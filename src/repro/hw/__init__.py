"""Cycle-level simulator of the paper's FPGA coprocessor.

Every component of the paper's Figs. 3–11 is modelled here with two
obligations: compute *bit-exact* results through the same datapath the
RTL implements (reduction tables, fixed-point reciprocals, paired-word
memories), and derive *cycle counts* from the schedules the component
actually executes (port limits, pipeline fill/drain, stage barriers).

Component map (paper figure -> module):

=============  ===========================================
Fig. 3         :mod:`~repro.hw.ntt_unit` (access schedule)
Fig. 4         :mod:`~repro.hw.butterfly`, :mod:`~repro.hw.modred`
Fig. 5, 6      :mod:`~repro.hw.lift_unit`
Fig. 7         :mod:`~repro.hw.datapath`
Fig. 8, 9      :mod:`~repro.hw.scale_unit`
Fig. 10        :mod:`~repro.hw.coprocessor`, :mod:`~repro.hw.memory_file`
Fig. 11        :mod:`~repro.hw.dma`, :mod:`repro.system.server`
=============  ===========================================
"""

from .config import HardwareConfig, slow_coprocessor_config
from .coprocessor import Coprocessor, MultReport
from .isa import Opcode

__all__ = [
    "HardwareConfig",
    "slow_coprocessor_config",
    "Coprocessor",
    "MultReport",
    "Opcode",
]
