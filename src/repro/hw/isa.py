"""Instruction set of the coprocessor (paper Table II).

The paper's coprocessor is an instruction-set architecture: the Arm
dispatches one instruction at a time, each operating on a *batch* of
residue polynomial rows spread over the RPAUs (the six q rows in one
batch, the full basis in two). The opcodes below are exactly the rows of
the paper's Table II plus the key-streaming step its Mult timing folds in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import IsaError


class Opcode(Enum):
    """Operations of the paper's Table II (+ relin key streaming and the
    Galois permutation extension — the latter runs on the memory
    rearrange datapath, no new arithmetic)."""

    NTT = "ntt"
    INTT = "intt"
    CMUL = "coeff_mul"
    CADD = "coeff_add"
    CSUB = "coeff_sub"
    CMUL_SCALAR = "coeff_mul_scalar"
    REARRANGE = "memory_rearrange"
    LIFT = "lift_q_to_Q"
    SCALE = "scale_Q_to_q"
    DIGIT = "digit_broadcast"
    LOAD_RLK = "load_relin_component"
    GALOIS = "galois_permute"


#: Opcodes whose cycle cost the paper reports per Table II row.
TABLE2_OPCODES = (
    Opcode.NTT, Opcode.INTT, Opcode.CMUL, Opcode.CADD,
    Opcode.REARRANGE, Opcode.LIFT, Opcode.SCALE,
)


@dataclass(frozen=True)
class Instruction:
    """One coprocessor instruction.

    ``dst`` and ``srcs`` name polynomial registers in the memory file;
    ``rows`` selects the residue rows (batch) the instruction touches.
    ``meta`` carries opcode-specific extras (scalar value, key component
    index, ...).
    """

    op: Opcode
    dst: str | None = None
    srcs: tuple[str, ...] = ()
    rows: tuple[int, ...] = ()
    meta: dict = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        needs_dst = self.op not in (Opcode.LOAD_RLK, Opcode.REARRANGE)
        if needs_dst and self.dst is None:
            raise IsaError(f"{self.op.name} requires a destination register")

    def describe(self) -> str:
        src = ", ".join(self.srcs)
        rows = f" rows={list(self.rows)}" if self.rows else ""
        return f"{self.op.name:12s} {self.dst or '-':12s} <- {src}{rows}"


@dataclass
class Program:
    """An instruction sequence with human-readable provenance."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def emit(self, op: Opcode, dst: str | None = None,
             srcs: tuple[str, ...] = (), rows: tuple[int, ...] = (),
             **meta) -> Instruction:
        instruction = Instruction(op=op, dst=dst, srcs=srcs, rows=rows,
                                  meta=meta)
        self.instructions.append(instruction)
        return instruction

    def opcode_histogram(self) -> dict[Opcode, int]:
        counts: dict[Opcode, int] = {}
        for instruction in self.instructions:
            counts[instruction.op] = counts.get(instruction.op, 0) + 1
        return counts

    def listing(self) -> str:
        return "\n".join(
            f"{idx:4d}: {ins.describe()}"
            for idx, ins in enumerate(self.instructions)
        )

    def __len__(self) -> int:
        return len(self.instructions)
