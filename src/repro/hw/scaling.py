"""Parameter-set scaling estimates (paper Sec. VI-D, Table V).

The paper extrapolates from its measured (n = 2^12, log q = 180) design
point with an explicit iterative rule: each doubling of both the
polynomial degree and the coefficient size is ~4.34x more computation;
doubling the number of RPAUs and lift/scale cores (~2x logic and DSP)
brings the net computation increase to ~2.17x; off-chip transfer grows
~4x; and the polynomial storage (BRAM) grows ~4x. This module applies the
same rule starting from *our modelled* base point, so Table V regenerates
from the simulator rather than from hard-coded paper numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import Utilization

COMPUTE_GROWTH_PER_DOUBLING = 2.17
COMM_GROWTH_PER_DOUBLING = 4.0
LOGIC_GROWTH_PER_DOUBLING = 2
BRAM_GROWTH_PER_DOUBLING = 4


@dataclass(frozen=True)
class ScalingPoint:
    """One row of Table V (single coprocessor)."""

    n: int
    log2_q: int
    resources: Utilization
    compute_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def row(self) -> str:
        r = self.resources
        return (f"(2^{self.n.bit_length() - 1}, {self.log2_q:>5}) | "
                f"{r.luts // 1000}K/{r.regs // 1000}K/"
                f"{r.bram36 / 1000:.1f}K/{r.dsps / 1000:.1f}K | "
                f"{self.compute_seconds * 1e3:.2f}/"
                f"{self.comm_seconds * 1e3:.2f}/"
                f"{self.total_seconds * 1e3:.1f} msec")


def scaling_table(base_resources: Utilization, base_compute_seconds: float,
                  base_comm_seconds: float, base_n: int = 4096,
                  base_log2_q: int = 180,
                  doublings: int = 3) -> list[ScalingPoint]:
    """Apply the paper's Sec. VI-D estimation model iteratively.

    ``base_*`` come from the measured/modelled single-coprocessor design
    point; each iteration doubles n and log q.
    """
    points = [
        ScalingPoint(base_n, base_log2_q, base_resources,
                     base_compute_seconds, base_comm_seconds)
    ]
    current = points[0]
    for _ in range(doublings):
        resources = Utilization(
            luts=current.resources.luts * LOGIC_GROWTH_PER_DOUBLING,
            regs=current.resources.regs * LOGIC_GROWTH_PER_DOUBLING,
            bram36=current.resources.bram36 * BRAM_GROWTH_PER_DOUBLING,
            dsps=current.resources.dsps * LOGIC_GROWTH_PER_DOUBLING,
        )
        current = ScalingPoint(
            n=current.n * 2,
            log2_q=current.log2_q * 2,
            resources=resources,
            compute_seconds=(current.compute_seconds
                             * COMPUTE_GROWTH_PER_DOUBLING),
            comm_seconds=current.comm_seconds * COMM_GROWTH_PER_DOUBLING,
        )
        points.append(current)
    return points
