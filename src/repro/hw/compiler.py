"""Compiler: FV high-level operations -> coprocessor instruction streams.

``compile_mult`` emits the Fig. 2 dataflow in exactly the decomposition
that reproduces the paper's Table II call counts for the fast coprocessor
(14 NTT, 8 INTT, 20 coefficient-wise multiplications, 4 Lift, 3 Scale,
one Memory Rearrange per transform). The relinearisation sum-of-products
stays in the NTT domain and only its two accumulators are inverse-
transformed, which is what caps the INTT count at 8.

Register convention (slots in the memory file):

========  =====================================================
a0,a1     first operand ciphertext (q rows; p rows after LIFT)
b0,b1     second operand ciphertext
t0,t1,t2  tensor results over the full basis
tx        scratch for the cross product
s0,s1,s2  scaled results (q basis)
d{i}      digit polynomial i (broadcast residue row)
p{i}      relin product scratch
r0,r1     relin accumulators (NTT domain)
out0,out1 result ciphertext
========  =====================================================
"""

from __future__ import annotations

from ..params import ParameterSet
from .config import HardwareConfig
from .isa import Opcode, Program


def _q_rows(params: ParameterSet) -> tuple[int, ...]:
    return tuple(range(params.k_q))


def _p_rows(params: ParameterSet) -> tuple[int, ...]:
    return tuple(range(params.k_q, params.k_total))


def _full_batches(params: ParameterSet) -> tuple[tuple[int, ...], ...]:
    """The two RPAU batches covering the full basis (paper Sec. V-A1)."""
    return (_q_rows(params), _p_rows(params))


def compile_add(params: ParameterSet) -> Program:
    """FV.Add: two coefficient-wise additions (one per ciphertext part)."""
    program = Program(name="fv_add")
    rows = _q_rows(params)
    program.emit(Opcode.CADD, dst="out0", srcs=("a0", "b0"), rows=rows)
    program.emit(Opcode.CADD, dst="out1", srcs=("a1", "b1"), rows=rows)
    return program


def compile_mult(params: ParameterSet, config: HardwareConfig,
                 relin_components: int | None = None,
                 relin_style: str | None = None) -> Program:
    """FV.Mult for the fast (HPS) or slow (traditional-CRT) coprocessor.

    ``relin_components`` defaults to k_q for the HPS design (RNS digits)
    and 2 for the traditional design (90-bit signed digits), matching the
    paper's two configurations. ``relin_style`` selects the digit flavour
    explicitly: ``"rns"`` (raw residue rows), ``"grouped"`` (60-bit group
    residues — the scaling mode), or ``"digit"`` (signed base-w digits of
    the slow coprocessor).
    """
    if relin_style is None:
        relin_style = "rns" if config.use_hps else "digit"
    if relin_components is None:
        if relin_style == "rns":
            relin_components = params.k_q
        elif relin_style == "grouped":
            relin_components = -(-params.k_q // 2)
        else:
            relin_components = 2
    program = Program(
        name="fv_mult_hps" if config.use_hps else "fv_mult_traditional"
    )
    q_rows = _q_rows(params)

    # --- Lift q->Q: four input polynomials (paper: 4 Lift calls) -------------
    for reg in ("a0", "a1", "b0", "b1"):
        program.emit(Opcode.LIFT, dst=reg, srcs=(reg,), rows=q_rows)

    # --- Forward NTT over the full basis: two batches per polynomial ---------
    # (8 NTT calls; one Memory Rearrange per call loads the bit-reversed
    # paired layout.)
    for reg in ("a0", "a1", "b0", "b1"):
        for batch in _full_batches(params):
            program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=batch)
            program.emit(Opcode.NTT, dst=reg, srcs=(reg,), rows=batch)

    # --- Tensor product (8 CMUL + 2 CADD over the two batches) ----------------
    for batch in _full_batches(params):
        program.emit(Opcode.CMUL, dst="t0", srcs=("a0", "b0"), rows=batch)
    for batch in _full_batches(params):
        program.emit(Opcode.CMUL, dst="t1", srcs=("a0", "b1"), rows=batch)
    for batch in _full_batches(params):
        program.emit(Opcode.CMUL, dst="tx", srcs=("a1", "b0"), rows=batch)
    for batch in _full_batches(params):
        program.emit(Opcode.CADD, dst="t1", srcs=("t1", "tx"), rows=batch)
    for batch in _full_batches(params):
        program.emit(Opcode.CMUL, dst="t2", srcs=("a1", "b1"), rows=batch)

    # --- Inverse NTT of the three tensor polynomials (6 INTT calls) -----------
    for reg in ("t0", "t1", "t2"):
        for batch in _full_batches(params):
            program.emit(Opcode.INTT, dst=reg, srcs=(reg,), rows=batch)
            program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=batch)

    # --- Scale Q->q (3 Scale calls) -------------------------------------------
    for src, dst in (("t0", "s0"), ("t1", "s1"), ("t2", "s2")):
        program.emit(Opcode.SCALE, dst=dst, srcs=(src,),
                     rows=tuple(range(params.k_total)))

    # --- Relinearisation -------------------------------------------------------
    if relin_style == "rns":
        _emit_relin_rns(program, params, relin_components, config)
    elif relin_style == "grouped":
        _emit_relin_grouped(program, params, relin_components, config)
    else:
        _emit_relin_digit(program, params, relin_components, config)

    # --- Final accumulation into the output ciphertext -------------------------
    program.emit(Opcode.CADD, dst="out0", srcs=("s0", "r0"), rows=q_rows)
    program.emit(Opcode.CADD, dst="out1", srcs=("s1", "r1"), rows=q_rows)
    return program


def _emit_relin_rns(program: Program, params: ParameterSet,
                    components: int, config: HardwareConfig) -> None:
    """RNS relinearisation: digits are raw residue rows of s2.

    Per component: one digit broadcast, one rearrange + forward NTT, two
    products against the streamed key pair, two accumulations. Totals for
    k_q = 6: 6 NTT, 12 CMUL, 10 CADD (the first product initialises each
    accumulator), 6 key loads.
    """
    q_rows = _q_rows(params)
    for i in range(components):
        digit = f"d{i}"
        program.emit(Opcode.DIGIT, dst=digit, srcs=("s2",), rows=q_rows,
                     source_row=i)
        program.emit(Opcode.REARRANGE, dst=digit, srcs=(digit,), rows=q_rows)
        program.emit(Opcode.NTT, dst=digit, srcs=(digit,), rows=q_rows)
        if not config.relin_key_on_chip:
            program.emit(Opcode.LOAD_RLK, rows=q_rows, component=i)
        if i == 0:
            program.emit(Opcode.CMUL, dst="r0", srcs=(digit, f"rlk0_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="r1", srcs=(digit, f"rlk1_{i}"),
                         rows=q_rows)
        else:
            program.emit(Opcode.CMUL, dst="p0", srcs=(digit, f"rlk0_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r0", srcs=("r0", "p0"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="p1", srcs=(digit, f"rlk1_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r1", srcs=("r1", "p1"),
                         rows=q_rows)
    # The two accumulators come back to the coefficient domain (2 INTT,
    # completing the paper's count of 8).
    for reg in ("r0", "r1"):
        program.emit(Opcode.INTT, dst=reg, srcs=(reg,), rows=q_rows)
        program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=q_rows)


def _emit_relin_grouped(program: Program, params: ParameterSet,
                        components: int, config: HardwareConfig) -> None:
    """Grouped-RNS relinearisation: digits are 60-bit group residues.

    The group reconstruction is two 30x30 multiplications and one 60-bit
    reduction per coefficient — the lift unit's Block-1 datapath handles
    it, so no new hardware is implied.
    """
    q_rows = _q_rows(params)
    group_size = -(-params.k_q // components)
    for j in range(components):
        digit = f"d{j}"
        program.emit(Opcode.DIGIT, dst=digit, srcs=("s2",), rows=q_rows,
                     group=j, group_size=group_size)
        program.emit(Opcode.REARRANGE, dst=digit, srcs=(digit,), rows=q_rows)
        program.emit(Opcode.NTT, dst=digit, srcs=(digit,), rows=q_rows)
        if not config.relin_key_on_chip:
            program.emit(Opcode.LOAD_RLK, rows=q_rows, component=j)
        if j == 0:
            program.emit(Opcode.CMUL, dst="r0", srcs=(digit, f"rlk0_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="r1", srcs=(digit, f"rlk1_{j}"),
                         rows=q_rows)
        else:
            program.emit(Opcode.CMUL, dst="p0", srcs=(digit, f"rlk0_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r0", srcs=("r0", "p0"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="p1", srcs=(digit, f"rlk1_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r1", srcs=("r1", "p1"),
                         rows=q_rows)
    for reg in ("r0", "r1"):
        program.emit(Opcode.INTT, dst=reg, srcs=(reg,), rows=q_rows)
        program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=q_rows)


def _emit_relin_digit(program: Program, params: ParameterSet,
                      components: int, config: HardwareConfig) -> None:
    """Signed base-w relinearisation for the traditional coprocessor.

    The digit extraction happens on big-integer coefficients, which the
    traditional Scale datapath has just reconstructed; each DIGIT here
    models the extraction pass of one digit polynomial.
    """
    q_rows = _q_rows(params)
    base_bits = -(-params.q.bit_length() // components)
    for j in range(components):
        digit = f"d{j}"
        program.emit(Opcode.DIGIT, dst=digit, srcs=("s2",), rows=q_rows,
                     digit_index=j, base_bits=base_bits)
        program.emit(Opcode.REARRANGE, dst=digit, srcs=(digit,), rows=q_rows)
        program.emit(Opcode.NTT, dst=digit, srcs=(digit,), rows=q_rows)
        if not config.relin_key_on_chip:
            program.emit(Opcode.LOAD_RLK, rows=q_rows, component=j)
        if j == 0:
            program.emit(Opcode.CMUL, dst="r0", srcs=(digit, f"rlk0_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="r1", srcs=(digit, f"rlk1_{j}"),
                         rows=q_rows)
        else:
            program.emit(Opcode.CMUL, dst="p0", srcs=(digit, f"rlk0_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r0", srcs=("r0", "p0"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="p1", srcs=(digit, f"rlk1_{j}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r1", srcs=("r1", "p1"),
                         rows=q_rows)
    for reg in ("r0", "r1"):
        program.emit(Opcode.INTT, dst=reg, srcs=(reg,), rows=q_rows)
        program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=q_rows)


def compile_rotation(params: ParameterSet, config: HardwareConfig,
                     galois_element: int) -> Program:
    """Homomorphic slot rotation on the paper's coprocessor (extension).

    A rotation is tau_g on both parts (a coefficient permutation with
    sign flips — the memory-rearrange datapath with a different address
    generator, zero new arithmetic) followed by a key switch, which is
    exactly the relinearisation sum of products. Instruction census per
    rotation: 2 GALOIS + k_q digit broadcasts + k_q NTT + 2 k_q CMUL +
    2(k_q - 1) CADD + 2 INTT + key streaming — so the accelerator covers
    modern rotation-based workloads with its existing instruction set.

    Register convention: inputs ``a0``/``a1``; outputs ``out0``/``out1``.
    """
    program = Program(name=f"fv_rotate_g{galois_element}")
    q_rows = _q_rows(params)
    # tau_g on both ciphertext parts.
    program.emit(Opcode.GALOIS, dst="g0", srcs=("a0",), rows=q_rows,
                 element=galois_element)
    program.emit(Opcode.GALOIS, dst="g1", srcs=("a1",), rows=q_rows,
                 element=galois_element)
    # Key switch tau(c1) back under s (raw-residue digits, as in relin).
    for i in range(params.k_q):
        digit = f"d{i}"
        program.emit(Opcode.DIGIT, dst=digit, srcs=("g1",), rows=q_rows,
                     source_row=i)
        program.emit(Opcode.REARRANGE, dst=digit, srcs=(digit,),
                     rows=q_rows)
        program.emit(Opcode.NTT, dst=digit, srcs=(digit,), rows=q_rows)
        if not config.relin_key_on_chip:
            program.emit(Opcode.LOAD_RLK, rows=q_rows, component=i)
        if i == 0:
            program.emit(Opcode.CMUL, dst="r0", srcs=(digit, f"rlk0_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="r1", srcs=(digit, f"rlk1_{i}"),
                         rows=q_rows)
        else:
            program.emit(Opcode.CMUL, dst="p0", srcs=(digit, f"rlk0_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r0", srcs=("r0", "p0"),
                         rows=q_rows)
            program.emit(Opcode.CMUL, dst="p1", srcs=(digit, f"rlk1_{i}"),
                         rows=q_rows)
            program.emit(Opcode.CADD, dst="r1", srcs=("r1", "p1"),
                         rows=q_rows)
    for reg in ("r0", "r1"):
        program.emit(Opcode.INTT, dst=reg, srcs=(reg,), rows=q_rows)
        program.emit(Opcode.REARRANGE, dst=reg, srcs=(reg,), rows=q_rows)
    program.emit(Opcode.CADD, dst="out0", srcs=("g0", "r0"), rows=q_rows)
    # out1 is the key-switch accumulator alone; model the copy as a
    # zero-add against the zeroed register file.
    program.emit(Opcode.CADD, dst="out1", srcs=("r1", "zero"), rows=q_rows)
    return program


def expected_table2_calls(params: ParameterSet,
                          config: HardwareConfig) -> dict[Opcode, int]:
    """Call counts our compiler produces for one Mult (cf. paper Table II)."""
    components = params.k_q if config.use_hps else 2
    ntt = 8 + components
    intt = 6 + 2
    return {
        Opcode.NTT: ntt,
        Opcode.INTT: intt,
        Opcode.CMUL: 8 + 2 * components,
        Opcode.CADD: 2 + 2 * (components - 1) + 2,
        Opcode.REARRANGE: ntt + intt,
        Opcode.LIFT: 4,
        Opcode.SCALE: 3,
        Opcode.DIGIT: components,
        Opcode.LOAD_RLK: 0 if config.relin_key_on_chip else components,
    }
