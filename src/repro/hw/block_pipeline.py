"""Block-level pipeline simulation (paper Sec. V-B2, V-C).

The paper's lift and scale units are chains of blocks connected in a
block-level pipeline: block b has a latency (cycles from accepting a
coefficient to emitting it) and an initiation interval (cycles between
consecutive coefficients). The classic recurrence for the time
coefficient c leaves block b:

    finish(b, c) = max(finish(b-1, c),            # data dependency
                       finish(b, c-1) + ii_b)     # structural hazard
                   ... + latency adjustment

This module provides both an event-driven simulator of that recurrence
(:func:`simulate_block_pipeline`, used by tests on small counts) and the
closed form it converges to (:func:`pipeline_total_cycles`):

    total = sum(latencies) + (count - 1) * max(initiation intervals)

i.e. a fill of one full traversal plus steady-state issue at the
bottleneck block's rate — the structure behind the paper's "the maximum
throughput is determined by the slowest component in the pipeline".
"""

from __future__ import annotations

from ..errors import HardwareModelError


def simulate_block_pipeline(count: int, latencies: tuple[int, ...],
                            intervals: tuple[int, ...] | None = None
                            ) -> list[list[int]]:
    """Event-driven execution of the pipeline recurrence.

    Returns ``finish[c][b]``: the cycle in which coefficient c leaves
    block b. ``intervals`` defaults to the latencies (each block is busy
    for its full latency per coefficient, the paper's sequential blocks).
    """
    if count < 1:
        raise HardwareModelError("pipeline needs at least one coefficient")
    if intervals is None:
        intervals = latencies
    if len(intervals) != len(latencies):
        raise HardwareModelError("one initiation interval per block")
    blocks = len(latencies)
    finish = [[0] * blocks for _ in range(count)]
    for c in range(count):
        for b in range(blocks):
            ready = finish[c][b - 1] if b else 0
            busy_until = finish[c - 1][b] - latencies[b] + intervals[b] \
                if c else 0
            start = max(ready, busy_until)
            finish[c][b] = start + latencies[b]
    return finish


def pipeline_total_cycles(count: int, latencies: tuple[int, ...],
                          intervals: tuple[int, ...] | None = None) -> int:
    """Closed form of the recurrence (equal to the simulation's end).

    Valid when the bottleneck interval is at least every downstream
    block's... in general for monotone chains the fill is the sum of
    latencies and steady-state issue runs at the slowest block.
    """
    if intervals is None:
        intervals = latencies
    return sum(latencies) + (count - 1) * max(intervals)
