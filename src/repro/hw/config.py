"""Hardware configuration: the design parameters of the paper's coprocessor.

Defaults model the configuration the paper implements on the ZCU102:
200 MHz fabric clock, 7 RPAUs with two butterfly cores each, two HPS
lift cores and two HPS scale cores per coprocessor, and two coprocessors
per FPGA.

Where the paper gives first-principles structure (ports, core counts,
block throughputs), the model derives cycle counts from it. Two scalar
overheads are *calibrated* against the paper's own measurements and
documented as such:

* ``dispatch_overhead`` — software-to-hardware instruction dispatch,
  visible in the constant ~600-FPGA-cycle offset of every Table II row
  (the paper measures instruction timings from the Arm side);
* ``stage_sync_overhead`` — per-NTT-stage control/BRAM-turnaround gap on
  top of the datapath pipeline drain.

Every other number (issue cycles, fill/drain, batch counts) comes from
schedules the simulator actually executes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError


@dataclass(frozen=True)
class HardwareConfig:
    """Design parameters of one FPGA bitstream (paper Sec. V)."""

    # Clocks (paper Sec. VI-A).
    fpga_clock_hz: int = 200_000_000
    arm_clock_hz: int = 1_200_000_000
    dma_clock_hz: int = 250_000_000

    # Parallelism (paper Sec. V-A).
    num_rpaus: int = 7
    butterfly_cores_per_rpau: int = 2
    lift_cores: int = 2
    scale_cores: int = 2
    num_coprocessors: int = 2

    # Circuit-level pipeline depths (paper Sec. V-A4, Fig. 4): a butterfly
    # is a 30x30 DSP multiplier, the sliding-window reduction, and a
    # modular add/sub, all pipelined to reach 200 MHz.
    multiplier_stages: int = 4
    modred_stages: int = 6
    addsub_stages: int = 1
    pairing_lag: int = 2        # output re-pairing buffer of the NTT cores

    # Sliding-window modular reduction (paper Sec. V-A4).
    sliding_window_bits: int = 6

    # Block-level pipeline of the HPS lift/scale units (paper Sec. V-B2):
    # the bottleneck block produces one residue set per coefficient every
    # `hps_block_cycles` cycles (seven outputs, seven MACs).
    hps_block_cycles: int = 7

    # Algorithm selection: HPS (fast coprocessor) vs traditional CRT
    # (slow coprocessor of Sec. VI-C, which runs at 225 MHz with four
    # lift/scale cores and a two-component relinearisation key).
    use_hps: bool = True

    # Twiddle factors in on-chip ROM (Sec. V-A4). Disabling models the
    # ~20% bubble-cycle penalty the paper cites from prior work [20].
    twiddle_rom: bool = True
    twiddle_bubble_fraction: float = 0.20

    # Relinearisation keys streamed from DDR (the paper's configuration;
    # ~30% of Mult latency) or pinned on-chip (the "larger FPGA" what-if).
    relin_key_on_chip: bool = False

    # Calibrated overheads (see module docstring). With the structural
    # pipeline depth of 11 cycles and the schedule-derived pairing lags,
    # sync = 46 and dispatch = 600 land the modelled NTT instruction on
    # the paper's measured 87,582 Arm cycles (14,597 FPGA cycles).
    dispatch_overhead: int = 600
    stage_sync_overhead: int = 46

    def __post_init__(self) -> None:
        if self.num_rpaus < 1 or self.butterfly_cores_per_rpau not in (1, 2):
            raise ParameterError(
                "the memory layout supports one or two butterfly cores"
            )
        if self.lift_cores < 1 or self.scale_cores < 1:
            raise ParameterError("need at least one lift and one scale core")
        if self.sliding_window_bits < 1 or self.sliding_window_bits > 12:
            raise ParameterError("sliding window must be 1..12 bits")

    # -- derived quantities ------------------------------------------------------

    @property
    def butterfly_pipeline_depth(self) -> int:
        """Read-to-write latency of one butterfly (Fig. 4 datapath)."""
        return (self.multiplier_stages + self.modred_stages
                + self.addsub_stages)

    @property
    def ntt_stage_overhead(self) -> int:
        """Non-issue cycles per NTT stage: drain + control turnaround."""
        return (self.butterfly_pipeline_depth + self.pairing_lag
                + self.stage_sync_overhead)

    def fpga_cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.fpga_clock_hz

    def fpga_to_arm_cycles(self, cycles: int) -> int:
        """Convert FPGA cycles to the Arm-side counts the paper reports.

        Paper Sec. VI-A: "Cycle counts for various operations are measured
        from the software side reading the Arm processors' cycle-count
        register" — the Arm runs 6x faster than the fabric.
        """
        return round(cycles * self.arm_clock_hz / self.fpga_clock_hz)

    def batches_for(self, residue_count: int) -> int:
        """RPAU batches needed for `residue_count` parallel residue polys.

        The paper runs the six q-primes in one batch and the full
        thirteen-prime basis in two (Sec. V-A1).
        """
        return -(-residue_count // self.num_rpaus)


def slow_coprocessor_config() -> HardwareConfig:
    """The non-HPS design point of Sec. VI-C.

    225 MHz clock, traditional-CRT lift/scale with four cores each, and a
    two-component relinearisation key.
    """
    return replace(
        HardwareConfig(),
        fpga_clock_hz=225_000_000,
        use_hps=False,
        lift_cores=4,
        scale_cores=4,
    )
