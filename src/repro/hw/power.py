"""Power model (paper Sec. VI-C, last paragraph).

The paper measures, with the Xilinx Power Advantage Tool:

* 5.3 W static;
* +2.2 W dynamic while one coprocessor streams homomorphic
  multiplications (including the data transfers);
* +3.4 W dynamic with both coprocessors busy;
* peak 8.7 W, against ~40 W for the Intel i5 baseline under load.

The dual-core increment (+1.2 W) is smaller than the single-core one
(+2.2 W) because the DMA/interface/DDR path is shared: the model splits
dynamic power into a shared-infrastructure term and a per-active-
coprocessor term, which reproduces all three measurements exactly and
extrapolates to other core counts for the design-space discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HardwareConfig

STATIC_WATTS = 5.3
SHARED_DYNAMIC_WATTS = 1.0      # DMA + interface + DDR path, paid once
PER_COPROCESSOR_WATTS = 1.2     # RPAUs + lift/scale cores of one instance


@dataclass(frozen=True)
class PowerModel:
    """Activity-based power estimate for the Fig. 11 system."""

    config: HardwareConfig

    def static_watts(self) -> float:
        return STATIC_WATTS

    def dynamic_watts(self, active_coprocessors: int) -> float:
        if active_coprocessors <= 0:
            return 0.0
        active = min(active_coprocessors, self.config.num_coprocessors)
        return SHARED_DYNAMIC_WATTS + PER_COPROCESSOR_WATTS * active

    def total_watts(self, active_coprocessors: int) -> float:
        return self.static_watts() + self.dynamic_watts(active_coprocessors)

    def peak_watts(self) -> float:
        return self.total_watts(self.config.num_coprocessors)

    def energy_per_mult_joules(self, mult_seconds: float,
                               active_coprocessors: int = 1) -> float:
        """Energy attributable to one Mult (used in the efficiency bench)."""
        return self.total_watts(active_coprocessors) * mult_seconds
