"""Lift q->Q units (paper Figs. 5 and 6).

Two architectures, as implemented in the paper's design-space exploration:

* :class:`HpsLiftUnit` (Fig. 6) — the fast variant. Block-level pipeline
  of five blocks over 30-bit arithmetic; Block 2 (seven parallel MACs,
  each a six-term sum of products) bounds the throughput at
  ``hps_block_cycles`` (= 7) cycles per coefficient per core. The
  functional output reuses the *exact* fixed-point tables of
  :mod:`repro.rns.lift`, so the unit is bit-identical to the RTL's
  89-fractional-bit reciprocal datapath.
* :class:`TraditionalLiftUnit` (Fig. 5) — multi-precision CRT. The
  long-integer division block dominates; its throughput model is
  calibrated to the paper's measured 1.68 ms single-core Lift at 225 MHz
  (Sec. VI-C), i.e. ~92 cycles per coefficient.
"""

from __future__ import annotations

import numpy as np

from ..rns.basis import LiftContext
from ..rns.lift import lift_hps, lift_traditional
from .config import HardwareConfig

#: Pipeline fill of the Fig. 6 chain: five blocks, each handing off one
#: coefficient set every `hps_block_cycles` cycles.
HPS_LIFT_BLOCKS = 5

#: Per-block latencies of the Fig. 6 chain (paper Sec. V-B2): Block 1
#: computes the six x'_i "one by one taking six cycles"; Block 2's seven
#: MACs bound the chain at seven; Blocks 3-5 each emit their seven
#: residue results in seven cycles.
HPS_LIFT_BLOCK_LATENCIES = (6, 7, 7, 7, 7)

#: Calibrated throughput of the Fig. 5 long-integer pipeline (cycles per
#: coefficient, division-block bound; Sec. VI-C: 4096 coeff in 1.68 ms at
#: 225 MHz = 92 cycles/coeff).
TRADITIONAL_LIFT_CYCLES_PER_COEFF = 92


class HpsLiftUnit:
    """The Fig. 6 lift core cluster (``config.lift_cores`` parallel cores)."""

    def __init__(self, context: LiftContext, config: HardwareConfig) -> None:
        self.context = context
        self.config = config

    @property
    def cores(self) -> int:
        return self.config.lift_cores

    def run(self, residues: np.ndarray) -> tuple[np.ndarray, int]:
        """Lift a residue matrix; returns (target residues, FPGA cycles)."""
        result = lift_hps(self.context, residues)
        return result, self.cycles(residues.shape[1])

    def cycles(self, n: int) -> int:
        """Block-pipeline model: issue-bound by Block 2's MAC schedule.

        The closed form is validated against the event-driven pipeline
        recurrence in the tests (`repro.hw.block_pipeline`).
        """
        from .block_pipeline import pipeline_total_cycles

        per_core = -(-n // self.cores)
        return pipeline_total_cycles(per_core, self.block_latencies())

    def block_latencies(self) -> tuple[int, ...]:
        """Fig. 6 per-block latencies with the configured bottleneck."""
        bottleneck = self.config.hps_block_cycles
        return (6, bottleneck, bottleneck, bottleneck, bottleneck)

    # -- structural figures (resource model) ---------------------------------------

    @property
    def mac_count(self) -> int:
        """Block 2 keeps one MAC per output residue (7 in the paper)."""
        return len(self.context.target_primes)

    @property
    def constant_rom_words(self) -> int:
        """30-bit ROM words: q~_i, q*_i mod t_j table, reciprocals, q mod t_j."""
        k = self.context.source.size
        targets = len(self.context.target_primes)
        return k + k * targets + 2 * k + targets


class TraditionalLiftUnit:
    """The Fig. 5 multi-precision lift core cluster."""

    def __init__(self, context: LiftContext, config: HardwareConfig) -> None:
        self.context = context
        self.config = config

    @property
    def cores(self) -> int:
        return self.config.lift_cores

    def run(self, residues: np.ndarray) -> tuple[np.ndarray, int]:
        result = lift_traditional(self.context, residues)
        return result, self.cycles(residues.shape[1])

    def cycles(self, n: int) -> int:
        per_core = -(-n // self.cores)
        return per_core * TRADITIONAL_LIFT_CYCLES_PER_COEFF

    @property
    def long_multiplier_limbs(self) -> int:
        """Limb width of the long-integer datapath (6 x 30-bit for q)."""
        return self.context.source.size
