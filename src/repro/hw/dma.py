"""DMA / AXI transfer-time model (paper Sec. V-D, Table III).

The paper moves ciphertexts between DDR and the coprocessor's BRAMs with
a 250 MHz DMA and finds that one contiguous burst per R_q polynomial
(98,304 bytes) is fastest — Table III quantifies the chunking penalty.

Model: each chunk costs a descriptor/re-arm overhead plus its payload at
the effective AXI bandwidth; a whole transfer job additionally pays an
Arm-side setup cost. Parameters are fitted to the paper's own
measurements (the fit and its residuals are documented in
EXPERIMENTS.md; the 16 KiB-chunk row lands ~24% low, every other row
within 4%):

* single transfer of 98,304 B = 76 us  -> effective bandwidth 1.316 GB/s
  (5.27 bytes/cycle at 250 MHz, i.e. a 64-bit AXI stream at ~66%
  efficiency);
* 96 chunks of 1,024 B = 202 us        -> 331 DMA cycles (~1.33 us) of
  per-chunk overhead;
* job setup measured from Table I (send two ciphertexts = 4 polynomial
  bursts in 362 us) -> ~14.4 us of Arm-side setup per burst.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..utils import chunks
from .config import HardwareConfig


@dataclass(frozen=True)
class DmaModel:
    """Parametric transfer-time model for the Fig. 11 DMA path."""

    config: HardwareConfig
    axi_bytes_per_beat: int = 8
    axi_efficiency: float = 0.658
    per_chunk_overhead_cycles: int = 331   # DMA-clock cycles
    arm_setup_seconds: float = 14.4e-6     # per transfer job

    @property
    def bytes_per_second(self) -> float:
        return (self.config.dma_clock_hz * self.axi_bytes_per_beat
                * self.axi_efficiency)

    # -- raw transfers --------------------------------------------------------------

    def transfer_seconds(self, total_bytes: int,
                         chunk_bytes: int | None = None) -> float:
        """DMA-engine time for one transfer, optionally chunked (Table III)."""
        if total_bytes <= 0:
            raise ParameterError("transfer size must be positive")
        if chunk_bytes is None:
            chunk_bytes = total_bytes
        pieces = chunks(total_bytes, chunk_bytes)
        overhead = len(pieces) * (self.per_chunk_overhead_cycles
                                  / self.config.dma_clock_hz)
        payload = total_bytes / self.bytes_per_second
        return overhead + payload

    def transfer_arm_cycles(self, total_bytes: int,
                            chunk_bytes: int | None = None) -> int:
        """The Arm-cycle counts of Table III."""
        seconds = self.transfer_seconds(total_bytes, chunk_bytes)
        return round(seconds * self.config.arm_clock_hz)

    def transfer_fpga_cycles(self, total_bytes: int,
                             chunk_bytes: int | None = None) -> int:
        seconds = self.transfer_seconds(total_bytes, chunk_bytes)
        return round(seconds * self.config.fpga_clock_hz)

    # -- ciphertext jobs (Table I rows) --------------------------------------------

    def polynomial_job_seconds(self, poly_bytes: int, count: int) -> float:
        """Send/receive `count` polynomials, one burst + setup each."""
        per_poly = self.transfer_seconds(poly_bytes) + self.arm_setup_seconds
        return count * per_poly

    def send_ciphertexts_seconds(self, poly_bytes: int,
                                 num_ciphertexts: int) -> float:
        """Table I 'Send two ciphertexts to HW' with num_ciphertexts = 2."""
        return self.polynomial_job_seconds(poly_bytes, 2 * num_ciphertexts)

    def receive_ciphertext_seconds(self, poly_bytes: int) -> float:
        """Table I 'Receive result ciphertext from HW'."""
        return self.polynomial_job_seconds(poly_bytes, 2)
