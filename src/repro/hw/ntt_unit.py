"""Dual-core NTT engine with the paper's Fig. 3 memory access scheme.

This module turns the paper's prose and Fig. 3 into executable structure:

* :class:`NttSchedule` generates, for every stage, the exact per-cycle
  word addresses each butterfly core reads and writes — sequential and
  block-exclusive while the re-pairing distance stays inside a block,
  the *order-inverted alternation* at the second-to-last stage (the trick
  the paper introduces to avoid conflicts at m = 2048), and the
  in-place final stage executed "one memory word at a time".
* :class:`DualCoreNttUnit` executes that schedule against the paired-word
  BRAM model in two modes: ``strict`` walks cycle by cycle through the
  port-checked BRAM blocks (used by tests on small rings, proving
  conflict-freedom and the paired-operand invariant), ``fast`` executes
  stage-vectorised with numpy (used for n = 4096) — both produce
  bit-identical results and identical cycle counts.

Index bookkeeping (derived in DESIGN.md): at entry of stage s
(butterflies pair indices differing in bit s-1), coefficient index i
lives in word ``drop_bit(i, s-1)`` at slot ``bit(i, s-1)``. Stage-s
writes re-pair outputs for stage s+1: index i moves to word
``drop_bit(i, s)``, slot ``bit(i, s)``. The re-pairing partner of word w
is ``w XOR 2^(s-1)`` — inside one block while 2^(s-1) < W/2, across
blocks exactly at the second-to-last stage, absent at the last stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import HardwareModelError
from ..nttmath.ntt import NegacyclicTransformer
from ..utils import log2_exact
from .bram import PairedPolyMemory
from .butterfly import ButterflyCore
from .config import HardwareConfig


def _drop_bit(value: int, bit: int) -> int:
    """Remove bit position `bit` from `value`, closing the gap."""
    high = value >> (bit + 1)
    low = value & ((1 << bit) - 1)
    return (high << bit) | low


def _insert_zero(value: int, bit: int) -> int:
    """Inverse of :func:`_drop_bit` with a zero at position `bit`."""
    high = value >> bit
    low = value & ((1 << bit) - 1)
    return (high << (bit + 1)) | low


@dataclass(frozen=True)
class StageAccess:
    """One stage's schedule: per-core read and write address sequences.

    ``reads[c]`` / ``writes[c]`` list (cycle, word) tuples for core c.
    ``pair_lag`` is the distance (in issue cycles) between re-pairing
    partners, which sets when the write stream can start.
    """

    stage: int
    reads: tuple[tuple[tuple[int, int], ...], ...]
    writes: tuple[tuple[tuple[int, int], ...], ...]
    pair_lag: int
    issue_cycles: int

    def span(self, pipeline_depth: int) -> int:
        """Total cycles from first read to last write of the stage."""
        return self.issue_cycles + self.pair_lag + pipeline_depth


class NttSchedule:
    """Fig. 3 schedule generator for a ring of degree n with 1 or 2 cores."""

    def __init__(self, n: int, cores: int = 2) -> None:
        self.n = n
        self.log_n = log2_exact(n)
        if n < 8:
            raise HardwareModelError("schedule needs degree >= 8")
        if cores not in (1, 2):
            raise HardwareModelError("schedule supports one or two cores")
        self.cores = cores
        self.words = n // 2
        self.block = self.words // 2  # boundary between lower/upper block

    # -- placement algebra -----------------------------------------------------------

    def word_of(self, index: int, stage: int) -> int:
        return _drop_bit(index, stage - 1)

    def slot_of(self, index: int, stage: int) -> int:
        return (index >> (stage - 1)) & 1

    def butterfly_indices(self, word: int, stage: int) -> tuple[int, int]:
        """Coefficient indices stored (slot0, slot1) in `word` at `stage`."""
        i0 = _insert_zero(word, stage - 1)
        return i0, i0 | (1 << (stage - 1))

    def dest_of(self, index: int, stage: int) -> tuple[int, int]:
        """(word, slot) where `index` lands after stage `stage`."""
        if stage == self.log_n:
            # Final stage writes in place; the exit placement keeps the
            # operand pair (i, i + n/2) in its word.
            return _drop_bit(index, stage - 1), (index >> (stage - 1)) & 1
        return _drop_bit(index, stage), (index >> stage) & 1

    def twiddle_exponent(self, word: int, stage: int) -> int:
        """Exponent j of w_m^j for the butterfly housed at `word`."""
        i0, _ = self.butterfly_indices(word, stage)
        return i0 & ((1 << (stage - 1)) - 1)

    # -- stage classification ----------------------------------------------------------

    def is_interleave_stage(self, stage: int) -> bool:
        """The one stage whose re-pairing partner crosses the block split."""
        return stage == self.log_n - 1

    def pair_lag(self, stage: int) -> int:
        if stage == self.log_n:
            return 0
        if self.is_interleave_stage(stage):
            return 1
        return 1 << (stage - 1)

    # -- read/write orders -------------------------------------------------------------

    def read_order(self, stage: int) -> list[list[int]]:
        """Per-core word address sequence (one address per issue cycle)."""
        words, block = self.words, self.block
        if self.cores == 1:
            if self.is_interleave_stage(stage):
                # Alternate blocks so re-pairing partners are adjacent in
                # time (same trick as the dual-core order, single stream).
                order = []
                for c in range(words // 2):
                    order.append(c)
                    order.append(block + c)
                return [order]
            return [list(range(words))]
        if self.is_interleave_stage(stage):
            # Fig. 3, m = 2048: both cores touch both blocks, the second
            # core with the access order inverted (upper first).
            quarter = words // 4
            core0, core1 = [], []
            for c in range(quarter):
                core0.append(c)                      # lower
                core0.append(block + c)              # upper
                core1.append(block + quarter + c)    # upper (inverted order)
                core1.append(quarter + c)            # lower
            return [core0, core1]
        # Block-exclusive stages (m <= 1024 and the final m = 4096).
        return [list(range(block)), list(range(block, words))]

    def write_order(self, stage: int) -> list[list[int]]:
        """Per-core write address sequence ("same pattern" as reads).

        Derived in the module docstring: for block-exclusive stages the
        destination words of sequentially processed butterflies are again
        sequential; at the interleave stage each core alternates
        lower/upper (mirroring its read alternation); the last stage
        writes in place.
        """
        words, block = self.words, self.block
        if self.cores == 1:
            if self.is_interleave_stage(stage):
                order = []
                for c in range(words // 2):
                    order.append(c)
                    order.append(block + c)
                return [order]
            return [list(range(words))]
        if self.is_interleave_stage(stage):
            quarter = words // 4
            core0, core1 = [], []
            for c in range(quarter):
                core0.append(c)                      # u-pair, lower
                core0.append(block + c)              # t-pair, upper
                core1.append(block + quarter + c)    # t-pair, upper
                core1.append(quarter + c)            # u-pair, lower
            return [core0, core1]
        return [list(range(block)), list(range(block, words))]

    def stage_access(self, stage: int, pipeline_depth: int) -> StageAccess:
        """Full cycle-stamped schedule of one stage."""
        reads = self.read_order(stage)
        writes = self.write_order(stage)
        lag = self.pair_lag(stage)
        issue = len(reads[0])
        stamped_reads = tuple(
            tuple((cycle, word) for cycle, word in enumerate(order))
            for order in reads
        )
        start = lag + pipeline_depth
        stamped_writes = tuple(
            tuple((start + cycle, word) for cycle, word in enumerate(order))
            for order in writes
        )
        return StageAccess(
            stage=stage,
            reads=stamped_reads,
            writes=stamped_writes,
            pair_lag=lag,
            issue_cycles=issue,
        )

    def total_cycles(self, pipeline_depth: int, sync_overhead: int,
                     bubble_fraction: float = 0.0) -> int:
        """Cycle count of a full transform under this schedule."""
        total = 0
        for stage in range(1, self.log_n + 1):
            issue = self.words // self.cores
            if bubble_fraction:
                issue = int(round(issue * (1.0 + bubble_fraction)))
            total += issue + self.pair_lag(stage) + pipeline_depth
            total += sync_overhead
        return total


class DualCoreNttUnit:
    """Executable NTT engine for one residue ring (one RPAU channel)."""

    def __init__(self, n: int, modulus: int, config: HardwareConfig) -> None:
        self.n = n
        self.modulus = modulus
        self.config = config
        self.cores = config.butterfly_cores_per_rpau
        self.schedule = NttSchedule(n, self.cores)
        self.memory = PairedPolyMemory(n)
        self.butterflies = [
            ButterflyCore(modulus, config) for _ in range(self.cores)
        ]
        self.transformer = NegacyclicTransformer(n, modulus)
        self._depth = self.butterflies[0].pipeline_depth

    # -- cycle model ------------------------------------------------------------------

    def transform_cycles(self) -> int:
        bubble = 0.0 if self.config.twiddle_rom else (
            self.config.twiddle_bubble_fraction
        )
        return self.schedule.total_cycles(
            self._depth, self.config.stage_sync_overhead, bubble,
        )

    def scale_pass_cycles(self) -> int:
        """Final multiply-by-(n^-1 psi^-i) pass of the inverse transform.

        Each core owns one block and has one multiplier: two coefficients
        per word means one word per two cycles, so n / cores issue cycles.
        """
        issue = self.n // self.cores
        return issue + self._depth + self.config.stage_sync_overhead

    # -- strict executor ---------------------------------------------------------------

    def run_strict(self, coeffs: np.ndarray,
                   inverse: bool = False) -> tuple[np.ndarray, int]:
        """Cycle-by-cycle execution with BRAM port checking.

        Intended for small rings in tests; proves the schedule conflict-
        free and the paired-operand invariant, and that the cycle count
        matches the analytic model used by :meth:`run_fast`.
        """
        n, modulus = self.n, self.modulus
        values = np.asarray(coeffs, dtype=np.int64) % modulus
        if values.shape != (n,):
            raise HardwareModelError(f"expected {n} coefficients")
        if inverse:
            work = values.copy()
            tables = self.transformer.inverse_tables
        else:
            work = (values * self.transformer.psi_powers) % modulus
            tables = self.transformer.forward_tables
        # Load in bit-reversed stage-1 placement (cost carried by the
        # Memory Rearrange instruction at the coprocessor level).
        self._load_stage1(work)
        total_cycles = 0
        for stage in range(1, self.schedule.log_n + 1):
            total_cycles += self._run_stage_strict(stage, tables[stage - 1])
            total_cycles += self.config.stage_sync_overhead
        result = self._unload_final()
        if inverse:
            post = (self.transformer.inv_n
                    * self.transformer.inv_psi_powers) % modulus
            result = (result * post) % modulus
            total_cycles += self.scale_pass_cycles()
        return result, total_cycles

    def _load_stage1(self, values: np.ndarray) -> None:
        from ..nttmath.bitrev import bit_reverse_indices

        rev = bit_reverse_indices(self.n)
        permuted = values[rev]
        pairs = permuted.reshape(self.schedule.words, 2)
        self.memory.load_pairs(pairs)
        self.memory.reset_ports()

    def _unload_final(self) -> np.ndarray:
        pairs = self.memory.dump_pairs()
        out = np.empty(self.n, dtype=np.int64)
        out[: self.schedule.words] = pairs[:, 0]
        out[self.schedule.words:] = pairs[:, 1]
        return out

    def _run_stage_strict(self, stage: int, twiddles: np.ndarray) -> int:
        schedule = self.schedule
        access = schedule.stage_access(stage, self._depth)
        # Pending word contents keyed by destination address.
        pending: dict[int, dict] = {}
        results: dict[int, tuple[int, int]] = {}
        ready: dict[int, int] = {}
        for core_idx in range(self.cores):
            core = self.butterflies[core_idx]
            for cycle, word in access.reads[core_idx]:
                u, t = self.memory.read_word(word, cycle)
                i0, i1 = schedule.butterfly_indices(word, stage)
                exponent = schedule.twiddle_exponent(word, stage)
                hi, lo = core.compute(u, t, int(twiddles[exponent]))
                for index, value in ((i0, hi), (i1, lo)):
                    dest, slot = schedule.dest_of(index, stage)
                    entry = pending.setdefault(dest, {})
                    entry[slot] = value
                    if len(entry) == 2:
                        results[dest] = (entry[0], entry[1])
                        ready[dest] = cycle + self._depth
        self.memory.reset_ports()
        last_cycle = 0
        for core_idx in range(self.cores):
            for cycle, word in access.writes[core_idx]:
                if word not in results:
                    raise HardwareModelError(
                        f"schedule writes word {word} with incomplete pair"
                    )
                if cycle < ready[word]:
                    raise HardwareModelError(
                        f"write of word {word} at cycle {cycle} precedes "
                        f"data readiness at {ready[word]}"
                    )
                self.memory.write_word(word, results.pop(word), cycle)
                last_cycle = max(last_cycle, cycle)
        if results:
            raise HardwareModelError(
                f"{len(results)} computed words never written"
            )
        self.memory.reset_ports()
        span = access.span(self._depth)
        if last_cycle + 1 != span:
            raise HardwareModelError(
                f"stage {stage}: schedule span {last_cycle + 1} != analytic "
                f"span {span}"
            )
        return span

    # -- fast executor -----------------------------------------------------------------

    def run_fast(self, coeffs: np.ndarray,
                 inverse: bool = False) -> tuple[np.ndarray, int]:
        """Stage-vectorised execution; same results and cycles as strict.

        Uses the same placement algebra to walk the stages over the
        paired-word layout, but computes each stage's butterflies with one
        vectorised operation.
        """
        n, modulus = self.n, self.modulus
        schedule = self.schedule
        values = np.asarray(coeffs, dtype=np.int64) % modulus
        if values.shape != (n,):
            raise HardwareModelError(f"expected {n} coefficients")
        if inverse:
            work = values.copy()
            tables = self.transformer.inverse_tables
        else:
            work = (values * self.transformer.psi_powers) % modulus
            tables = self.transformer.forward_tables
        from ..nttmath.bitrev import bit_reverse_indices

        pairs = work[bit_reverse_indices(n)].reshape(schedule.words, 2)
        words = np.arange(schedule.words, dtype=np.int64)
        core = self.butterflies[0]
        cycles = 0
        for stage in range(1, schedule.log_n + 1):
            twiddles = tables[stage - 1]
            i0 = self._expand_vec(words, stage)
            exponent = i0 & ((1 << (stage - 1)) - 1)
            hi, lo = core.compute_many(
                pairs[:, 0], pairs[:, 1], twiddles[exponent]
            )
            if stage == schedule.log_n:
                pairs = np.stack([hi, lo], axis=1)
            else:
                new_pairs = np.empty_like(pairs)
                i1 = i0 | (1 << (stage - 1))
                for index_vec, value_vec in ((i0, hi), (i1, lo)):
                    dest = self._drop_vec(index_vec, stage)
                    slot = (index_vec >> stage) & 1
                    new_pairs[dest, slot] = value_vec
                pairs = new_pairs
            issue = schedule.words // schedule.cores
            if not self.config.twiddle_rom:
                issue = int(round(
                    issue * (1.0 + self.config.twiddle_bubble_fraction)
                ))
            cycles += (issue + schedule.pair_lag(stage) + self._depth
                       + self.config.stage_sync_overhead)
        out = np.empty(n, dtype=np.int64)
        out[: schedule.words] = pairs[:, 0]
        out[schedule.words:] = pairs[:, 1]
        if inverse:
            post = (self.transformer.inv_n
                    * self.transformer.inv_psi_powers) % modulus
            out = (out * post) % modulus
            cycles += self.scale_pass_cycles()
        return out, cycles

    @staticmethod
    def _drop_vec(values: np.ndarray, bit: int) -> np.ndarray:
        high = values >> (bit + 1)
        low = values & ((1 << bit) - 1)
        return (high << bit) | low

    @staticmethod
    def _expand_vec(words: np.ndarray, stage: int) -> np.ndarray:
        bit = stage - 1
        high = words >> bit
        low = words & ((1 << bit) - 1)
        return (high << (bit + 1)) | low
