"""Cycle-trace capture and Fig. 3 rendering for the NTT unit.

Two consumers:

* debugging / teaching: :class:`NttTrace` records every read and write
  the schedule performs (cycle, core, port, block, address) so a failing
  configuration can be inspected like a waveform;
* the Fig. 3 bench: :func:`render_fig3` draws the paper's three-regime
  access-pattern figure as text from the recorded trace, so the figure
  is literally regenerated from executed schedule data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ntt_unit import NttSchedule


@dataclass(frozen=True)
class TraceEvent:
    """One port access of one core in one cycle."""

    stage: int
    cycle: int
    core: int
    kind: str          # "R" or "W"
    word: int

    def block(self, block_boundary: int) -> str:
        return "upper" if self.word >= block_boundary else "lower"


@dataclass
class NttTrace:
    """Recorded access trace of a full transform schedule."""

    n: int
    cores: int
    events: list[TraceEvent] = field(default_factory=list)

    @classmethod
    def capture(cls, n: int, cores: int = 2,
                pipeline_depth: int = 11) -> NttTrace:
        schedule = NttSchedule(n, cores)
        trace = cls(n=n, cores=cores)
        for stage in range(1, schedule.log_n + 1):
            access = schedule.stage_access(stage, pipeline_depth)
            for core, stamped in enumerate(access.reads):
                for cycle, word in stamped:
                    trace.events.append(
                        TraceEvent(stage, cycle, core, "R", word)
                    )
            for core, stamped in enumerate(access.writes):
                for cycle, word in stamped:
                    trace.events.append(
                        TraceEvent(stage, cycle, core, "W", word)
                    )
        return trace

    def stage_events(self, stage: int,
                     kind: str | None = None) -> list[TraceEvent]:
        return [
            e for e in self.events
            if e.stage == stage and (kind is None or e.kind == kind)
        ]

    def port_occupancy(self, stage: int) -> dict[tuple[int, str, str], int]:
        """Accesses per (cycle, kind, block) — must never exceed one."""
        boundary = self.n // 4
        occupancy: dict[tuple[int, str, str], int] = {}
        for event in self.stage_events(stage):
            key = (event.cycle, event.kind, event.block(boundary))
            occupancy[key] = occupancy.get(key, 0) + 1
        return occupancy

    def verify_port_limits(self) -> None:
        """Raise AssertionError if any block port is double-booked."""
        log_n = self.n.bit_length() - 1
        for stage in range(1, log_n + 1):
            for key, count in self.port_occupancy(stage).items():
                assert count <= 1, f"stage {stage}: port collision at {key}"


def render_fig3(n: int = 4096, head: int = 3) -> str:
    """Draw the paper's Fig. 3 from a captured schedule trace.

    For each of the figure's regimes, prints the first ``head`` read
    addresses of both cores, annotated with the index gap, in the layout
    of the paper's caption.
    """
    schedule = NttSchedule(n, 2)
    log_n = schedule.log_n
    shown_stages = [1, log_n - 2, log_n - 1, log_n]
    lines = [f"Memory access during two-core NTT (n = {n})", ""]
    for stage in shown_stages:
        m = 2 << (stage - 1)
        gap = m // 2
        reads = schedule.read_order(stage)
        seq0 = ", ".join(str(w) for w in reads[0][: 2 * head])
        seq1 = ", ".join(str(w) for w in reads[1][: 2 * head])
        lines.append(f"Iteration m = {m}   (index gap = {gap})")
        lines.append(f"  core 1 reads: {seq0}, ...")
        lines.append(f"  core 2 reads: {seq1}, ...")
        if schedule.is_interleave_stage(stage):
            lines.append("  (order of the second core inverted to avoid "
                         "block conflicts — paper Sec. V-A3)")
        lines.append("")
    return "\n".join(lines)
