"""Structural FPGA resource estimator (paper Table IV).

The estimate is built bottom-up from instance counts — the same structure
the Verilog has — times per-leaf costs:

* DSP and BRAM counts are *derived*: a pipelined 30x30 multiplier is four
  DSP48E2 slices, a 30x60 reciprocal multiplier eight; BRAM counts come
  from the memory map (:mod:`repro.hw.memory_file`) and the twiddle ROMs.
* LUT/FF leaf constants cannot be derived without synthesis; they are
  calibrated once against the paper's Vivado totals (63,522 LUT /
  25,622 FF per coprocessor) and documented below. Because the totals are
  structural sums, changing core counts (the design-space knobs of
  Sec. VII) moves the estimate the way the real design would move.

ZCU102 device capacity (XCZU9EG) is included so the utilisation
percentages of Table IV can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import ParameterSet
from .config import HardwareConfig
from .datapath import DSP_PER_30X30, DSP_PER_30X60
from .memory_file import MemoryFile

# XCZU9EG (ZCU102) capacity.
ZCU102_LUTS = 274_080
ZCU102_REGS = 548_160
ZCU102_BRAM36 = 912
ZCU102_DSPS = 2_520

# Calibrated LUT/FF leaf costs (see module docstring).
LUT_PER_BUTTERFLY = 2_000
FF_PER_BUTTERFLY = 800
LUT_PER_RPAU_CONTROL = 1_200
FF_PER_RPAU_CONTROL = 400
LUT_PER_HPS_LIFT_CORE = 6_500
FF_PER_HPS_LIFT_CORE = 2_600
LUT_PER_HPS_SCALE_CORE = 5_000
FF_PER_HPS_SCALE_CORE = 2_000
LUT_PER_TRAD_CORE = 9_000      # long-integer datapaths are LUT-hungry
FF_PER_TRAD_CORE = 3_600
LUT_TOP_CONTROL = 5_000
FF_TOP_CONTROL = 2_000
LUT_INTERFACE = 6_648          # DMA + interfacing units (Fig. 11)
FF_INTERFACE = 9_068
BRAM_INTERFACE = 39
DSP_INTERFACE = 0


@dataclass(frozen=True)
class Utilization:
    """One row of Table IV."""

    luts: int
    regs: int
    bram36: int
    dsps: int

    def percentages(self) -> dict[str, float]:
        return {
            "luts": 100.0 * self.luts / ZCU102_LUTS,
            "regs": 100.0 * self.regs / ZCU102_REGS,
            "bram36": 100.0 * self.bram36 / ZCU102_BRAM36,
            "dsps": 100.0 * self.dsps / ZCU102_DSPS,
        }

    def __add__(self, other: Utilization) -> Utilization:
        return Utilization(
            self.luts + other.luts, self.regs + other.regs,
            self.bram36 + other.bram36, self.dsps + other.dsps,
        )

    def scaled(self, factor: int) -> Utilization:
        return Utilization(self.luts * factor, self.regs * factor,
                           self.bram36 * factor, self.dsps * factor)


class ResourceEstimator:
    """Bottom-up resource model for one bitstream configuration."""

    def __init__(self, params: ParameterSet,
                 config: HardwareConfig | None = None) -> None:
        self.params = params
        self.config = config or HardwareConfig()
        self.memory = MemoryFile(params, self.config)

    # -- per-subsystem estimates ----------------------------------------------------

    def butterfly_count(self) -> int:
        num_rpaus = min(self.config.num_rpaus,
                        max(self.params.k_q, self.params.k_p))
        return num_rpaus * self.config.butterfly_cores_per_rpau

    def rpau_utilization(self) -> Utilization:
        num_rpaus = min(self.config.num_rpaus,
                        max(self.params.k_q, self.params.k_p))
        butterflies = self.butterfly_count()
        return Utilization(
            luts=(butterflies * LUT_PER_BUTTERFLY
                  + num_rpaus * LUT_PER_RPAU_CONTROL),
            regs=(butterflies * FF_PER_BUTTERFLY
                  + num_rpaus * FF_PER_RPAU_CONTROL),
            bram36=0,  # counted by the memory file
            dsps=butterflies * DSP_PER_30X30,
        )

    def lift_utilization(self) -> Utilization:
        k_p = self.params.k_p
        if self.config.use_hps:
            # Fig. 6: Block 1 MAC, Block 2 one MAC per output residue,
            # Block 3 the 30x60 reciprocal multiplier, Block 4 one MAC.
            dsps_per_core = ((1 + k_p + 1) * DSP_PER_30X30 + DSP_PER_30X60)
            lut, ff = LUT_PER_HPS_LIFT_CORE, FF_PER_HPS_LIFT_CORE
        else:
            # Fig. 5: one long-integer multiplier tiled from 30x30 blocks
            # plus the division-by-reciprocal datapath.
            limbs = self.params.k_q
            dsps_per_core = 2 * limbs * DSP_PER_30X30
            lut, ff = LUT_PER_TRAD_CORE, FF_PER_TRAD_CORE
        cores = self.config.lift_cores
        return Utilization(luts=cores * lut, regs=cores * ff, bram36=0,
                           dsps=cores * dsps_per_core)

    def scale_utilization(self) -> Utilization:
        k_p = self.params.k_p
        if self.config.use_hps:
            # Fig. 9 front blocks: the fractional accumulator (30x60), one
            # MAC per output residue for the integer SoP, the own-channel
            # MAC. The back-end reuses the lift datapath.
            dsps_per_core = (DSP_PER_30X60 + k_p * DSP_PER_30X30
                             + DSP_PER_30X30)
            lut, ff = LUT_PER_HPS_SCALE_CORE, FF_PER_HPS_SCALE_CORE
        else:
            limbs = self.params.k_total
            dsps_per_core = 2 * limbs * DSP_PER_30X30
            lut, ff = LUT_PER_TRAD_CORE, FF_PER_TRAD_CORE
        cores = self.config.scale_cores
        return Utilization(luts=cores * lut, regs=cores * ff, bram36=0,
                           dsps=cores * dsps_per_core)

    def memory_utilization(self) -> Utilization:
        return Utilization(luts=0, regs=0,
                           bram36=self.memory.total_bram36k(), dsps=0)

    def control_utilization(self) -> Utilization:
        return Utilization(luts=LUT_TOP_CONTROL, regs=FF_TOP_CONTROL,
                           bram36=0, dsps=0)

    # -- Table IV rows -----------------------------------------------------------------

    def single_coprocessor(self) -> Utilization:
        return (self.rpau_utilization() + self.lift_utilization()
                + self.scale_utilization() + self.memory_utilization()
                + self.control_utilization())

    def interface(self) -> Utilization:
        return Utilization(LUT_INTERFACE, FF_INTERFACE, BRAM_INTERFACE,
                           DSP_INTERFACE)

    def full_design(self) -> Utilization:
        return (self.single_coprocessor()
                .scaled(self.config.num_coprocessors)
                + self.interface())

    def breakdown(self) -> dict[str, Utilization]:
        return {
            "rpaus": self.rpau_utilization(),
            "lift_cores": self.lift_utilization(),
            "scale_cores": self.scale_utilization(),
            "memory_file": self.memory_utilization(),
            "control": self.control_utilization(),
            "single_coprocessor": self.single_coprocessor(),
            "interface": self.interface(),
            "full_design": self.full_design(),
        }
