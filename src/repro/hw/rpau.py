"""Residue Polynomial Arithmetic Unit (paper Sec. V-A).

One RPAU serves one or two RNS primes (the paper pairs q_i with q_{i+6}
so seven RPAUs cover thirteen primes, Sec. V-A1). It bundles two
butterfly cores, the paired-word BRAM bank, and the coefficient-wise
datapaths. Instructions execute on *all* RPAUs of a batch in parallel, so
the instruction latency equals one RPAU's latency; the coprocessor holds
one :class:`Rpau` per hardware unit and routes residue rows to them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import HardwareModelError
from .config import HardwareConfig
from .ntt_unit import DualCoreNttUnit


class Rpau:
    """One residue polynomial arithmetic unit (paper Fig. 10, 'RPAU').

    ``strict=True`` routes every transform through the cycle-by-cycle,
    BRAM-port-checked executor instead of the vectorised one — identical
    results and cycle counts by construction (proven by the NTT unit
    tests), but every memory access of every instruction is then
    individually validated. Used by the end-to-end strict-mode tests on
    small rings.
    """

    def __init__(self, index: int, n: int, primes: tuple[int, ...],
                 config: HardwareConfig, strict: bool = False) -> None:
        if len(primes) not in (1, 2):
            raise HardwareModelError(
                "an RPAU is resource-shared by at most two primes"
            )
        self.index = index
        self.n = n
        self.primes = primes
        self.config = config
        self.strict = strict
        self._ntt_units = {
            prime: DualCoreNttUnit(n, prime, config) for prime in primes
        }

    def ntt_unit(self, prime: int) -> DualCoreNttUnit:
        if prime not in self._ntt_units:
            raise HardwareModelError(
                f"RPAU {self.index} does not serve prime {prime}"
            )
        return self._ntt_units[prime]

    # -- transforms ----------------------------------------------------------------

    def ntt(self, prime: int, row: np.ndarray) -> tuple[np.ndarray, int]:
        unit = self.ntt_unit(prime)
        if self.strict:
            return unit.run_strict(row, inverse=False)
        return unit.run_fast(row, inverse=False)

    def intt(self, prime: int, row: np.ndarray) -> tuple[np.ndarray, int]:
        unit = self.ntt_unit(prime)
        if self.strict:
            return unit.run_strict(row, inverse=True)
        return unit.run_fast(row, inverse=True)

    # -- coefficient-wise instruction datapaths ---------------------------------------
    #
    # Two coefficients per memory word; the two butterfly cores provide two
    # multipliers/adders, so the issue rate is one word (two coefficients)
    # per cycle: n/2 issue cycles per residue polynomial.

    def cmul_cycles(self) -> int:
        depth = self._ntt_units[self.primes[0]].butterflies[0].pipeline_depth
        return (self.n // 2) + depth + self.config.stage_sync_overhead

    def cadd_cycles(self) -> int:
        return ((self.n // 2) + self.config.addsub_stages
                + self.config.stage_sync_overhead)

    def rearrange_cycles(self) -> int:
        """Layout conversion (bit-reversal / pairing): one coefficient per
        cycle through the single permutation write port."""
        depth = self._ntt_units[self.primes[0]].butterflies[0].pipeline_depth
        return self.n + depth + self.config.stage_sync_overhead

    def cmul(self, prime: int, a: np.ndarray,
             b: np.ndarray) -> tuple[np.ndarray, int]:
        return (a * b) % prime, self.cmul_cycles()

    def cadd(self, prime: int, a: np.ndarray,
             b: np.ndarray) -> tuple[np.ndarray, int]:
        return (a + b) % prime, self.cadd_cycles()

    def csub(self, prime: int, a: np.ndarray,
             b: np.ndarray) -> tuple[np.ndarray, int]:
        return (a - b) % prime, self.cadd_cycles()

    def cmul_scalar(self, prime: int, a: np.ndarray,
                    scalar: int) -> tuple[np.ndarray, int]:
        return (a * (scalar % prime)) % prime, self.cmul_cycles()


@lru_cache(maxsize=None)
def rpau_prime_assignment(k_q: int, k_total: int,
                          num_rpaus: int) -> tuple[tuple[int, ...], ...]:
    """Paper Sec. V-A1 mapping of prime indices onto RPAUs.

    RPAU r is resource-shared by q-prime r and extension prime k_q + r:
    for the paper's 6 + 7 primes on seven RPAUs this gives (q0, q6),
    (q1, q7), ..., (q5, q11) and q12 alone on the seventh RPAU. Batches
    then never co-schedule two primes of the same RPAU.
    """
    assignment = []
    for r in range(num_rpaus):
        indices = []
        if r < k_q:
            indices.append(r)
        second = k_q + r
        if second < k_total:
            indices.append(second)
        if not indices:
            raise HardwareModelError(
                f"RPAU {r} has no primes: too many RPAUs for {k_total} primes"
            )
        assignment.append(tuple(indices))
    return tuple(assignment)


def batch_rows(k_total: int, k_q: int, num_rpaus: int) -> list[list[int]]:
    """Row batches for an instruction over `k_total` residue rows.

    The paper computes the q basis (6 rows) in one batch on the first six
    RPAUs and the full basis in two batches: rows 0..5, then rows 6..12
    (Sec. V-A1). Generalised: consecutive slices of at most `num_rpaus`
    rows, aligned so the first batch is exactly the q rows when the
    matrix spans the full basis.
    """
    if k_total <= num_rpaus:
        return [list(range(k_total))]
    batches = [list(range(k_q))]
    row = k_q
    while row < k_total:
        batch = list(range(row, min(row + num_rpaus, k_total)))
        batches.append(batch)
        row += len(batch)
    return batches
