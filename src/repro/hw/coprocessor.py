"""The instruction-set coprocessor (paper Fig. 10).

Executes :class:`~repro.hw.isa.Program` streams over the RPAU array, the
lift/scale core clusters, and the memory file. Every instruction does two
things: compute the bit-exact result (the same numbers the Verilog
produces) and charge its cycle cost (schedule-derived unit cycles plus the
calibrated software dispatch gap).

A full ``mult()`` on this class is the executable form of the paper's
Table I "Mult in HW" row; ``report.table()`` prints the per-instruction
breakdown next to the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import HardwareModelError, IsaError
from ..fv.ciphertext import Ciphertext
from ..fv.keys import DigitRelinKey, RelinKey
from ..params import ParameterSet
from ..poly.rns_poly import RnsPoly
from ..rns.basis import basis_for, lift_context, scale_context
from ..rns.decompose import decompose_poly_signed
from .compiler import compile_add, compile_mult
from .config import HardwareConfig
from .dma import DmaModel
from .isa import Instruction, Opcode, Program
from .lift_unit import HpsLiftUnit, TraditionalLiftUnit
from .memory_file import MemoryFile
from .rpau import Rpau, rpau_prime_assignment
from .scale_unit import HpsScaleUnit, TraditionalScaleUnit


@dataclass
class InstructionStat:
    """Aggregated cost of one opcode within a program run."""

    calls: int = 0
    cycles: int = 0

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.calls if self.calls else 0.0


@dataclass
class MultReport:
    """Cycle breakdown of one high-level operation (Tables I and II)."""

    config: HardwareConfig
    op_stats: dict[Opcode, InstructionStat] = field(default_factory=dict)
    transfer_cycles: int = 0

    @property
    def compute_cycles(self) -> int:
        return sum(
            stat.cycles for op, stat in self.op_stats.items()
            if op is not Opcode.LOAD_RLK
        )

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.transfer_cycles

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.config.fpga_clock_hz

    @property
    def arm_cycles(self) -> int:
        """The measurement convention of the paper's Table I."""
        return self.config.fpga_to_arm_cycles(self.total_cycles)

    def charge(self, op: Opcode, cycles: int, is_transfer: bool = False) -> None:
        stat = self.op_stats.setdefault(op, InstructionStat())
        stat.calls += 1
        stat.cycles += cycles
        if is_transfer:
            self.transfer_cycles += cycles

    def table(self) -> str:
        lines = [f"{'instruction':<18}{'calls':>6}{'FPGA cyc/call':>15}"
                 f"{'Arm cyc/call':>14}"]
        for op, stat in self.op_stats.items():
            per_call = stat.cycles_per_call
            lines.append(
                f"{op.value:<18}{stat.calls:>6}{per_call:>15.0f}"
                f"{self.config.fpga_to_arm_cycles(round(per_call)):>14}"
            )
        lines.append(
            f"total: {self.total_cycles} FPGA cycles = "
            f"{self.arm_cycles} Arm cycles = {self.seconds * 1e3:.3f} ms"
        )
        return "\n".join(lines)


class Coprocessor:
    """One coprocessor instance (the FPGA holds two, paper Fig. 11)."""

    def __init__(self, params: ParameterSet,
                 config: HardwareConfig | None = None,
                 strict: bool = False) -> None:
        self.params = params
        self.config = config or HardwareConfig()
        self.strict = strict
        self.q_basis = basis_for(params.q_primes)
        self.full_primes = params.q_primes + params.p_primes
        self.full_col = np.array(self.full_primes, dtype=np.int64)[:, None]
        self.q_col = self.q_basis.primes_col
        # Lift extends q -> p (the unit computes only the new residues).
        self._lift_ctx = lift_context(params.q_primes, params.p_primes)
        self._scale_ctx = scale_context(params.q_primes, params.p_primes,
                                        params.t)
        if self.config.use_hps:
            self.lift_unit = HpsLiftUnit(self._lift_ctx, self.config)
            self.scale_unit = HpsScaleUnit(self._scale_ctx, self.config)
        else:
            self.lift_unit = TraditionalLiftUnit(self._lift_ctx, self.config)
            self.scale_unit = TraditionalScaleUnit(self._scale_ctx,
                                                   self.config)
        self.num_rpaus = min(self.config.num_rpaus,
                             max(params.k_q, params.k_p))
        assignment = rpau_prime_assignment(params.k_q, params.k_total,
                                           self.num_rpaus)
        self.rpaus = [
            Rpau(r, params.n,
                 tuple(self.full_primes[i] for i in indices), self.config,
                 strict=strict)
            for r, indices in enumerate(assignment)
        ]
        self._row_to_rpau = {}
        for r, indices in enumerate(assignment):
            for idx in indices:
                self._row_to_rpau[idx] = r
        self.memory = MemoryFile(params, self.config)
        self.dma = DmaModel(self.config)
        self.registers: dict[str, np.ndarray] = {}
        self._relin_key: RelinKey | DigitRelinKey | None = None

    # -- register file ------------------------------------------------------------

    def _new_reg(self) -> np.ndarray:
        return np.zeros((self.params.k_total, self.params.n), dtype=np.int64)

    def _reg(self, name: str) -> np.ndarray:
        if name not in self.registers:
            raise IsaError(f"register {name!r} not initialised")
        return self.registers[name]

    def load_polynomial(self, name: str, q_rows: np.ndarray) -> None:
        reg = self._new_reg()
        reg[: self.params.k_q] = q_rows
        self.registers[name] = reg

    # -- program execution -----------------------------------------------------------

    def execute(self, program: Program,
                relin_key: RelinKey | DigitRelinKey | None = None
                ) -> MultReport:
        self._relin_key = relin_key
        report = MultReport(config=self.config)
        for instruction in program.instructions:
            handler = self._handlers()[instruction.op]
            handler(instruction, report)
        return report

    def _handlers(self):
        return {
            Opcode.NTT: self._exec_ntt,
            Opcode.INTT: self._exec_intt,
            Opcode.CMUL: self._exec_cmul,
            Opcode.CADD: self._exec_cadd,
            Opcode.CSUB: self._exec_csub,
            Opcode.REARRANGE: self._exec_rearrange,
            Opcode.LIFT: self._exec_lift,
            Opcode.SCALE: self._exec_scale,
            Opcode.DIGIT: self._exec_digit,
            Opcode.LOAD_RLK: self._exec_load_rlk,
            Opcode.GALOIS: self._exec_galois,
        }

    def _rpau_for_row(self, row: int) -> Rpau:
        return self.rpaus[self._row_to_rpau[row]]

    def _exec_ntt(self, ins: Instruction, report: MultReport) -> None:
        reg = self._reg(ins.srcs[0])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        cycles = 0
        for row in ins.rows:
            prime = self.full_primes[row]
            out, row_cycles = self._rpau_for_row(row).ntt(prime, reg[row])
            dst[row] = out
            cycles = max(cycles, row_cycles)
        report.charge(Opcode.NTT, cycles + self.config.dispatch_overhead)

    def _exec_intt(self, ins: Instruction, report: MultReport) -> None:
        reg = self._reg(ins.srcs[0])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        cycles = 0
        for row in ins.rows:
            prime = self.full_primes[row]
            out, row_cycles = self._rpau_for_row(row).intt(prime, reg[row])
            dst[row] = out
            cycles = max(cycles, row_cycles)
        report.charge(Opcode.INTT, cycles + self.config.dispatch_overhead)

    def _coeffwise(self, ins: Instruction, op: str) -> int:
        a = self._reg(ins.srcs[0])
        b = self._reg(ins.srcs[1])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        cycles = 0
        for row in ins.rows:
            prime = self.full_primes[row]
            rpau = self._rpau_for_row(row)
            out, row_cycles = getattr(rpau, op)(prime, a[row], b[row])
            dst[row] = out
            cycles = max(cycles, row_cycles)
        return cycles

    def _exec_cmul(self, ins: Instruction, report: MultReport) -> None:
        cycles = self._coeffwise(ins, "cmul")
        report.charge(Opcode.CMUL, cycles + self.config.dispatch_overhead)

    def _exec_cadd(self, ins: Instruction, report: MultReport) -> None:
        cycles = self._coeffwise(ins, "cadd")
        report.charge(Opcode.CADD, cycles + self.config.dispatch_overhead)

    def _exec_csub(self, ins: Instruction, report: MultReport) -> None:
        cycles = self._coeffwise(ins, "csub")
        report.charge(Opcode.CSUB, cycles + self.config.dispatch_overhead)

    def _exec_rearrange(self, ins: Instruction, report: MultReport) -> None:
        # Functional no-op: the NTT unit model folds the layout
        # permutation into its load/unload steps; the instruction carries
        # the cycle cost of that data movement. Rearranges stream
        # back-to-back with their transform, so no dispatch gap (the
        # paper's 25,006-Arm-cycle row shows the same: it is n + epsilon).
        cycles = self.rpaus[0].rearrange_cycles()
        report.charge(Opcode.REARRANGE, cycles)

    def _exec_lift(self, ins: Instruction, report: MultReport) -> None:
        reg = self._reg(ins.srcs[0])
        q_rows = reg[: self.params.k_q]
        p_rows, cycles = self.lift_unit.run(q_rows)
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        dst[: self.params.k_q] = q_rows
        dst[self.params.k_q:] = p_rows
        report.charge(Opcode.LIFT, cycles + self.config.dispatch_overhead)

    def _exec_scale(self, ins: Instruction, report: MultReport) -> None:
        reg = self._reg(ins.srcs[0])
        scaled, cycles = self.scale_unit.run(reg[: self.params.k_total])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        dst[: self.params.k_q] = scaled
        report.charge(Opcode.SCALE, cycles + self.config.dispatch_overhead)

    def _exec_digit(self, ins: Instruction, report: MultReport) -> None:
        src = self._reg(ins.srcs[0])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        if "source_row" in ins.meta:
            # HPS: broadcast one residue row across the q basis (pure data
            # movement, one pass over the polynomial).
            row = ins.meta["source_row"]
            dst[: self.params.k_q] = src[row][None, :] % self.q_col
            cycles = self.params.n // 2 + self.config.stage_sync_overhead
        elif "group" in ins.meta:
            # Grouped-RNS digit: exact CRT over one prime group (the
            # lift unit's small-CRT datapath: one coefficient per cycle).
            from ..rns.decompose import grouped_rns_digits

            group = ins.meta["group"]
            group_size = ins.meta["group_size"]
            digits = grouped_rns_digits(
                self.q_basis, src[: self.params.k_q], group_size
            )
            dst[: self.params.k_q] = digits[group]
            cycles = self.params.n + self.config.stage_sync_overhead
        else:
            # Traditional: extract one signed base-w digit from the CRT
            # coefficients (the Fig. 8 datapath has them reconstructed).
            index = ins.meta["digit_index"]
            base_bits = ins.meta["base_bits"]
            count = index + 1
            poly = RnsPoly(self.q_basis, src[: self.params.k_q])
            coeffs = poly.to_int_coeffs()
            digits = decompose_poly_signed(
                coeffs, self.params.q, 1 << base_bits,
                max(count, -(-self.params.q.bit_length() // base_bits)),
            )
            # Digits can exceed 64 bits (e.g. the 90-bit digits of the
            # paper's slow design); reduce with exact integer arithmetic.
            dst[: self.params.k_q] = np.array(
                [[d % p for d in digits[index]]
                 for p in self.params.q_primes],
                dtype=np.int64,
            )
            cycles = self.params.n + self.config.stage_sync_overhead
        report.charge(Opcode.DIGIT, cycles)

    def _exec_galois(self, ins: Instruction, report: MultReport) -> None:
        """tau_g permutation: the rearrange datapath with a Galois
        address generator (one coefficient per cycle, one sign fix-up)."""
        from ..fv.galois import apply_galois_rows

        src = self._reg(ins.srcs[0])
        dst = self.registers.setdefault(ins.dst, self._new_reg())
        k_q = self.params.k_q
        dst[:k_q] = apply_galois_rows(
            src[:k_q], self.q_col, self.params.n, ins.meta["element"]
        )
        cycles = self.rpaus[0].rearrange_cycles()
        report.charge(Opcode.GALOIS, cycles)

    def rotate(self, ct: Ciphertext, galois_key) -> tuple[Ciphertext,
                                                          MultReport]:
        """Homomorphic rotation on the coprocessor (extension feature).

        Bit-identical to :meth:`repro.fv.galois.GaloisEngine.apply`; the
        report shows what a rotation costs on the paper's datapath.
        """
        from .compiler import compile_rotation

        program = compile_rotation(self.params, self.config,
                                   galois_key.element)
        self.registers.clear()
        self.load_polynomial("a0", ct.c0.residues)
        self.load_polynomial("a1", ct.c1.residues)
        self.registers["zero"] = self._new_reg()
        relin_like = RelinKey(pairs=galois_key.pairs)
        if self.config.relin_key_on_chip:
            for i, (b_ntt, a_ntt) in enumerate(galois_key.pairs):
                reg_b = self.registers.setdefault(f"rlk0_{i}",
                                                  self._new_reg())
                reg_a = self.registers.setdefault(f"rlk1_{i}",
                                                  self._new_reg())
                reg_b[: self.params.k_q] = b_ntt
                reg_a[: self.params.k_q] = a_ntt
        report = self.execute(program, relin_key=relin_like)
        return self._ciphertext_from("out0", "out1"), report

    def _exec_load_rlk(self, ins: Instruction, report: MultReport) -> None:
        if self._relin_key is None:
            raise HardwareModelError(
                "program streams a relinearisation key but none was supplied"
            )
        component = ins.meta["component"]
        b_ntt, a_ntt = self._relin_key.pairs[component]
        reg_b = self.registers.setdefault(f"rlk0_{component}",
                                          self._new_reg())
        reg_a = self.registers.setdefault(f"rlk1_{component}",
                                          self._new_reg())
        reg_b[: self.params.k_q] = b_ntt
        reg_a[: self.params.k_q] = a_ntt
        seconds = 2 * (self.dma.transfer_seconds(self.params.poly_bytes)
                       + self.dma.arm_setup_seconds)
        cycles = round(seconds * self.config.fpga_clock_hz)
        report.charge(Opcode.LOAD_RLK, cycles, is_transfer=True)

    # -- high-level operations ---------------------------------------------------------

    def mult(self, ct_a: Ciphertext, ct_b: Ciphertext,
             relin_key) -> tuple[Ciphertext, MultReport]:
        """Full FV.Mult on the coprocessor (Table I row 1).

        Accepts any of the three relinearisation key flavours; the
        compiled program follows the key's digit style.
        """
        from ..fv.keys import GroupedRelinKey

        if isinstance(relin_key, GroupedRelinKey):
            style = "grouped"
        elif isinstance(relin_key, DigitRelinKey):
            style = "digit"
        else:
            style = "rns"
        program = compile_mult(self.params, self.config,
                               relin_components=relin_key.num_components,
                               relin_style=style)
        self.registers.clear()
        self.load_polynomial("a0", ct_a.c0.residues)
        self.load_polynomial("a1", ct_a.c1.residues)
        self.load_polynomial("b0", ct_b.c0.residues)
        self.load_polynomial("b1", ct_b.c1.residues)
        if self.config.relin_key_on_chip:
            for i, (b_ntt, a_ntt) in enumerate(relin_key.pairs):
                reg_b = self.registers.setdefault(f"rlk0_{i}", self._new_reg())
                reg_a = self.registers.setdefault(f"rlk1_{i}", self._new_reg())
                reg_b[: self.params.k_q] = b_ntt
                reg_a[: self.params.k_q] = a_ntt
        report = self.execute(program, relin_key=relin_key)
        result = self._ciphertext_from("out0", "out1")
        return result, report

    def add(self, ct_a: Ciphertext,
            ct_b: Ciphertext) -> tuple[Ciphertext, MultReport]:
        """FV.Add on the coprocessor (Table I row 2)."""
        program = compile_add(self.params)
        self.registers.clear()
        self.load_polynomial("a0", ct_a.c0.residues)
        self.load_polynomial("a1", ct_a.c1.residues)
        self.load_polynomial("b0", ct_b.c0.residues)
        self.load_polynomial("b1", ct_b.c1.residues)
        report = self.execute(program)
        result = self._ciphertext_from("out0", "out1")
        return result, report

    def _ciphertext_from(self, name0: str, name1: str) -> Ciphertext:
        k_q = self.params.k_q
        c0 = RnsPoly(self.q_basis, self._reg(name0)[:k_q].copy())
        c1 = RnsPoly(self.q_basis, self._reg(name1)[:k_q].copy())
        return Ciphertext((c0, c1), self.params)

    # -- Table II model (per-instruction costs without running a program) --------------

    def instruction_cycle_model(self) -> dict[Opcode, int]:
        """FPGA cycles per instruction call for this configuration."""
        rpau = self.rpaus[0]
        unit = rpau.ntt_unit(rpau.primes[0])
        dispatch = self.config.dispatch_overhead
        ntt = unit.transform_cycles() + dispatch
        return {
            Opcode.NTT: ntt,
            Opcode.INTT: (unit.transform_cycles() + unit.scale_pass_cycles()
                          + dispatch),
            Opcode.CMUL: rpau.cmul_cycles() + dispatch,
            Opcode.CADD: rpau.cadd_cycles() + dispatch,
            Opcode.REARRANGE: rpau.rearrange_cycles(),
            Opcode.LIFT: self.lift_unit.cycles(self.params.n) + dispatch,
            Opcode.SCALE: self.scale_unit.cycles(self.params.n) + dispatch,
        }
