"""Modular integer arithmetic helpers.

These operate on plain Python integers so they are exact for moduli of any
size (the FV reference implementation uses 180-bit and 390-bit moduli).
"""

from __future__ import annotations


def modpow(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` (thin wrapper over ``pow``)."""
    return pow(base, exponent, modulus)


def modinv(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises ``ValueError`` when the inverse does not exist; this signals a
    mis-configured RNS basis (non-coprime moduli) early instead of letting
    a wrong constant propagate into the arithmetic.
    """
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # pragma: no cover - message reshaping only
        raise ValueError(
            f"{value} has no inverse modulo {modulus}: operands not coprime"
        ) from exc


def mod_centered(value: int, modulus: int) -> int:
    """Centered representative of ``value`` in (-modulus/2, modulus/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def mul_mod(a: int, b: int, modulus: int) -> int:
    """Exact modular product of two Python integers."""
    return (a * b) % modulus


def add_mod(a: int, b: int, modulus: int) -> int:
    """Exact modular sum of two Python integers."""
    return (a + b) % modulus


def sub_mod(a: int, b: int, modulus: int) -> int:
    """Exact modular difference of two Python integers."""
    return (a - b) % modulus
