"""Number-theoretic substrate: modular arithmetic, primes, NTT.

This subpackage is the mathematical foundation underneath both the FV
scheme (``repro.fv``) and the hardware simulator (``repro.hw``). It
contains no hardware modelling; everything here is plain number theory.
"""

from .batch import (
    BasisTransformer,
    EngineFallback,
    basis_transformer,
    batched_engine_ok,
    engine_fallbacks,
    engine_unsupported_reason,
    intt_rows,
    ntt_rows,
    per_row_mode,
    reset_engine_fallbacks,
    reset_transform_counts,
    transform_counts,
)
from .bitrev import bit_reverse_indices, bit_reverse_int, bit_reverse_permute
from .modmath import mod_centered, modinv, modpow
from .ntt import (
    NegacyclicTransformer,
    intt_iterative,
    negacyclic_convolution,
    ntt_iterative,
    power_table,
)
from .primes import (
    find_ntt_primes,
    is_prime,
    primitive_root,
    root_of_unity,
)

__all__ = [
    "modinv",
    "modpow",
    "mod_centered",
    "find_ntt_primes",
    "is_prime",
    "primitive_root",
    "root_of_unity",
    "bit_reverse_indices",
    "bit_reverse_int",
    "bit_reverse_permute",
    "NegacyclicTransformer",
    "BasisTransformer",
    "EngineFallback",
    "basis_transformer",
    "batched_engine_ok",
    "engine_fallbacks",
    "engine_unsupported_reason",
    "ntt_rows",
    "intt_rows",
    "per_row_mode",
    "transform_counts",
    "reset_transform_counts",
    "reset_engine_fallbacks",
    "power_table",
    "ntt_iterative",
    "intt_iterative",
    "negacyclic_convolution",
]
