"""Batched limb-parallel negacyclic NTT engine.

This is the software analogue of the paper's headline parallelism: all
``k`` RPAUs transform their residue channels *simultaneously*. A
:class:`BasisTransformer` transforms the whole ``(k, n)`` residue
matrix of an RNS polynomial in one shot instead of looping over limbs
in Python the way the per-row
:class:`~repro.nttmath.ntt.NegacyclicTransformer` path does.

The engine uses the four-step decomposition ``n = n1 * n2`` (the same
factorisation the paper's pipelined NTT unit streams through its
butterfly array): a size-n1 sub-NTT, an element-wise twiddle
correction, a transpose, and a size-n2 sub-NTT. Because the
sub-transforms are short, each one is evaluated as a *dense matrix
product* in float64 — operands split into 15-bit limbs so every BLAS
partial sum stays below 2^53 and is therefore exact — which turns the
NTT's many memory-bound element-wise passes into a handful of
compute-dense dgemm calls. The remaining element-wise work per
transform is two division-free reductions and one Shoup twiddle
multiply. See :class:`BasisTransformer` for the detailed numerics.

All transforms are bit-exact against :func:`~repro.nttmath.ntt.ntt_iterative`
and the per-row ``NegacyclicTransformer`` — the property tests enforce
this across ring sizes and basis shapes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..utils import log2_exact
from .modmath import modinv
from .ntt import _MAX_MODULUS_BITS, power_table
from .primes import root_of_unity

_SHOUP_SHIFT = 32
"""Fixed-point shift of the precomputed Shoup twiddle quotients."""


# -- transform accounting ------------------------------------------------------


@dataclass
class TransformStats:
    """Global forward/inverse transform counters.

    ``*_rows`` count single-polynomial row transforms (the unit one RPAU
    performs); ``*_calls`` count batched engine invocations. The
    counters drive :class:`~repro.api.backends.LocalBackend` telemetry,
    which is how the tests prove the NTT-resident executor really does
    eliminate redundant transforms.
    """

    forward_rows: int = 0
    inverse_rows: int = 0
    forward_calls: int = 0
    inverse_calls: int = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.forward_rows, self.inverse_rows,
                self.forward_calls, self.inverse_calls)


TRANSFORM_STATS = TransformStats()


def transform_counts() -> dict[str, int]:
    """Current global transform counters as a plain dict."""
    return {
        "forward_rows": TRANSFORM_STATS.forward_rows,
        "inverse_rows": TRANSFORM_STATS.inverse_rows,
        "forward_calls": TRANSFORM_STATS.forward_calls,
        "inverse_calls": TRANSFORM_STATS.inverse_calls,
    }


def reset_transform_counts() -> None:
    TRANSFORM_STATS.forward_rows = 0
    TRANSFORM_STATS.inverse_rows = 0
    TRANSFORM_STATS.forward_calls = 0
    TRANSFORM_STATS.inverse_calls = 0


# -- per-row fallback mode ------------------------------------------------------

_PER_ROW_MODE = False


@contextmanager
def per_row_mode():
    """Restore the pre-batching hot path for baseline measurement.

    Inside this context every rewired call site falls back to its
    pre-PR implementation: one :class:`~repro.poly.ring.RingContext`
    transform per residue row (with the per-call bit-reversal index
    rebuild those transforms used to pay), the per-target-prime Python
    loops in the lift/scale conversions, eager per-term reductions in
    the key-switch accumulators, integer-division digit broadcasts,
    and the validating :class:`~repro.poly.rns_poly.RnsPoly`
    constructor on every intermediate. The throughput benchmark runs
    inside this context to price exactly what the limb-loop hot path
    cost before the batched engine landed.
    """
    from . import ntt as _ntt

    global _PER_ROW_MODE
    previous = _PER_ROW_MODE
    previous_bitrev = _ntt.LEGACY_BITREV
    _PER_ROW_MODE = True
    _ntt.LEGACY_BITREV = True
    try:
        yield
    finally:
        _PER_ROW_MODE = previous
        _ntt.LEGACY_BITREV = previous_bitrev


def batched_engine_ok(primes: tuple[int, ...], n: int) -> bool:
    """Can the gemm engine run this basis (outside per_row_mode)?

    Mirrors :class:`BasisTransformer`'s own constructor limits: primes
    must leave 4q < 2^32 headroom and the sub-transforms must stay at
    or below 128 points (n1 = 2^ceil(log2(n)/2) <= 128, i.e.
    n <= 16384) so the limb-split float64 partial sums remain exact.
    Every dispatcher consults this one predicate; ineligible bases take
    the (slower, still exact) per-row path.
    """
    return (max(primes).bit_length() < _MAX_MODULUS_BITS
            and n <= 16384)


def _shoup_table(table: np.ndarray, primes_col: np.ndarray) -> np.ndarray:
    """Scaled quotients ``floor(w * 2^32 / q)`` for a stacked table.

    Entries are < 2^30, so the shifted product stays below 2^62 and the
    division is exact in int64 — no object-dtype arithmetic needed.
    """
    return (table << _SHOUP_SHIFT) // primes_col


class BasisTransformer:
    """Vectorised negacyclic NTT over a whole RNS basis at once.

    The transform uses the four-step decomposition ``n = n1 * n2`` the
    paper's pipelined NTT unit is built around — a size-n1 NTT down the
    columns of the (n1, n2) coefficient matrix, an element-wise twiddle
    correction, a transpose, and a size-n2 NTT over the transposed
    matrix — but computes both short sub-NTTs as *dense matrix
    products* evaluated by BLAS in float64:

    * each operand is split into a high and a low 15-bit limb, and the
      sub-DFT matrix is stored as the (n1, 2*n1) block ``[W * 2^15 mod
      q | W]``, so one dgemm per step computes the exact sub-transform
      (every partial sum stays below 2^53, where float64 arithmetic on
      integers is exact);
    * the negacyclic psi^i pre-twist is folded into the step-1 matrix
      and the four-step twiddle table, and the inverse transform's
      ``psi^-i / n`` post-scale is folded into its twiddle and step-2
      matrix, so neither costs a separate pass;
    * the post-gemm reductions run in float64 too (quotients are below
      2^23, so ``g - rint(g/q) * q`` is exact), leaving the Shoup
      twiddle multiply as the only integer element-wise stage;
    * a ``(j, k, n)`` stack of polynomials over the same basis shares
      one dgemm pair — polynomial ``idx`` occupies column block ``idx``
      of the limb matrices — so the tensor step's four lifted operands
      or relinearisation's digit matrices transform in a single call.

    This is what "as fast as numpy allows" looks like for an exact NTT:
    the butterflies' many memory-bound element passes become a handful
    of compute-dense BLAS calls. Results are bit-identical to the
    per-row :class:`~repro.nttmath.ntt.NegacyclicTransformer` and to
    the paper-literal :func:`~repro.nttmath.ntt.ntt_iterative`.
    Instances are cached per ``(primes, n)`` via
    :func:`basis_transformer`.
    """

    def __init__(self, primes: tuple[int, ...], n: int) -> None:
        self.primes = tuple(int(p) for p in primes)
        self.n = n
        self.stages = log2_exact(n)
        # n = n1 * n2, n1 >= n2. Exactness of the single-gemm step needs
        # n1 * max_prime * 2^16 < 2^53, i.e. n1 <= 128 for 30-bit primes.
        self.n1 = 1 << ((self.stages + 1) // 2)
        self.n2 = n // self.n1
        for p in self.primes:
            if p.bit_length() > _MAX_MODULUS_BITS - 1:
                raise ParameterError(
                    f"modulus {p} exceeds {_MAX_MODULUS_BITS - 1} bits; the "
                    "lazy-reduction datapath needs 4q < 2^32"
                )
            if (p - 1) % (2 * n) != 0:
                raise ParameterError(
                    f"modulus {p} is not NTT-friendly for degree {n}"
                )
        if self.n1 > 128:
            raise ParameterError(
                f"degree {n} needs sub-transforms above 128 points; the "
                "float64 gemm would lose exactness (use the per-row path)"
            )
        self.k = len(self.primes)
        self.primes_col = np.array(self.primes, dtype=np.int64)[:, None]
        # Modulus tables shared by both directions and the scratch pool.
        p_int = np.repeat(self.primes_col, n, axis=1)
        self._mod_tables = (p_int, p_int.astype(np.float64), 1.0 / p_int)
        self._fwd = _GemmPlan(self, inverse=False)
        self._inv = _GemmPlan(self, inverse=True)
        self._scaled_inv: dict[tuple[int, ...], _GemmPlan] = {}
        self._scratch: tuple[np.ndarray, ...] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasisTransformer(k={self.k}, n={self.n})"

    # -- internals ---------------------------------------------------------------

    def _buffers(self) -> tuple[np.ndarray, ...]:
        """Preallocated scratch, shared by both transform directions.

        Kept cache-sized on purpose: stacks are processed one
        polynomial at a time (whole-stack buffers would spill the
        last-level cache and turn every pass memory-bound), and forward
        and inverse share one set so the hot loop keeps touching the
        same few hundred kilobytes.
        """
        if self._scratch is None:
            k, n, n1, n2 = self.k, self.n, self.n1, self.n2
            self._scratch = (
                np.empty((k, 2 * n1, n2), dtype=np.float64),  # limbs 1
                np.empty((k, 2 * n2, n1), dtype=np.float64),  # limbs 2
                np.empty((k, n1, n2), dtype=np.float64),      # gemm out 1
                np.empty((k, n2, n1), dtype=np.float64),      # gemm out 2
                np.empty((k, n), dtype=np.int64),             # int work
                np.empty((k, n), dtype=np.float64),           # float tmp
                np.empty((k, n), dtype=np.int64),             # int tmp
            )
        return self._scratch

    def _check(self, matrix: np.ndarray) -> tuple[np.ndarray, bool]:
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.ndim == 2:
            stacked = False
            arr = arr[None, :, :]
        elif arr.ndim == 3:
            stacked = True
        else:
            raise ParameterError(
                f"expected a (k, n) matrix or (j, k, n) stack, got shape "
                f"{np.asarray(matrix).shape}"
            )
        if arr.shape[1] != self.k or arr.shape[2] != self.n:
            raise ParameterError(
                f"residue stack shape {arr.shape[1:]} does not match the "
                f"({self.k} x {self.n}) basis layout"
            )
        return arr, stacked

    # -- public API ----------------------------------------------------------------

    def forward(self, matrix: np.ndarray,
                lazy: bool = False) -> np.ndarray:
        """Negacyclic forward NTT of every residue row, batched.

        ``matrix`` is a ``(k, n)`` residue matrix with entries in
        ``[0, q_i)`` or a ``(j, k, n)`` stack; the result has the same
        shape with canonical NTT-domain entries, bit-identical to the
        per-row reference transforms. With ``lazy=True`` the final
        conditional subtract is skipped and entries land in [0, 2q) —
        for consumers whose own reduction absorbs the slack (the tensor
        step's point-wise products).
        """
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        for idx in range(arr.shape[0]):
            self._fwd.apply(self, arr[idx], out[idx], lazy=lazy)
        TRANSFORM_STATS.forward_rows += arr.shape[0] * self.k
        TRANSFORM_STATS.forward_calls += 1
        return out if stacked else out[0]

    def inverse(self, matrix: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT of every residue row, batched."""
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        for idx in range(arr.shape[0]):
            self._inv.apply(self, arr[idx], out[idx])
        TRANSFORM_STATS.inverse_rows += arr.shape[0] * self.k
        TRANSFORM_STATS.inverse_calls += 1
        return out if stacked else out[0]

    def inverse_scaled(self, matrix: np.ndarray,
                       constants: tuple[int, ...]) -> np.ndarray:
        """Inverse NTT with a per-channel constant multiply folded in.

        Channel ``c`` of the result equals
        ``(INTT_c(matrix[c]) * constants[c]) mod q_c`` — the constant
        rides along in the (linear) transform's twiddle table for free.
        This is how the evaluator fuses Scale's Block-1 ``Q~_k``
        multiplies into the tensor step's inverse transforms. Scaled
        plans are cached per constants tuple.
        """
        if len(constants) != self.k:
            raise ParameterError(
                f"need {self.k} channel constants, got {len(constants)}"
            )
        plan = self._scaled_inv.get(constants)
        if plan is None:
            plan = _GemmPlan(self, inverse=True, channel_scale=constants)
            self._scaled_inv[constants] = plan
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        for idx in range(arr.shape[0]):
            plan.apply(self, arr[idx], out[idx])
        TRANSFORM_STATS.inverse_rows += arr.shape[0] * self.k
        TRANSFORM_STATS.inverse_calls += 1
        return out if stacked else out[0]

    def forward_broadcast(self, rows: np.ndarray,
                          lazy: bool = False) -> np.ndarray:
        """Forward NTT of each raw digit row under every basis prime.

        ``rows`` is a ``(j, n)`` matrix of non-negative values below
        2^31 (unreduced raw-residue digits); the result is ``(j, k, n)``
        with channel ``c`` of output ``i`` equal to the NTT of
        ``rows[i] mod primes[c]`` — bit-identical to broadcasting,
        reducing, and transforming per channel, at a fraction of the
        cost (see :meth:`_GemmPlan.apply_broadcast`).
        """
        arr = np.asarray(rows, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ParameterError(
                f"expected (j, {self.n}) digit rows, got {arr.shape}"
            )
        j = arr.shape[0]
        out = np.empty((j, self.k, self.n), dtype=np.int64)
        for idx in range(j):
            self._fwd.apply_broadcast(self, arr[idx], out[idx], lazy=lazy)
        TRANSFORM_STATS.forward_rows += j * self.k
        TRANSFORM_STATS.forward_calls += 1
        return out

    def pointwise(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Element-wise modular product of NTT-domain matrices."""
        return (np.asarray(left, dtype=np.int64)
                * np.asarray(right, dtype=np.int64)) % self.primes_col

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two residue matrices, batched."""
        stack = np.stack([np.asarray(a, dtype=np.int64),
                          np.asarray(b, dtype=np.int64)])
        fa, fb = self.forward(stack)
        return self.inverse(self.pointwise(fa, fb))


_SPLIT_BITS = 15
_SPLIT_MASK = (1 << _SPLIT_BITS) - 1


class _GemmPlan:
    """Precomputed tables for one transform direction of a basis.

    ``step1``/``step2`` hold the float64 ``(k, L, 2L)`` limb-split
    sub-DFT matrices ``[W * 2^15 mod q | W]``; the four-step twiddle
    correction is kept in int64 with its Shoup quotients. The psi
    pre-twist (forward) and the ``psi^-i / n`` post-scale (inverse)
    are folded into these tables, so :meth:`apply` runs no standalone
    scaling passes. Per stack width ``j``, :meth:`tables` lazily
    materialises column-tiled twiddle and modulus tables (real strides
    everywhere — numpy's zero-stride broadcast loops are 3-4x slower).
    """

    def __init__(self, bt: BasisTransformer, inverse: bool,
                 channel_scale: tuple[int, ...] | None = None) -> None:
        k, n, n1, n2 = bt.k, bt.n, bt.n1, bt.n2
        step1 = np.empty((k, n1, 2 * n1), dtype=np.float64)
        step2 = np.empty((k, n2, 2 * n2), dtype=np.float64)
        twiddle = np.empty((k, n1, n2), dtype=np.int64)
        for ki, p in enumerate(bt.primes):
            psi = root_of_unity(2 * n, p)
            if inverse:
                psi = modinv(psi, p)
            # psi powers over exponents mod 2n (omega = psi^2).
            psi_pow = power_table(psi, 2 * n, p)
            j1 = np.arange(n1, dtype=np.int64)[:, None]
            i1 = np.arange(n1, dtype=np.int64)[None, :]
            i2 = np.arange(n2, dtype=np.int64)[None, :]
            j2 = np.arange(n2, dtype=np.int64)[:, None]
            if not inverse:
                # W1[j1, i1] = omega^(n2 i1 j1) * psi^(n2 i1): the
                # psi^i twist contributes psi^(i1 n2) here and psi^(i2)
                # to the twiddle below.
                w1 = psi_pow[(2 * n2 * j1 * i1 + n2 * i1) % (2 * n)]
                tw = psi_pow[(2 * j1 * i2 + i2) % (2 * n)]
                w2 = psi_pow[(2 * n1 * j2 * i2) % (2 * n)]
            else:
                # Inverse: plain DFT over psi^-2, with psi^-j1 / n in
                # the twiddle and psi^-(n1 j2) in the step-2 rows (the
                # output index is j = j2 n1 + j1).
                inv_n = modinv(n, p)
                w1 = psi_pow[(2 * n2 * j1 * i1) % (2 * n)]
                tw = (psi_pow[(2 * j1 * i2 + j1) % (2 * n)]
                      * inv_n) % p
                w2 = psi_pow[(2 * n1 * j2 * i2 + n1 * j2) % (2 * n)]
            if channel_scale is not None:
                # Per-channel constant folded into the mid twiddle
                # (linearity: it scales the whole channel's output).
                tw = (tw * (channel_scale[ki] % p)) % p
            step1[ki, :, :n1] = (w1 << _SPLIT_BITS) % p
            step1[ki, :, n1:] = w1
            step2[ki, :, :n2] = (w2 << _SPLIT_BITS) % p
            step2[ki, :, n2:] = w2
            twiddle[ki] = tw
        self.step1 = step1
        self.step2 = step2
        self._twiddle = twiddle
        self._primes_col = bt.primes_col
        self._flat: tuple[np.ndarray, np.ndarray] | None = None

    def tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat (k, n) twiddle tables, materialised with real strides
        (numpy's zero-stride broadcast loops are 3-4x slower)."""
        if self._flat is None:
            k, n1, n2 = self._twiddle.shape
            tw = self._twiddle.reshape(k, n1 * n2)
            self._flat = (tw, _shoup_table(tw, self._primes_col))
        return self._flat

    @staticmethod
    def _reduce_lazy(g: np.ndarray, p_f: np.ndarray, inv_p: np.ndarray,
                     q_f: np.ndarray, out: np.ndarray) -> None:
        """Cast the exact float64 gemm output into lazy int64 [0, 2q).

        ``g`` holds exact integers below 2^53, so the float quotient
        ``rint(g / q)`` is off by at most one and ``g - rint(g/q) * q``
        lands in (-q, q) — still exact, because every intermediate is
        an integer of magnitude below 2^53. Adding q gives the lazy
        representative with no integer division anywhere.
        """
        np.multiply(g, inv_p, out=q_f)
        np.rint(q_f, out=q_f)
        np.multiply(q_f, p_f, out=q_f)
        np.subtract(g, q_f, out=g)
        np.add(g, p_f, out=out, casting="unsafe")

    @staticmethod
    def _split_into(values: np.ndarray, limbs: np.ndarray) -> None:
        """Write the high/low 15-bit limb stack of one (k, L, c) block.

        The ufuncs cast straight into the float64 limb buffer (exact:
        both limbs are below 2^16), one pass per limb.
        """
        rows = values.shape[1]
        np.right_shift(values, _SPLIT_BITS, out=limbs[:, :rows, :],
                       casting="unsafe")
        np.bitwise_and(values, _SPLIT_MASK, out=limbs[:, rows:, :],
                       casting="unsafe")

    def apply(self, bt: BasisTransformer, x: np.ndarray,
              out: np.ndarray, lazy: bool = False) -> None:
        """Transform one (k, n) matrix into ``out`` (natural order).

        Entries of ``x`` must be non-negative and below 2^31 (canonical
        residues always are); ``out`` receives canonical [0, q) values
        (or lazy [0, 2q) ones when ``lazy`` is set).
        """
        k, n1, n2 = bt.k, bt.n1, bt.n2
        limbs1, limbs2, g1, g2, work, f_tmp, i_tmp = bt._buffers()
        p_f, inv_p = bt._mod_tables[1], bt._mod_tables[2]
        # Step 1: exact size-n1 sub-DFT down the columns (one dgemm),
        # then the float reduction into lazy [0, 2q).
        self._split_into(x.reshape(k, n1, n2), limbs1)
        np.matmul(self.step1, limbs1, out=g1)
        self._reduce_lazy(g1, p_f.reshape(g1.shape),
                          inv_p.reshape(g1.shape),
                          f_tmp.reshape(g1.shape), work.reshape(g1.shape))
        self._tail(bt, work, out, lazy)

    def apply_broadcast(self, bt: BasisTransformer, row: np.ndarray,
                        out: np.ndarray, lazy: bool = False) -> None:
        """Transform one raw digit row under *every* basis prime.

        ``row`` is a length-n vector of non-negative values below 2^31
        — typically an unreduced raw-residue digit. Because
        ``NTT_k(v) ≡ NTT_k(v mod q_k)`` and the engine's reductions are
        exact, ``out`` (shape (k, n)) is bit-identical to broadcasting
        the row across the basis, reducing per channel, and
        transforming each channel — but the shared source means one
        limb split and a single tall dgemm cover step 1 of all k
        channels at once (the paper's fused WordDecomp + NTT digit
        pipeline).
        """
        k, n1, n2 = bt.k, bt.n1, bt.n2
        limbs1, limbs2, g1, g2, work, f_tmp, i_tmp = bt._buffers()
        p_f, inv_p = bt._mod_tables[1], bt._mod_tables[2]
        shared = limbs1.reshape(k * 2 * n1, n2)[: 2 * n1]
        self._split_into(row.reshape(1, n1, n2),
                         shared.reshape(1, 2 * n1, n2))
        np.matmul(self.step1.reshape(k * n1, 2 * n1), shared,
                  out=g1.reshape(k * n1, n2))
        self._reduce_lazy(g1, p_f.reshape(g1.shape),
                          inv_p.reshape(g1.shape),
                          f_tmp.reshape(g1.shape), work.reshape(g1.shape))
        self._tail(bt, work, out, lazy)

    def _tail(self, bt: BasisTransformer, work: np.ndarray,
              out: np.ndarray, lazy: bool = False) -> None:
        """Steps 2-4: twiddle, transpose, second sub-DFT, canonicalise
        (or stop at the lazy [0, 2q) representative)."""
        k, n1, n2 = bt.k, bt.n1, bt.n2
        n = bt.n
        limbs1, limbs2, g1, g2, _, f_tmp, i_tmp = bt._buffers()
        tw, tw_sh = self.tables()
        p_int, p_f, inv_p = bt._mod_tables
        # Step 2: Shoup twiddle multiply, still lazy in [0, 2q).
        _shoup_mul(work, tw, tw_sh, p_int, i_tmp)
        if n2 > 64:
            # Above 64-point sub-transforms the lazy [0, 2q) bound would
            # push gemm partial sums past 2^53; one conditional subtract
            # restores canonical inputs (unsigned-view minimum trick).
            np.subtract(work, p_int, out=i_tmp)
            np.minimum(work.view(np.uint64), i_tmp.view(np.uint64),
                       out=work.view(np.uint64))
        # Step 3: transpose (one strided copy pass) into the output
        # buffer, then step 4: the size-n2 sub-DFT of the transpose.
        w2 = i_tmp.reshape(k, n2, n1)
        np.copyto(w2, work.reshape(k, n1, n2).transpose(0, 2, 1))
        self._split_into(w2, limbs2)
        np.matmul(self.step2, limbs2, out=g2)
        self._reduce_lazy(g2, p_f.reshape(g2.shape),
                          inv_p.reshape(g2.shape),
                          f_tmp.reshape(g2.shape), work.reshape(g2.shape))
        # Final canonical reduction [0, 2q) -> [0, q), written straight
        # into the caller's buffer. Reading the (k, n2, n1) result
        # row-major is the natural-order transform (output index
        # j = j2 * n1 + j1).
        if lazy:
            np.copyto(out.reshape(k, n), work)
        else:
            np.subtract(work, p_int, out=i_tmp)
            np.minimum(work.view(np.uint64), i_tmp.view(np.uint64),
                       out=out.reshape(k, n).view(np.uint64))


def _shoup_mul(values: np.ndarray, table: np.ndarray,
               table_shoup: np.ndarray, p_full: np.ndarray,
               q_buf: np.ndarray) -> None:
    """In-place ``values = values * table mod p``, lazily in [0, 2p).

    ``values`` must be < 2^32. The uint64 views keep the 64-bit product
    exact, and the *logical* right shift extracts the Shoup quotient
    (an arithmetic shift would sign-extend products above 2^63).
    """
    np.multiply(values.view(np.uint64), table_shoup.view(np.uint64),
                out=q_buf.view(np.uint64))
    np.right_shift(q_buf.view(np.uint64), _SHOUP_SHIFT,
                   out=q_buf.view(np.uint64))
    np.multiply(values, table, out=values)
    np.multiply(q_buf, p_full, out=q_buf)
    np.subtract(values, q_buf, out=values)


@lru_cache(maxsize=None)
def basis_transformer(primes: tuple[int, ...], n: int) -> BasisTransformer:
    """Shared, cached batched transformer for one ``(primes, n)`` basis."""
    return BasisTransformer(tuple(primes), n)


# -- dispatching entry points -----------------------------------------------------


def _per_row_forward(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    from ..poly.ring import ring_context

    n = matrix.shape[-1]
    rows = [
        ring_context(n, p).transformer.forward(row)
        for p, row in zip(primes, matrix)
    ]
    return np.stack(rows)


def _per_row_inverse(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    from ..poly.ring import ring_context

    n = matrix.shape[-1]
    rows = [
        ring_context(n, p).transformer.inverse(row)
        for p, row in zip(primes, matrix)
    ]
    return np.stack(rows)


def ntt_rows(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    """Forward-transform a residue matrix (or ``(j, k, n)`` stack).

    The production entry point every limb-loop call site was rewired
    onto: batched by default, per-row inside :func:`per_row_mode` (both
    modes update the transform counters, so telemetry comparisons stay
    meaningful).
    """
    if _PER_ROW_MODE or not batched_engine_ok(
            primes, np.asarray(matrix).shape[-1]):
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.ndim == 3:
            out = np.stack([_per_row_forward(primes, a) for a in arr])
        else:
            out = _per_row_forward(primes, arr)
        TRANSFORM_STATS.forward_rows += int(np.prod(out.shape[:-1]))
        TRANSFORM_STATS.forward_calls += 1
        return out
    n = np.asarray(matrix).shape[-1]
    return basis_transformer(tuple(primes), n).forward(matrix)


def intt_rows_scaled(primes: tuple[int, ...], matrix: np.ndarray,
                     constants: tuple[int, ...]) -> np.ndarray:
    """Inverse-transform with per-channel constants folded in.

    Equivalent to ``(intt_rows(primes, matrix) * col(constants)) %
    col(primes)`` with the multiplies hidden inside the transform's
    twiddle tables; falls back to exactly that composition when the
    batched engine cannot run.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    n = arr.shape[-1]
    if _PER_ROW_MODE or not batched_engine_ok(primes, n):
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        consts_col = np.array(
            [c % p for c, p in zip(constants, primes)], dtype=np.int64
        )[:, None]
        return (intt_rows(primes, arr) * consts_col) % primes_col
    return basis_transformer(tuple(primes), n).inverse_scaled(
        arr, tuple(int(c) for c in constants)
    )


def ntt_broadcast_rows(primes: tuple[int, ...], rows: np.ndarray,
                       lazy: bool = False) -> np.ndarray:
    """Forward NTT of raw digit rows under every prime of ``primes``.

    The fused WordDecomp + NTT primitive: ``rows`` is ``(j, n)`` with
    non-negative entries below 2^31, the result ``(j, k, n)`` —
    bit-identical to broadcasting each row across the basis, reducing
    per channel, and calling :func:`ntt_rows`. Falls back to exactly
    that (per-row) recipe when the batched engine cannot run.
    """
    arr = np.asarray(rows, dtype=np.int64)
    n = arr.shape[-1]
    if _PER_ROW_MODE or not batched_engine_ok(primes, n):
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        tiled = arr[:, None, :] % primes_col[None, :, :]
        return ntt_rows(primes, tiled)
    return basis_transformer(tuple(primes), n).forward_broadcast(
        arr, lazy=lazy
    )


def intt_rows(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    """Inverse-transform a residue matrix (or stack); see :func:`ntt_rows`."""
    if _PER_ROW_MODE or not batched_engine_ok(
            primes, np.asarray(matrix).shape[-1]):
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.ndim == 3:
            out = np.stack([_per_row_inverse(primes, a) for a in arr])
        else:
            out = _per_row_inverse(primes, arr)
        TRANSFORM_STATS.inverse_rows += int(np.prod(out.shape[:-1]))
        TRANSFORM_STATS.inverse_calls += 1
        return out
    n = np.asarray(matrix).shape[-1]
    return basis_transformer(tuple(primes), n).inverse(matrix)
