"""Batched limb-parallel negacyclic NTT engine.

This is the software analogue of the paper's headline parallelism: all
``k`` RPAUs transform their residue channels *simultaneously*. A
:class:`BasisTransformer` transforms the whole ``(k, n)`` residue
matrix of an RNS polynomial in one shot instead of looping over limbs
in Python the way the per-row
:class:`~repro.nttmath.ntt.NegacyclicTransformer` path does.

The engine uses the four-step decomposition ``n = n1 * n2`` (the same
factorisation the paper's pipelined NTT unit streams through its
butterfly array): a size-n1 sub-NTT, an element-wise twiddle
correction, a transpose, and a size-n2 sub-NTT. Because the
sub-transforms are short, each one is evaluated as a *dense matrix
product* in float64 — operands split into narrow limbs so every BLAS
partial sum stays below 2^53 and is therefore exact — which turns the
NTT's many memory-bound element-wise passes into a handful of
compute-dense dgemm calls. The remaining element-wise work per
transform is the division-free reductions and Shoup twiddle
multiplies between stages. See :class:`BasisTransformer` for the
detailed numerics.

Large rings generalise the recipe recursively: above n = 16384 — where
a two-stage split would need a sub-DFT beyond 128 points and therefore
a wider, costlier limb split — the planner factors ``n`` into *three*
sub-DFTs of at most 128 points each (n = 32768 runs 32 x 32 x 32: 192
gemm flops per element instead of the wide-limb four-step's 1024).
Limb widths are still chosen per stage from a proved exactness bound
(:func:`_limb_plan`), with three-limb splits kept as the escape hatch
for bases the stage search cannot reshape.
:func:`engine_unsupported_reason` is the single support predicate;
every dispatcher that has to fall back to the per-row path outside
:func:`per_row_mode` records a structured :class:`EngineFallback`
diagnostic and logs a warning instead of degrading silently.

All transforms are bit-exact against :func:`~repro.nttmath.ntt.ntt_iterative`
and the per-row ``NegacyclicTransformer`` — the property tests enforce
this across ring sizes (up to n = 32768) and basis shapes.

Transform accounting reports through :mod:`repro.obs`: the row/call
counters are registered instruments on the scoped metrics registry
(see :data:`TRANSFORM_COUNTER`), and when a tracer is active each
batched invocation also emits a nested "transform" span via
:func:`repro.obs.maybe_span`, so a :class:`~repro.obs.TraceReport`
can attribute engine time to individual program ops.
"""

from __future__ import annotations

import logging
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..obs import active_tracer
from ..obs import counter as _obs_counter
from ..obs import current_registry, maybe_span
from ..parallel import active_executor, split_range
from ..utils import log2_exact
from .modmath import modinv
from .ntt import _MAX_MODULUS_BITS, power_table
from .primes import root_of_unity

_SHOUP_SHIFT = 32
"""Fixed-point shift of the precomputed Shoup twiddle quotients."""

logger = logging.getLogger(__name__)

MAX_ENGINE_N = 1 << 15
"""Largest ring degree the gemm engine serves (the property-tested
envelope; the limb-split machinery itself is exact well beyond it)."""

#: Maximum value the engine accepts as a sub-transform input: canonical
#: residues and raw 30-bit digits both satisfy it.
_MAX_INPUT = (1 << 30) - 1

PARALLEL_MIN_WORK = int(os.environ.get("REPRO_PARALLEL_MIN_WORK",
                                       1 << 14))
"""Smallest batched-transform size (total rows x n) worth tiling over
the active executor. Below it thread dispatch overhead beats the gemm
time; the parallel CI leg sets ``REPRO_PARALLEL_MIN_WORK=1`` to force
every transform in the suite through the tiled path."""


# -- transform accounting ------------------------------------------------------


TRANSFORM_COUNTER = _obs_counter(
    "repro_ntt_transforms_total",
    "NTT engine transform work: rows = single-polynomial row "
    "transforms (the unit one RPAU performs), calls = batched engine "
    "invocations, fallback = per-row degradations.",
    labels=("kind",),
)
"""The transform instrument, registered in :mod:`repro.obs`.

Values live in whichever :class:`~repro.obs.MetricsRegistry` is
active — the :func:`~repro.obs.scoped_metrics` context gives each test
or concurrent backend its own counter plane, which is what makes
:func:`reset_transform_counts` safe to call without corrupting a
sibling's telemetry (the pre-registry global counter hazard). The
counters drive :class:`~repro.api.backends.LocalBackend` telemetry,
which is how the tests prove the NTT-resident executor really does
eliminate redundant transforms.
"""

_TRANSFORM_KEYS = ("forward_rows", "inverse_rows", "forward_calls",
                   "inverse_calls", "fallback_calls", "roundtrip_rows",
                   "roundtrip_calls")


def _count_transform(direction: str, rows: int) -> None:
    TRANSFORM_COUNTER.inc(rows, kind=f"{direction}_rows")
    TRANSFORM_COUNTER.inc(1, kind=f"{direction}_calls")


def count_roundtrip(rows: int) -> None:
    """Record a resident -> coefficient round trip (``rows`` rows).

    A *round trip* is the specific waste the resident executor exists
    to eliminate: an NTT-resident operand forced back to coefficient
    representation (whose coefficients will then have to be transformed
    forward again by any evaluation-domain consumer). The evaluator's
    *internal* inverse transforms — the stacked INTT folded into the
    lift, the keyswitch accumulator INTT on a coefficient-domain
    output — are part of the algorithms themselves and are **not**
    round trips. :meth:`FvContext.to_coeff_ct` reports here, so a
    zero ``roundtrip_calls`` reading across a program run is the
    telemetry proof that no resident operand ever left the evaluation
    domain.
    """
    TRANSFORM_COUNTER.inc(rows, kind="roundtrip_rows")
    TRANSFORM_COUNTER.inc(1, kind="roundtrip_calls")


def transform_counts() -> dict[str, int]:
    """Current transform counters (of the active registry) as a dict."""
    return {key: int(TRANSFORM_COUNTER.value(kind=key))
            for key in _TRANSFORM_KEYS}


def reset_transform_counts() -> None:
    """Zero the transform counters *in the active registry only*."""
    current_registry().reset_instrument(TRANSFORM_COUNTER.spec.name)


# -- fallback diagnostics ------------------------------------------------------

_FALLBACK_LIMIT = 64


@dataclass(frozen=True)
class EngineFallback:
    """One recorded per-row degradation of a batched dispatch.

    Emitted whenever a dispatcher had to route a basis to the per-row
    path *outside* :func:`per_row_mode` — the situation PR 4 used to
    hide. The structured record (plus a rate-limited ``logging``
    warning) makes the degradation observable: benchmarks that think
    they measure the gemm engine, and servers that silently lost their
    5x, now have something to assert on.
    """

    n: int
    k: int
    max_prime_bits: int
    reason: str


_FALLBACK_EVENTS: list[EngineFallback] = []
_FALLBACK_LOGGED: set[tuple[int, int, int]] = set()


def engine_fallbacks() -> tuple[EngineFallback, ...]:
    """Structured per-row fallback diagnostics recorded so far."""
    return tuple(_FALLBACK_EVENTS)


def reset_engine_fallbacks() -> None:
    _FALLBACK_EVENTS.clear()
    _FALLBACK_LOGGED.clear()


def _note_fallback(primes: tuple[int, ...], n: int, reason: str) -> None:
    TRANSFORM_COUNTER.inc(1, kind="fallback_calls")
    event = EngineFallback(n=n, k=len(primes),
                           max_prime_bits=max(primes).bit_length(),
                           reason=reason)
    if len(_FALLBACK_EVENTS) < _FALLBACK_LIMIT:
        _FALLBACK_EVENTS.append(event)
    key = (event.n, event.k, event.max_prime_bits)
    if key not in _FALLBACK_LOGGED:
        _FALLBACK_LOGGED.add(key)
        logger.warning(
            "batched NTT engine cannot serve basis (k=%d, n=%d, "
            "max prime %d bits): %s; degrading to the exact per-row "
            "path", event.k, n, event.max_prime_bits, reason,
        )


# -- per-row fallback mode ------------------------------------------------------

_PER_ROW_MODE = False


@contextmanager
def per_row_mode():
    """Restore the pre-batching hot path for baseline measurement.

    Inside this context every rewired call site falls back to its
    pre-PR implementation: one :class:`~repro.poly.ring.RingContext`
    transform per residue row (with the per-call bit-reversal index
    rebuild those transforms used to pay), the per-target-prime Python
    loops in the lift/scale conversions, eager per-term reductions in
    the key-switch accumulators, integer-division digit broadcasts,
    and the validating :class:`~repro.poly.rns_poly.RnsPoly`
    constructor on every intermediate. The throughput benchmark runs
    inside this context to price exactly what the limb-loop hot path
    cost before the batched engine landed.
    """
    from . import ntt as _ntt

    global _PER_ROW_MODE
    previous = _PER_ROW_MODE
    previous_bitrev = _ntt.LEGACY_BITREV
    _PER_ROW_MODE = True
    _ntt.LEGACY_BITREV = True
    try:
        yield
    finally:
        _PER_ROW_MODE = previous
        _ntt.LEGACY_BITREV = previous_bitrev


@dataclass(frozen=True)
class _LimbSplit:
    """One sub-transform's limb configuration (``count`` limbs of
    ``bits`` bits each, most-significant block first)."""

    bits: int
    count: int


#: Candidate splits, cheapest first. Two 15-bit limbs carry 30-bit
#: values through sub-DFTs up to 128 points — the widest sub-DFT the
#: stage planner emits; three 11-bit limbs would reach 256-point
#: sub-DFTs and four 8-bit limbs far beyond, kept as the proved
#: escape hatch for shapes the stage search cannot serve.
_SPLIT_CANDIDATES = (_LimbSplit(15, 2), _LimbSplit(11, 3), _LimbSplit(8, 4))


def _limb_plan(length: int, max_value: int,
               max_prime: int) -> _LimbSplit | None:
    """Smallest limb split keeping a length-``length`` sub-DFT exact.

    A gemm dot product sums ``count * length`` terms: for each limb
    block, ``length`` products of a table entry (< max_prime) with a
    limb of the input. Exactness requires every partial sum — and the
    quotient-times-modulus product of the float reduction that follows,
    which can overshoot by up to one modulus — to stay at or below
    2^53, where float64 integer arithmetic is exact.
    """
    for split in _SPLIT_CANDIDATES:
        # The top limb block is shift-only (no mask), so any value is
        # carried — a wide top limb just tightens the sum bound below.
        top_max = max_value >> (split.bits * (split.count - 1))
        rest_max = (1 << split.bits) - 1
        bound = length * (max_prime - 1) * (
            top_max + (split.count - 1) * rest_max
        )
        if bound + max_prime <= 1 << 53:
            return split
    return None


@dataclass(frozen=True)
class _Stage:
    """One sub-DFT stage of the decomposition.

    ``canonical_in`` marks stages whose lazy [0, 2q) inputs must be
    canonicalised by a conditional subtract before the limb split —
    worth it exactly when the lazy bound would force a wider (more
    expensive) split than the canonical bound.
    """

    length: int
    split: _LimbSplit
    canonical_in: bool


@dataclass(frozen=True)
class _Geometry:
    """A feasible multi-stage factorisation ``n = prod(factors)``."""

    factors: tuple[int, ...]
    stages: tuple[_Stage, ...]


#: Above this ring degree the planner considers three-stage splits: a
#: two-stage split of n > 16384 needs a sub-DFT above 128 points and
#: therefore a three-limb gemm, at which point a third 128-point-or-
#: less stage is strictly fewer flops (n = 32768: 192 vs 1024 per
#: element). At or below it the measured-good two-stage plans are kept.
_MAX_TWO_STAGE_N = 1 << 14


def _stage_for(length: int, max_prime: int,
               first: bool) -> _Stage | None:
    """The cheapest exact stage config for one sub-DFT length.

    The first stage sees canonical residues / raw 30-bit digits; later
    stages see lazy [0, 2q) values from the preceding twiddle multiply
    and canonicalise them first only when that buys a narrower split.
    """
    canonical = _limb_plan(length, _MAX_INPUT, max_prime)
    if canonical is None:
        return None
    if first:
        return _Stage(length, canonical, False)
    lazy = _limb_plan(length, 2 * max_prime - 1, max_prime)
    if lazy is not None and lazy.count <= canonical.count:
        return _Stage(length, lazy, False)
    return _Stage(length, canonical, True)


@lru_cache(maxsize=None)
def _plan_geometry(n: int, max_prime: int) -> _Geometry | None:
    """Cheapest exact factorisation of the gemm decomposition.

    Scans every power-of-two split of ``n`` into two factors — and,
    above ``_MAX_TWO_STAGE_N``, three factors (the recursive
    generalisation of the four-step: sub-DFT, twiddle, sub-DFT,
    twiddle, sub-DFT) — prices each stage by its gemm width
    (``limb count x sub-transform length``, the flop count per output
    element), and keeps the cheapest feasible plan (ties resolved
    toward larger leading factors, matching the pre-generalisation
    layout at n <= 16384).
    """
    stages_log = log2_exact(n)

    def plan(exponents: tuple[int, ...]) -> tuple | None:
        stages = []
        for index, a in enumerate(exponents):
            stage = _stage_for(1 << a, max_prime, first=index == 0)
            if stage is None:
                return None
            stages.append(stage)
        cost = sum(s.split.count * s.length for s in stages)
        factors = tuple(1 << a for a in exponents)
        key = (cost,) + tuple(-f for f in factors)
        return key, _Geometry(factors, tuple(stages))

    candidates = [
        (a, stages_log - a) for a in range(stages_log + 1)
    ]
    if n > _MAX_TWO_STAGE_N:
        candidates += [
            (a, b, stages_log - a - b)
            for a in range(1, stages_log - 1)
            for b in range(1, stages_log - a)
        ]
    best: tuple | None = None
    for exponents in candidates:
        candidate = plan(exponents)
        if candidate is not None and (best is None
                                      or candidate[0] < best[0]):
            best = candidate
    return best[1] if best else None


def engine_unsupported_reason(primes: tuple[int, ...],
                              n: int) -> str | None:
    """Why the gemm engine cannot serve this basis (None = it can).

    The single support predicate every dispatcher consults. The
    support matrix it encodes: primes below 31 bits (the lazy-reduction
    datapath needs 4q < 2^32) and ring degrees up to
    ``MAX_ENGINE_N`` = 32768 (the property-tested envelope of the
    per-step limb-split search). Ineligible bases take the (slower,
    still exact) per-row path, with a structured
    :class:`EngineFallback` diagnostic recorded.
    """
    if not primes:
        return "empty RNS basis"
    if max(primes).bit_length() >= _MAX_MODULUS_BITS:
        return (
            f"max prime has {max(primes).bit_length()} bits; the "
            "lazy-reduction datapath needs 4q < 2^32 (primes below "
            f"{_MAX_MODULUS_BITS} bits)"
        )
    if n > MAX_ENGINE_N:
        return (
            f"ring degree {n} exceeds the engine's tested envelope "
            f"(n <= {MAX_ENGINE_N})"
        )
    if _plan_geometry(n, max(primes)) is None:  # pragma: no cover
        return f"no exact limb split exists for degree {n}"
    return None


def batched_engine_ok(primes: tuple[int, ...], n: int) -> bool:
    """Can the gemm engine run this basis (outside per_row_mode)?"""
    return engine_unsupported_reason(tuple(primes), n) is None


def _use_per_row(primes: tuple[int, ...], n: int) -> bool:
    """Dispatch decision shared by every entry point, with diagnostics.

    Inside :func:`per_row_mode` the per-row path is the *requested*
    baseline; outside it, a fallback is a degradation and is recorded
    as an :class:`EngineFallback` plus a rate-limited log warning.
    """
    if _PER_ROW_MODE:
        return True
    reason = engine_unsupported_reason(tuple(primes), n)
    if reason is None:
        return False
    _note_fallback(tuple(primes), n, reason)
    return True


def _shoup_table(table: np.ndarray, primes_col: np.ndarray) -> np.ndarray:
    """Scaled quotients ``floor(w * 2^32 / q)`` for a stacked table.

    Entries are < 2^30, so the shifted product stays below 2^62 and the
    division is exact in int64 — no object-dtype arithmetic needed.
    """
    return (table << _SHOUP_SHIFT) // primes_col


class BasisTransformer:
    """Vectorised negacyclic NTT over a whole RNS basis at once.

    The transform uses the four-step decomposition ``n = n1 * n2`` the
    paper's pipelined NTT unit is built around — a size-n1 NTT down the
    columns of the (n1, n2) coefficient matrix, an element-wise twiddle
    correction, a transpose, and a size-n2 NTT over the transposed
    matrix — generalised recursively to *three* stages above n = 16384
    (sub-DFT, twiddle, sub-DFT, twiddle, sub-DFT, every factor at most
    128 points) — with every short sub-NTT computed as a *dense matrix
    product* evaluated by BLAS in float64:

    * each operand is split into narrow limbs (two 15-bit limbs for
      every sub-DFT the stage planner actually emits; wider splits
      remain as the proved escape hatch) and the sub-DFT matrix is
      stored as the (L, c*L) block ``[W * 2^(b*(c-1)) mod q | ... |
      W]``, so one dgemm per stage computes the exact sub-transform
      (every partial sum stays at or below 2^53, where float64
      arithmetic on integers is exact — :func:`_limb_plan` proves the
      bound per stage);
    * the negacyclic psi^i pre-twist is folded into the stage-1 matrix
      and the twiddle tables, and the inverse transform's
      ``psi^-j / n`` post-scale is folded into its twiddles and final
      stage matrix, so neither costs a separate pass;
    * the post-gemm reductions run in float64 too (quotients are below
      2^23, so ``g - rint(g/q) * q`` is exact), leaving the Shoup
      twiddle multiply as the only integer element-wise stage;
    * a ``(j, k, n)`` stack of polynomials over the same basis shares
      one dgemm pair — polynomial ``idx`` occupies column block ``idx``
      of the limb matrices — so the tensor step's four lifted operands
      or relinearisation's digit matrices transform in a single call.

    This is what "as fast as numpy allows" looks like for an exact NTT:
    the butterflies' many memory-bound element passes become a handful
    of compute-dense BLAS calls. Results are bit-identical to the
    per-row :class:`~repro.nttmath.ntt.NegacyclicTransformer` and to
    the paper-literal :func:`~repro.nttmath.ntt.ntt_iterative`.
    Instances are cached per ``(primes, n)`` via
    :func:`basis_transformer`.
    """

    def __init__(self, primes: tuple[int, ...], n: int,
                 geometry: _Geometry | None = None) -> None:
        self.primes = tuple(int(p) for p in primes)
        self.n = n
        self.stages = log2_exact(n)
        for p in self.primes:
            if p.bit_length() > _MAX_MODULUS_BITS - 1:
                raise ParameterError(
                    f"modulus {p} exceeds {_MAX_MODULUS_BITS - 1} bits; the "
                    "lazy-reduction datapath needs 4q < 2^32"
                )
            if (p - 1) % (2 * n) != 0:
                raise ParameterError(
                    f"modulus {p} is not NTT-friendly for degree {n}"
                )
        if geometry is None:
            geometry = _plan_geometry(n, max(self.primes))
        if geometry is None:
            raise ParameterError(
                f"degree {n} admits no exact limb-split factorisation; "
                "use the per-row path"
            )
        self.geometry = geometry
        self.factors = geometry.factors
        self.k = len(self.primes)
        self.primes_col = np.array(self.primes, dtype=np.int64)[:, None]
        # Modulus tables shared by both directions and the scratch pool.
        p_int = np.repeat(self.primes_col, n, axis=1)
        self._mod_tables = (p_int, p_int.astype(np.float64), 1.0 / p_int)
        self._fwd = _GemmPlan(self, inverse=False)
        self._inv = _GemmPlan(self, inverse=True)
        self._scaled_inv: dict[tuple[int, ...], _GemmPlan] = {}
        # Scratch is per thread: tile tasks running on pool workers each
        # get their own buffers, so concurrent tiles never alias.
        self._scratch = threading.local()
        # Channel-subset transformers for tiled dispatch, keyed (c0, c1).
        self._subsets: dict[tuple[int, int], BasisTransformer] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasisTransformer(k={self.k}, n={self.n}, "
                f"factors={self.factors})")

    # -- internals ---------------------------------------------------------------

    def _buffers(self) -> tuple[list, list, tuple[np.ndarray, ...]]:
        """Preallocated scratch, shared by both transform directions.

        Kept cache-sized on purpose: stacks are processed one
        polynomial at a time (whole-stack buffers would spill the
        last-level cache and turn every pass memory-bound), and forward
        and inverse share one set so the hot loop keeps touching the
        same buffers. Per stage: a float64 limb stack and a float64
        gemm output; shared: two int64 ping-pong state planes and one
        float64 temporary. The set is thread-local, so tile tasks
        executing on pool worker threads never share mutable state.
        """
        bufs = getattr(self._scratch, "bufs", None)
        if bufs is None:
            k, n = self.k, self.n
            limbs = []
            gemm_out = []
            for stage in self.geometry.stages:
                length = stage.length
                rest = n // length
                limbs.append(np.empty(
                    (k, stage.split.count * length, rest),
                    dtype=np.float64,
                ))
                gemm_out.append(np.empty((k, length, rest),
                                         dtype=np.float64))
            bufs = self._scratch.bufs = (
                limbs,
                gemm_out,
                (
                    np.empty((k, n), dtype=np.int64),    # state A
                    np.empty((k, n), dtype=np.int64),    # state B
                    np.empty((k, n), dtype=np.float64),  # float tmp
                ),
            )
        return bufs

    def _check(self, matrix: np.ndarray) -> tuple[np.ndarray, bool]:
        arr = np.asarray(matrix, dtype=np.int64)
        if arr.ndim == 2:
            stacked = False
            arr = arr[None, :, :]
        elif arr.ndim == 3:
            stacked = True
        else:
            raise ParameterError(
                f"expected a (k, n) matrix or (j, k, n) stack, got shape "
                f"{np.asarray(matrix).shape}"
            )
        if arr.shape[1] != self.k or arr.shape[2] != self.n:
            raise ParameterError(
                f"residue stack shape {arr.shape[1:]} does not match the "
                f"({self.k} x {self.n}) basis layout"
            )
        return arr, stacked

    # -- tiled dispatch ------------------------------------------------------------

    def subset(self, c0: int, c1: int) -> BasisTransformer:
        """A transformer for channels ``[c0, c1)`` of this basis.

        Built with *this* transformer's stage geometry forced, not the
        geometry the subset's own maximum prime would plan: the limb
        bound is monotone in the modulus, so the parent's proof covers
        every subset, and identical geometry means identical limb
        plans — tile output (lazy representatives included) is
        bit-for-bit the serial engine's. Cached per range; the cache
        is populated by the dispatching thread before fan-out, so
        worker threads only ever read it.
        """
        if c0 == 0 and c1 == self.k:
            return self
        sub = self._subsets.get((c0, c1))
        if sub is None:
            sub = BasisTransformer(self.primes[c0:c1], self.n,
                                   geometry=self.geometry)
            self._subsets[(c0, c1)] = sub
        return sub

    def scaled_plan(self, constants: tuple[int, ...]) -> _GemmPlan:
        """The cached scaled-inverse plan for one constants tuple."""
        plan = self._scaled_inv.get(constants)
        if plan is None:
            plan = _GemmPlan(self, inverse=True, channel_scale=constants)
            self._scaled_inv[constants] = plan
        return plan

    def _tile_plan(self, j: int, target: int) -> list[tuple[int, int, int]]:
        """Deterministic (poly, c0, c1) tiles, about ``target`` of them.

        Polynomials split first (free: no subset transformers needed),
        then channels, evenly per polynomial — the limb x channel
        decomposition the paper's residue-parallel datapath is built
        around.
        """
        chunks = split_range(self.k, max(1, -(-target // j)))
        return [(jdx, c0, c1) for jdx in range(j)
                for c0, c1 in chunks]

    def _dispatch(self, op: str, plan: _GemmPlan, arr: np.ndarray,
                  out: np.ndarray, lazy: bool = False,
                  constants: tuple[int, ...] | None = None) -> None:
        """Run one batched transform serially or tiled over the executor.

        The tiled path is taken only when the active executor has
        real workers and the batch clears :data:`PARALLEL_MIN_WORK`;
        it produces bit-identical output (disjoint tiles, inherited
        geometry), so the choice is invisible to every caller — and to
        the transform counters, which count at this dispatcher level
        either way.
        """
        j = arr.shape[0]
        executor = active_executor()
        tiles: list[tuple[int, int, int]] = []
        if (executor.workers > 1
                and j * self.k * self.n >= PARALLEL_MIN_WORK):
            tiles = self._tile_plan(j, 2 * executor.workers)
        if len(tiles) < 2:
            if op == "forward_broadcast":
                if j > 1:
                    # Digit stacks share one tall stage-0 dgemm (the
                    # broadcast fast path across relinearisation
                    # digits); a single row keeps the per-digit entry.
                    plan.apply_broadcast_many(self, arr, out, lazy=lazy)
                else:
                    plan.apply_broadcast(self, arr[0], out[0],
                                         lazy=lazy)
            else:
                for idx in range(j):
                    plan.apply(self, arr[idx], out[idx], lazy=lazy)
            return
        # Prebuild everything worker threads would otherwise race to
        # create lazily: subset transformers, their scaled plans, and
        # the Shoup twiddle tables. Process workers rebuild these in
        # their own interpreters, so only address-space-sharing
        # executors need the warm-up.
        if executor.shares_address_space:
            for c0, c1 in {(t[1], t[2]) for t in tiles}:
                sub = self.subset(c0, c1)
                if op == "inverse_scaled":
                    assert constants is not None
                    sub.scaled_plan(tuple(constants[c0:c1])).tables()
                elif op == "inverse":
                    sub._inv.tables()
                else:
                    sub._fwd.tables()
        common = (op, self.primes, self.n, bool(lazy), constants)
        timings = executor.map_array_tiles("ntt_tile", arr, out, tiles,
                                           common)
        tracer = active_tracer()
        if tracer is not None:
            # Real (possibly overlapping) per-tile intervals; the
            # timeline exporter spreads them over per-worker lanes.
            for timing in timings:
                jdx, c0, c1 = timing.tile
                tracer.add(f"{op}.tile", "tile", timing.start,
                           timing.end, clock="wall", worker=timing.worker,
                           poly=jdx, channels=[c0, c1])

    # -- public API ----------------------------------------------------------------

    def forward(self, matrix: np.ndarray,
                lazy: bool = False) -> np.ndarray:
        """Negacyclic forward NTT of every residue row, batched.

        ``matrix`` is a ``(k, n)`` residue matrix with entries in
        ``[0, q_i)`` or a ``(j, k, n)`` stack; the result has the same
        shape with canonical NTT-domain entries, bit-identical to the
        per-row reference transforms. With ``lazy=True`` the final
        conditional subtract is skipped and entries land in [0, 2q) —
        for consumers whose own reduction absorbs the slack (the tensor
        step's point-wise products).
        """
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        with maybe_span("ntt.forward", rows=arr.shape[0] * self.k,
                        n=self.n):
            self._dispatch("forward", self._fwd, arr, out, lazy=lazy)
        _count_transform("forward", arr.shape[0] * self.k)
        return out if stacked else out[0]

    def inverse(self, matrix: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT of every residue row, batched."""
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        with maybe_span("ntt.inverse", rows=arr.shape[0] * self.k,
                        n=self.n):
            self._dispatch("inverse", self._inv, arr, out)
        _count_transform("inverse", arr.shape[0] * self.k)
        return out if stacked else out[0]

    def inverse_scaled(self, matrix: np.ndarray,
                       constants: tuple[int, ...]) -> np.ndarray:
        """Inverse NTT with a per-channel constant multiply folded in.

        Channel ``c`` of the result equals
        ``(INTT_c(matrix[c]) * constants[c]) mod q_c`` — the constant
        rides along in the (linear) transform's twiddle table for free.
        This is how the evaluator fuses Scale's Block-1 ``Q~_k``
        multiplies into the tensor step's inverse transforms. Scaled
        plans are cached per constants tuple.
        """
        if len(constants) != self.k:
            raise ParameterError(
                f"need {self.k} channel constants, got {len(constants)}"
            )
        constants = tuple(int(c) for c in constants)
        plan = self.scaled_plan(constants)
        arr, stacked = self._check(matrix)
        out = np.empty_like(arr)
        with maybe_span("ntt.inverse_scaled", rows=arr.shape[0] * self.k,
                        n=self.n):
            self._dispatch("inverse_scaled", plan, arr, out,
                           constants=constants)
        _count_transform("inverse", arr.shape[0] * self.k)
        return out if stacked else out[0]

    def forward_broadcast(self, rows: np.ndarray,
                          lazy: bool = False) -> np.ndarray:
        """Forward NTT of each raw digit row under every basis prime.

        ``rows`` is a ``(j, n)`` matrix of non-negative values below
        2^30 (unreduced raw-residue digits); the result is ``(j, k, n)``
        with channel ``c`` of output ``i`` equal to the NTT of
        ``rows[i] mod primes[c]`` — bit-identical to broadcasting,
        reducing, and transforming per channel, at a fraction of the
        cost (see :meth:`_GemmPlan.apply_broadcast`).
        """
        arr = np.asarray(rows, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ParameterError(
                f"expected (j, {self.n}) digit rows, got {arr.shape}"
            )
        j = arr.shape[0]
        out = np.empty((j, self.k, self.n), dtype=np.int64)
        with maybe_span("ntt.forward_broadcast", rows=j * self.k,
                        n=self.n):
            self._dispatch("forward_broadcast", self._fwd, arr, out,
                           lazy=lazy)
        _count_transform("forward", j * self.k)
        return out

    def pointwise(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Element-wise modular product of NTT-domain matrices."""
        return (np.asarray(left, dtype=np.int64)
                * np.asarray(right, dtype=np.int64)) % self.primes_col

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two residue matrices, batched."""
        stack = np.stack([np.asarray(a, dtype=np.int64),
                          np.asarray(b, dtype=np.int64)])
        fa, fb = self.forward(stack)
        return self.inverse(self.pointwise(fa, fb))


class _GemmPlan:
    """Precomputed tables for one transform direction of a basis.

    The decomposition runs ``S`` sub-DFT stages (two for n <= 16384,
    three beyond — the recursive generalisation of the four-step) with
    a twiddle correction between consecutive stages. Per stage ``t``
    the float64 ``(k, L, c*L)`` limb-split sub-DFT matrix
    ``[W * 2^(b*(c-1)) mod q | ... | W * 2^b mod q | W]`` carries the
    stage's ``c`` limbs of ``b`` bits; the twiddle tables are flat
    int64 ``(k, n)`` planes (in the exact memory layout they are
    applied in) with lazily-built Shoup quotients. The psi pre-twist
    (forward) and the ``psi^-j / n`` post-scale (inverse) are folded
    into these tables, so :meth:`apply` runs no standalone scaling
    passes.

    Index algebra (the generalisation the tables implement): with
    ``n = f_0 * ... * f_{S-1}``, input index
    ``i = sum_t i_t * (n / P_t)`` and output index
    ``j = sum_t j_t * P_{t-1}`` (``P_t`` the prefix products),

    * stage ``t`` applies ``w_{f_t}^{i_t j_t}`` — the gemm matrix;
    * twiddle ``u`` (after stage ``u``) applies
      ``w_{P_{u+1}}^{i_{u+1} * (j mod P_u)}`` — everything that couples
      the next input axis to the outputs produced so far;
    * between stages the produced axis rotates behind the remaining
      input axes, so stage ``S-1``'s gemm emits the flat natural-order
      result with no final permutation.

    Setting ``S = 2`` reproduces the original four-step tables
    bit for bit.
    """

    def __init__(self, bt: BasisTransformer, inverse: bool,
                 channel_scale: tuple[int, ...] | None = None) -> None:
        k, n = bt.k, bt.n
        factors = bt.geometry.factors
        num = len(factors)
        prefix = []
        acc = 1
        for f in factors:
            acc *= f
            prefix.append(acc)   # P_t = f_0 * ... * f_t
        steps = [
            np.empty((k, stage.length,
                      stage.split.count * stage.length),
                     dtype=np.float64)
            for stage in bt.geometry.stages
        ]
        twiddles = [
            np.empty((k, n), dtype=np.int64) for _ in range(num - 1)
        ]
        order = 2 * n
        for ki, p in enumerate(bt.primes):
            psi = root_of_unity(order, p)
            if inverse:
                psi = modinv(psi, p)
            psi_pow = power_table(psi, order, p)
            inv_n = modinv(n, p) if inverse else 1
            for t, stage in enumerate(bt.geometry.stages):
                f = stage.length
                j = np.arange(f, dtype=np.int64)[:, None]
                i = np.arange(f, dtype=np.int64)[None, :]
                exp = 2 * (n // f) * j * i
                if not inverse and t == 0:
                    # psi^i pre-twist, i_0 part.
                    exp = exp + (n // factors[0]) * i
                if inverse and t == num - 1:
                    # psi^-j post-scale, j_{S-1} part.
                    exp = exp + (prefix[-2] if num > 1 else 1) * j
                w = psi_pow[exp % order]
                split = stage.split
                for block in range(split.count):
                    shift = split.bits * (split.count - 1 - block)
                    steps[t][ki, :, block * f: (block + 1) * f] = \
                        (w << shift) % p
            for u in range(num - 1):
                twiddles[u][ki] = self._twiddle_plane(
                    factors, prefix, u, psi_pow, order, p,
                    inverse=inverse,
                    inv_n=inv_n if u == 0 else 1,
                    channel_scale=(channel_scale[ki]
                                   if channel_scale is not None
                                   and u == 0 else 1),
                )
        self.steps = steps
        self._twiddles = twiddles
        self._primes_col = bt.primes_col
        self._flat: list[tuple[np.ndarray, np.ndarray]] | None = None

    @staticmethod
    def _twiddle_plane(factors, prefix, u, psi_pow, order, p, *,
                       inverse, inv_n, channel_scale) -> np.ndarray:
        """One channel's flat twiddle table after stage ``u``.

        Built directly in the application layout
        ``(j_u, i_{u+1}, ..., i_{S-1}, j_{u-1}, ..., j_0)``:
        ``w_{P_{u+1}}^{i_{u+1} * Jsum}`` with
        ``Jsum = sum_{w<=u} j_w P_{w-1}``, plus the folded-in psi
        twist (forward: ``psi^{i_{u+1} * n/P_{u+1}}``) or post-scale
        (inverse: ``psi^{-j_u P_{u-1}}`` and ``1/n`` on the first
        twiddle), and the per-channel constant of scaled inverses.
        """
        num = len(factors)
        n = prefix[-1]
        shape = ([factors[u]] + list(factors[u + 1:])
                 + list(reversed(factors[:u])))
        axes = len(shape)

        def along(values: np.ndarray, axis: int) -> np.ndarray:
            view = [1] * axes
            view[axis] = len(values)
            return values.reshape(view)

        j_u = np.arange(factors[u], dtype=np.int64)
        i_next = np.arange(factors[u + 1], dtype=np.int64)
        weight_u = prefix[u - 1] if u > 0 else 1
        jsum = along(j_u * weight_u, 0)
        for w in range(u):
            # Axis of j_w in the layout: after the remaining inputs,
            # reversed (j_{u-1} first).
            axis = 1 + (num - 1 - u) + (u - 1 - w)
            weight = prefix[w - 1] if w > 0 else 1
            jsum = jsum + along(
                np.arange(factors[w], dtype=np.int64) * weight, axis
            )
        stride = 2 * (n // prefix[u + 1])
        exp = along(i_next, 1) * (stride * jsum)
        exp = exp + (along(j_u * weight_u, 0) if inverse
                     else along((n // prefix[u + 1]) * i_next, 1))
        plane = psi_pow[np.broadcast_to(exp % order, shape)]
        scale = (inv_n * (channel_scale % p)) % p
        if scale != 1:
            plane = (plane * scale) % p
        return plane.reshape(-1)

    def tables(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-twiddle (table, Shoup quotients), lazily materialised."""
        if self._flat is None:
            self._flat = [
                (tw, _shoup_table(tw, self._primes_col))
                for tw in self._twiddles
            ]
        return self._flat

    @staticmethod
    def _reduce_lazy(g: np.ndarray, p_f: np.ndarray, inv_p: np.ndarray,
                     q_f: np.ndarray, out: np.ndarray) -> None:
        """Cast the exact float64 gemm output into lazy int64 [0, 2q).

        ``g`` holds exact integers at or below 2^53, so the float
        quotient ``rint(g / q)`` is off by at most one and
        ``g - rint(g/q) * q`` lands in (-q, q) — still exact, because
        every intermediate is an integer of magnitude at most 2^53
        (the limb plans reserve one modulus of overshoot headroom).
        Adding q gives the lazy representative with no integer
        division anywhere.
        """
        np.multiply(g, inv_p, out=q_f)
        np.rint(q_f, out=q_f)
        np.multiply(q_f, p_f, out=q_f)
        np.subtract(g, q_f, out=g)
        np.add(g, p_f, out=out, casting="unsafe")

    @staticmethod
    def _split_into(values: np.ndarray, limbs: np.ndarray,
                    split: _LimbSplit, scratch: np.ndarray) -> None:
        """Write the limb stack of one (B, L, C) block, top limb first.

        The ufuncs cast straight into the float64 limb buffer (exact:
        every limb is far below 2^53); middle limbs need a shift *and*
        a mask, staged through the int64 ``scratch`` (same shape as
        ``values``). For the classic two-limb split this is exactly the
        old shift + mask pair.
        """
        rows = values.shape[1]
        np.right_shift(values, split.bits * (split.count - 1),
                       out=limbs[:, :rows, :], casting="unsafe")
        mask = (1 << split.bits) - 1
        for block in range(1, split.count):
            dest = limbs[:, block * rows: (block + 1) * rows, :]
            shift = split.bits * (split.count - 1 - block)
            if shift:
                np.right_shift(values, shift, out=scratch)
                np.bitwise_and(scratch, mask, out=dest,
                               casting="unsafe")
            else:
                np.bitwise_and(values, mask, out=dest, casting="unsafe")

    def _transpose_axes(self, num: int, t: int) -> tuple[int, ...]:
        """Axis permutation moving stage ``t``'s output axis behind the
        remaining input axes (layout invariant of the stage loop)."""
        remaining = num - 1 - t
        return ((0,) + tuple(range(2, 2 + remaining)) + (1,)
                + tuple(range(2 + remaining, num + 1)))

    def _stage_shape(self, bt: BasisTransformer, t: int) -> tuple:
        """(k, j_t, i_{t+1}, ..., i_{S-1}, j_{t-1}, ..., j_0)."""
        factors = bt.geometry.factors
        return ((bt.k, factors[t]) + tuple(factors[t + 1:])
                + tuple(reversed(factors[:t])))

    def apply(self, bt: BasisTransformer, x: np.ndarray,
              out: np.ndarray, lazy: bool = False) -> None:
        """Transform one (k, n) matrix into ``out`` (natural order).

        Entries of ``x`` must be non-negative and below 2^30 (canonical
        residues and raw 30-bit digits always are — the bound the limb
        plans are proved exact against); ``out`` receives canonical
        [0, q) values (or lazy [0, 2q) ones when ``lazy`` is set).
        """
        f0 = bt.geometry.factors[0]
        self._run(bt, x.reshape(bt.k, f0, bt.n // f0), out, lazy,
                  broadcast=False)

    def apply_broadcast(self, bt: BasisTransformer, row: np.ndarray,
                        out: np.ndarray, lazy: bool = False) -> None:
        """Transform one raw digit row under *every* basis prime.

        ``row`` is a length-n vector of non-negative values below 2^30
        — typically an unreduced raw-residue digit. Because
        ``NTT_k(v) ≡ NTT_k(v mod q_k)`` and the engine's reductions are
        exact, ``out`` (shape (k, n)) is bit-identical to broadcasting
        the row across the basis, reducing per channel, and
        transforming each channel — but the shared source means one
        limb split and a single tall dgemm cover stage 1 of all k
        channels at once (the paper's fused WordDecomp + NTT digit
        pipeline).
        """
        f0 = bt.geometry.factors[0]
        self._run(bt, row.reshape(1, f0, bt.n // f0), out, lazy,
                  broadcast=True)

    def apply_broadcast_many(self, bt: BasisTransformer,
                             rows: np.ndarray, out: np.ndarray,
                             lazy: bool = False) -> None:
        """Broadcast-transform a whole digit stack with one shared
        stage-0 dgemm.

        ``rows`` is a ``(j, n)`` stack of raw digit rows, ``out`` the
        ``(j, k, n)`` result. Where :meth:`apply_broadcast` shares one
        limb split across the ``k`` channels of a *single* digit, this
        fast path additionally batches stage 0 across all ``j``
        digits: digit ``idx`` occupies column block ``idx`` of one
        shared ``(c0*f0, j*rest)`` limb matrix, so a single tall dgemm
        computes the first sub-DFT of every (digit, channel) pair —
        relinearisation's ``k`` digit transforms collapse from ``k``
        stage-0 gemm calls to one. Gemm columns are independent and
        every partial sum is an exact integer at or below 2^53, so the
        result is bit-identical to ``j`` separate
        :meth:`apply_broadcast` calls; the remaining stages re-enter
        the shared stage loop per digit via its ``stage0`` seed.
        """
        k, n = bt.k, bt.n
        stage = bt.geometry.stages[0]
        f0 = stage.length
        rest = n // f0
        j = rows.shape[0]
        c0 = stage.split.count
        cols = j * rest
        # Interleave digits along the column axis: column block idx of
        # (f0, j*rest) holds digit idx's (f0, rest) coefficient matrix.
        values = np.ascontiguousarray(
            rows.reshape(j, f0, rest).transpose(1, 0, 2)
        ).reshape(1, f0, cols)
        limbs = np.empty((1, c0 * f0, cols), dtype=np.float64)
        scratch = np.empty((1, f0, cols), dtype=np.int64)
        self._split_into(values, limbs, stage.split, scratch)
        g = np.empty((k * f0, cols), dtype=np.float64)
        np.matmul(self.steps[0].reshape(k * f0, c0 * f0), limbs[0],
                  out=g)
        p_col = np.repeat(bt.primes_col, f0, axis=0).astype(np.float64)
        q_f = np.empty_like(g)
        state = np.empty((k * f0, cols), dtype=np.int64)
        self._reduce_lazy(g, p_col, 1.0 / p_col, q_f, state)
        stacked = state.reshape(k, f0, j, rest)
        for idx in range(j):
            self._run(bt, None, out[idx], lazy, broadcast=False,
                      stage0=stacked[:, :, idx, :])

    def _run(self, bt: BasisTransformer, x: np.ndarray | None,
             out: np.ndarray, lazy: bool, broadcast: bool,
             stage0: np.ndarray | None = None) -> None:
        """The stage loop shared by :meth:`apply` and
        :meth:`apply_broadcast`: per stage — optional canonicalise,
        limb split, one dgemm, float reduction — with a Shoup twiddle
        multiply and an axis rotation between stages. A ``stage0``
        seed (the lazy ``(k, f0, rest)`` output of a stage-0 gemm
        computed elsewhere, see :meth:`apply_broadcast_many`) skips
        the first gemm and enters the loop at its twiddle."""
        k, n = bt.k, bt.n
        stages = bt.geometry.stages
        num = len(stages)
        limbs, gemm_out, (cur, alt, f_tmp) = bt._buffers()
        p_int, p_f, inv_p = bt._mod_tables
        twiddle_tables = self.tables()
        for t, stage in enumerate(stages):
            f = stage.length
            rest = n // f
            g = gemm_out[t]
            if t == 0 and stage0 is not None:
                np.copyto(cur.reshape(k, f, rest), stage0)
            else:
                source = x if t == 0 else cur.reshape(k, f, rest)
                if t == 0 and broadcast:
                    c0 = stage.split.count
                    shared = limbs[0].reshape(k * c0 * f, rest)[: c0 * f]
                    self._split_into(x, shared.reshape(1, c0 * f, rest),
                                     stage.split,
                                     alt.reshape(k, f, rest)[:1])
                    np.matmul(self.steps[t].reshape(k * f, c0 * f),
                              shared, out=g.reshape(k * f, rest))
                else:
                    if stage.canonical_in:
                        # The lazy [0, 2q) bound would force a wider
                        # limb split; one conditional subtract restores
                        # canonical inputs (unsigned-minimum trick).
                        np.subtract(cur, p_int, out=alt)
                        np.minimum(cur.view(np.uint64),
                                   alt.view(np.uint64),
                                   out=cur.view(np.uint64))
                    self._split_into(source, limbs[t], stage.split,
                                     alt.reshape(k, f, rest))
                    np.matmul(self.steps[t], limbs[t], out=g)
                self._reduce_lazy(g, p_f.reshape(g.shape),
                                  inv_p.reshape(g.shape),
                                  f_tmp.reshape(g.shape),
                                  cur.reshape(g.shape))
            if t < num - 1:
                tw, tw_sh = twiddle_tables[t]
                _shoup_mul(cur, tw, tw_sh, p_int, alt)
                # Rotate the produced axis behind the remaining input
                # axes (one strided copy), ping-ponging the state
                # planes.
                shape = self._stage_shape(bt, t)
                np.copyto(
                    alt.reshape(
                        tuple(shape[axis]
                              for axis in self._transpose_axes(num, t))
                    ),
                    cur.reshape(shape).transpose(
                        self._transpose_axes(num, t)
                    ),
                )
                cur, alt = alt, cur
        # The last stage's gemm emits the natural-order result: final
        # canonical reduction [0, 2q) -> [0, q) straight into the
        # caller's buffer (or the lazy copy).
        if lazy:
            np.copyto(out.reshape(k, n), cur)
        else:
            np.subtract(cur, p_int, out=alt)
            np.minimum(cur.view(np.uint64), alt.view(np.uint64),
                       out=out.reshape(k, n).view(np.uint64))



def _shoup_mul(values: np.ndarray, table: np.ndarray,
               table_shoup: np.ndarray, p_full: np.ndarray,
               q_buf: np.ndarray) -> None:
    """In-place ``values = values * table mod p``, lazily in [0, 2p).

    ``values`` must be < 2^32. The uint64 views keep the 64-bit product
    exact, and the *logical* right shift extracts the Shoup quotient
    (an arithmetic shift would sign-extend products above 2^63).
    """
    np.multiply(values.view(np.uint64), table_shoup.view(np.uint64),
                out=q_buf.view(np.uint64))
    np.right_shift(q_buf.view(np.uint64), _SHOUP_SHIFT,
                   out=q_buf.view(np.uint64))
    np.multiply(values, table, out=values)
    np.multiply(q_buf, p_full, out=q_buf)
    np.subtract(values, q_buf, out=values)


@lru_cache(maxsize=None)
def basis_transformer(primes: tuple[int, ...], n: int) -> BasisTransformer:
    """Shared, cached batched transformer for one ``(primes, n)`` basis."""
    return BasisTransformer(tuple(primes), n)


# -- dispatching entry points -----------------------------------------------------


def _per_row_forward(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    from ..poly.ring import ring_context

    n = matrix.shape[-1]
    rows = [
        ring_context(n, p).transformer.forward(row)
        for p, row in zip(primes, matrix, strict=True)
    ]
    return np.stack(rows)


def _per_row_inverse(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    from ..poly.ring import ring_context

    n = matrix.shape[-1]
    rows = [
        ring_context(n, p).transformer.inverse(row)
        for p, row in zip(primes, matrix, strict=True)
    ]
    return np.stack(rows)


def ntt_rows(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    """Forward-transform a residue matrix (or ``(j, k, n)`` stack).

    The production entry point every limb-loop call site was rewired
    onto: batched by default, per-row inside :func:`per_row_mode` (both
    modes update the transform counters, so telemetry comparisons stay
    meaningful).
    """
    if _use_per_row(primes, np.asarray(matrix).shape[-1]):
        arr = np.asarray(matrix, dtype=np.int64)
        out = (np.stack([_per_row_forward(primes, a) for a in arr])
               if arr.ndim == 3 else _per_row_forward(primes, arr))
        _count_transform("forward", int(np.prod(out.shape[:-1])))
        return out
    n = np.asarray(matrix).shape[-1]
    return basis_transformer(tuple(primes), n).forward(matrix)


def intt_rows_scaled(primes: tuple[int, ...], matrix: np.ndarray,
                     constants: tuple[int, ...]) -> np.ndarray:
    """Inverse-transform with per-channel constants folded in.

    Equivalent to ``(intt_rows(primes, matrix) * col(constants)) %
    col(primes)`` with the multiplies hidden inside the transform's
    twiddle tables; falls back to exactly that composition when the
    batched engine cannot run.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    n = arr.shape[-1]
    if _use_per_row(primes, n):
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        consts_col = np.array(
            [c % p for c, p in zip(constants, primes, strict=True)], dtype=np.int64
        )[:, None]
        return (intt_rows(primes, arr) * consts_col) % primes_col
    return basis_transformer(tuple(primes), n).inverse_scaled(
        arr, tuple(int(c) for c in constants)
    )


def ntt_broadcast_rows(primes: tuple[int, ...], rows: np.ndarray,
                       lazy: bool = False) -> np.ndarray:
    """Forward NTT of raw digit rows under every prime of ``primes``.

    The fused WordDecomp + NTT primitive: ``rows`` is ``(j, n)`` with
    non-negative entries below 2^30, the result ``(j, k, n)`` —
    bit-identical to broadcasting each row across the basis, reducing
    per channel, and calling :func:`ntt_rows`. Falls back to exactly
    that (per-row) recipe when the batched engine cannot run.
    """
    arr = np.asarray(rows, dtype=np.int64)
    n = arr.shape[-1]
    if _use_per_row(primes, n):
        primes_col = np.array(primes, dtype=np.int64)[:, None]
        tiled = arr[:, None, :] % primes_col[None, :, :]
        return ntt_rows(primes, tiled)
    return basis_transformer(tuple(primes), n).forward_broadcast(
        arr, lazy=lazy
    )


def intt_rows(primes: tuple[int, ...], matrix: np.ndarray) -> np.ndarray:
    """Inverse-transform a residue matrix (or stack); see :func:`ntt_rows`."""
    if _use_per_row(primes, np.asarray(matrix).shape[-1]):
        arr = np.asarray(matrix, dtype=np.int64)
        out = (np.stack([_per_row_inverse(primes, a) for a in arr])
               if arr.ndim == 3 else _per_row_inverse(primes, arr))
        _count_transform("inverse", int(np.prod(out.shape[:-1])))
        return out
    n = np.asarray(matrix).shape[-1]
    return basis_transformer(tuple(primes), n).inverse(matrix)
