"""Number Theoretic Transform (paper Alg. 1) and negacyclic wrappers.

Two implementations are provided on purpose:

* :func:`ntt_iterative` / :func:`intt_iterative` are literal, pure-Python
  transcriptions of the paper's Algorithm 1. They are the *reference*
  against which both the vectorised transforms and the hardware NTT unit
  (``repro.hw.ntt_unit``) are tested.
* :class:`NegacyclicTransformer` is the production path: numpy-vectorised,
  with precomputed twiddle factors, used by the FV evaluator and by the
  fast executor of the hardware simulator.

All moduli must fit in 31 bits so that a 30x30-bit product stays below
2^62 and int64 arithmetic is exact — the same width constraint the paper's
DSP-based multiplier imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from ..utils import log2_exact
from .bitrev import bit_reverse_permute, bit_reverse_permute_legacy
from .modmath import modinv, modpow
from .primes import root_of_unity

_MAX_MODULUS_BITS = 31

LEGACY_BITREV = False
"""When True, the vectorised per-row transforms re-derive their
bit-reversal index array per call, as the pre-caching code did.
Toggled by :func:`repro.nttmath.batch.per_row_mode` so the benchmark
baseline prices the complete pre-batching hot path."""


def _check_modulus(modulus: int) -> None:
    if modulus.bit_length() > _MAX_MODULUS_BITS:
        raise ParameterError(
            f"modulus {modulus} exceeds {_MAX_MODULUS_BITS} bits; int64 NTT "
            "arithmetic would overflow (use the RNS representation instead)"
        )


def ntt_iterative(coeffs: list[int], modulus: int, omega: int) -> list[int]:
    """Forward NTT exactly as in paper Algorithm 1 (pure Python integers).

    ``omega`` must be a primitive n-th root of unity modulo ``modulus``
    where ``n = len(coeffs)``. Input and output are in natural order; the
    bit-reversal permutation of line 1 happens internally.
    """
    n = len(coeffs)
    log2_exact(n)
    values = [c % modulus for c in bit_reverse_permute(list(coeffs))]
    m = 2
    while m <= n:
        w_m = modpow(omega, n // m, modulus)
        w = 1
        for j in range(m // 2):
            for k in range(0, n, m):
                t = (w * values[k + j + m // 2]) % modulus
                u = values[k + j]
                values[k + j] = (u + t) % modulus
                values[k + j + m // 2] = (u - t) % modulus
            w = (w * w_m) % modulus
        m *= 2
    return values


def intt_iterative(values: list[int], modulus: int, omega: int) -> list[int]:
    """Inverse NTT: forward transform with ``omega^-1`` then scale by ``n^-1``."""
    n = len(values)
    inv_omega = modinv(omega, modulus)
    inv_n = modinv(n, modulus)
    transformed = ntt_iterative(values, modulus, inv_omega)
    return [(value * inv_n) % modulus for value in transformed]


def power_table(base: int, count: int, modulus: int) -> np.ndarray:
    """``[base^0, base^1, ..., base^(count-1)] mod modulus`` in O(log count).

    Doubling construction: each round appends ``table * base^len`` to the
    existing table, so the whole ROM is built with log2(count) vectorised
    passes instead of a scalar Python loop. Requires a modulus below 31
    bits so the int64 products stay exact.
    """
    _check_modulus(modulus)
    table = np.ones(1, dtype=np.int64)
    table[0] = 1 % modulus
    filled = 1
    while filled < count:
        step = modpow(base, filled, modulus)
        take = min(filled, count - filled)
        table = np.concatenate([table, (table[:take] * step) % modulus])
        filled += take
    return table


def stage_twiddles(n: int, modulus: int, omega: int) -> list[np.ndarray]:
    """Per-stage twiddle factors ``w_m^j`` for stages m = 2, 4, ..., n.

    This is exactly the content of the twiddle-factor ROM the paper stores
    on-chip to avoid pipeline bubbles (Sec. V-A4); the hardware NTT unit
    reads its twiddles from here. Stage m's table is a strided read of
    the omega power table: ``w_m^j = omega^(j * n/m)``.
    """
    log2_exact(n)
    omega_pow = power_table(omega, max(n // 2, 1), modulus)
    tables = []
    m = 2
    while m <= n:
        tables.append(np.ascontiguousarray(omega_pow[:: n // m][: m // 2]))
        m *= 2
    return tables


def _ntt_vectorized(values: np.ndarray, modulus: int,
                    tables: list[np.ndarray]) -> np.ndarray:
    """Vectorised Cooley-Tukey NTT over a bit-reversed input copy."""
    n = values.shape[0]
    permute = bit_reverse_permute_legacy if LEGACY_BITREV \
        else bit_reverse_permute
    work = permute(values.astype(np.int64)) % modulus
    for stage, twiddles in enumerate(tables):
        m = 2 << stage
        half = m // 2
        blocks = work.reshape(n // m, m)
        left = blocks[:, :half]
        right = blocks[:, half:]
        t = (right * twiddles) % modulus
        u = left.copy()
        blocks[:, :half] = (u + t) % modulus
        blocks[:, half:] = (u - t) % modulus
    return work.reshape(n)


def negacyclic_convolution(a: list[int], b: list[int], modulus: int) -> list[int]:
    """Schoolbook negacyclic product ``a*b mod (x^n + 1, modulus)``.

    Quadratic and exact for arbitrary-precision moduli; used as the ground
    truth in tests and by the big-integer FV reference implementation.
    """
    n = len(a)
    if len(b) != n:
        raise ParameterError("operands must have equal length")
    result = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                result[k] += term
            else:
                result[k - n] -= term
    return [value % modulus for value in result]


@dataclass
class NegacyclicTransformer:
    """Vectorised negacyclic NTT context for ``Z_q[x]/(x^n + 1)``.

    Precomputes the 2n-th root of unity ``psi`` (so that ``omega = psi^2``),
    its power tables, and the per-stage twiddle ROM. The same tables are
    consumed by the hardware simulator, which guarantees that software and
    simulated hardware operate on identical constants.
    """

    n: int
    modulus: int
    psi: int = field(default=0)

    def __post_init__(self) -> None:
        log2_exact(self.n)
        _check_modulus(self.modulus)
        if (self.modulus - 1) % (2 * self.n) != 0:
            raise ParameterError(
                f"modulus {self.modulus} is not NTT-friendly for degree "
                f"{self.n}: need modulus ≡ 1 (mod {2 * self.n})"
            )
        if not self.psi:
            self.psi = root_of_unity(2 * self.n, self.modulus)
        self.omega = (self.psi * self.psi) % self.modulus
        self.inv_psi = modinv(self.psi, self.modulus)
        self.inv_omega = modinv(self.omega, self.modulus)
        self.inv_n = modinv(self.n, self.modulus)
        self.psi_powers = power_table(self.psi, self.n, self.modulus)
        self.inv_psi_powers = power_table(self.inv_psi, self.n, self.modulus)
        self.forward_tables = stage_twiddles(self.n, self.modulus, self.omega)
        self.inverse_tables = stage_twiddles(self.n, self.modulus, self.inv_omega)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward transform: scale by ``psi^i`` then plain NTT."""
        coeffs = np.asarray(coeffs, dtype=np.int64) % self.modulus
        if coeffs.shape != (self.n,):
            raise ParameterError(f"expected {self.n} coefficients")
        scaled = (coeffs * self.psi_powers) % self.modulus
        return _ntt_vectorized(scaled, self.modulus, self.forward_tables)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic inverse transform: plain INTT then scale by ``psi^-i/n``."""
        values = np.asarray(values, dtype=np.int64) % self.modulus
        if values.shape != (self.n,):
            raise ParameterError(f"expected {self.n} evaluation points")
        work = _ntt_vectorized(values, self.modulus, self.inverse_tables)
        work = (work * self.inv_n) % self.modulus
        return (work * self.inv_psi_powers) % self.modulus

    def pointwise(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Coefficient-wise modular product of two transformed polynomials."""
        return (np.asarray(left, dtype=np.int64)
                * np.asarray(right, dtype=np.int64)) % self.modulus

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic polynomial product via the convolution theorem."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))
