"""Prime generation for NTT-friendly RNS bases.

The paper builds its RNS from 30-bit primes. For the negacyclic NTT over
``Z[x]/(x^n + 1)`` each prime must satisfy ``p ≡ 1 (mod 2n)`` so that a
primitive ``2n``-th root of unity exists. This module finds such primes
deterministically (largest first, descending from ``2^bits``), so a given
``(bits, n, count)`` request always yields the same basis — important for
reproducible benchmarks.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import ParameterError
from .modmath import modpow

# Deterministic Miller-Rabin witness set: correct for all n < 3.3 * 10^24
# (Sorenson & Webster), which covers every modulus this library generates.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def is_prime(candidate: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit-scale integers."""
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        x = modpow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def _prime_factors(value: int) -> tuple[int, ...]:
    """Prime factorisation by trial division (used on p-1, ~30-bit values)."""
    factors = []
    remaining = value
    divisor = 2
    while divisor * divisor <= remaining:
        if remaining % divisor == 0:
            factors.append(divisor)
            while remaining % divisor == 0:
                remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return tuple(factors)


def primitive_root(prime: int) -> int:
    """Smallest primitive root modulo ``prime``."""
    if prime == 2:
        return 1
    order = prime - 1
    factors = _prime_factors(order)
    for candidate in range(2, prime):
        if all(modpow(candidate, order // f, prime) != 1 for f in factors):
            return candidate
    raise ParameterError(f"no primitive root found modulo {prime}")


def root_of_unity(order: int, prime: int) -> int:
    """A primitive ``order``-th root of unity modulo ``prime``.

    ``order`` must divide ``prime - 1``. The returned root ``w`` satisfies
    ``w^order == 1`` and ``w^(order/f) != 1`` for every prime factor ``f``
    of ``order``.
    """
    if (prime - 1) % order != 0:
        raise ParameterError(
            f"{order} does not divide {prime} - 1; no such root of unity"
        )
    generator = primitive_root(prime)
    root = modpow(generator, (prime - 1) // order, prime)
    # The construction above is already primitive of the requested order;
    # verify because the guarantee underpins all NTT correctness.
    for factor in _prime_factors(order):
        if modpow(root, order // factor, prime) == 1:  # pragma: no cover
            raise ParameterError(f"derived root is not primitive of order {order}")
    return root


def find_ntt_primes(bits: int, ring_degree: int, count: int) -> list[int]:
    """Find ``count`` distinct primes ``p < 2^bits`` with ``p ≡ 1 (mod 2n)``.

    Primes are returned in descending order starting from the largest
    qualifying prime below ``2^bits``, which keeps the basis deterministic.

    The paper uses ``bits=30``, ``ring_degree=4096``, and 13 primes in
    total (six for ``q``, seven more for ``Q``).
    """
    if not (ring_degree > 0 and (ring_degree & (ring_degree - 1)) == 0):
        raise ParameterError("ring_degree must be a power of two")
    if bits < 4:
        raise ParameterError("prime size must be at least 4 bits")
    step = 2 * ring_degree
    if step >= (1 << bits):
        raise ParameterError(
            f"2*ring_degree = {step} leaves no room below 2^{bits} for primes"
        )
    primes: list[int] = []
    # Largest value < 2^bits congruent to 1 mod 2n.
    candidate = ((1 << bits) - 2) // step * step + 1
    while len(primes) < count and candidate > step:
        if candidate.bit_length() == bits and is_prime(candidate):
            primes.append(candidate)
        candidate -= step
    if len(primes) < count:
        raise ParameterError(
            f"only found {len(primes)} of {count} NTT primes of {bits} bits "
            f"for ring degree {ring_degree}"
        )
    return primes
