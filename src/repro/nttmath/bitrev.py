"""Bit-reversal permutation used by the iterative NTT (paper Alg. 1, line 1)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..utils import log2_exact


def bit_reverse_int(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def _bit_reverse_indices_cached(length: int) -> tuple[int, ...]:
    bits = log2_exact(length)
    return tuple(bit_reverse_int(i, bits) for i in range(length))


def bit_reverse_indices(length: int) -> np.ndarray:
    """Index vector ``r`` with ``r[i] = bitreverse(i)`` for a power-of-two length."""
    return np.array(_bit_reverse_indices_cached(length), dtype=np.int64)


def bit_reverse_permute(values):
    """Return ``values`` permuted into bit-reversed order.

    Accepts a numpy array or a sequence; returns the same kind (array in,
    array out; list in, list out) so both the vectorised and the pure-int
    NTT paths can share it.
    """
    length = len(values)
    if length == 0 or length & (length - 1):
        raise ParameterError("bit reversal needs a power-of-two length")
    indices = _bit_reverse_indices_cached(length)
    if isinstance(values, np.ndarray):
        return values[np.asarray(indices, dtype=np.int64)]
    return [values[i] for i in indices]
