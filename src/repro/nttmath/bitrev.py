"""Bit-reversal permutation used by the iterative NTT (paper Alg. 1, line 1)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..utils import log2_exact


def bit_reverse_int(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=None)
def _bit_reverse_array_cached(length: int) -> np.ndarray:
    """Read-only cached index array (vectorised doubling build).

    The permutation for length 2L is ``[2*rev_L, 2*rev_L + 1]`` (an
    extra low bit shifts every reversed value up and the new leading
    bit selects the half), so the table for any power-of-two length is
    built in log2(length) numpy passes.
    """
    log2_exact(length)
    table = np.zeros(1, dtype=np.int64)
    while len(table) < length:
        table = np.concatenate([2 * table, 2 * table + 1])
    table.flags.writeable = False
    return table


def bit_reverse_indices(length: int) -> np.ndarray:
    """Index vector ``r`` with ``r[i] = bitreverse(i)`` for a power-of-two length.

    The returned array is a shared read-only cache entry — index with it
    freely, but copy before mutating.
    """
    return _bit_reverse_array_cached(length)


def bit_reverse_permute(values):
    """Return ``values`` permuted into bit-reversed order.

    Accepts a numpy array or a sequence; returns the same kind (array in,
    array out; list in, list out) so both the vectorised and the pure-int
    NTT paths can share it.
    """
    length = len(values)
    if length == 0 or length & (length - 1):
        raise ParameterError("bit reversal needs a power-of-two length")
    indices = _bit_reverse_array_cached(length)
    if isinstance(values, np.ndarray):
        return values[indices]
    return [values[int(i)] for i in indices]


@lru_cache(maxsize=None)
def _bit_reverse_tuple_cached(length: int) -> tuple[int, ...]:
    bits = log2_exact(length)
    return tuple(bit_reverse_int(i, bits) for i in range(length))


def bit_reverse_permute_legacy(values: np.ndarray) -> np.ndarray:
    """The pre-caching permutation: re-derive the index array per call.

    This is exactly what every transform paid before the per-``n``
    index-array cache landed — the cached *tuple* was converted to a
    fresh ndarray on each call. Kept verbatim so ``per_row_mode`` can
    price the pre-batching hot path faithfully.
    """
    indices = _bit_reverse_tuple_cached(len(values))
    return values[np.asarray(indices, dtype=np.int64)]
