"""Persistence: save and load keys and ciphertexts.

A cloud deployment (paper Fig. 11) needs durable key material on the
client and durable ciphertexts in flight. The wire formats here are
deliberately simple and self-describing: a small JSON header (magic,
version, parameter fingerprint, payload shapes) followed by raw
little-endian arrays — the ciphertext payload is byte-identical to the
DMA layout of :meth:`repro.fv.ciphertext.Ciphertext.to_wire_bytes`.

Ciphertext headers are versioned. Version 2 adds the **NTT-domain wire
format**: a ``domain`` flag (``"coeff"`` or ``"ntt"``) plus a payload
digest bound to that flag, so server-resident operands serialise
without an inverse transform and reload straight into the evaluation
domain — and a coefficient-domain payload whose header was mislabelled
as resident (or vice versa) is rejected instead of silently decrypted
as garbage. Version 1 files (no ``version`` field) remain loadable and
are always coefficient-domain.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

from .errors import EncodingError, ParameterError
from .fv.ciphertext import Ciphertext
from .fv.keys import KeySet, PublicKey, RelinKey, SecretKey
from .params import ParameterSet
from .poly.rns_poly import RnsPoly
from .rns.basis import basis_for

MAGIC = b"REPROFV1"

#: Current ciphertext header version (2 = domain-tagged wire format).
CIPHERTEXT_WIRE_VERSION = 2

#: Current key-material header version. Version 2 persists the secret
#: and public key NTT caches and tags every relinearisation /
#: Galois-key digit with an ``"ntt"``-domain payload digest, so loading
#: a key file performs **zero** key-material transforms — version-1
#: files (no ``version`` field) re-derive the caches as before.
KEYSET_WIRE_VERSION = 2

_WIRE_DOMAINS = ("coeff", "ntt")


def _payload_digest(domain: str, payload: bytes) -> str:
    """Short digest binding the payload bytes to their declared domain.

    Editing the header's domain flag without recomputing the digest —
    the "mislabelled resident payload" corruption — therefore fails
    closed at load time.
    """
    digest = hashlib.sha256()
    digest.update(domain.encode())
    digest.update(b":")
    digest.update(payload)
    return digest.hexdigest()[:16]


def _params_fingerprint(params: ParameterSet) -> dict:
    return {
        "name": params.name,
        "n": params.n,
        "q_primes": list(params.q_primes),
        "p_primes": list(params.p_primes),
        "t": params.t,
    }


def _check_fingerprint(header: dict, params: ParameterSet) -> None:
    expected = _params_fingerprint(params)
    found = header.get("params", {})
    if found != expected:
        raise ParameterError(
            "file was produced under different FV parameters "
            f"({found.get('name')!r} vs {expected['name']!r})"
        )


def _write(path: Path, header: dict, payload: bytes) -> None:
    header_bytes = json.dumps(header, sort_keys=True).encode()
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(payload)


def _read(path: Path) -> tuple[dict, bytes]:
    """Parse the magic/header/payload framing, failing *closed*.

    Any way a file can be short, bit-flipped or mis-framed must raise
    :class:`~repro.errors.EncodingError` — never a bare ``struct``,
    ``json`` or unicode error — so callers (and operators reading the
    stack trace) always see "corrupt wire file", not an internals leak.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[: len(MAGIC)] != MAGIC:
        raise EncodingError(f"{path} is not a repro FV file")
    offset = len(MAGIC)
    if len(blob) < offset + 4:
        raise EncodingError(f"{path} is truncated: header length missing")
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    if header_len > len(blob) - offset:
        raise EncodingError(
            f"{path} is truncated: header declares {header_len} bytes "
            f"but only {len(blob) - offset} follow"
        )
    try:
        header = json.loads(blob[offset: offset + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise EncodingError(
            f"{path} has a corrupt header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise EncodingError(
            f"{path} header is {type(header).__name__}, not an object"
        )
    return header, blob[offset + header_len:]


# -- ciphertexts ---------------------------------------------------------------------


def save_ciphertext(path, ct: Ciphertext) -> None:
    """Persist a ciphertext in its *current* domain (version-2 wire).

    NTT-resident ciphertexts serialise as-is — no inverse transform —
    with ``domain: "ntt"`` in the header; coefficient-domain ones write
    ``domain: "coeff"``. Mixed-domain ciphertexts are rejected by
    :meth:`~repro.fv.ciphertext.Ciphertext.to_wire_bytes`.
    """
    payload = ct.to_wire_bytes()
    domain = ct.domain
    header = {
        "kind": "ciphertext",
        "version": CIPHERTEXT_WIRE_VERSION,
        "parts": ct.size,
        "domain": domain,
        "digest": _payload_digest(domain, payload),
        "params": _params_fingerprint(ct.params),
    }
    _write(Path(path), header, payload)


def load_ciphertext(path, params: ParameterSet) -> Ciphertext:
    header, payload = _read(Path(path))
    if header.get("kind") != "ciphertext":
        raise EncodingError("file does not hold a ciphertext")
    _check_fingerprint(header, params)
    version = header.get("version", 1)
    if version > CIPHERTEXT_WIRE_VERSION:
        raise EncodingError(
            f"ciphertext wire version {version} is newer than this "
            f"library understands (<= {CIPHERTEXT_WIRE_VERSION})"
        )
    if version >= 2:
        domain = header.get("domain")
        if domain not in _WIRE_DOMAINS:
            raise EncodingError(
                f"unknown ciphertext domain {domain!r}; expected one of "
                f"{_WIRE_DOMAINS}"
            )
        declared_digest = header.get("digest")
        if declared_digest != _payload_digest(domain, payload):
            raise EncodingError(
                f"ciphertext payload does not match its declared "
                f"{domain!r}-domain digest — corrupted file or "
                "mislabelled domain flag"
            )
    else:
        # Version-1 files predate the domain flag: always coefficients.
        domain = "coeff"
    basis = basis_for(params.q_primes)
    ct = Ciphertext.from_bytes(payload, params, basis,
                               ntt_domain=domain == "ntt")
    # The header declares the part count; a truncated three-part blob
    # can still be a *valid* two-part length, so the payload-inferred
    # count alone cannot catch the corruption.
    declared = header.get("parts", ct.size)
    if declared != ct.size:
        raise EncodingError(
            f"ciphertext payload holds {ct.size} parts but the header "
            f"declares {declared} — truncated or corrupted file"
        )
    return ct


# -- keys -----------------------------------------------------------------------------


def _matrix_bytes(matrix: np.ndarray) -> bytes:
    return matrix.astype("<i8").tobytes()


def _matrix_from(payload: bytes, offset: int, rows: int,
                 cols: int) -> tuple[np.ndarray, int]:
    count = rows * cols
    end = offset + 8 * count
    if end > len(payload):
        raise EncodingError("key file truncated: matrix payload missing")
    matrix = np.frombuffer(payload[offset:end], dtype="<i8").reshape(
        rows, cols
    ).astype(np.int64)
    return matrix, end


def _pair_digest(b_ntt: np.ndarray, a_ntt: np.ndarray) -> str:
    return _payload_digest("ntt", _matrix_bytes(b_ntt) + _matrix_bytes(a_ntt))


def save_keyset(path, keys: KeySet, params: ParameterSet) -> None:
    """Persist secret, public, and relinearisation keys in one file.

    The secret key is included — this is a client-side credential file;
    treat it like one.

    Version 2 additionally persists the NTT caches (``s_ntt``,
    ``p0_ntt``, ``p1_ntt``) and tags every relinearisation digit with
    an NTT-domain payload digest, so :func:`load_keyset` rebuilds the
    key set without a single forward transform. Key material missing
    its NTT cache (hand-built test fixtures) is transformed here, at
    save time, once.
    """
    k_q, n = params.k_q, params.n
    secret, public = keys.secret, keys.public
    if (secret.ntt_rows is None or public.p0_ntt is None
            or public.p1_ntt is None):
        from .fv.scheme import FvContext

        context = FvContext(params, seed=0)
        if secret.ntt_rows is None:
            secret.ntt_rows = context._ntt_rows(secret.rns.residues)
        if public.p0_ntt is None:
            public.p0_ntt = context._ntt_rows(public.p0.residues)
        if public.p1_ntt is None:
            public.p1_ntt = context._ntt_rows(public.p1.residues)
    ntt_blob = (_matrix_bytes(secret.ntt_rows)
                + _matrix_bytes(public.p0_ntt)
                + _matrix_bytes(public.p1_ntt))
    blobs = [
        secret.coeffs.astype("<i8").tobytes(),
        _matrix_bytes(public.p0.residues),
        _matrix_bytes(public.p1.residues),
        ntt_blob,
    ]
    digests = []
    for b_ntt, a_ntt in keys.relin.pairs:
        blobs.append(_matrix_bytes(b_ntt))
        blobs.append(_matrix_bytes(a_ntt))
        digests.append(_pair_digest(b_ntt, a_ntt))
    header = {
        "kind": "keyset",
        "version": KEYSET_WIRE_VERSION,
        "relin_components": keys.relin.num_components,
        "ntt_digest": _payload_digest("ntt", ntt_blob),
        "relin_digests": digests,
        "params": _params_fingerprint(params),
    }
    _write(Path(path), header, b"".join(blobs))


def load_keyset(path, params: ParameterSet) -> KeySet:
    """Rebuild a :class:`~repro.fv.keys.KeySet` from a key file.

    Version-2 files reload every NTT cache straight from the payload —
    zero key-material transforms, verified by the per-digit digests.
    Version-1 files (no ``version`` field) predate the caches and
    re-derive them here, paying the full key transforms they always
    did.
    """
    header, payload = _read(Path(path))
    if header.get("kind") != "keyset":
        raise EncodingError("file does not hold a key set")
    _check_fingerprint(header, params)
    version = header.get("version", 1)
    if version > KEYSET_WIRE_VERSION:
        raise EncodingError(
            f"keyset wire version {version} is newer than this library "
            f"understands (<= {KEYSET_WIRE_VERSION})"
        )
    k_q, n = params.k_q, params.n
    basis = basis_for(params.q_primes)

    components = header.get("relin_components")
    # A flipped or missing header field must not drive the payload walk
    # into a numpy shape error (or a multi-gigabyte allocation).
    max_components = len(payload) // (8 * n) + 1
    if (not isinstance(components, int) or isinstance(components, bool)
            or not 0 <= components <= max_components):
        raise EncodingError(
            f"key file declares an implausible relinearisation component "
            f"count ({components!r}) — corrupted header"
        )
    if len(payload) < 8 * n:
        raise EncodingError("key file truncated: secret key missing")
    offset = 0
    s_coeffs = np.frombuffer(payload[: 8 * n], dtype="<i8").astype(np.int64)
    offset = 8 * n
    p0, offset = _matrix_from(payload, offset, k_q, n)
    p1, offset = _matrix_from(payload, offset, k_q, n)
    s_ntt = p0_ntt = p1_ntt = None
    if version >= 2:
        ntt_start = offset
        s_ntt, offset = _matrix_from(payload, offset, k_q, n)
        p0_ntt, offset = _matrix_from(payload, offset, k_q, n)
        p1_ntt, offset = _matrix_from(payload, offset, k_q, n)
        if (header.get("ntt_digest")
                != _payload_digest("ntt", payload[ntt_start:offset])):
            raise EncodingError(
                "key NTT caches do not match their declared digest — "
                "corrupted file"
            )
    digests = header.get("relin_digests", [])
    if version >= 2 and (not isinstance(digests, list)
                         or len(digests) != components):
        raise EncodingError(
            "key file declares a relinearisation digest list that does "
            "not match its component count — corrupted header"
        )
    pairs = []
    for i in range(components):
        b_ntt, offset = _matrix_from(payload, offset, k_q, n)
        a_ntt, offset = _matrix_from(payload, offset, k_q, n)
        if version >= 2 and digests[i] != _pair_digest(b_ntt, a_ntt):
            raise EncodingError(
                f"relinearisation digit {i} does not match its declared "
                "NTT-domain digest — corrupted file"
            )
        pairs.append((b_ntt, a_ntt))
    if offset != len(payload):
        raise EncodingError("key file has trailing or missing bytes")

    s_rows = s_coeffs[None, :] % basis.primes_col
    if version < 2:
        # Version-1 files predate the persisted caches: re-derive them,
        # paying the full key transforms of the old format.
        from .fv.scheme import FvContext

        context = FvContext(params, seed=0)
        s_ntt = context._ntt_rows(s_rows)
        p0_ntt = context._ntt_rows(p0)
        p1_ntt = context._ntt_rows(p1)
    secret = SecretKey(
        coeffs=s_coeffs,
        rns=RnsPoly(basis, s_rows),
        ntt_rows=s_ntt,
    )
    public = PublicKey(
        p0=RnsPoly(basis, p0),
        p1=RnsPoly(basis, p1),
        p0_ntt=p0_ntt,
        p1_ntt=p1_ntt,
    )
    return KeySet(secret=secret, public=public,
                  relin=RelinKey(pairs=pairs), basis=basis)


def save_galois_keys(path, keys: dict, params: ParameterSet) -> None:
    """Persist a labelled Galois key bundle NTT-domain (version 2).

    ``keys`` maps labels — rotation step counts or ``"conjugate"``, as
    produced by :meth:`~repro.fv.galois.GaloisEngine.rotation_keygen`
    and ``summation_keygen`` — to :class:`~repro.fv.galois.GaloisKey`
    objects. The (b, a) digit pairs are written exactly as the engine
    holds them (NTT domain), each tagged with a payload digest, so a
    reload performs zero key transforms.
    """
    entries = []
    blobs = []
    for label, key in keys.items():
        digests = []
        for b_ntt, a_ntt in key.pairs:
            pair_bytes = _matrix_bytes(b_ntt) + _matrix_bytes(a_ntt)
            blobs.append(pair_bytes)
            digests.append(_payload_digest("ntt", pair_bytes))
        entries.append({
            "label": str(label),
            "element": key.element,
            "components": len(key.pairs),
            "digests": digests,
        })
    header = {
        "kind": "galois_keys",
        "version": KEYSET_WIRE_VERSION,
        "entries": entries,
        "params": _params_fingerprint(params),
    }
    _write(Path(path), header, b"".join(blobs))


def load_galois_keys(path, params: ParameterSet) -> dict:
    """Rebuild a labelled Galois key bundle saved by
    :func:`save_galois_keys`.

    Integer labels come back as ``int`` (rotation steps); the
    ``"conjugate"`` label stays a string — the mapping plugs straight
    into ``GaloisEngine.rotate`` / ``sum_all_slots``. Every digit is
    checked against its NTT-domain digest and no transform runs.
    """
    from .fv.galois import GaloisKey

    header, payload = _read(Path(path))
    if header.get("kind") != "galois_keys":
        raise EncodingError("file does not hold Galois keys")
    _check_fingerprint(header, params)
    version = header.get("version", 1)
    if version > KEYSET_WIRE_VERSION:
        raise EncodingError(
            f"Galois key wire version {version} is newer than this "
            f"library understands (<= {KEYSET_WIRE_VERSION})"
        )
    entries = header.get("entries")
    if not isinstance(entries, list):
        raise EncodingError(
            "Galois key file declares no entry table — corrupted header"
        )
    k_q, n = params.k_q, params.n
    max_components = len(payload) // (8 * n) + 1
    keys: dict = {}
    offset = 0
    for entry in entries:
        if not isinstance(entry, dict):
            raise EncodingError("Galois key entry is not an object")
        components = entry.get("components")
        if (not isinstance(components, int) or isinstance(components, bool)
                or not 0 <= components <= max_components):
            raise EncodingError(
                f"Galois key entry declares an implausible component "
                f"count ({components!r}) — corrupted header"
            )
        digests = entry.get("digests")
        if not isinstance(digests, list) or len(digests) != components:
            raise EncodingError(
                "Galois key entry digest list does not match its "
                "component count — corrupted header"
            )
        label = entry.get("label")
        element = entry.get("element")
        if not isinstance(label, str) or not isinstance(element, int):
            raise EncodingError(
                "Galois key entry is missing its label or element"
            )
        pairs = []
        for i in range(components):
            b_ntt, offset = _matrix_from(payload, offset, k_q, n)
            a_ntt, offset = _matrix_from(payload, offset, k_q, n)
            if digests[i] != _pair_digest(b_ntt, a_ntt):
                raise EncodingError(
                    f"Galois key {label!r} digit {i} does not match its "
                    "declared NTT-domain digest — corrupted file"
                )
            pairs.append((b_ntt, a_ntt))
        if label == "conjugate":
            resolved: object = label
        else:
            try:
                resolved = int(label)
            except ValueError as exc:
                raise EncodingError(
                    f"Galois key label {label!r} is neither a step count "
                    "nor 'conjugate' — corrupted header"
                ) from exc
        keys[resolved] = GaloisKey(element=element, pairs=pairs)
    if offset != len(payload):
        raise EncodingError("Galois key file has trailing or missing bytes")
    return keys
