"""Persistence: save and load keys and ciphertexts.

A cloud deployment (paper Fig. 11) needs durable key material on the
client and durable ciphertexts in flight. The wire formats here are
deliberately simple and self-describing: a small JSON header (magic,
version, parameter fingerprint, payload shapes) followed by raw
little-endian arrays — the ciphertext payload is byte-identical to the
DMA layout of :meth:`repro.fv.ciphertext.Ciphertext.to_wire_bytes`.

Ciphertext headers are versioned. Version 2 adds the **NTT-domain wire
format**: a ``domain`` flag (``"coeff"`` or ``"ntt"``) plus a payload
digest bound to that flag, so server-resident operands serialise
without an inverse transform and reload straight into the evaluation
domain — and a coefficient-domain payload whose header was mislabelled
as resident (or vice versa) is rejected instead of silently decrypted
as garbage. Version 1 files (no ``version`` field) remain loadable and
are always coefficient-domain.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

from .errors import EncodingError, ParameterError
from .fv.ciphertext import Ciphertext
from .fv.keys import KeySet, PublicKey, RelinKey, SecretKey
from .params import ParameterSet
from .poly.rns_poly import RnsPoly
from .rns.basis import basis_for

MAGIC = b"REPROFV1"

#: Current ciphertext header version (2 = domain-tagged wire format).
CIPHERTEXT_WIRE_VERSION = 2

_WIRE_DOMAINS = ("coeff", "ntt")


def _payload_digest(domain: str, payload: bytes) -> str:
    """Short digest binding the payload bytes to their declared domain.

    Editing the header's domain flag without recomputing the digest —
    the "mislabelled resident payload" corruption — therefore fails
    closed at load time.
    """
    digest = hashlib.sha256()
    digest.update(domain.encode())
    digest.update(b":")
    digest.update(payload)
    return digest.hexdigest()[:16]


def _params_fingerprint(params: ParameterSet) -> dict:
    return {
        "name": params.name,
        "n": params.n,
        "q_primes": list(params.q_primes),
        "p_primes": list(params.p_primes),
        "t": params.t,
    }


def _check_fingerprint(header: dict, params: ParameterSet) -> None:
    expected = _params_fingerprint(params)
    found = header.get("params", {})
    if found != expected:
        raise ParameterError(
            "file was produced under different FV parameters "
            f"({found.get('name')!r} vs {expected['name']!r})"
        )


def _write(path: Path, header: dict, payload: bytes) -> None:
    header_bytes = json.dumps(header, sort_keys=True).encode()
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(payload)


def _read(path: Path) -> tuple[dict, bytes]:
    """Parse the magic/header/payload framing, failing *closed*.

    Any way a file can be short, bit-flipped or mis-framed must raise
    :class:`~repro.errors.EncodingError` — never a bare ``struct``,
    ``json`` or unicode error — so callers (and operators reading the
    stack trace) always see "corrupt wire file", not an internals leak.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[: len(MAGIC)] != MAGIC:
        raise EncodingError(f"{path} is not a repro FV file")
    offset = len(MAGIC)
    if len(blob) < offset + 4:
        raise EncodingError(f"{path} is truncated: header length missing")
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    if header_len > len(blob) - offset:
        raise EncodingError(
            f"{path} is truncated: header declares {header_len} bytes "
            f"but only {len(blob) - offset} follow"
        )
    try:
        header = json.loads(blob[offset: offset + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise EncodingError(
            f"{path} has a corrupt header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise EncodingError(
            f"{path} header is {type(header).__name__}, not an object"
        )
    return header, blob[offset + header_len:]


# -- ciphertexts ---------------------------------------------------------------------


def save_ciphertext(path, ct: Ciphertext) -> None:
    """Persist a ciphertext in its *current* domain (version-2 wire).

    NTT-resident ciphertexts serialise as-is — no inverse transform —
    with ``domain: "ntt"`` in the header; coefficient-domain ones write
    ``domain: "coeff"``. Mixed-domain ciphertexts are rejected by
    :meth:`~repro.fv.ciphertext.Ciphertext.to_wire_bytes`.
    """
    payload = ct.to_wire_bytes()
    domain = ct.domain
    header = {
        "kind": "ciphertext",
        "version": CIPHERTEXT_WIRE_VERSION,
        "parts": ct.size,
        "domain": domain,
        "digest": _payload_digest(domain, payload),
        "params": _params_fingerprint(ct.params),
    }
    _write(Path(path), header, payload)


def load_ciphertext(path, params: ParameterSet) -> Ciphertext:
    header, payload = _read(Path(path))
    if header.get("kind") != "ciphertext":
        raise EncodingError("file does not hold a ciphertext")
    _check_fingerprint(header, params)
    version = header.get("version", 1)
    if version > CIPHERTEXT_WIRE_VERSION:
        raise EncodingError(
            f"ciphertext wire version {version} is newer than this "
            f"library understands (<= {CIPHERTEXT_WIRE_VERSION})"
        )
    if version >= 2:
        domain = header.get("domain")
        if domain not in _WIRE_DOMAINS:
            raise EncodingError(
                f"unknown ciphertext domain {domain!r}; expected one of "
                f"{_WIRE_DOMAINS}"
            )
        declared_digest = header.get("digest")
        if declared_digest != _payload_digest(domain, payload):
            raise EncodingError(
                f"ciphertext payload does not match its declared "
                f"{domain!r}-domain digest — corrupted file or "
                "mislabelled domain flag"
            )
    else:
        # Version-1 files predate the domain flag: always coefficients.
        domain = "coeff"
    basis = basis_for(params.q_primes)
    ct = Ciphertext.from_bytes(payload, params, basis,
                               ntt_domain=domain == "ntt")
    # The header declares the part count; a truncated three-part blob
    # can still be a *valid* two-part length, so the payload-inferred
    # count alone cannot catch the corruption.
    declared = header.get("parts", ct.size)
    if declared != ct.size:
        raise EncodingError(
            f"ciphertext payload holds {ct.size} parts but the header "
            f"declares {declared} — truncated or corrupted file"
        )
    return ct


# -- keys -----------------------------------------------------------------------------


def _matrix_bytes(matrix: np.ndarray) -> bytes:
    return matrix.astype("<i8").tobytes()


def _matrix_from(payload: bytes, offset: int, rows: int,
                 cols: int) -> tuple[np.ndarray, int]:
    count = rows * cols
    end = offset + 8 * count
    if end > len(payload):
        raise EncodingError("key file truncated: matrix payload missing")
    matrix = np.frombuffer(payload[offset:end], dtype="<i8").reshape(
        rows, cols
    ).astype(np.int64)
    return matrix, end


def save_keyset(path, keys: KeySet, params: ParameterSet) -> None:
    """Persist secret, public, and relinearisation keys in one file.

    The secret key is included — this is a client-side credential file;
    treat it like one.
    """
    k_q, n = params.k_q, params.n
    blobs = [
        keys.secret.coeffs.astype("<i8").tobytes(),
        _matrix_bytes(keys.public.p0.residues),
        _matrix_bytes(keys.public.p1.residues),
    ]
    for b_ntt, a_ntt in keys.relin.pairs:
        blobs.append(_matrix_bytes(b_ntt))
        blobs.append(_matrix_bytes(a_ntt))
    header = {
        "kind": "keyset",
        "relin_components": keys.relin.num_components,
        "params": _params_fingerprint(params),
    }
    _write(Path(path), header, b"".join(blobs))


def load_keyset(path, params: ParameterSet) -> KeySet:
    header, payload = _read(Path(path))
    if header.get("kind") != "keyset":
        raise EncodingError("file does not hold a key set")
    _check_fingerprint(header, params)
    k_q, n = params.k_q, params.n
    basis = basis_for(params.q_primes)

    components = header.get("relin_components")
    # A flipped or missing header field must not drive the payload walk
    # into a numpy shape error (or a multi-gigabyte allocation).
    max_components = len(payload) // (8 * n) + 1
    if (not isinstance(components, int) or isinstance(components, bool)
            or not 0 <= components <= max_components):
        raise EncodingError(
            f"key file declares an implausible relinearisation component "
            f"count ({components!r}) — corrupted header"
        )
    if len(payload) < 8 * n:
        raise EncodingError("key file truncated: secret key missing")
    offset = 0
    s_coeffs = np.frombuffer(payload[: 8 * n], dtype="<i8").astype(np.int64)
    offset = 8 * n
    p0, offset = _matrix_from(payload, offset, k_q, n)
    p1, offset = _matrix_from(payload, offset, k_q, n)
    pairs = []
    for _ in range(components):
        b_ntt, offset = _matrix_from(payload, offset, k_q, n)
        a_ntt, offset = _matrix_from(payload, offset, k_q, n)
        pairs.append((b_ntt, a_ntt))
    if offset != len(payload):
        raise EncodingError("key file has trailing or missing bytes")

    from .fv.scheme import FvContext

    context = FvContext(params, seed=0)
    s_rows = s_coeffs[None, :] % basis.primes_col
    secret = SecretKey(
        coeffs=s_coeffs,
        rns=RnsPoly(basis, s_rows),
        ntt_rows=context._ntt_rows(s_rows),
    )
    public = PublicKey(
        p0=RnsPoly(basis, p0),
        p1=RnsPoly(basis, p1),
        p0_ntt=context._ntt_rows(p0),
        p1_ntt=context._ntt_rows(p1),
    )
    return KeySet(secret=secret, public=public,
                  relin=RelinKey(pairs=pairs), basis=basis)
