"""Retry policy: exponential backoff with deterministic jitter.

When a shard crash spills a job (or a transient fault kills one in the
queue), the cluster re-routes it after a backoff delay. The delay
grows exponentially per attempt and carries a small multiplicative
jitter so a board's whole spilled queue does not re-arrive as one
thundering herd at an identical instant — but the jitter is drawn from
``default_rng((seed, token, attempt))``, a pure function of the policy
seed and the job's identity, so replaying a run reproduces every
backoff to the bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the cluster's failure-recovery path."""

    #: Total tries per job including the first routing (so 4 means the
    #: original attempt plus up to three retries).
    max_attempts: int = 4
    #: Backoff before the first retry; doubles (times ``multiplier``)
    #: per subsequent attempt. The default is on the order of a few
    #: Mult service times — long enough to clear a transient, short
    #: enough to stay inside a request deadline.
    base_backoff_seconds: float = 0.002
    multiplier: float = 2.0
    #: Jitter fraction: the drawn delay is uniform in
    #: ``[backoff * (1 - jitter), backoff * (1 + jitter)]``.
    jitter: float = 0.1
    #: Optional cap on the *total* number of retries the cluster will
    #: schedule across the whole run (a retry storm breaker). ``None``
    #: means unbounded.
    total_budget: int | None = None
    #: Optional per-job deadline, measured from the job's first
    #: arrival: retries are stamped with
    #: ``first_arrival + deadline_seconds`` so a job cannot queue-camp
    #: forever on a recovering cluster. ``None`` leaves any deadline
    #: already on the job untouched.
    deadline_seconds: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_backoff_seconds < 0:
            raise ValueError("backoff cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff must be non-decreasing")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_seconds(self, attempt: int, token: int = 0) -> float:
        """Deterministic jittered delay before retry ``attempt``.

        ``attempt`` counts retries from 1; ``token`` identifies the job
        (its index) so two jobs spilled by one crash fan back in at
        distinct instants instead of a synchronised herd.
        """
        if attempt < 1:
            raise ValueError("attempts count from 1")
        base = self.base_backoff_seconds * self.multiplier ** (attempt - 1)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng((self.seed, token, attempt))
        return base * float(rng.uniform(1.0 - self.jitter,
                                        1.0 + self.jitter))
