"""Deterministic fault schedules for the cluster chaos harness.

A :class:`FaultPlan` is a *pre-drawn*, time-sorted list of
:class:`FaultEvent`\\s that the cluster's stepping loop replays against
its shards: board crashes and recoveries, transient in-queue job
failures, and DMA stalls that multiply a board's service times until
the matching resume. Everything is drawn up front from one
``numpy`` generator seeded by the plan seed, so two clusters driven by
the same plan observe byte-identical fault timelines — the property
the chaos determinism tests gate on.

The plan is pure data: it knows nothing about shards or jobs. The
cluster interprets the events (:mod:`repro.cluster.cluster`); the
guarantees about *surviving* them — zero accepted-job loss, bounded
p99 inflation — live in the bench gates, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FaultKind(Enum):
    """What breaks (or heals) at one instant of the schedule."""

    #: The board dies: state UP -> DOWN, every queued and in-flight job
    #: spills back to the cluster edge for retry.
    SHARD_CRASH = "shard_crash"
    #: The board returns to service with empty queues and cold caches.
    SHARD_RECOVER = "shard_recover"
    #: One queued job on the board fails transiently (bit flip, DMA
    #: CRC error) and re-enters the retry path.
    JOB_FAIL = "job_fail"
    #: The board's DMA engine degrades: service times multiply by
    #: ``factor`` until the matching resume.
    DMA_STALL = "dma_stall"
    #: The stall clears; service times return to nominal.
    DMA_RESUME = "dma_resume"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: when, what, and which board."""

    time_seconds: float
    kind: FaultKind
    shard: int
    #: Service-time multiplier for DMA_STALL events (ignored elsewhere).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time_seconds < 0:
            raise ValueError("fault events cannot predate the run")
        if self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.kind is FaultKind.DMA_STALL and self.factor < 1.0:
            raise ValueError("a DMA stall cannot speed the board up")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, time-sorted schedule of fault events (pure data)."""

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        times = [e.time_seconds for e in self.events]
        if times != sorted(times):
            raise ValueError("fault events must be time-sorted")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def none(cls) -> FaultPlan:
        """The empty plan (a faultless run, for twin-run comparisons)."""
        return cls(events=(), seed=None)

    @classmethod
    def board_kill(cls, shard: int, at_seconds: float,
                   recover_at: float | None = None) -> FaultPlan:
        """The chaos-bench scenario: one board dies mid-run.

        With ``recover_at`` set the board comes back (cold) at that
        instant; otherwise it stays down for the rest of the run.
        """
        events = [FaultEvent(at_seconds, FaultKind.SHARD_CRASH, shard)]
        if recover_at is not None:
            if recover_at <= at_seconds:
                raise ValueError("recovery must follow the crash")
            events.append(
                FaultEvent(recover_at, FaultKind.SHARD_RECOVER, shard))
        return cls(events=tuple(events), seed=None)

    @classmethod
    def seeded(cls, seed: int, num_shards: int, duration_seconds: float,
               *, crashes: int = 1, mean_outage_seconds: float | None = None,
               transient_failures: int = 0, dma_stalls: int = 0,
               stall_factor: float = 4.0,
               mean_stall_seconds: float | None = None) -> FaultPlan:
        """Draw a random-but-reproducible schedule from one seed.

        Crash/recover pairs never overlap on one board and never take
        the *last* healthy board down — the plan models partial
        failure, not total outage. All randomness comes from a single
        ``default_rng(seed)``, so the schedule is a pure function of
        its arguments.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if crashes >= num_shards:
            raise ValueError(
                "refusing to schedule crashes on every shard — the plan "
                "must leave at least one board standing"
            )
        rng = np.random.default_rng(seed)
        outage = (duration_seconds / 4.0 if mean_outage_seconds is None
                  else mean_outage_seconds)
        stall = (duration_seconds / 8.0 if mean_stall_seconds is None
                 else mean_stall_seconds)
        events: list[FaultEvent] = []
        # Crash/recover pairs on distinct boards.
        crash_shards = rng.choice(num_shards, size=crashes, replace=False)
        for shard in crash_shards:
            at = float(rng.uniform(0.2, 0.6) * duration_seconds)
            events.append(FaultEvent(at, FaultKind.SHARD_CRASH, int(shard)))
            back = at + float(rng.exponential(outage))
            if back < duration_seconds:
                events.append(
                    FaultEvent(back, FaultKind.SHARD_RECOVER, int(shard)))
        for _ in range(transient_failures):
            at = float(rng.uniform(0.0, duration_seconds))
            shard = int(rng.integers(num_shards))
            events.append(FaultEvent(at, FaultKind.JOB_FAIL, shard))
        for _ in range(dma_stalls):
            at = float(rng.uniform(0.0, 0.8) * duration_seconds)
            shard = int(rng.integers(num_shards))
            events.append(FaultEvent(at, FaultKind.DMA_STALL, shard,
                                     factor=stall_factor))
            back = at + float(rng.exponential(stall))
            if back < duration_seconds:
                events.append(
                    FaultEvent(back, FaultKind.DMA_RESUME, shard))
        events.sort(key=lambda e: (e.time_seconds, e.kind.value, e.shard))
        return cls(events=tuple(events), seed=seed)
