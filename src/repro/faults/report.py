"""Structured accounting of what failed and how the cluster coped.

A :class:`FailureReport` travels inside
:class:`~repro.cluster.report.ClusterReport` after any run with a
fault plan attached: every injected fault, every spill/retry/failover,
and the per-shard downtime windows. It is a plain comparable
dataclass, so the determinism property ("two runs of one seeded plan
produce identical reports") is a single ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import FaultEvent


@dataclass
class FailureReport:
    """The fault ledger of one cluster run."""

    #: Seed of the plan that produced the faults (None for hand-built
    #: or empty plans).
    plan_seed: int | None = None
    #: Every fault event the stepping loop actually applied, in order.
    events: list[FaultEvent] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    transient_failures: int = 0
    dma_stalls: int = 0
    #: Jobs pulled off a crashing board (queued + in-flight).
    jobs_spilled: int = 0
    #: Retry injections actually performed (one job can retry twice).
    jobs_retried: int = 0
    #: Retries that landed on a different board than the one that
    #: failed them — the hedged re-route count.
    jobs_relocated: int = 0
    #: Accepted jobs the cluster gave up on (retry budget/attempts
    #: exhausted). The chaos gate pins this to zero.
    jobs_lost: int = 0
    #: Jobs priced with the cold-replica key-rehydration penalty.
    rehydrations: int = 0
    #: Tenants whose rendezvous-primary returned when a board recovered.
    rebalanced_tenants: int = 0
    #: Per-tenant count of jobs served by a replica while the tenant's
    #: primary board was down.
    failovers_by_tenant: dict[str, int] = field(default_factory=dict)
    #: Per-shard seconds spent DOWN (closed at drain for boards that
    #: never recovered).
    downtime_by_shard: dict[str, float] = field(default_factory=dict)

    @property
    def failovers(self) -> int:
        return sum(self.failovers_by_tenant.values())

    def render(self) -> str:
        """The operator table the CLI prints after a chaos run."""
        rows = [
            ("crashes / recoveries", f"{self.crashes} / {self.recoveries}"),
            ("transient job failures", str(self.transient_failures)),
            ("DMA stalls", str(self.dma_stalls)),
            ("jobs spilled", str(self.jobs_spilled)),
            ("jobs retried", str(self.jobs_retried)),
            ("jobs relocated", str(self.jobs_relocated)),
            ("jobs lost", str(self.jobs_lost)),
            ("key rehydrations", str(self.rehydrations)),
            ("tenant failovers", str(self.failovers)),
            ("tenants rebalanced", str(self.rebalanced_tenants)),
        ]
        for shard, downtime in sorted(self.downtime_by_shard.items()):
            rows.append((f"downtime[{shard}]", f"{downtime * 1e3:.2f} ms"))
        width = max(len(label) for label, _ in rows)
        lines = [f"Failure report (plan seed: {self.plan_seed})"]
        lines += [f"  {label.ljust(width)}  {value}"
                  for label, value in rows]
        return "\n".join(lines)
