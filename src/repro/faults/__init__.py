"""Deterministic fault injection for the serving stack.

The cluster layer models a fleet of FPGA boards; this package models
the fleet *breaking*: seeded schedules of board crashes, recoveries,
transient job failures and DMA stalls (:class:`FaultPlan`), the retry
policy that recovers spilled work (:class:`RetryPolicy`), and the
structured ledger of what happened (:class:`FailureReport`). The
cluster interprets the plans (:mod:`repro.cluster.cluster`); the chaos
bench (``benchmarks/bench_fault_tolerance.py``) gates that a mid-run
board kill under replication loses zero accepted jobs.

Every fault event also increments the process-wide obs counters below,
so fault activity shows up in registry snapshots (and therefore in
``ClusterReport.registry_snapshot``) next to the engine's transform
and cache counters.
"""

from ..obs import counter as _obs_counter
from .plan import FaultEvent, FaultKind, FaultPlan
from .report import FailureReport
from .retry import RetryPolicy

__all__ = [
    "FAULT_EVENTS_COUNTER",
    "FAULT_FAILOVERS_COUNTER",
    "FAULT_JOBS_LOST_COUNTER",
    "FAULT_REHYDRATIONS_COUNTER",
    "FAULT_RETRIES_COUNTER",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FailureReport",
    "RetryPolicy",
]

FAULT_EVENTS_COUNTER = _obs_counter(
    "fault_events_total",
    "Fault-plan events applied to the cluster, by kind.",
    labels=("kind",),
)
FAULT_RETRIES_COUNTER = _obs_counter(
    "fault_retries_total",
    "Failed or spilled jobs re-injected through the retry path.",
)
FAULT_JOBS_LOST_COUNTER = _obs_counter(
    "fault_jobs_lost_total",
    "Accepted jobs abandoned after exhausting the retry budget.",
)
FAULT_FAILOVERS_COUNTER = _obs_counter(
    "fault_failovers_total",
    "Jobs served by a replica board while their primary was down.",
)
FAULT_REHYDRATIONS_COUNTER = _obs_counter(
    "fault_rehydrations_total",
    "Jobs priced with the cold-replica key-rehydration penalty.",
)
