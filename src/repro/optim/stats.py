"""Graph statistics and the per-pass optimisation report.

Every pass run is bracketed by a :class:`GraphStats` snapshot so the
report can show exactly what each rewrite bought: op counts, DAG depth
and — the currency the paper's coprocessor actually spends — the number
of keyswitch operations the program will execute once lowered (every
ROTATE, every relinearisation inside a MULTIPLY or a deferred
RELINEARIZE, and the log2(n/2) + 1 rounds of every SUM_SLOTS ladder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api.program import ExprNode, HEProgram, OpKind, sum_slots_rounds
from ..params import ParameterSet

#: Keyswitches one graph node costs when lowered (SUM_SLOTS is handled
#: separately: it expands to ``sum_slots_rounds(n)`` of them).
_KEYSWITCH_OPS = {
    OpKind.ROTATE: 1,
    OpKind.MULTIPLY: 1,       # the embedded relinearisation
    OpKind.RELINEARIZE: 1,
}


@dataclass(frozen=True)
class GraphStats:
    """Static shape of one expression DAG (before or after a pass)."""

    num_ops: int
    num_inputs: int
    depth: int
    keyswitches: int
    op_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, outputs: dict[str, ExprNode],
           params: ParameterSet) -> GraphStats:
        nodes = HEProgram._topo_sort(outputs.values())
        counts: dict[str, int] = {}
        keyswitches = 0
        inputs = 0
        for node in nodes:
            if node.op is OpKind.INPUT:
                inputs += 1
                continue
            counts[node.op.value] = counts.get(node.op.value, 0) + 1
            if node.op is OpKind.SUM_SLOTS:
                keyswitches += sum_slots_rounds(params.n)
            else:
                keyswitches += _KEYSWITCH_OPS.get(node.op, 0)
        depth = max((n.depth for n in outputs.values()), default=0)
        return cls(num_ops=len(nodes) - inputs, num_inputs=inputs,
                   depth=depth, keyswitches=keyswitches,
                   op_counts=counts)


@dataclass(frozen=True)
class PassStats:
    """One pass execution: the graph before and after, and what moved."""

    name: str
    before: GraphStats
    after: GraphStats
    rewrites: int
    details: dict = field(default_factory=dict)

    @property
    def ops_removed(self) -> int:
        return self.before.num_ops - self.after.num_ops

    @property
    def keyswitches_removed(self) -> int:
        return self.before.keyswitches - self.after.keyswitches


@dataclass
class OptimizationReport:
    """Everything one :meth:`PassManager.optimize` run did.

    Attached to the optimised program as ``program.optimization`` and
    rendered by ``python -m repro program`` / ``python -m repro trace``.
    """

    program_name: str
    passes: list[PassStats]
    before: GraphStats
    after: GraphStats
    hoist_groups: int = 0
    #: Wall-clock span tree of the pass stack itself.
    trace: object | None = None

    @property
    def ops_saved(self) -> int:
        return self.before.num_ops - self.after.num_ops

    @property
    def keyswitches_saved(self) -> int:
        return self.before.keyswitches - self.after.keyswitches

    @property
    def total_rewrites(self) -> int:
        return sum(p.rewrites for p in self.passes)

    def keyswitch_reduction(self) -> float:
        """Fraction of lowered keyswitch ops the stack removed."""
        if self.before.keyswitches == 0:
            return 0.0
        return self.keyswitches_saved / self.before.keyswitches

    def render(self) -> str:
        """The CLI table: one row per pass, totals up front."""
        head = (
            f"optimiser report for {self.program_name!r} — "
            f"ops {self.before.num_ops} -> {self.after.num_ops}, "
            f"keyswitches {self.before.keyswitches} -> "
            f"{self.after.keyswitches} "
            f"({100 * self.keyswitch_reduction():.1f}% saved), "
            f"depth {self.before.depth} -> {self.after.depth}"
        )
        lines = [head,
                 f"{'pass':<18}{'rewrites':>9}  {'ops':<12}"
                 f"{'keyswitches':<14}detail"]
        for p in self.passes:
            detail = ", ".join(f"{k}={v}" for k, v in p.details.items())
            lines.append(
                f"{p.name:<18}{p.rewrites:>9}  "
                f"{f'{p.before.num_ops} -> {p.after.num_ops}':<12}"
                f"{f'{p.before.keyswitches} -> {p.after.keyswitches}':<14}"
                f"{detail}"
            )
        return "\n".join(lines)
