"""The pass manager: run the stack, measure every pass, re-emit a program.

``optimize_program(program)`` is the one call the rest of the system
uses (``Session.compile(optimize=True)``, ``SimulatedBackend.lower``,
the CLI). It returns a *new* :class:`HEProgram` — sharing every
unchanged node with the original, so materialised ciphertexts and
resident-cache entries survive — plus an
:class:`~repro.optim.stats.OptimizationReport` with per-pass
before/after stats. The same numbers feed the obs registry (pass run /
rewrite / keyswitches-saved counters) and a wall-clock span tree.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api.program import HEProgram
from ..obs import Tracer, counter
from .passes import (
    CsePass,
    Pass,
    PassContext,
    RelinPlacementPass,
    RotationCanonicalizePass,
    RotationFoldPass,
    RotationHoistPass,
)
from .stats import GraphStats, OptimizationReport, PassStats

PASS_RUNS = counter(
    "repro_optim_pass_runs_total",
    "Optimiser pass executions", labels=("pass",),
)
PASS_REWRITES = counter(
    "repro_optim_rewrites_total",
    "Graph rewrites applied, by pass", labels=("pass",),
)
KEYSWITCHES_SAVED = counter(
    "repro_optim_keyswitches_saved_total",
    "Lowered keyswitch ops removed by optimisation",
)


def default_passes() -> list[Pass]:
    """The standard stack, in dependency order: canonical rotations
    first (so CSE hashes agree), folding before relin placement (folds
    create the product sums lazy relin merges), hoist analysis last
    (its groups must reference the final nodes)."""
    return [
        RotationCanonicalizePass(),
        CsePass(),
        RotationFoldPass(),
        RelinPlacementPass(),
        RotationHoistPass(),
    ]


class PassManager:
    """Run a pass pipeline over programs, with per-pass accounting."""

    def __init__(self, passes: Sequence[Pass] | None = None) -> None:
        self.passes = list(passes) if passes is not None \
            else default_passes()

    def optimize(self, program: HEProgram
                 ) -> tuple[HEProgram, OptimizationReport]:
        """Rewrite one program through the stack.

        The optimised program is built with ``check=False``: every pass
        preserves or improves the worst-case noise walk, so a program
        that passed compilation still passes, and one deliberately
        compiled unchecked stays unchecked.
        """
        outputs = dict(program.outputs)
        ctx = PassContext(params=program.params)
        stats: list[PassStats] = []
        before_all = GraphStats.of(outputs, program.params)
        tracer = Tracer(f"optimize.{program.name}", kind="optimize")
        with tracer.activate():
            for p in self.passes:
                before = GraphStats.of(outputs, program.params)
                with tracer.span(p.name, kind="pass") as span:
                    outputs, rewrites, details = p.run(outputs, ctx)
                    after = GraphStats.of(outputs, program.params)
                    span.attrs.update(
                        rewrites=rewrites,
                        ops_before=before.num_ops,
                        ops_after=after.num_ops,
                    )
                PASS_RUNS.inc(1, **{"pass": p.name})
                if rewrites:
                    PASS_REWRITES.inc(rewrites, **{"pass": p.name})
                stats.append(PassStats(p.name, before, after, rewrites,
                                       details))
        after_all = GraphStats.of(outputs, program.params)
        saved = before_all.keyswitches - after_all.keyswitches
        if saved > 0:
            KEYSWITCHES_SAVED.inc(saved)
        optimized = HEProgram(outputs, program.params,
                              name=f"{program.name}+opt", check=False)
        optimized.hoist_groups = list(ctx.hoist_groups)
        report = OptimizationReport(
            program_name=program.name, passes=stats,
            before=before_all, after=after_all,
            hoist_groups=len(ctx.hoist_groups),
            trace=tracer.report(),
        )
        optimized.optimization = report
        return optimized, report


def optimize_program(program: HEProgram,
                     passes: Sequence[Pass] | None = None
                     ) -> tuple[HEProgram, OptimizationReport]:
    """Convenience wrapper: one program through (by default) the
    standard stack."""
    return PassManager(passes).optimize(program)
