"""The HEProgram optimiser: a compiler pass stack over expression DAGs.

Usage::

    from repro.optim import optimize_program

    optimized, report = optimize_program(program)
    print(report.render())

or, through the facade, ``session.compile(handle, optimize=True)``.
The stack rewrites for the costs that dominate the paper's
coprocessor — keyswitch operations (rotations, relinearisations,
sum-all-slots ladders) and redundant subexpressions — and records a
rotation-hoisting plan the NTT-resident executor uses to share digit
transforms across rotations of one source.
"""

from .manager import PassManager, default_passes, optimize_program
from .passes import (
    CsePass,
    Pass,
    PassContext,
    RelinPlacementPass,
    RotationCanonicalizePass,
    RotationFoldPass,
    RotationHoistPass,
    program_fingerprint,
)
from .stats import GraphStats, OptimizationReport, PassStats

__all__ = [
    "CsePass",
    "GraphStats",
    "OptimizationReport",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStats",
    "RelinPlacementPass",
    "RotationCanonicalizePass",
    "RotationFoldPass",
    "RotationHoistPass",
    "default_passes",
    "optimize_program",
    "program_fingerprint",
]
