"""The optimiser passes: rewrites over the lazy expression DAG.

Every pass consumes an ``outputs`` mapping (label -> root node) and
produces a new one. Rewrites are **non-destructive**: user-visible nodes
are never mutated (handles, graph caches and the resident-operand
caches all key on node identity), so passes rebuild bottom-up with a
memo and return the *original* node object whenever nothing under it
changed — an unchanged subgraph keeps its identity, its ``cached``
ciphertext and its cache entries. INPUT nodes are always reused by
identity for the same reason.

The default stack (see :func:`repro.optim.default_passes`):

* :class:`RotationCanonicalizePass` — rotation algebra: steps reduce
  mod n/2 (the slot-row period of the generator 3), chained rotations
  compose, zero rotations and double negations vanish.
* :class:`CsePass` — value-numbering common-subexpression elimination
  with canonical hashing (commutative operands sorted, plaintext
  payloads compared by value), which also drops dead code.
* :class:`RotationFoldPass` — keyswitch folding across linearity:
  ``sum_slots(a) + sum_slots(b)`` becomes ``sum_slots(a + b)`` (one
  ladder instead of two) and ``rotate(a, k) + rotate(b, k)`` becomes
  ``rotate(a + b, k)``; both strictly reduce worst-case noise.
* :class:`RelinPlacementPass` — lazy relinearisation: sums over
  single-consumer products are computed on three-part intermediates
  and folded back with **one** deferred RELINEARIZE at the root.
* :class:`RotationHoistPass` — analysis pass that groups distinct-step
  rotations of one source so the resident executor computes the shared
  digit-decomposition NTT once per group (Halevi–Shoup hoisting).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field

from ..api.program import ExprNode, HEProgram, OpKind
from ..fv.encoder import Plaintext
from ..params import ParameterSet

#: run() result: (new outputs, rewrites applied, detail counters).
PassResult = tuple[dict[str, ExprNode], int, dict]


def payload_key(node: ExprNode):
    """Canonical, hashable view of a node's payload (for CSE keys and
    fingerprints). Plaintext operands compare by value, so two separate
    encodings of the same constant still merge."""
    payload = node.payload
    if node.op is OpKind.ROTATE:
        return int(payload)
    if isinstance(payload, Plaintext):
        return (int(payload.t), payload.coeffs.tobytes())
    return payload


def consumer_counts(outputs: dict[str, ExprNode],
                    order: list[ExprNode]) -> dict[int, int]:
    """Graph-consumer count per node id. Program outputs count one
    extra consumer — the client download — so "single use" tests can
    never rewrite away an externally visible value."""
    counts: dict[int, int] = {}
    for node in order:
        for arg in node.args:
            counts[id(arg)] = counts.get(id(arg), 0) + 1
    for node in outputs.values():
        counts[id(node)] = counts.get(id(node), 0) + 1
    return counts


def rebuild(outputs: dict[str, ExprNode],
            transform: Callable[[ExprNode, tuple[ExprNode, ...]],
                                ExprNode | None],
            on_copy: Callable[[ExprNode, ExprNode], None] | None = None,
            ) -> dict[str, ExprNode]:
    """Bottom-up rebuild with identity reuse.

    ``transform(node, new_args)`` returns a replacement node or ``None``
    for "no rewrite here"; in the latter case the node is reused as-is
    when its arguments are unchanged, or copied with the new arguments
    (``on_copy`` hears about such structural copies so passes can carry
    bookkeeping like consumer counts over to them).
    """
    order = HEProgram._topo_sort(outputs.values())
    memo: dict[int, ExprNode] = {}
    for node in order:
        if node.op is OpKind.INPUT:
            memo[id(node)] = node
            continue
        new_args = tuple(memo[id(a)] for a in node.args)
        out = transform(node, new_args)
        if out is None:
            if new_args == node.args:
                out = node
            else:
                out = ExprNode(node.op, new_args, node.payload)
                if on_copy is not None:
                    on_copy(node, out)
        memo[id(node)] = out
    return {label: memo[id(node)] for label, node in outputs.items()}


def program_fingerprint(program: HEProgram) -> tuple:
    """Structural fingerprint: equal iff the DAGs are isomorphic over
    the same INPUT nodes (the idempotence tests compare these)."""
    index: dict[int, int] = {}
    rows = []
    for i, node in enumerate(program.nodes):
        index[id(node)] = i
        payload = (None if node.op is OpKind.INPUT
                   else payload_key(node))
        rows.append((node.op.value, payload,
                     tuple(index[id(a)] for a in node.args)))
    outs = tuple(sorted(
        (label, index[id(node)])
        for label, node in program.outputs.items()
    ))
    return (tuple(rows), outs)


@dataclass
class PassContext:
    """Shared state the manager threads through the stack."""

    params: ParameterSet
    #: Rotation-hoisting groups collected by the analysis pass; the
    #: manager attaches them to the optimised program.
    hoist_groups: list[tuple[ExprNode, ...]] = field(default_factory=list)


class Pass(ABC):
    """One rewrite (or analysis) over the expression DAG."""

    name = "pass"

    @abstractmethod
    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult: ...


class RotationCanonicalizePass(Pass):
    """Normalise the rotation algebra before anything hashes nodes.

    The slot generator 3 has multiplicative order n/2 mod 2n, so
    ``rotate(x, k)`` depends only on ``k mod n/2``: steps reduce into
    [0, n/2), ``rotate(rotate(x, a), b)`` composes to
    ``rotate(x, a + b)`` (tau_3^a . tau_3^b = tau_3^(a+b)) and a
    zero rotation is the identity. ``--x`` collapses too.
    """

    name = "canonicalize"

    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult:
        half = max(ctx.params.n // 2, 1)
        rewrites = 0

        def transform(node: ExprNode,
                      new_args: tuple[ExprNode, ...]) -> ExprNode | None:
            nonlocal rewrites
            if (node.op is OpKind.NEGATE
                    and new_args[0].op is OpKind.NEGATE):
                rewrites += 1
                return new_args[0].args[0]
            if node.op is not OpKind.ROTATE:
                return None
            steps = int(node.payload) % half
            inner = new_args[0]
            # Bottom-up traversal means `inner` is already canonical,
            # so one composition step collapses any rotation chain.
            if inner.op is OpKind.ROTATE:
                steps = (steps + inner.payload) % half
                inner = inner.args[0]
            if steps == 0:
                rewrites += 1
                return inner
            if inner is new_args[0] and steps == int(node.payload):
                return None
            rewrites += 1
            return ExprNode(OpKind.ROTATE, (inner,), steps)

        return rebuild(outputs, transform), rewrites, {}


class CsePass(Pass):
    """Value-numbering CSE with canonical node hashing.

    Two nodes merge when they compute the same value: same op, same
    canonical payload (rotation steps as ints, plaintexts by value) and
    value-equal arguments — sorted first for the commutative ops, so
    ``a * b`` and ``b * a`` share. Rebuilding from the outputs also
    drops dead code. INPUT nodes are value-numbered by identity: two
    encryptions are never interchangeable, even of equal plaintexts.
    """

    name = "cse"

    _COMMUTATIVE = frozenset(
        {OpKind.ADD, OpKind.MULTIPLY, OpKind.MULTIPLY_RAW}
    )

    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult:
        order = HEProgram._topo_sort(outputs.values())
        vn: dict[int, int] = {}          # id(rebuilt node) -> value number
        table: dict[tuple, ExprNode] = {}
        memo: dict[int, ExprNode] = {}
        rewrites = 0
        for node in order:
            if node.op is OpKind.INPUT:
                memo[id(node)] = node
                vn.setdefault(id(node), len(vn))
                continue
            new_args = tuple(memo[id(a)] for a in node.args)
            arg_vns = tuple(vn[id(a)] for a in new_args)
            if node.op in self._COMMUTATIVE:
                arg_vns = tuple(sorted(arg_vns))
            key = (node.op.value, payload_key(node), arg_vns)
            existing = table.get(key)
            if existing is not None:
                if existing is not node:
                    rewrites += 1
                memo[id(node)] = existing
                continue
            rebuilt = (node if new_args == node.args
                       else ExprNode(node.op, new_args, node.payload))
            table[key] = rebuilt
            vn[id(rebuilt)] = len(vn)
            memo[id(node)] = rebuilt
        new_outputs = {label: memo[id(node)]
                       for label, node in outputs.items()}
        return new_outputs, rewrites, {"merged": rewrites}


class RotationFoldPass(Pass):
    """Fold keyswitches across the linearity of rotations.

    Galois automorphisms are ring homomorphisms, so
    ``sum_slots(a) + sum_slots(b) == sum_slots(a + b)`` and
    ``rotate(a, k) + rotate(b, k) == rotate(a + b, k)``. Each fold
    replaces two keyswitch chains with one (a whole ladder, for
    SUM_SLOTS) at the price of one extra ADD — and *reduces* worst-case
    noise, since one keyswitch error term is added instead of two.
    Only single-consumer, non-output operands fold: a value someone
    else still reads must keep existing.
    """

    name = "rotation_fold"

    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult:
        order = HEProgram._topo_sort(outputs.values())
        counts = consumer_counts(outputs, order)
        carried: dict[int, int] = {}
        rewrites = 0

        def uses(node: ExprNode) -> int:
            return carried.get(id(node), counts.get(id(node), 0))

        def foldable(a: ExprNode, b: ExprNode) -> bool:
            if a is b:
                return uses(a) == 2
            return uses(a) == 1 and uses(b) == 1

        def transform(node: ExprNode,
                      new_args: tuple[ExprNode, ...]) -> ExprNode | None:
            nonlocal rewrites
            if node.op is not OpKind.ADD:
                return None
            a, b = new_args
            out: ExprNode | None = None
            if (a.op is OpKind.SUM_SLOTS and b.op is OpKind.SUM_SLOTS
                    and foldable(a, b)):
                inner = ExprNode(OpKind.ADD, (a.args[0], b.args[0]))
                out = ExprNode(OpKind.SUM_SLOTS, (inner,))
            elif (a.op is OpKind.ROTATE and b.op is OpKind.ROTATE
                    and a.payload == b.payload and foldable(a, b)):
                inner = ExprNode(OpKind.ADD, (a.args[0], b.args[0]))
                out = ExprNode(OpKind.ROTATE, (inner,), a.payload)
            if out is None:
                return None
            rewrites += 1
            carried[id(out.args[0])] = 1
            # The replacement inherits the replaced ADD's consumers, so
            # a chain of folds (a whole reduction tree) keeps folding.
            carried[id(out)] = uses(node)
            return out

        def on_copy(node: ExprNode, copy: ExprNode) -> None:
            carried[id(copy)] = uses(node)

        new_outputs = rebuild(outputs, transform, on_copy)
        return new_outputs, rewrites, {"folded": rewrites}


class RelinPlacementPass(Pass):
    """Lazy relinearisation over sums of products.

    ``m1 + m2 + ... + mk`` where every ``mi`` is a single-consumer
    MULTIPLY becomes a three-part sum of MULTIPLY_RAW results with
    **one** deferred RELINEARIZE at the root — k keyswitches collapse
    to 1 (the standard BGV/BFV lazy-relin trick; noise improves too,
    one keyswitch error term instead of k). Multi-consumer products and
    products visible as outputs keep their embedded relinearisation:
    their two-part value is observable.
    """

    name = "relin_placement"

    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult:
        order = HEProgram._topo_sort(outputs.values())
        counts = consumer_counts(outputs, order)
        sole: dict[int, ExprNode] = {}
        for node in order:
            for arg in node.args:
                sole[id(arg)] = node
        # raw_ok: this node can hand its single consumer a three-part
        # value (a product, or an ADD tree made entirely of them).
        raw_ok: dict[int, bool] = {}
        for node in order:
            if node.op is OpKind.MULTIPLY:
                raw_ok[id(node)] = counts.get(id(node), 0) == 1
            elif node.op is OpKind.ADD:
                raw_ok[id(node)] = (
                    counts.get(id(node), 0) == 1
                    and all(raw_ok.get(id(a), False) for a in node.args)
                )
        candidates = {
            id(node): node for node in order
            if node.op is OpKind.ADD
            and all(raw_ok.get(id(a), False) for a in node.args)
        }
        roles: dict[int, str] = {}
        leaves = 0
        roots = 0
        for cid, node in candidates.items():
            consumer = sole.get(cid)
            if (raw_ok.get(cid, False) and consumer is not None
                    and id(consumer) in candidates):
                continue        # interior of a larger merge
            roles[cid] = "root"
            roots += 1
            stack = list(node.args)
            while stack:
                arg = stack.pop()
                if arg.op is OpKind.ADD and raw_ok.get(id(arg), False):
                    roles[id(arg)] = "interior"
                    stack.extend(arg.args)
                elif (arg.op is OpKind.MULTIPLY
                        and raw_ok.get(id(arg), False)):
                    roles[id(arg)] = "leaf"
                    leaves += 1
        rewrites = 0

        def transform(node: ExprNode,
                      new_args: tuple[ExprNode, ...]) -> ExprNode | None:
            nonlocal rewrites
            role = roles.get(id(node))
            if role is None:
                return None
            if role == "leaf":
                return ExprNode(OpKind.MULTIPLY_RAW, new_args)
            if role == "interior":
                return ExprNode(OpKind.ADD, new_args)
            rewrites += 1
            return ExprNode(OpKind.RELINEARIZE,
                            (ExprNode(OpKind.ADD, new_args),))

        new_outputs = rebuild(outputs, transform)
        return new_outputs, rewrites, {
            "merged_products": leaves,
            "relins_saved": leaves - roots,
        }


class RotationHoistPass(Pass):
    """Group rotations of one source for a shared hoisted keyswitch.

    Pure analysis: rotations with distinct steps cannot merge, but when
    several of them read the *same* source, the expensive half of each
    keyswitch — the digit decomposition's stacked forward NTT — is a
    function of the source alone. The groups recorded here let the
    resident executor run
    :meth:`~repro.fv.galois.GaloisEngine.apply_many_resident`: one
    digit transform for the whole group, one cheap per-step fold each
    (Halevi–Shoup hoisting).
    """

    name = "rotation_hoist"

    def run(self, outputs: dict[str, ExprNode],
            ctx: PassContext) -> PassResult:
        order = HEProgram._topo_sort(outputs.values())
        by_source: dict[int, list[ExprNode]] = {}
        for node in order:
            if node.op is OpKind.ROTATE:
                by_source.setdefault(id(node.args[0]), []).append(node)
        groups: list[tuple[ExprNode, ...]] = []
        for members in by_source.values():
            distinct: dict[int, ExprNode] = {}
            for member in members:
                distinct.setdefault(int(member.payload), member)
            if len(distinct) >= 2:
                groups.append(tuple(distinct.values()))
        ctx.hoist_groups = groups
        shared = sum(len(g) - 1 for g in groups)
        return outputs, 0, {
            "groups": len(groups),
            "hoisted_digit_ntts": shared,
        }
