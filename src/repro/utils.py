"""Small shared helpers: bit manipulation and integer utilities."""

from __future__ import annotations

from .errors import ParameterError


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises :class:`ParameterError` otherwise, because every place this is
    used (ring degrees, NTT sizes) requires an exact power of two.
    """
    if not is_power_of_two(value):
        raise ParameterError(f"{value} is not a power of two")
    return value.bit_length() - 1


def bit_length_of(value: int) -> int:
    """Bit length of a non-negative integer (0 has bit length 0)."""
    if value < 0:
        raise ValueError("bit_length_of expects a non-negative integer")
    return value.bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Ceiling division for non-negative integers."""
    return -(-numerator // denominator)


def round_half_away(numerator: int, denominator: int) -> int:
    """Round ``numerator / denominator`` to the nearest integer.

    Halves round away from zero, matching the rounding performed by the
    paper's fixed-point datapaths (add half, then truncate). ``denominator``
    must be positive.
    """
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if numerator >= 0:
        return (2 * numerator + denominator) // (2 * denominator)
    return -((-2 * numerator + denominator) // (2 * denominator))


def centered(value: int, modulus: int) -> int:
    """Map ``value`` to its centered representative in (-modulus/2, modulus/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def chunks(total: int, chunk_size: int) -> list[int]:
    """Split ``total`` into chunk sizes of at most ``chunk_size``.

    Used by the DMA model to enumerate burst transfers.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    full, rest = divmod(total, chunk_size)
    sizes = [chunk_size] * full
    if rest:
        sizes.append(rest)
    return sizes
