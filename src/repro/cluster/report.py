"""Aggregated cluster telemetry: merge per-shard reports into one view.

A cluster run ends with one :class:`~repro.serve.engine.RuntimeReport`
per shard plus the cluster-level overflow rejections. This module
reduces them to the operator numbers: cluster-wide and per-shard
p50/p95/p99, throughput against the union busy window, per-shard
utilization and the imbalance metric that explains any sub-linear
scaling. Every ratio is guarded against empty inputs — a shard that
received no work (a perfectly plausible outcome of tenant-affinity
routing with few tenants) must merge cleanly, not divide by zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FailureReport
from ..serve.engine import RuntimeReport
from ..serve.telemetry import LatencySummary, Telemetry
from ..serve.tenants import Rejection
from ..system.server import JobResult
from ..system.workloads import JobKind


@dataclass
class ClusterReport:
    """The merged outcome of one multi-shard run."""

    shard_names: list[str]
    shard_reports: list[RuntimeReport]
    router_name: str = ""
    #: Arrivals no shard would accept (cluster-level backpressure).
    overflow_rejected: list[Rejection] = field(default_factory=list)
    #: Arrivals whose primary shard was full but a sibling took them.
    reroutes: int = 0
    #: Snapshot of the active :mod:`repro.obs` metrics registry taken
    #: at drain time (flat series-name → value mapping), so the merged
    #: report carries the process-level counters — engine transforms,
    #: resident-cache events — alongside the queueing telemetry.
    registry_snapshot: dict[str, float] = field(default_factory=dict)
    #: Fault ledger of the run — present whenever the cluster ran with
    #: a fault plan or replicated placement, ``None`` otherwise.
    failure: FailureReport | None = None

    def __post_init__(self) -> None:
        if len(self.shard_names) != len(self.shard_reports):
            raise ValueError("one report per shard name")

    # -- job accounting ----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shard_reports)

    @property
    def results(self) -> list[JobResult]:
        return [r for report in self.shard_reports for r in report.results]

    @property
    def rejected(self) -> list[Rejection]:
        return [r for report in self.shard_reports
                for r in report.rejected] + list(self.overflow_rejected)

    @property
    def completed(self) -> int:
        return sum(len(report.results) for report in self.shard_reports)

    @property
    def offered(self) -> int:
        return self.completed + len(self.rejected)

    @property
    def rejection_fraction(self) -> float:
        offered = self.offered
        return len(self.rejected) / offered if offered else 0.0

    @property
    def availability(self) -> float:
        """Completed fraction of offered load (1.0 when nothing came).

        The chaos gate's headline: under a board kill with replication
        this must stay >= 0.99 — everything spilled either completes
        after retry or was never accepted in the first place.
        """
        offered = self.offered
        return self.completed / offered if offered else 1.0

    # -- time window and throughput ----------------------------------------------------

    @property
    def first_arrival_seconds(self) -> float:
        return min((report.first_arrival_seconds
                    for report in self.shard_reports if report.results),
                   default=0.0)

    @property
    def last_finish_seconds(self) -> float:
        return max((report.last_finish_seconds
                    for report in self.shard_reports if report.results),
                   default=0.0)

    @property
    def makespan_seconds(self) -> float:
        """Union busy window: first arrival to last finish, any shard."""
        if not any(report.results for report in self.shard_reports):
            return 0.0
        return self.last_finish_seconds - self.first_arrival_seconds

    def throughput_per_second(self, kind: JobKind | None = None) -> float:
        makespan = self.makespan_seconds
        if makespan <= 0:
            return 0.0
        jobs = sum(
            1 for report in self.shard_reports for r in report.results
            if kind is None or r.job.kind is kind
        )
        return jobs / makespan

    def per_shard_throughput(self) -> list[float]:
        """Each shard's completions over the *cluster* busy window."""
        makespan = self.makespan_seconds
        if makespan <= 0:
            return [0.0] * self.num_shards
        return [len(report.results) / makespan
                for report in self.shard_reports]

    # -- latency -----------------------------------------------------------------------

    def telemetry(self) -> Telemetry:
        """Exact merge of every shard's collector (empty shards fine)."""
        return Telemetry.merged([report.telemetry
                                 for report in self.shard_reports
                                 if report.telemetry is not None])

    def latency_summary(self, tenant: str | None = None) -> LatencySummary:
        return self.telemetry().latency_summary(tenant)

    def shard_latency_summaries(self) -> dict[str, LatencySummary]:
        return {name: report.latency_summary()
                for name, report in zip(self.shard_names,
                                        self.shard_reports, strict=True)}

    @property
    def sla_violations(self) -> int:
        return sum(report.telemetry.sla_violations
                   for report in self.shard_reports
                   if report.telemetry is not None)

    # -- utilization and balance -------------------------------------------------------

    def utilization_by_shard(self) -> list[float]:
        """Mean busy fraction of each shard over the cluster window.

        Measured against the shared window (not each shard's own busy
        interval) so an idle or early-finishing shard correctly shows
        the slack the imbalance metric should see.
        """
        makespan = self.makespan_seconds
        if makespan <= 0:
            return [0.0] * self.num_shards
        out = []
        for report in self.shard_reports:
            if report.telemetry is None:
                out.append(0.0)
                continue
            util = report.telemetry.utilization(makespan)
            out.append(sum(util) / len(util) if util else 0.0)
        return out

    def imbalance(self) -> float:
        """Utilization spread, ``(max - min) / mean``; 0 when idle.

        0 means perfectly level shards; 1 means the busiest shard did
        a full mean-utilization more work than the idlest. The scaling
        benches plot p99 against this: affinity routing trades a
        little imbalance for batchable same-tenant trains.
        """
        util = self.utilization_by_shard()
        if not util:
            return 0.0
        mean = sum(util) / len(util)
        if mean <= 0:
            return 0.0
        return (max(util) - min(util)) / mean
