"""Multi-FPGA shard layer over the serving runtime.

Scales the single Arm+FPGA board of the paper (and the PR 1 serving
runtime that simulates it) out to a cluster: N per-board runtimes
behind a placement router on one shared simulated clock —

* :mod:`~repro.cluster.shard` — one board: a steppable runtime with an
  UP/DRAINING/DOWN lifecycle plus the load signals routing reads;
* :mod:`~repro.cluster.routing` — round-robin, least-outstanding-work,
  tenant-affinity (rendezvous hashing, optionally bounded-load), and
  power-of-two-choices placement;
* :mod:`~repro.cluster.placement` — replicated tenant key-state
  placement (R boards per tenant, rendezvous-pinned, warmth-tracked);
* :mod:`~repro.cluster.cluster` — the shared-clock run loop with
  per-shard admission backpressure, overflow re-routing, and the
  fault/retry interleaving driven by :mod:`repro.faults` plans;
* :mod:`~repro.cluster.report` — merged cluster telemetry: cluster and
  per-shard percentiles, throughput, utilization imbalance, and the
  :class:`~repro.faults.FailureReport` ledger of any chaos run.
"""

from ..faults import FailureReport, FaultEvent, FaultKind, FaultPlan, \
    RetryPolicy
from .cluster import FpgaCluster
from .placement import ReplicatedPlacement
from .report import ClusterReport
from .routing import (
    LeastOutstandingWorkRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    Router,
    TenantAffinityRouter,
    default_routers,
)
from .shard import Shard, ShardState

__all__ = [
    "FpgaCluster",
    "ClusterReport",
    "FailureReport",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "ReplicatedPlacement",
    "RetryPolicy",
    "Shard",
    "ShardState",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingWorkRouter",
    "TenantAffinityRouter",
    "PowerOfTwoChoicesRouter",
    "default_routers",
]
