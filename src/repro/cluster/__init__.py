"""Multi-FPGA shard layer over the serving runtime.

Scales the single Arm+FPGA board of the paper (and the PR 1 serving
runtime that simulates it) out to a cluster: N per-board runtimes
behind a placement router on one shared simulated clock —

* :mod:`~repro.cluster.shard` — one board: a steppable runtime plus
  the load signals routing reads;
* :mod:`~repro.cluster.routing` — round-robin, least-outstanding-work,
  tenant-affinity (rendezvous hashing, optionally bounded-load), and
  power-of-two-choices placement;
* :mod:`~repro.cluster.cluster` — the shared-clock run loop with
  per-shard admission backpressure and overflow re-routing;
* :mod:`~repro.cluster.report` — merged cluster telemetry: cluster and
  per-shard percentiles, throughput, utilization imbalance.
"""

from .cluster import FpgaCluster
from .report import ClusterReport
from .routing import (
    LeastOutstandingWorkRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    Router,
    TenantAffinityRouter,
    default_routers,
)
from .shard import Shard

__all__ = [
    "FpgaCluster",
    "ClusterReport",
    "Shard",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingWorkRouter",
    "TenantAffinityRouter",
    "PowerOfTwoChoicesRouter",
    "default_routers",
]
