"""One board of the multi-FPGA cluster: a steppable serving runtime.

The paper's server is a single Arm+FPGA board (Fig. 11); the Table V
scaling argument only becomes real when many boards serve one job
stream. A :class:`Shard` wraps one
:class:`~repro.serve.engine.ServingRuntime` — its own
:class:`~repro.system.server.CostModel`, scheduler, DMA batcher and
admission controller — and exposes the stepping interface the cluster
router drives on a shared clock, plus the load signals routing and
backpressure decisions read between arrivals.

Shards may be heterogeneous: each carries its own
:class:`~repro.hw.config.HardwareConfig` (e.g. mixed butterfly-core
counts or the slow non-HPS design point), so a cluster can mix board
generations the way a real deployment accretes hardware.
"""

from __future__ import annotations

from enum import Enum

from ..serve.batching import BatchPolicy
from ..serve.engine import RuntimeReport, ServingRuntime
from ..serve.schedulers import Scheduler
from ..serve.tenants import TenantSet
from ..system.server import CostModel
from ..system.workloads import Job, JobKind


class ShardState(Enum):
    """Board lifecycle: healthy, winding down, or dead."""

    UP = "up"
    #: Finishing queued work but refusing new arrivals (autoscaling
    #: drain or operator-initiated maintenance).
    DRAINING = "draining"
    #: Crashed: queues spilled, no arrivals until :meth:`Shard.recover`.
    DOWN = "down"


class Shard:
    """One Arm+FPGA board behind the cluster router (single-use)."""

    def __init__(self, name: str, cost: CostModel, *,
                 scheduler: Scheduler | None = None,
                 batching: BatchPolicy | None = None,
                 tenants: TenantSet | None = None,
                 max_backlog_seconds: float | None = None,
                 num_coprocessors: int | None = None) -> None:
        if max_backlog_seconds is not None and max_backlog_seconds <= 0:
            raise ValueError("backlog cap must be positive")
        self.name = name
        self.cost = cost
        self.max_backlog_seconds = max_backlog_seconds
        self.runtime = ServingRuntime(
            cost, scheduler=scheduler, batching=batching, tenants=tenants,
            num_coprocessors=num_coprocessors,
        )
        self.state = ShardState.UP
        #: Clock instant of the last crash; ``None`` while healthy.
        self.down_since: float | None = None

    @property
    def config(self):
        return self.cost.config

    @property
    def num_coprocessors(self) -> int:
        return self.runtime.num_coprocessors

    def capacity_mults_per_second(self) -> float:
        """This board's saturated Mult/s (its share of cluster capacity)."""
        return self.num_coprocessors / self.cost.job_seconds(JobKind.MULT)

    # -- stepping (driven by the cluster on the shared clock) --------------------------

    def begin(self) -> None:
        self.runtime.begin()

    def inject(self, job: Job) -> None:
        self.runtime.inject(job)

    def advance_to(self, time_seconds: float, *,
                   inclusive: bool = True) -> None:
        self.runtime.advance_to(time_seconds, inclusive=inclusive)

    def drain(self) -> RuntimeReport:
        return self.runtime.drain()

    def next_event_seconds(self) -> float | None:
        return self.runtime.next_event_seconds()

    # -- failure lifecycle -------------------------------------------------------------

    def crash(self, now: float) -> list[Job]:
        """Kill the board: spill all outstanding work, go DOWN."""
        if self.state is ShardState.DOWN:
            return []
        self.state = ShardState.DOWN
        self.down_since = now
        return self.runtime.spill()

    def recover(self) -> None:
        """Return to service: empty queues, nominal DMA, cold caches."""
        self.state = ShardState.UP
        self.down_since = None
        self.runtime.service_scale = 1.0

    def start_draining(self) -> None:
        """Refuse new work but finish what is queued."""
        if self.state is ShardState.UP:
            self.state = ShardState.DRAINING

    def set_service_scale(self, factor: float) -> None:
        """DMA degradation: multiply service times by ``factor``."""
        self.runtime.service_scale = factor

    def fail_one(self) -> Job | None:
        """Transiently fail the next queued job (retry-path fodder)."""
        return self.runtime.fail_one()

    # -- load signals ------------------------------------------------------------------

    def outstanding_seconds(self) -> float:
        return self.runtime.outstanding_seconds()

    def outstanding_jobs(self) -> int:
        return self.runtime.outstanding_jobs()

    def drain_estimate_seconds(self) -> float:
        return self.runtime.drain_estimate_seconds()

    def accepting(self, job: Job) -> bool:
        """Backpressure gate: would this shard take `job` right now?

        False once the queued-work backlog exceeds the shard's cap, or
        when the shard's own admission control would refuse the job —
        the signal the cluster uses to re-route overflow to a sibling
        board before the shard has to reject. A board that is not UP
        never accepts, whatever its queues look like.
        """
        if self.state is not ShardState.UP:
            return False
        if (self.max_backlog_seconds is not None
                and self.outstanding_seconds() > self.max_backlog_seconds):
            return False
        return self.runtime.would_admit(job)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Shard({self.name!r}, "
                f"coprocessors={self.num_coprocessors})")
