"""Replicated tenant key-state placement via rendezvous hashing.

A tenant's Galois/relin key material is the expensive resident state
on a board (Medha's framing: megabytes of key polynomials staged in
DDR). With replication factor R, each tenant's keys are pinned to its
R highest-scoring shards under the same rendezvous (HRW) hash the
affinity router uses — so placement is consistent: a board joining or
leaving moves only the tenants whose top-R set changed.

The placement also tracks *warmth*: which replicas currently hold the
tenant's keys staged. A crash evicts every warmth bit on that board;
a job that fails over to a cold replica pays a key-rehydration
penalty (priced by the cluster as extra polynomial transfers through
the existing DMA cost model) and warms the replica for its tenant.
"""

from __future__ import annotations

from collections.abc import Sequence

from .routing import _rendezvous_score


class ReplicatedPlacement:
    """Which boards hold (and have staged) each tenant's key state."""

    def __init__(self, shard_names: Sequence[str], replicas: int) -> None:
        if not 1 <= replicas <= len(shard_names):
            raise ValueError(
                f"replication factor must be in [1, {len(shard_names)}], "
                f"got {replicas}"
            )
        self.shard_names = list(shard_names)
        self.replicas = replicas
        self._preference: dict[str, list[int]] = {}
        #: tenant -> set of shard indices with the keys currently warm.
        self._warm: dict[str, set[int]] = {}

    def preference(self, tenant: str) -> list[int]:
        """All shards in descending rendezvous order for `tenant`."""
        order = self._preference.get(tenant)
        if order is None:
            order = sorted(
                range(len(self.shard_names)),
                key=lambda i: _rendezvous_score(tenant,
                                                self.shard_names[i]),
                reverse=True,
            )
            self._preference[tenant] = order
        return order

    def replica_set(self, tenant: str) -> list[int]:
        """The R boards pinned to hold `tenant`'s key state."""
        return self.preference(tenant)[: self.replicas]

    def primary(self, tenant: str) -> int:
        return self.preference(tenant)[0]

    def _warm_set(self, tenant: str) -> set[int]:
        warm = self._warm.get(tenant)
        if warm is None:
            # First sight of the tenant: its whole replica set starts
            # warm — steady-state key distribution happened before the
            # run window we simulate.
            warm = self._warm[tenant] = set(self.replica_set(tenant))
        return warm

    def is_warm(self, tenant: str, shard: int) -> bool:
        return shard in self._warm_set(tenant)

    def warm(self, tenant: str, shard: int) -> None:
        """Mark `tenant`'s keys staged on `shard` (rehydration done)."""
        self._warm_set(tenant).add(shard)

    def evict_shard(self, shard: int) -> None:
        """A board crashed: every tenant's keys there are gone."""
        for warm in self._warm.values():
            warm.discard(shard)

    def primary_tenants(self, shard: int) -> list[str]:
        """Tenants (seen so far) whose rendezvous-primary is `shard`."""
        return sorted(t for t in self._warm
                      if self.preference(t)[0] == shard)
