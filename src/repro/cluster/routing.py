"""Placement policies: which shard serves which arriving job.

The router sees every arrival once, with all shards advanced to the
arrival instant, and names a primary shard. Policies trade three goods
off against each other:

* **balance** — equalise outstanding work so the slowest shard (which
  sets cluster makespan) stays close to the mean;
* **affinity** — keep one tenant's jobs on one board so its DMA
  descriptor trains stay batchable (the server-side amortisation of
  :mod:`repro.serve.batching` only coalesces co-located jobs) and its
  relinearisation keys stay cached on that board's DDR;
* **decision cost** — a real dispatcher touches per-shard state under
  a lock; cheaper signals scale further.

:class:`RoundRobinRouter` and :class:`LeastOutstandingWorkRouter` are
the balance extremes; :class:`TenantAffinityRouter` is rendezvous
(highest-random-weight) hashing with an optional bounded-load spill;
:class:`PowerOfTwoChoicesRouter` is the classic two-sample compromise.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..system.workloads import Job
from .shard import Shard


class Router(ABC):
    """Base class: maps each arrival to a primary shard index."""

    name = "router"

    @abstractmethod
    def choose(self, job: Job, shards: Sequence[Shard]) -> int:
        """Index of the shard that should serve `job`."""


class RoundRobinRouter(Router):
    """Cycle through shards in order, blind to load and tenant."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, job: Job, shards: Sequence[Shard]) -> int:
        index = self._next % len(shards)
        self._next += 1
        return index


class LeastOutstandingWorkRouter(Router):
    """Send each job to the shard that would drain soonest.

    Compares :meth:`Shard.drain_estimate_seconds`, which prices the
    backlog in *that shard's own* service seconds — so in a
    heterogeneous cluster a slow board reports a longer drain for the
    same queue and naturally receives proportionally less work.
    """

    name = "low"

    def choose(self, job: Job, shards: Sequence[Shard]) -> int:
        return min(range(len(shards)),
                   key=lambda i: (shards[i].drain_estimate_seconds(), i))


def _rendezvous_score(tenant: str, shard_name: str) -> int:
    digest = hashlib.blake2b(f"{tenant}|{shard_name}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class TenantAffinityRouter(Router):
    """Consistent tenant placement via rendezvous (HRW) hashing.

    Every (tenant, shard) pair gets a deterministic score; a tenant
    lives on its highest-scoring shard. Adding or removing one shard
    relocates only the tenants whose top choice changed (~1/N of the
    population) — the consistent-hashing property that keeps a
    scale-out event from reshuffling every tenant's cached keys.

    With ``bounded_load_factor`` set, the router walks the tenant's
    rendezvous preference order and takes the first shard whose
    outstanding jobs stay within ``factor x cluster mean + 1`` — the
    consistent-hashing-with-bounded-loads refinement: near-perfect
    affinity at low load, a hard cap on hot-shard imbalance at
    saturation. ``None`` means pure affinity, never spill.
    """

    name = "affinity"

    def __init__(self, bounded_load_factor: float | None = None) -> None:
        if bounded_load_factor is not None and bounded_load_factor < 1.0:
            raise ValueError("bounded load factor must be >= 1")
        self.bounded_load_factor = bounded_load_factor
        if bounded_load_factor is not None:
            self.name = "affinity-bl"
        self._preference_cache: dict[str, list[int]] = {}

    def preference_order(self, tenant: str,
                         shards: Sequence[Shard]) -> list[int]:
        order = self._preference_cache.get(tenant)
        if order is None or len(order) != len(shards):
            order = sorted(
                range(len(shards)),
                key=lambda i: _rendezvous_score(tenant, shards[i].name),
                reverse=True,
            )
            self._preference_cache[tenant] = order
        return order

    def choose(self, job: Job, shards: Sequence[Shard]) -> int:
        order = self.preference_order(job.tenant, shards)
        if self.bounded_load_factor is None:
            return order[0]
        loads = [shard.outstanding_jobs() for shard in shards]
        cap = self.bounded_load_factor * (sum(loads) / len(shards)) + 1.0
        for index in order:
            if loads[index] <= cap:
                return index
        return order[0]


class PowerOfTwoChoicesRouter(Router):
    """Sample two shards uniformly, keep the one with less work.

    The classic balls-into-bins result: two random choices shrink the
    expected maximum load from Theta(log n / log log n) to
    Theta(log log n), at the cost of probing two shards instead of
    zero. Deterministic per seed so simulations replay exactly.
    """

    name = "p2c"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def choose(self, job: Job, shards: Sequence[Shard]) -> int:
        if len(shards) == 1:
            return 0
        first, second = self._rng.choice(len(shards), size=2,
                                         replace=False)
        if (shards[int(second)].drain_estimate_seconds()
                < shards[int(first)].drain_estimate_seconds()):
            return int(second)
        return int(first)


def default_routers(seed: int = 0) -> list[Router]:
    """Fresh instances of every built-in policy (for sweeps)."""
    return [RoundRobinRouter(), LeastOutstandingWorkRouter(),
            TenantAffinityRouter(),
            TenantAffinityRouter(bounded_load_factor=1.25),
            PowerOfTwoChoicesRouter(seed=seed)]
