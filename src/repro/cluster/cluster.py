"""The multi-FPGA shard layer: N boards behind one router.

Composes per-board :class:`~repro.serve.engine.ServingRuntime`
instances (wrapped as :class:`~repro.cluster.shard.Shard`) into one
serving system on a shared simulated clock. Arrivals are processed in
global time order: every shard first advances to the arrival instant
(strictly — tied arrivals keep the one-shot heap ordering inside each
shard), the router names a primary shard, and per-shard admission
backpressure can overflow the job onto the least-loaded accepting
sibling before the cluster gives up and rejects at its edge.

A single-shard cluster is bit-identical to driving the underlying
:class:`ServingRuntime` directly (validated in the tests), so the PR 1
runtime results — and through them the paper's 400 Mult/s headline —
carry over unchanged; the scale-out claim this layer adds is
near-linear Mult/s to eight boards under tenant-affinity routing.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import replace

from ..faults import (
    FAULT_EVENTS_COUNTER,
    FAULT_FAILOVERS_COUNTER,
    FAULT_JOBS_LOST_COUNTER,
    FAULT_REHYDRATIONS_COUNTER,
    FAULT_RETRIES_COUNTER,
    FailureReport,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from ..hw.config import HardwareConfig
from ..obs import active_tracer, current_registry
from ..params import ParameterSet
from ..serve.batching import BatchPolicy
from ..serve.schedulers import Scheduler
from ..serve.tenants import Rejection, TenantSet
from ..system.server import CostModel
from ..system.workloads import Job
from .placement import ReplicatedPlacement
from .report import ClusterReport
from .routing import RoundRobinRouter, Router
from .shard import Shard, ShardState

SchedulerFactory = Callable[[], Scheduler]

#: Canonical Table I input-transfer shape (two operand ciphertexts).
_DEFAULT_POLYS_IN = 4


class FpgaCluster:
    """N Arm+FPGA boards serving one job stream (single-use)."""

    def __init__(self, shards: Sequence[Shard],
                 router: Router | None = None, *,
                 fault_plan: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 replicas: int | None = None) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if len({shard.name for shard in shards}) != len(shards):
            raise ValueError("shard names must be unique")
        self.shards = list(shards)
        self.router = RoundRobinRouter() if router is None else router
        self.fault_plan = fault_plan
        if fault_plan is not None:
            for event in fault_plan:
                if event.shard >= len(self.shards):
                    raise ValueError(
                        f"fault plan names shard {event.shard} but the "
                        f"cluster has {len(self.shards)}"
                    )
        self.retry = (RetryPolicy() if retry is None
                      and fault_plan is not None else retry)
        self.placement = (None if replicas is None else
                          ReplicatedPlacement(
                              [s.name for s in self.shards], replicas))
        self._ran = False
        self._overflow: list[Rejection] = []
        self._reroutes = 0
        self._fault_queue: deque[FaultEvent] = deque()
        self._retry_heap: list[tuple[float, int, Job, int]] = []
        self._retry_seq = itertools.count()
        self._attempts: dict[tuple, int] = {}
        self._retries_scheduled = 0
        self._failure: FailureReport | None = None

    @property
    def _fault_mode(self) -> bool:
        """Whether the stepping loop interleaves fault/retry events."""
        return self.fault_plan is not None

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def homogeneous(cls, params: ParameterSet, num_shards: int, *,
                    config: HardwareConfig | None = None,
                    router: Router | None = None,
                    scheduler_factory: SchedulerFactory | None = None,
                    batching: BatchPolicy | None = None,
                    tenants: TenantSet | None = None,
                    max_backlog_seconds: float | None = None,
                    fault_plan: FaultPlan | None = None,
                    retry: RetryPolicy | None = None,
                    replicas: int | None = None,
                    ) -> FpgaCluster:
        """N identical boards sharing one cached :class:`CostModel`.

        The cost model (instruction cycle model and per-op latencies)
        depends only on ``(params, config)``, so identical boards share
        a single instance instead of re-deriving the Table II model N
        times.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        cost = CostModel(params, config)
        shards = [
            cls._build_shard(f"shard{i}", cost, scheduler_factory,
                             batching, tenants, max_backlog_seconds)
            for i in range(num_shards)
        ]
        return cls(shards, router=router, fault_plan=fault_plan,
                   retry=retry, replicas=replicas)

    @classmethod
    def heterogeneous(cls, params: ParameterSet,
                      configs: Sequence[HardwareConfig], *,
                      router: Router | None = None,
                      scheduler_factory: SchedulerFactory | None = None,
                      batching: BatchPolicy | None = None,
                      tenants: TenantSet | None = None,
                      max_backlog_seconds: float | None = None,
                      fault_plan: FaultPlan | None = None,
                      retry: RetryPolicy | None = None,
                      replicas: int | None = None,
                      ) -> FpgaCluster:
        """One board per config — mixed design points in one cluster.

        Real deployments accrete hardware: a rack may mix two-butterfly
        boards with older one-butterfly builds or the slow non-HPS
        design point. Load-aware routers see each board's own service
        costs, so the slow boards naturally draw less work.
        """
        if not configs:
            raise ValueError("need at least one hardware config")
        # Boards sharing a design point share one cost model too —
        # HardwareConfig is frozen/hashable, and the cycle model it
        # keys is the expensive part of shard construction.
        costs: dict[HardwareConfig, CostModel] = {}
        shards = []
        for i, config in enumerate(configs):
            cost = costs.get(config)
            if cost is None:
                cost = costs[config] = CostModel(params, config)
            shards.append(
                cls._build_shard(f"shard{i}", cost, scheduler_factory,
                                 batching, tenants, max_backlog_seconds)
            )
        return cls(shards, router=router, fault_plan=fault_plan,
                   retry=retry, replicas=replicas)

    @staticmethod
    def _build_shard(name: str, cost: CostModel,
                     scheduler_factory: SchedulerFactory | None,
                     batching: BatchPolicy | None,
                     tenants: TenantSet | None,
                     max_backlog_seconds: float | None) -> Shard:
        scheduler = scheduler_factory() if scheduler_factory else None
        return Shard(name, cost, scheduler=scheduler, batching=batching,
                     tenants=tenants,
                     max_backlog_seconds=max_backlog_seconds)

    def capacity_mults_per_second(self) -> float:
        """Sum of every board's saturated Mult/s."""
        return sum(shard.capacity_mults_per_second()
                   for shard in self.shards)

    # -- the shared-clock stepping API -------------------------------------------------

    def begin(self) -> None:
        """Arm every shard for one shared-clock run (single-use guard)."""
        if self._ran:
            raise RuntimeError(
                "an FpgaCluster is single-use; build a fresh one per run"
            )
        self._ran = True
        for shard in self.shards:
            shard.begin()
        self._overflow: list[Rejection] = []
        self._reroutes = 0
        self._fault_queue = deque(self.fault_plan or ())
        self._retry_heap = []
        self._retry_seq = itertools.count()
        self._attempts = {}
        self._retries_scheduled = 0
        if self.fault_plan is not None or self.placement is not None:
            self._failure = FailureReport(
                plan_seed=None if self.fault_plan is None
                else self.fault_plan.seed)

    def inject(self, job: Job) -> None:
        """Advance the boards to the arrival instant, route, and inject.

        Every board first advances to (just before) the arrival so the
        router compares load states at one instant; per-shard admission
        backpressure can then overflow the job onto the least-loaded
        accepting sibling before the cluster rejects at its edge. Under
        a fault plan, scheduled faults and due retries strictly before
        (or at) the arrival apply first, in time order.
        """
        now = job.arrival_seconds
        self._advance_shards(now, inclusive=False)
        self._route_and_inject(job, now)

    def advance_to(self, time_seconds: float, *,
                   inclusive: bool = True) -> None:
        """Advance every board's clock (stepping-protocol passthrough)."""
        self._advance_shards(time_seconds, inclusive=inclusive)

    def next_event_seconds(self) -> float | None:
        """Due time of the earliest queued event on any board.

        Includes pending fault-plan events and scheduled retries, so
        closed-loop drivers stepping by next-event never leap over a
        crash or a backed-off re-injection.
        """
        times = [t for shard in self.shards
                 if (t := shard.next_event_seconds()) is not None]
        if self._fault_queue:
            times.append(self._fault_queue[0].time_seconds)
        if self._retry_heap:
            times.append(self._retry_heap[0][0])
        return min(times, default=None)

    def completion_feeds(self) -> list[list]:
        """One live completion list per shard (closed-loop protocol)."""
        return [feed for shard in self.shards
                for feed in shard.runtime.completion_feeds()]

    def rejection_feeds(self) -> list[list[Rejection]]:
        """Per-shard live rejection lists plus the cluster-edge overflow."""
        feeds = [feed for shard in self.shards
                 for feed in shard.runtime.rejection_feeds()]
        return feeds + [self._overflow]

    def drain(self) -> ClusterReport:
        """Drain every board and merge the per-shard reports.

        Pending fault events and backed-off retries are applied first,
        in time order, so a crash scheduled after the last arrival
        still spills (and recovers) exactly as it would mid-stream.
        """
        while self._fault_queue or self._retry_heap:
            due = self._next_internal_due()
            self._advance_shards(due, inclusive=False)
        reports = [shard.drain() for shard in self.shards]
        if self._failure is not None:
            self._close_downtime_windows()
        return ClusterReport(
            shard_names=[shard.name for shard in self.shards],
            shard_reports=reports,
            router_name=self.router.name,
            overflow_rejected=self._overflow,
            reroutes=self._reroutes,
            registry_snapshot=current_registry().snapshot(),
            failure=self._failure,
        )

    # -- fault interleaving ------------------------------------------------------------

    def _next_internal_due(self) -> float:
        """Earliest pending fault or retry instant (queues non-empty)."""
        times = []
        if self._fault_queue:
            times.append(self._fault_queue[0].time_seconds)
        if self._retry_heap:
            times.append(self._retry_heap[0][0])
        return min(times)

    def _advance_shards(self, time_seconds: float, *,
                        inclusive: bool) -> None:
        """Advance every board to ``time_seconds``, applying any fault
        events and due retries on the way, in time order (a fault and a
        retry due at one instant apply fault-first: a crash at *t* must
        not race the re-injection it may itself have caused)."""
        while self._fault_mode or self._retry_heap:
            fault_due = (self._fault_queue[0].time_seconds
                         if self._fault_queue else None)
            retry_due = (self._retry_heap[0][0]
                         if self._retry_heap else None)
            if fault_due is not None and fault_due <= time_seconds and (
                    retry_due is None or fault_due <= retry_due):
                for shard in self.shards:
                    shard.advance_to(fault_due, inclusive=False)
                self._apply_fault(self._fault_queue.popleft())
                continue
            if retry_due is not None and retry_due <= time_seconds:
                for shard in self.shards:
                    shard.advance_to(retry_due, inclusive=False)
                _, _, job, origin = heapq.heappop(self._retry_heap)
                self._inject_retry(job, origin)
                continue
            break
        for shard in self.shards:
            shard.advance_to(time_seconds, inclusive=inclusive)

    def _apply_fault(self, event: FaultEvent) -> None:
        now = event.time_seconds
        shard = self.shards[event.shard]
        failure = self._failure
        failure.events.append(event)
        FAULT_EVENTS_COUNTER.inc(kind=event.kind.value)
        tracer = active_tracer()
        if tracer is not None:
            tracer.add(f"fault.{event.kind.value}", "fault", now, now,
                       clock="sim", shard=shard.name)
        if event.kind is FaultKind.SHARD_CRASH:
            if shard.state is ShardState.DOWN:
                return
            spilled = shard.crash(now)
            failure.crashes += 1
            failure.jobs_spilled += len(spilled)
            if self.placement is not None:
                self.placement.evict_shard(event.shard)
            for job in spilled:
                self._schedule_retry(job, event.shard, now)
        elif event.kind is FaultKind.SHARD_RECOVER:
            if shard.state is not ShardState.DOWN:
                return
            down_since = shard.down_since
            failure.recoveries += 1
            failure.downtime_by_shard[shard.name] = (
                failure.downtime_by_shard.get(shard.name, 0.0)
                + (now - down_since))
            if tracer is not None:
                tracer.add("shard.down", "fault", down_since, now,
                           clock="sim", shard=shard.name)
            if self.placement is not None:
                failure.rebalanced_tenants += len(
                    self.placement.primary_tenants(event.shard))
            shard.recover()
        elif event.kind is FaultKind.JOB_FAIL:
            if shard.state is ShardState.DOWN:
                return
            job = shard.fail_one()
            if job is not None:
                failure.transient_failures += 1
                self._schedule_retry(job, event.shard, now)
        elif event.kind is FaultKind.DMA_STALL:
            if shard.state is not ShardState.DOWN:
                shard.set_service_scale(event.factor)
                failure.dma_stalls += 1
        elif event.kind is FaultKind.DMA_RESUME:
            if shard.state is not ShardState.DOWN:
                shard.set_service_scale(1.0)

    def _schedule_retry(self, job: Job, origin: int, now: float) -> None:
        """Queue a failed/spilled job for backed-off re-injection."""
        retry = self.retry if self.retry is not None else RetryPolicy()
        key = (job.tenant, job.index, job.request)
        attempt = self._attempts.get(key, 1) + 1
        self._attempts[key] = attempt
        budget_spent = (retry.total_budget is not None
                        and self._retries_scheduled >= retry.total_budget)
        if attempt > retry.max_attempts or budget_spent:
            self._failure.jobs_lost += 1
            FAULT_JOBS_LOST_COUNTER.inc()
            self._overflow.append(Rejection(
                job=job, time_seconds=now, reason="retry-budget"))
            return
        self._retries_scheduled += 1
        due = now + retry.backoff_seconds(attempt - 1, token=job.index)
        first = (job.arrival_seconds if job.first_arrival_seconds is None
                 else job.first_arrival_seconds)
        deadline = job.deadline_seconds
        if deadline is None and retry.deadline_seconds is not None:
            deadline = first + retry.deadline_seconds
        retried = replace(job, arrival_seconds=due,
                          first_arrival_seconds=first,
                          deadline_seconds=deadline)
        heapq.heappush(self._retry_heap,
                       (due, next(self._retry_seq), retried, origin))

    def _inject_retry(self, job: Job, origin: int) -> None:
        self._failure.jobs_retried += 1
        FAULT_RETRIES_COUNTER.inc()
        target = self._route_and_inject(job, job.arrival_seconds)
        if target is not None and target != origin:
            self._failure.jobs_relocated += 1

    def _close_downtime_windows(self) -> None:
        """Account downtime for boards still DOWN when the run ends."""
        end = max((shard.runtime.now for shard in self.shards),
                  default=0.0)
        tracer = active_tracer()
        for shard in self.shards:
            if shard.state is not ShardState.DOWN:
                continue
            self._failure.downtime_by_shard[shard.name] = (
                self._failure.downtime_by_shard.get(shard.name, 0.0)
                + (end - shard.down_since))
            if tracer is not None:
                tracer.add("shard.down", "fault", shard.down_since, end,
                           clock="sim", shard=shard.name)

    # -- routing -----------------------------------------------------------------------

    def _route_and_inject(self, job: Job, now: float) -> int | None:
        """Name a target board for `job` and inject; None if rejected.

        The fault-free, replication-free path is byte-for-byte the
        pre-fault routing logic (single-shard bit-exactness and the
        router comparison benches depend on it); health masking and
        replica placement only engage when a board is down or a
        :class:`ReplicatedPlacement` is configured.
        """
        if self.placement is not None:
            return self._route_replicated(job, now)
        alive = [i for i, shard in enumerate(self.shards)
                 if shard.state is ShardState.UP]
        if not alive:
            self._overflow.append(Rejection(
                job=job, time_seconds=now, reason="unavailable"))
            return None
        masked = len(alive) != len(self.shards)
        view = ([self.shards[i] for i in alive] if masked
                else self.shards)
        chosen = self.router.choose(job, view)
        if not 0 <= chosen < len(view):
            raise ValueError(
                f"router {self.router.name!r} chose shard {chosen} "
                f"of {len(view)}"
            )
        primary = alive[chosen] if masked else chosen
        target = primary
        if not self.shards[primary].accepting(job):
            # Overflow re-routing: the least-loaded accepting
            # sibling takes the spill.
            siblings = [
                i for i in alive
                if i != primary and self.shards[i].accepting(job)
            ]
            if siblings:
                target = min(
                    siblings,
                    key=lambda i:
                        (self.shards[i].drain_estimate_seconds(), i),
                )
                self._reroutes += 1
            elif self.shards[primary].runtime.would_admit(job):
                # Every board is over its backlog cap but none
                # would refuse outright: shed at the cluster edge
                # rather than bust the primary's cap.
                self._overflow.append(Rejection(job=job, time_seconds=now,
                                                reason="backpressure"))
                return None
            # Otherwise fall through: the primary's own admission
            # control records the rejection with its precise reason.
        self.shards[target].inject(job)
        return target

    def _route_replicated(self, job: Job, now: float) -> int | None:
        """Tenant-pinned routing over the replica set, with failover.

        Walks the tenant's full rendezvous preference order and takes
        the first UP, accepting board. Inside the replica set that is
        normal affinity; past it the tenant *fails over*, paying the
        key-rehydration penalty on a board that has never staged its
        keys (and on a replica gone cold after a crash).
        """
        placement = self.placement
        order = placement.preference(job.tenant)
        alive = [i for i in order
                 if self.shards[i].state is ShardState.UP]
        if not alive:
            self._overflow.append(Rejection(
                job=job, time_seconds=now, reason="unavailable"))
            return None
        target = next((i for i in alive
                       if self.shards[i].accepting(job)), None)
        if target is None:
            if self.shards[alive[0]].runtime.would_admit(job):
                self._overflow.append(Rejection(
                    job=job, time_seconds=now, reason="backpressure"))
                return None
            # Let the preferred live board's admission control record
            # the rejection with its precise reason.
            target = alive[0]
        if target != alive[0]:
            self._reroutes += 1
        primary = order[0]
        if (target != primary
                and self.shards[primary].state is ShardState.DOWN):
            tenants = self._failure.failovers_by_tenant
            tenants[job.tenant] = tenants.get(job.tenant, 0) + 1
            FAULT_FAILOVERS_COUNTER.inc()
        if not placement.is_warm(job.tenant, target):
            # Cold replica: the tenant's relin/Galois key polynomials
            # must restage over DMA before this job runs — priced as
            # extra input transfers through the existing cost model.
            key_polys = 2 * self.shards[target].cost.params.k_q
            polys_in = (_DEFAULT_POLYS_IN if job.polys_in is None
                        else job.polys_in)
            job = replace(job, polys_in=polys_in + key_polys)
            placement.warm(job.tenant, target)
            self._failure.rehydrations += 1
            FAULT_REHYDRATIONS_COUNTER.inc()
        self.shards[target].inject(job)
        return target

    def run(self, jobs: Sequence[Job]) -> ClusterReport:
        """Route `jobs` across the shards and drain every board.

        Exactly ``begin`` + ``inject``\\* (in arrival order) + ``drain``,
        so the one-shot and stepping paths share one code path — the
        same structure :class:`~repro.serve.engine.ServingRuntime` has.
        """
        self.begin()
        for job in sorted(jobs, key=lambda j: j.arrival_seconds):
            self.inject(job)
        return self.drain()
