"""The multi-FPGA shard layer: N boards behind one router.

Composes per-board :class:`~repro.serve.engine.ServingRuntime`
instances (wrapped as :class:`~repro.cluster.shard.Shard`) into one
serving system on a shared simulated clock. Arrivals are processed in
global time order: every shard first advances to the arrival instant
(strictly — tied arrivals keep the one-shot heap ordering inside each
shard), the router names a primary shard, and per-shard admission
backpressure can overflow the job onto the least-loaded accepting
sibling before the cluster gives up and rejects at its edge.

A single-shard cluster is bit-identical to driving the underlying
:class:`ServingRuntime` directly (validated in the tests), so the PR 1
runtime results — and through them the paper's 400 Mult/s headline —
carry over unchanged; the scale-out claim this layer adds is
near-linear Mult/s to eight boards under tenant-affinity routing.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..hw.config import HardwareConfig
from ..obs import current_registry
from ..params import ParameterSet
from ..serve.batching import BatchPolicy
from ..serve.schedulers import Scheduler
from ..serve.tenants import Rejection, TenantSet
from ..system.server import CostModel
from ..system.workloads import Job
from .report import ClusterReport
from .routing import RoundRobinRouter, Router
from .shard import Shard

SchedulerFactory = Callable[[], Scheduler]


class FpgaCluster:
    """N Arm+FPGA boards serving one job stream (single-use)."""

    def __init__(self, shards: Sequence[Shard],
                 router: Router | None = None) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        if len({shard.name for shard in shards}) != len(shards):
            raise ValueError("shard names must be unique")
        self.shards = list(shards)
        self.router = RoundRobinRouter() if router is None else router
        self._ran = False
        self._overflow: list[Rejection] = []
        self._reroutes = 0

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def homogeneous(cls, params: ParameterSet, num_shards: int, *,
                    config: HardwareConfig | None = None,
                    router: Router | None = None,
                    scheduler_factory: SchedulerFactory | None = None,
                    batching: BatchPolicy | None = None,
                    tenants: TenantSet | None = None,
                    max_backlog_seconds: float | None = None,
                    ) -> FpgaCluster:
        """N identical boards sharing one cached :class:`CostModel`.

        The cost model (instruction cycle model and per-op latencies)
        depends only on ``(params, config)``, so identical boards share
        a single instance instead of re-deriving the Table II model N
        times.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        cost = CostModel(params, config)
        shards = [
            cls._build_shard(f"shard{i}", cost, scheduler_factory,
                             batching, tenants, max_backlog_seconds)
            for i in range(num_shards)
        ]
        return cls(shards, router=router)

    @classmethod
    def heterogeneous(cls, params: ParameterSet,
                      configs: Sequence[HardwareConfig], *,
                      router: Router | None = None,
                      scheduler_factory: SchedulerFactory | None = None,
                      batching: BatchPolicy | None = None,
                      tenants: TenantSet | None = None,
                      max_backlog_seconds: float | None = None,
                      ) -> FpgaCluster:
        """One board per config — mixed design points in one cluster.

        Real deployments accrete hardware: a rack may mix two-butterfly
        boards with older one-butterfly builds or the slow non-HPS
        design point. Load-aware routers see each board's own service
        costs, so the slow boards naturally draw less work.
        """
        if not configs:
            raise ValueError("need at least one hardware config")
        # Boards sharing a design point share one cost model too —
        # HardwareConfig is frozen/hashable, and the cycle model it
        # keys is the expensive part of shard construction.
        costs: dict[HardwareConfig, CostModel] = {}
        shards = []
        for i, config in enumerate(configs):
            cost = costs.get(config)
            if cost is None:
                cost = costs[config] = CostModel(params, config)
            shards.append(
                cls._build_shard(f"shard{i}", cost, scheduler_factory,
                                 batching, tenants, max_backlog_seconds)
            )
        return cls(shards, router=router)

    @staticmethod
    def _build_shard(name: str, cost: CostModel,
                     scheduler_factory: SchedulerFactory | None,
                     batching: BatchPolicy | None,
                     tenants: TenantSet | None,
                     max_backlog_seconds: float | None) -> Shard:
        scheduler = scheduler_factory() if scheduler_factory else None
        return Shard(name, cost, scheduler=scheduler, batching=batching,
                     tenants=tenants,
                     max_backlog_seconds=max_backlog_seconds)

    def capacity_mults_per_second(self) -> float:
        """Sum of every board's saturated Mult/s."""
        return sum(shard.capacity_mults_per_second()
                   for shard in self.shards)

    # -- the shared-clock stepping API -------------------------------------------------

    def begin(self) -> None:
        """Arm every shard for one shared-clock run (single-use guard)."""
        if self._ran:
            raise RuntimeError(
                "an FpgaCluster is single-use; build a fresh one per run"
            )
        self._ran = True
        for shard in self.shards:
            shard.begin()
        self._overflow: list[Rejection] = []
        self._reroutes = 0

    def inject(self, job: Job) -> None:
        """Advance the boards to the arrival instant, route, and inject.

        Every board first advances to (just before) the arrival so the
        router compares load states at one instant; per-shard admission
        backpressure can then overflow the job onto the least-loaded
        accepting sibling before the cluster rejects at its edge.
        """
        now = job.arrival_seconds
        for shard in self.shards:
            shard.advance_to(now, inclusive=False)
        primary = self.router.choose(job, self.shards)
        if not 0 <= primary < len(self.shards):
            raise ValueError(
                f"router {self.router.name!r} chose shard {primary} "
                f"of {len(self.shards)}"
            )
        target = primary
        if not self.shards[primary].accepting(job):
            # Overflow re-routing: the least-loaded accepting
            # sibling takes the spill.
            siblings = [
                i for i in range(len(self.shards))
                if i != primary and self.shards[i].accepting(job)
            ]
            if siblings:
                target = min(
                    siblings,
                    key=lambda i:
                        (self.shards[i].drain_estimate_seconds(), i),
                )
                self._reroutes += 1
            elif self.shards[primary].runtime.would_admit(job):
                # Every board is over its backlog cap but none
                # would refuse outright: shed at the cluster edge
                # rather than bust the primary's cap.
                self._overflow.append(Rejection(job=job, time_seconds=now,
                                                reason="backpressure"))
                return
            # Otherwise fall through: the primary's own admission
            # control records the rejection with its precise reason.
        self.shards[target].inject(job)

    def advance_to(self, time_seconds: float, *,
                   inclusive: bool = True) -> None:
        """Advance every board's clock (stepping-protocol passthrough)."""
        for shard in self.shards:
            shard.advance_to(time_seconds, inclusive=inclusive)

    def next_event_seconds(self) -> float | None:
        """Due time of the earliest queued event on any board."""
        times = [t for shard in self.shards
                 if (t := shard.next_event_seconds()) is not None]
        return min(times, default=None)

    def completion_feeds(self) -> list[list]:
        """One live completion list per shard (closed-loop protocol)."""
        return [feed for shard in self.shards
                for feed in shard.runtime.completion_feeds()]

    def rejection_feeds(self) -> list[list[Rejection]]:
        """Per-shard live rejection lists plus the cluster-edge overflow."""
        feeds = [feed for shard in self.shards
                 for feed in shard.runtime.rejection_feeds()]
        return feeds + [self._overflow]

    def drain(self) -> ClusterReport:
        """Drain every board and merge the per-shard reports."""
        reports = [shard.drain() for shard in self.shards]
        return ClusterReport(
            shard_names=[shard.name for shard in self.shards],
            shard_reports=reports,
            router_name=self.router.name,
            overflow_rejected=self._overflow,
            reroutes=self._reroutes,
            registry_snapshot=current_registry().snapshot(),
        )

    def run(self, jobs: Sequence[Job]) -> ClusterReport:
        """Route `jobs` across the shards and drain every board.

        Exactly ``begin`` + ``inject``\\* (in arrival order) + ``drain``,
        so the one-shot and stepping paths share one code path — the
        same structure :class:`~repro.serve.engine.ServingRuntime` has.
        """
        self.begin()
        for job in sorted(jobs, key=lambda j: j.arrival_seconds):
            self.inject(job)
        return self.drain()
