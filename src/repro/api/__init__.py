"""The public client facade: sessions, handles, and lazy HE programs.

This package is the bridge the repository's two halves meet on. The
functional FV layer (:mod:`repro.fv`) computes on real ciphertexts; the
serving/cluster simulation (:mod:`repro.serve`, :mod:`repro.cluster`)
prices abstract job streams against the paper's hardware cost models.
The facade lets one client program drive both:

>>> from repro.api import Session, SimulatedBackend, sum_slots
>>> from repro.params import mini
>>> s = Session(mini(t=257), seed=7)
>>> a, b = s.encrypt([1, 2, 3, 4]), s.encrypt([5, 6, 7, 8])
>>> dot = s.compile(sum_slots(a * b), name="dot-product")

Functionally (real FV arithmetic, verified noise budget):

>>> int(Session.decrypt(s, LocalBackend(s).run(dot)["out"])[0])

And through the simulated serving stack (latency under load):

>>> run = SimulatedBackend.over_cluster(s.params, 4).run(
...     dot, requests=200, rate_per_second=300.0)
>>> run.latency_summary().p99

The modules:

* :mod:`~repro.api.session` — :class:`Session`: keys, encoder
  selection, encrypt/decrypt, Galois key caching, program compilation;
* :mod:`~repro.api.program` — :class:`CiphertextHandle` operator
  algebra, the expression DAG, :class:`HEProgram` with static
  depth/noise checks and job-stream lowering;
* :mod:`~repro.api.backends` — the :class:`Backend` protocol and the
  functional :class:`LocalBackend`;
* :mod:`~repro.api.simulated` — :class:`SimulatedBackend` with
  future-style request handles and latency telemetry;
* :mod:`~repro.api.resident` — the bounded cross-request
  :class:`ResidentOperandCache` both executors key by ciphertext
  handle.
"""

from .backends import Backend, LocalBackend, ProgramResult
from .program import (
    CiphertextHandle,
    HEProgram,
    LoweredOp,
    OpKind,
    rotate,
    sum_slots,
)
from .resident import ResidentOperandCache
from .session import Session
from .simulated import (
    LoweredProgram,
    ProgramFuture,
    SimulatedBackend,
    SimulatedRun,
)

__all__ = [
    "Session",
    "CiphertextHandle",
    "HEProgram",
    "OpKind",
    "LoweredOp",
    "LoweredProgram",
    "rotate",
    "sum_slots",
    "Backend",
    "LocalBackend",
    "ProgramResult",
    "ResidentOperandCache",
    "SimulatedBackend",
    "SimulatedRun",
    "ProgramFuture",
]
