"""Program executors: the ``Backend`` protocol and the functional one.

A backend consumes a compiled :class:`~repro.api.program.HEProgram`.
:class:`LocalBackend` here executes it for real — every graph node runs
through the FV :class:`~repro.fv.evaluator.Evaluator` (multiplication +
relinearisation exactly as the paper's coprocessor computes them) or the
:class:`~repro.fv.galois.GaloisEngine` (rotations), and the results are
verified against the measured noise budget before they are handed back.
The simulation twin lives in :mod:`repro.api.simulated`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from contextlib import nullcontext

from ..errors import NoiseBudgetExhausted, ParameterError
from ..fv.ciphertext import Ciphertext
from ..nttmath.batch import transform_counts
from ..obs import TraceReport, Tracer
from ..parallel import Executor, ExecutionConfig, build_executor, use_executor
from .program import CiphertextHandle, ExprNode, HEProgram, OpKind
from .resident import ResidentOperandCache
from .session import Session


def _count_diff(before: dict[str, int],
                after: dict[str, int]) -> dict[str, int]:
    return {key: after[key] - before[key] for key in after
            if after[key] != before[key]}


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute an :class:`HEProgram`."""

    def run(self, program: HEProgram, **kwargs):  # pragma: no cover
        ...


class ProgramResult:
    """Outputs of one functional execution, addressable by label."""

    def __init__(self, session: Session,
                 outputs: dict[str, CiphertextHandle],
                 trace: TraceReport | None = None) -> None:
        self.session = session
        self.outputs = outputs
        #: Wall-clock trace of the run that produced these outputs.
        self.trace = trace

    def __getitem__(self, label: str) -> CiphertextHandle:
        return self.outputs[label]

    def handle(self, label: str = "out") -> CiphertextHandle:
        return self.outputs[label]

    def decrypt(self, label: str = "out", size: int | None = None):
        """Decrypt one output into the session encoder's domain."""
        return self.session.decrypt(self.outputs[label], size)

    def ciphertext(self, label: str = "out") -> Ciphertext:
        """One output's ciphertext in its *current* domain.

        Unlike :attr:`CiphertextHandle.ciphertext`, this does not force
        a coefficient-domain conversion — with a resident-emitting
        backend the result serialises straight into the NTT-domain wire
        format.
        """
        return self.outputs[label].node.cached

    def noise_budget_bits(self, label: str = "out") -> float:
        return self.session.noise_budget_bits(self.outputs[label])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProgramResult({list(self.outputs)})"


class LocalBackend:
    """Execute a program functionally over the session's evaluator.

    Node results are cached on the expression graph, so overlapping
    programs (or a decrypt of an intermediate handle followed by more
    building) never recompute shared work. With ``verify=True`` every
    output's *measured* noise budget is checked after execution — a
    non-positive budget means the decryption is garbage, and the
    backend refuses to return it silently.

    With ``ntt_resident=True`` (the default) intermediates stay in the
    evaluation domain across ADD / SUB / MUL_PLAIN / ROTATE / SUM_SLOTS
    chains, exactly as HEAX/Medha keep operands on-chip in NTT form:
    rotations become slot permutations plus a key switch that never
    leaves the NTT domain, plaintext multiplies are pointwise products
    against the session's plaintext-constant NTT pool, and — with the
    evaluation-domain base extension — MULTIPLY consumes resident
    operands directly and can emit a resident product, so conversions
    back to the coefficient domain happen only at the program's output
    boundary. ``ntt_resident=False`` replays
    the eager coefficient-domain schedule; :attr:`telemetry` reports
    the forward/inverse transform counts of the last run so the saving
    is measurable (the property tests assert it).

    Residency also spans *requests*. Born-resident inputs
    (``Session.encrypt(..., resident=True)`` or an NTT-domain wire
    load) are ingested without a coefficient round-trip; a bounded
    :class:`~repro.api.resident.ResidentOperandCache` keyed by handle
    remembers the resident form of every operand this backend has
    materialised, so a handle reused by a later program is restored
    from cache instead of re-transformed. ``resident_outputs=True``
    additionally skips the output boundary's inverse transform — the
    emit half of the resident pipeline, for results that will be
    serialised in the NTT-domain wire format or fed to further
    programs.
    """

    def __init__(self, session: Session, *, verify: bool = True,
                 ntt_resident: bool = True,
                 resident_outputs: bool = False,
                 resident_cache: ResidentOperandCache | None = None,
                 resident_cache_limit: int = 64,
                 executor: Executor | ExecutionConfig | str | None
                 = None) -> None:
        self.session = session
        self.verify = verify
        self.ntt_resident = ntt_resident
        self.resident_outputs = resident_outputs
        # Executor selection: None defers to the ambient scope / env
        # default at run time; a mode string or ExecutionConfig is
        # built once here (degrading loudly to serial on failure); a
        # live Executor is used as-is (caller keeps ownership).
        if isinstance(executor, str):
            executor = ExecutionConfig(mode=executor.strip().lower())
        if isinstance(executor, ExecutionConfig):
            executor = build_executor(executor)
        self.executor: Executor | None = executor
        self.resident_cache = (
            resident_cache if resident_cache is not None
            else ResidentOperandCache(resident_cache_limit, name="local")
        )
        #: Transform counts of the most recent :meth:`run`.
        self.last_transform_counts: dict[str, int] = {}
        #: Cache restores performed by the most recent :meth:`run`.
        self.last_cache_restores = 0
        #: Wall-clock trace of the most recent :meth:`run` — per-op
        #: spans (with transform-count diffs and nested engine
        #: transform spans) reducible to rollups and a critical path.
        self.last_trace: TraceReport | None = None
        #: Accumulated transform counts across all runs of this backend.
        self.total_transform_counts = {
            key: 0 for key in transform_counts()
        }

    @property
    def telemetry(self) -> dict:
        """Execution telemetry: transform counts, cache, executor mode."""
        return {
            "ntt_resident": self.ntt_resident,
            "resident_outputs": self.resident_outputs,
            "executor": ("ambient" if self.executor is None
                         else self.executor.name),
            "workers": (0 if self.executor is None
                        else self.executor.workers),
            "last_run": dict(self.last_transform_counts),
            "total": dict(self.total_transform_counts),
            "resident_cache": {
                **self.resident_cache.stats(),
                "last_run_restores": self.last_cache_restores,
            },
        }

    def run(self, program: HEProgram, **kwargs) -> ProgramResult:
        if kwargs:
            raise TypeError(
                f"LocalBackend.run got unknown options {sorted(kwargs)}"
            )
        # Identity is the cheap check; equal parameter sets from
        # two constructions are fine too.
        if (program.params is not self.session.params
                and program.params != self.session.params):
            raise ParameterError(
                "program was compiled for different parameters"
            )
        before = transform_counts()
        tracer = Tracer("heprogram.run", kind="program")
        order = {id(node): i for i, node in enumerate(program.nodes)}
        poly_bytes = program.params.poly_bytes
        # Spans measure per-op wall clock; each op span also records
        # the transform-counter diff across its execution, so the
        # TraceReport's totals reconcile exactly with the run-level
        # registry diff (the tests assert the equality).
        scope = (use_executor(self.executor)
                 if self.executor is not None else nullcontext())
        with scope, tracer.activate():
            wants = (self._plan_domains(program)
                     if self.ntt_resident else {})
            with tracer.span("restore_residents", kind="phase") as sp:
                self.last_cache_restores = self._restore_residents(
                    program, wants
                )
                sp.attrs["restores"] = self.last_cache_restores
            steps = program.rotation_steps()
            if steps or program.uses_sum_slots:
                # Program-wide Galois key prefetch: one deduped keygen
                # batch up front instead of per-op cache probes.
                with tracer.span("prefetch_galois", kind="phase") as sp:
                    pre_before = transform_counts()
                    sp.attrs["steps"] = len(steps)
                    sp.attrs["generated"] = (
                        self.session.prefetch_rotation_keys(steps)
                        if steps else 0
                    )
                    if program.uses_sum_slots:
                        self.session.summation_keys()
                    sp.attrs["transforms"] = _count_diff(
                        pre_before, transform_counts()
                    )
            # Hoisted rotation groups (optimiser analysis): executing
            # the first member computes every member off one shared
            # digit transform; later members hit the graph cache.
            hoisted: dict[int, tuple[ExprNode, ...]] = {}
            if self.ntt_resident:
                for group in program.hoist_groups:
                    for member in group:
                        hoisted[id(member)] = group
            for node in program.nodes:
                if node.cached is not None:
                    continue
                with tracer.span(
                    node.op.name.lower(), kind="op", op=node.op.name,
                    node=order[id(node)],
                    deps=tuple(order[id(a)] for a in node.args),
                    bytes_moved=(2 * len(node.args) + 2) * poly_bytes,
                ) as sp:
                    op_before = transform_counts()
                    group = hoisted.get(id(node))
                    if group is not None:
                        sp.attrs["hoisted"] = self._execute_hoisted(group)
                    if node.cached is None:
                        node.cached = self._execute(node, wants)
                    sp.attrs["transforms"] = _count_diff(
                        op_before, transform_counts()
                    )
            # Remember the resident operands that cross request
            # boundaries — program inputs and outputs. Intermediates
            # are deliberately not cached: they are never
            # boundary-converted (the graph cache keeps them resident
            # as long as their handles live), and a single wide program
            # would otherwise flush the bounded FIFO of every genuinely
            # reusable entry.
            if self.ntt_resident:
                boundary = list(program.inputs) + list(
                    program.outputs.values()
                )
                for node in boundary:
                    if (node.cached is not None
                            and node.cached.ntt_resident):
                        self.resident_cache.put(node, node.cached)
            # Output boundary: by default results leave the executor in
            # the coefficient domain (the legacy wire representation),
            # mirroring the download DMA of the paper's server; with
            # ``resident_outputs`` they stay in the evaluation domain
            # for the NTT-domain wire format. Either way the resident
            # form survives in the cache for cross-program reuse.
            context = self.session.context
            if not self.resident_outputs:
                with tracer.span("output_boundary", kind="phase") as sp:
                    bnd_before = transform_counts()
                    for node in program.outputs.values():
                        node.cached = context.to_coeff_ct(node.cached)
                    sp.attrs["transforms"] = _count_diff(
                        bnd_before, transform_counts()
                    )
            outputs = {
                label: CiphertextHandle(node, self.session)
                for label, node in program.outputs.items()
            }
            if self.verify:
                # Noise measurement can itself transform (resident
                # outputs decrypt through a conversion); tracing it as
                # a phase keeps the trace totals equal to the run-level
                # registry diff even with verification on.
                with tracer.span("verify_outputs", kind="phase") as sp:
                    ver_before = transform_counts()
                    for label, handle in outputs.items():
                        budget = self.session.noise_budget_bits(handle)
                        if budget <= 0:
                            raise NoiseBudgetExhausted(
                                f"output {label!r} decrypts with no "
                                f"noise budget left ({budget:.1f} bits)"
                            )
                    sp.attrs["transforms"] = _count_diff(
                        ver_before, transform_counts()
                    )
        after = transform_counts()
        self.last_trace = tracer.report()
        self.last_transform_counts = {
            key: after[key] - before[key] for key in after
        }
        for key, value in self.last_transform_counts.items():
            self.total_transform_counts[key] += value
        return ProgramResult(self.session, outputs,
                             trace=self.last_trace)

    def _restore_residents(self, program: HEProgram,
                           wants: dict[int, bool]) -> int:
        """Swap already-materialised coefficient-domain operands for
        their cached resident forms where the domain plan wants them.

        This is what makes residency *cross-request*: an output the
        previous run converted at its boundary (or an input whose
        handle access degraded it) re-enters the evaluation domain via
        a cache hit instead of a fresh forward transform.
        """
        if not self.ntt_resident:
            return 0
        restores = 0
        for node in program.nodes:
            ct = node.cached
            if ct is None or ct.ntt_resident:
                continue
            if not wants.get(id(node), False):
                continue
            resident = self.resident_cache.get(node)
            if resident is not None:
                node.cached = resident
                restores += 1
        return restores

    # -- domain planning ---------------------------------------------------------------

    #: Ops that compute naturally in the evaluation domain — a node
    #: feeding one of these benefits from arriving NTT-resident.
    #: MULTIPLY joined the set with the evaluation-domain base
    #: extension (:func:`~repro.rns.lift.lift_hps_ntt`): resident
    #: operands now feed the tensor step directly, so a producer
    #: upstream of a Mult should stay resident rather than pay the
    #: boundary inverse transform. RELINEARIZE is deliberately *not* a
    #: sink: its c2 digits decompose raw coefficient residues, so its
    #: three-part input must stay coefficient-domain.
    _RESIDENT_SINKS = frozenset(
        {OpKind.ROTATE, OpKind.MUL_PLAIN, OpKind.SUM_SLOTS,
         OpKind.MULTIPLY, OpKind.MULTIPLY_RAW}
    )
    #: Domain-agnostic ops: they propagate their consumers' preference.
    _LINEAR_OPS = frozenset(
        {OpKind.ADD, OpKind.SUB, OpKind.NEGATE, OpKind.ADD_PLAIN}
    )

    def _plan_domains(self, program: HEProgram) -> dict[int, bool]:
        """Consumer analysis: which nodes should produce NTT-resident
        results?

        Greedy residency wastes transforms when a rotation or plaintext
        multiply feeds straight into a coefficient-domain boundary (a
        program output, or MULTIPLY on a parameter set the resident
        tensor path cannot serve): the forward transforms it saves come
        back as inverse transforms one node later. Walking the graph in
        reverse, a node wants to be resident exactly when some consumer
        computes in the evaluation domain — directly, or through a
        chain of domain-agnostic linear ops.
        """
        sinks = self._RESIDENT_SINKS
        if not self.session.evaluator.resident_tensor_ok:
            # MULTIPLY consumes coefficients here, so feeding it a
            # resident operand would just be a counted round trip.
            sinks = sinks - {OpKind.MULTIPLY, OpKind.MULTIPLY_RAW}
        consumers: dict[int, list[ExprNode]] = {}
        for node in program.nodes:
            for arg in node.args:
                consumers.setdefault(id(arg), []).append(node)
        # With resident outputs the boundary conversion is skipped, so
        # the output nodes themselves want to be born resident — a
        # Mult-heavy chain then never materialises coefficients at all.
        out_ids = ({id(node) for node in program.outputs.values()}
                   if self.resident_outputs else set())
        wants: dict[int, bool] = {}
        for node in reversed(program.nodes):
            wants[id(node)] = id(node) in out_ids or any(
                user.op in sinks
                or (user.op in self._LINEAR_OPS and wants[id(user)])
                for user in consumers.get(id(node), ())
            )
        return wants

    # -- node dispatch -----------------------------------------------------------------

    def _execute_hoisted(self, group: tuple[ExprNode, ...]) -> int:
        """Materialise a hoisted rotation group off one digit transform.

        All pending members share their source's digit-decomposition
        NTT via :meth:`~repro.fv.galois.GaloisEngine.apply_many_resident`;
        results land in each member's graph cache, so the normal node
        loop sees them as already computed.
        """
        session = self.session
        source = group[0].args[0]
        pending = [m for m in group if m.cached is None]
        keys = {
            int(m.payload): session.rotation_key(m.payload)
            for m in pending
        }
        results = session.galois.apply_many_resident(source.cached, keys)
        for member in pending:
            member.cached = results[int(member.payload)]
        return len(pending)

    def _execute(self, node: ExprNode, wants: dict[int, bool]) -> Ciphertext:
        session = self.session
        context = session.context
        args = [arg.cached for arg in node.args]
        resident_out = self.ntt_resident and wants.get(id(node), False)
        if node.op is OpKind.INPUT:
            raise ParameterError(
                "program has an unbound input (wrap() a ciphertext first)"
            )
        if node.op in (OpKind.ADD, OpKind.SUB):
            if not resident_out and not all(
                ct.c0.ntt_domain for ct in args
            ):
                # No downstream benefit: align mixed operands onto the
                # coefficient domain instead of transforming forward.
                # Converted operands are written back to their nodes so
                # a shared subexpression never converts twice.
                for arg_node, ct in zip(node.args, args, strict=True):
                    if ct.c0.ntt_domain:
                        arg_node.cached = context.to_coeff_ct(ct)
                args = [arg.cached for arg in node.args]
            op = context.add if node.op is OpKind.ADD else context.sub
            return op(args[0], args[1])
        if node.op is OpKind.NEGATE:
            return context.negate(args[0])
        if node.op is OpKind.ADD_PLAIN:
            if self.ntt_resident and args[0].c0.ntt_domain:
                return context.add_plain(
                    args[0], node.payload,
                    delta_m_ntt=session.plain_delta_ntt(node.payload),
                )
            return context.add_plain(args[0], node.payload)
        if node.op is OpKind.MUL_PLAIN:
            if self.ntt_resident:
                # MulPlain computes in the evaluation domain either
                # way, so a resident result is free — and in an
                # add-tree of plaintext products the deferred
                # conversions all merge at the root. The plaintext
                # operand comes from the session's NTT pool, and the
                # operand's conversion is written back so a shared
                # subexpression transforms forward only once.
                node.args[0].cached = context.to_ntt_ct(args[0])
                return context.mul_plain(
                    node.args[0].cached, node.payload,
                    m_ntt=session.plain_ntt(node.payload),
                )
            return context.mul_plain(args[0], node.payload)
        if node.op in (OpKind.MULTIPLY, OpKind.MULTIPLY_RAW):
            evaluator = session.evaluator
            if (self.ntt_resident and evaluator.resident_tensor_ok
                    and any(ct.ntt_resident for ct in args)):
                # Evaluation-domain base extension: resident operands
                # feed the tensor step as-is. Align any mixed operand
                # fully onto the NTT domain with write-back so a shared
                # subexpression transforms forward only once.
                for arg_node, ct in zip(node.args, args, strict=True):
                    if not all(part.ntt_domain for part in ct.parts):
                        arg_node.cached = context.to_ntt_ct(ct)
            else:
                # Legacy coefficient-domain boundary: the in-place lift
                # needs coefficient residues. Convert with write-back
                # so shared resident operands convert once.
                for arg_node, ct in zip(node.args, args, strict=True):
                    if ct.c0.ntt_domain:
                        arg_node.cached = context.to_coeff_ct(ct)
            args = [arg.cached for arg in node.args]
            if node.op is OpKind.MULTIPLY_RAW:
                # Lazy-relin placement: the three-part tensor result
                # flows into an ADD tree; the deferred RELINEARIZE at
                # its root folds back to two parts (always
                # coefficient-domain — c2 feeds WordDecomp).
                return evaluator.multiply_raw(args[0], args[1])
            return evaluator.multiply(args[0], args[1],
                                      session.keys.relin,
                                      resident=resident_out)
        if node.op is OpKind.RELINEARIZE:
            ct = args[0]
            if ct.ntt_resident and (not resident_out
                                    or ct.parts[-1].ntt_domain):
                # The digit decomposition reads raw coefficient
                # residues, and the coefficient-domain fold needs
                # coefficient (c0, c1) — only a resident-output fold
                # with coefficient c2 can keep resident parts.
                node.args[0].cached = context.to_coeff_ct(ct)
                ct = node.args[0].cached
            return session.evaluator.relinearize(ct, session.keys.relin,
                                                 resident=resident_out)
        if node.op is OpKind.ROTATE:
            key = session.rotation_key(node.payload)
            if self.ntt_resident and (args[0].c0.ntt_domain
                                      or resident_out):
                return session.galois.apply_resident(args[0], key)
            return session.galois.apply(args[0], key)
        if node.op is OpKind.SUM_SLOTS:
            if self.ntt_resident:
                # The internal rotate-and-add chain always benefits
                # from residency, whatever happens downstream.
                return session.galois.sum_all_slots_resident(
                    args[0], session.summation_keys()
                )
            return session.galois.sum_all_slots(args[0],
                                                session.summation_keys())
        raise ParameterError(f"unknown op {node.op!r}")  # pragma: no cover
