"""Program executors: the ``Backend`` protocol and the functional one.

A backend consumes a compiled :class:`~repro.api.program.HEProgram`.
:class:`LocalBackend` here executes it for real — every graph node runs
through the FV :class:`~repro.fv.evaluator.Evaluator` (multiplication +
relinearisation exactly as the paper's coprocessor computes them) or the
:class:`~repro.fv.galois.GaloisEngine` (rotations), and the results are
verified against the measured noise budget before they are handed back.
The simulation twin lives in :mod:`repro.api.simulated`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..errors import NoiseBudgetExhausted, ParameterError
from ..fv.ciphertext import Ciphertext
from .program import CiphertextHandle, ExprNode, HEProgram, OpKind
from .session import Session


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute an :class:`HEProgram`."""

    def run(self, program: HEProgram, **kwargs):  # pragma: no cover
        ...


class ProgramResult:
    """Outputs of one functional execution, addressable by label."""

    def __init__(self, session: Session,
                 outputs: dict[str, CiphertextHandle]) -> None:
        self.session = session
        self.outputs = outputs

    def __getitem__(self, label: str) -> CiphertextHandle:
        return self.outputs[label]

    def handle(self, label: str = "out") -> CiphertextHandle:
        return self.outputs[label]

    def decrypt(self, label: str = "out", size: int | None = None):
        """Decrypt one output into the session encoder's domain."""
        return self.session.decrypt(self.outputs[label], size)

    def noise_budget_bits(self, label: str = "out") -> float:
        return self.session.noise_budget_bits(self.outputs[label])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProgramResult({list(self.outputs)})"


class LocalBackend:
    """Execute a program functionally over the session's evaluator.

    Node results are cached on the expression graph, so overlapping
    programs (or a decrypt of an intermediate handle followed by more
    building) never recompute shared work. With ``verify=True`` every
    output's *measured* noise budget is checked after execution — a
    non-positive budget means the decryption is garbage, and the
    backend refuses to return it silently.
    """

    def __init__(self, session: Session, *, verify: bool = True) -> None:
        self.session = session
        self.verify = verify

    def run(self, program: HEProgram, **kwargs) -> ProgramResult:
        if kwargs:
            raise TypeError(
                f"LocalBackend.run got unknown options {sorted(kwargs)}"
            )
        if program.params is not self.session.params:
            # Identity is the cheap check; equal parameter sets from
            # two constructions are fine too.
            if program.params != self.session.params:
                raise ParameterError(
                    "program was compiled for different parameters"
                )
        for node in program.nodes:
            if node.cached is None:
                node.cached = self._execute(node)
        outputs = {
            label: CiphertextHandle(node, self.session)
            for label, node in program.outputs.items()
        }
        if self.verify:
            for label, handle in outputs.items():
                budget = self.session.noise_budget_bits(handle)
                if budget <= 0:
                    raise NoiseBudgetExhausted(
                        f"output {label!r} decrypts with no noise budget "
                        f"left ({budget:.1f} bits)"
                    )
        return ProgramResult(self.session, outputs)

    # -- node dispatch -------------------------------------------------------------------

    def _execute(self, node: ExprNode) -> Ciphertext:
        session = self.session
        context = session.context
        args = [arg.cached for arg in node.args]
        if node.op is OpKind.INPUT:
            raise ParameterError(
                "program has an unbound input (wrap() a ciphertext first)"
            )
        if node.op is OpKind.ADD:
            return context.add(args[0], args[1])
        if node.op is OpKind.SUB:
            return context.sub(args[0], args[1])
        if node.op is OpKind.NEGATE:
            return context.negate(args[0])
        if node.op is OpKind.ADD_PLAIN:
            return context.add_plain(args[0], node.payload)
        if node.op is OpKind.MUL_PLAIN:
            return context.mul_plain(args[0], node.payload)
        if node.op is OpKind.MULTIPLY:
            return session.evaluator.multiply(args[0], args[1],
                                              session.keys.relin)
        if node.op is OpKind.ROTATE:
            key = session.rotation_key(node.payload)
            return session.galois.apply(args[0], key)
        if node.op is OpKind.SUM_SLOTS:
            return session.galois.sum_all_slots(args[0],
                                                session.summation_keys())
        raise ParameterError(f"unknown op {node.op!r}")  # pragma: no cover
