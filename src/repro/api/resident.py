"""Cross-request resident-operand cache shared by both executors.

The paper's server keeps operands in the FPGA board's DDR between
jobs; HEAX/Medha-style accelerators go further and keep them in the
*evaluation domain*. This module is the software twin of that policy
at request granularity: a bounded cache keyed by ciphertext handle
(expression-graph node identity) that remembers, across program
executions,

* for :class:`~repro.api.backends.LocalBackend`: the NTT-resident form
  of an operand, so a handle reused by a later program is restored
  without re-transforming (zero coefficient-domain round-trips for the
  operand);
* for :class:`~repro.api.simulated.SimulatedBackend`: the fact that
  the server already holds the operand, so the lowered
  :class:`~repro.system.workloads.Job` stream prices its upload at
  zero polynomial transfers.

Entries are keyed by ``id(node)`` but hold the node only through a
weak reference: a client dropping every handle to an operand lets the
whole expression graph (and the multi-megabyte ciphertexts its nodes
cache) be collected — the cache entry dies with it via the weakref
callback, which also makes ``id`` reuse safe. Eviction at the bound is
FIFO, mirroring the session's plaintext-constant pool.
"""

from __future__ import annotations

import weakref
from typing import Any

from ..obs import counter as _obs_counter

_CACHE_EVENTS = _obs_counter(
    "repro_resident_cache_events_total",
    "Resident-operand cache outcomes (hit/miss/eviction) per cache.",
    labels=("cache", "event"),
)


class ResidentOperandCache:
    """Bounded FIFO cache of server-resident operands, with telemetry.

    ``hits``/``misses`` count :meth:`get` outcomes; ``evictions``
    counts entries dropped at the bound. :meth:`stats` snapshots all
    three plus the live entry count — the numbers both backends expose
    through their telemetry, and every event is mirrored to the
    ``repro_resident_cache_events_total`` instrument on the scoped
    :mod:`repro.obs` registry (labelled by the cache's ``name``), so
    registry snapshots embedded in reports carry the cache story too.
    Keys are weak: the cache never keeps an operand's expression graph
    alive on its own.
    """

    def __init__(self, limit: int = 64, name: str = "resident") -> None:
        if limit < 1:
            raise ValueError("cache limit must be at least 1")
        self.limit = limit
        self.name = name
        self._entries: dict[int, tuple[weakref.ref, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: object) -> bool:
        entry = self._entries.get(id(node))
        return entry is not None and entry[0]() is node

    def get(self, node: object):
        """The cached value for ``node``, or None (counted as miss)."""
        entry = self._entries.get(id(node))
        if entry is None or entry[0]() is not node:
            self.misses += 1
            _CACHE_EVENTS.inc(cache=self.name, event="miss")
            return None
        self.hits += 1
        _CACHE_EVENTS.inc(cache=self.name, event="hit")
        return entry[1]

    def put(self, node: object, value: Any) -> None:
        key = id(node)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is node:
            self._entries[key] = (entry[0], value)
            return
        if len(self._entries) >= self.limit:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
            _CACHE_EVENTS.inc(cache=self.name, event="eviction")
        # The callback removes the entry the moment the node is
        # collected, so a recycled id can never alias a dead entry and
        # the cached ciphertext is freed with its operand.
        self._entries[key] = (
            weakref.ref(node, lambda _ref, key=key: self._forget(key)),
            value,
        )

    def _forget(self, key: int) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResidentOperandCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
