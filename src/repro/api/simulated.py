"""The simulation executor: programs priced through the serving stack.

Where :class:`~repro.api.backends.LocalBackend` computes real
ciphertexts, :class:`SimulatedBackend` answers the capacity-planning
question: *what latency would this program see on the paper's hardware,
at this request rate, on this many boards?* It lowers each graph node to
a :class:`~repro.system.workloads.Job` carrying the operation's real
polynomial-transfer footprint, replays ``requests`` copies of the
stream through a fresh :class:`~repro.serve.engine.ServingRuntime` or
:class:`~repro.cluster.cluster.FpgaCluster`, and reassembles per-request
futures whose telemetry reports simulated p50/p95/p99 latency.

The queueing model prices every lowered op independently (intra-request
dependency chains are not serialised); request latency is the span from
arrival to the completion of the request's last op.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..hw.config import HardwareConfig
from ..obs import Span, TraceReport, cluster_timeline, runtime_timeline
from ..params import ParameterSet
from ..serve.engine import ServingRuntime
from ..serve.telemetry import LatencySummary
from ..system.server import CostModel
from ..system.workloads import Job, tenant_name
from .program import HEProgram, LoweredOp
from .resident import ResidentOperandCache


@dataclass
class ProgramFuture:
    """Future-style handle for one simulated program execution."""

    request: int
    tenant: str
    arrival_seconds: float
    num_ops: int
    completed_ops: int = 0
    rejected_ops: int = 0
    finish_seconds: float = field(default=0.0)
    #: This request's simulated-clock span (arrival to last-op
    #: completion, one child per lowered job), attached when the
    #: owning :meth:`SimulatedRun.trace` is built.
    trace: Span | None = None

    @property
    def done(self) -> bool:
        """All ops accounted for (completed or rejected)."""
        return self.completed_ops + self.rejected_ops >= self.num_ops

    @property
    def succeeded(self) -> bool:
        return self.done and self.rejected_ops == 0

    @property
    def latency_seconds(self) -> float:
        """Arrival-to-last-op-completion span of the whole request."""
        if not self.succeeded:
            raise RuntimeError(
                f"request {self.request} did not complete "
                f"({self.rejected_ops} of {self.num_ops} ops rejected)"
            )
        return self.finish_seconds - self.arrival_seconds

    def result(self) -> float:
        """Future idiom: the latency, or an error for failed requests."""
        return self.latency_seconds


@dataclass
class SimulatedRun:
    """Everything one :meth:`SimulatedBackend.run` produced."""

    program: HEProgram
    futures: list[ProgramFuture]
    #: The underlying :class:`RuntimeReport` or :class:`ClusterReport`.
    report: object
    #: INPUT operands served from the server's cross-request resident
    #: cache this run (each priced as zero upload transfer).
    cache_hits: int = 0
    #: INPUT operands the server had to ingest fresh this run.
    cache_misses: int = 0

    @property
    def completed(self) -> list[ProgramFuture]:
        return [f for f in self.futures if f.succeeded]

    @property
    def rejected(self) -> list[ProgramFuture]:
        return [f for f in self.futures if f.done and not f.succeeded]

    def latency_summary(self) -> LatencySummary:
        """Per-*request* p50/p95/p99 across completed executions."""
        return LatencySummary.of(
            [f.latency_seconds for f in self.completed]
        )

    def requests_per_second(self) -> float:
        """Completed program executions over the busy window."""
        done = self.completed
        if not done:
            return 0.0
        first = min(f.arrival_seconds for f in done)
        last = max(f.finish_seconds for f in done)
        span = last - first
        return len(done) / span if span > 0 else 0.0

    # -- observability handles ---------------------------------------------------------

    def trace(self) -> TraceReport:
        """Simulated-clock span tree of this run.

        The priced twin of :attr:`ProgramResult.trace
        <repro.api.backends.ProgramResult>`: one "request" span per
        program execution (arrival to last-op completion) containing
        one "op" span per lowered job with its simulated service
        interval, coprocessor and tenant. All timestamps are simulated
        seconds (``clock="sim"``).
        """
        results = getattr(self.report, "results", [])
        end = max((r.finish_seconds for r in results), default=0.0)
        root = Span(name="simulated.run", kind="program", clock="sim",
                    start=0.0, end=end,
                    attrs={"requests": len(self.futures),
                           "num_ops": self.program.num_ops})
        by_request: dict[int, list] = {}
        for result in results:
            by_request.setdefault(result.job.request, []).append(result)
        for future in self.futures:
            jobs = by_request.get(future.request, [])
            req = Span(
                name=f"request#{future.request}", kind="request",
                clock="sim", start=future.arrival_seconds,
                end=max((r.finish_seconds for r in jobs),
                        default=future.arrival_seconds),
                attrs={"tenant": future.tenant,
                       "rejected_ops": future.rejected_ops},
            )
            for result in jobs:
                req.children.append(Span(
                    name=result.job.kind.name.lower(), kind="op",
                    clock="sim", start=result.start_seconds,
                    end=result.finish_seconds,
                    attrs={"op": result.job.kind.name,
                           "coprocessor": result.coprocessor,
                           "tenant": result.job.tenant},
                ))
            future.trace = req
            root.children.append(req)
        return TraceReport(root)

    def timeline(self) -> list[dict]:
        """This run's event heap as Chrome trace events.

        Per-coprocessor lanes (one trace *process* per shard for
        cluster runs), one slice per job, and queue-depth counter
        tracks — load the JSON in Perfetto to see the DMA trains.
        """
        if hasattr(self.report, "shard_reports"):
            return cluster_timeline(self.report)
        return runtime_timeline(self.report)


class SimulatedBackend:
    """Execute programs against the serving runtime or the cluster.

    Construct with one of the factories::

        SimulatedBackend.over_runtime(params)            # one board
        SimulatedBackend.over_cluster(params, shards=8)  # a rack

    then ``run(program, requests=1000, rate_per_second=500)``. Each call
    builds a fresh single-use target from the stored factory, so one
    backend can run many programs / load points.
    """

    def __init__(self, params: ParameterSet,
                 target_factory: Callable[[], object], *,
                 description: str = "",
                 resident_cache_limit: int = 64) -> None:
        self.params = params
        self.target_factory = target_factory
        self.description = description
        #: Cross-request resident-operand cache: INPUT handles the
        #: simulated server has already ingested stay in its DDR, so a
        #: later program reusing them uploads nothing (the
        #: :meth:`HEProgram.lower` zero-transfer pricing). Bounded FIFO,
        #: like the board's operand memory.
        self.resident_cache = ResidentOperandCache(resident_cache_limit,
                                                   name="simulated")

    @property
    def telemetry(self) -> dict:
        """Cross-run telemetry: the resident-operand cache counters."""
        return {"resident_cache": self.resident_cache.stats()}

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def over_runtime(cls, params: ParameterSet, *,
                     config: HardwareConfig | None = None,
                     scheduler_factory: Callable[[], object] | None = None,
                     batching=None, tenants=None,
                     num_coprocessors: int | None = None,
                     ) -> SimulatedBackend:
        """One Arm+FPGA board (the paper's Fig. 11 server)."""
        cost = CostModel(params, config)

        def factory() -> ServingRuntime:
            scheduler = scheduler_factory() if scheduler_factory else None
            return ServingRuntime(
                cost, scheduler=scheduler, batching=batching,
                tenants=tenants, num_coprocessors=num_coprocessors,
            )

        return cls(params, factory, description="single board")

    @classmethod
    def over_cluster(cls, params: ParameterSet, num_shards: int, *,
                     router_factory: Callable[[], object] | None = None,
                     config: HardwareConfig | None = None,
                     scheduler_factory: Callable[[], object] | None = None,
                     batching=None, tenants=None,
                     max_backlog_seconds: float | None = None,
                     ) -> SimulatedBackend:
        """A multi-FPGA shard cluster behind a placement router."""
        from ..cluster.cluster import FpgaCluster

        def factory() -> FpgaCluster:
            router = router_factory() if router_factory else None
            return FpgaCluster.homogeneous(
                params, num_shards, config=config, router=router,
                scheduler_factory=scheduler_factory, batching=batching,
                tenants=tenants, max_backlog_seconds=max_backlog_seconds,
            )

        return cls(params, factory,
                   description=f"{num_shards}-shard cluster")

    # -- execution ---------------------------------------------------------------------

    def lower_jobs(self, ops: Sequence[LoweredOp], *, requests: int,
                   rate_per_second: float | None, num_tenants: int,
                   seed: int) -> tuple[list[Job], list[ProgramFuture]]:
        """The job stream for `requests` executions of one lowered program."""
        if requests < 1:
            raise ValueError("need at least one request")
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        rng = np.random.default_rng(seed)
        if rate_per_second is None:
            arrivals = np.zeros(requests)
        else:
            if rate_per_second <= 0:
                raise ValueError("request rate must be positive")
            arrivals = np.cumsum(
                rng.exponential(1.0 / rate_per_second, size=requests)
            )
        jobs: list[Job] = []
        futures: list[ProgramFuture] = []
        index = 0
        for r in range(requests):
            tenant = tenant_name(r % num_tenants)
            at = float(arrivals[r])
            futures.append(ProgramFuture(
                request=r, tenant=tenant, arrival_seconds=at,
                num_ops=len(ops),
            ))
            for op in ops:
                jobs.append(Job(
                    index=index, kind=op.kind, arrival_seconds=at,
                    tenant=tenant, polys_in=op.polys_in,
                    polys_out=op.polys_out, request=r,
                ))
                index += 1
        return jobs, futures

    def run(self, program: HEProgram, *, requests: int = 1,
            rate_per_second: float | None = None, num_tenants: int = 1,
            seed: int = 0) -> SimulatedRun:
        """Simulate `requests` executions and resolve their futures.

        ``rate_per_second`` draws Poisson request arrivals; ``None``
        offers every request at t=0 (the saturated ceiling). Requests
        round-robin over ``num_tenants`` synthetic tenants so
        tenant-affinity routers spread program traffic across boards.

        INPUT operands this backend has seen in a previous :meth:`run`
        are still resident in the simulated server's DDR: their upload
        bursts are priced at zero transfer (surfaced as
        :attr:`SimulatedRun.cache_hits`), exactly like the paper's
        server skipping the upload DMA for operands it already holds.
        """
        resident = [node for node in program.inputs
                    if self.resident_cache.get(node) is not None]
        ops = program.lower(resident_inputs=resident)
        for node in program.inputs:
            self.resident_cache.put(node, True)
        jobs, futures = self.lower_jobs(
            ops, requests=requests, rate_per_second=rate_per_second,
            num_tenants=num_tenants, seed=seed,
        )
        target = self.target_factory()
        report = target.run(jobs)
        by_request = {future.request: future for future in futures}
        for result in report.results:
            future = by_request.get(result.job.request)
            if future is None:      # pragma: no cover - foreign job
                continue
            future.completed_ops += 1
            future.finish_seconds = max(future.finish_seconds,
                                        result.finish_seconds)
        for rejection in report.rejected:
            future = by_request.get(rejection.job.request)
            if future is None:      # pragma: no cover - foreign job
                continue
            future.rejected_ops += 1
        return SimulatedRun(program=program, futures=futures,
                            report=report,
                            cache_hits=len(resident),
                            cache_misses=len(program.inputs)
                            - len(resident))
