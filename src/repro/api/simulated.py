"""The simulation executor: programs priced through the serving stack.

Where :class:`~repro.api.backends.LocalBackend` computes real
ciphertexts, :class:`SimulatedBackend` answers the capacity-planning
question: *what latency would this program see on the paper's hardware,
at this request rate, on this many boards?* It lowers each graph node to
a :class:`~repro.system.workloads.Job` carrying the operation's real
polynomial-transfer footprint, replays ``requests`` copies of the
stream through a fresh :class:`~repro.serve.engine.ServingRuntime` or
:class:`~repro.cluster.cluster.FpgaCluster`, and reassembles per-request
futures whose telemetry reports simulated p50/p95/p99 latency.

The queueing model prices every lowered op independently (intra-request
dependency chains are not serialised); request latency is the span from
arrival to the completion of the request's last op.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..hw.config import HardwareConfig
from ..obs import Span, TraceReport, cluster_timeline, runtime_timeline
from ..params import ParameterSet
from ..serve.engine import ServingRuntime
from ..serve.telemetry import LatencySummary
from ..system.server import CostModel
from ..system.workloads import Job, JobKind, tenant_name
from .program import HEProgram, LoweredOp
from .resident import ResidentOperandCache

#: Lowered job kinds that spend a keyswitch (digit-decomposed key
#: multiply-accumulate) on the coprocessor — the ops the optimiser
#: pass stack exists to eliminate.
_KEYSWITCH_JOB_KINDS = frozenset(
    {JobKind.MULT, JobKind.ROTATE, JobKind.RELIN}
)


@dataclass
class LoweredProgram:
    """A program priced against one concrete cost model.

    :meth:`SimulatedBackend.lower` produces this: the (optionally
    optimised) program's job stream plus everything a scheduler or a
    capacity planner wants to know about it before any request arrives
    — the batched-DMA train time, the intra-request critical path over
    the :attr:`~repro.api.program.LoweredOp.deps` edges, and how many
    keyswitch ops survived optimisation.
    """

    program: HEProgram
    ops: list[LoweredOp]
    cost: CostModel
    #: The optimiser's report when :attr:`SimulatedBackend.optimize`
    #: rewrote the program before lowering; ``None`` for raw lowering.
    optimization: object | None = None

    def keyswitch_ops(self) -> int:
        """Lowered ops that pay a keyswitch on the coprocessor."""
        return sum(op.kind in _KEYSWITCH_JOB_KINDS for op in self.ops)

    def op_seconds(self, op: LoweredOp) -> float:
        """Modelled service seconds for one lowered op.

        MULT-family ops consuming NTT-resident operands skip the
        coefficient-boundary inverse transforms the pre-resident
        datapath paid (two polynomial INTTs per resident ciphertext
        operand — the evaluation-domain base extension consumes the
        operand rows as they sit on chip), so program-aware pricing
        discounts exactly that work.
        """
        seconds = self.cost.compute_seconds(op.kind)
        if op.resident_operands:
            seconds -= op.resident_operands * self._resident_discount()
        return max(seconds, 0.0)

    def _resident_discount(self) -> float:
        """Seconds one resident ciphertext operand saves at a MULT."""
        from ..hw.compiler import Opcode

        model = self.cost.instruction_cycle_model()
        return (2 * model[Opcode.INTT]
                / self.cost.config.fpga_clock_hz)

    def compute_seconds(self) -> float:
        """Pure FPGA compute across the stream, no transfers."""
        return sum(self.op_seconds(op) for op in self.ops)

    def train_seconds(self) -> float:
        """One request as a single batched DMA train.

        The program-aware pricing: every fresh upload burst rides one
        Arm-setup DMA train (one descriptor-setup cost amortised over
        the whole train, as :class:`~repro.serve.batching.DmaBatcher`
        does at runtime), compute runs back to back, and the output
        bursts share one download train — versus pricing each op's
        transfers independently (:meth:`independent_seconds`).
        """
        return (self._train(sum(op.polys_in for op in self.ops))
                + self.compute_seconds()
                + self._train(sum(op.polys_out for op in self.ops)))

    def _train(self, polys: int) -> float:
        """One DMA train of `polys` bursts: one Arm setup, per-burst
        wire time."""
        if not polys:
            return 0.0
        dma = self.cost.dma
        return (dma.arm_setup_seconds
                + polys * dma.transfer_seconds(self.cost.params.poly_bytes))

    def independent_seconds(self) -> float:
        """The per-op pricing baseline: every op moves its own data."""
        poly_bytes = self.cost.params.poly_bytes
        total = 0.0
        for op in self.ops:
            if op.polys_in:
                total += self.cost.dma.polynomial_job_seconds(
                    poly_bytes, op.polys_in)
            total += self.cost.compute_seconds(op.kind)
            if op.polys_out:
                total += self.cost.dma.polynomial_job_seconds(
                    poly_bytes, op.polys_out)
        return total

    def critical_path_seconds(self) -> float:
        """Longest compute chain through the dependency edges.

        The floor on request latency however many coprocessors the
        server has — schedulers can hide everything except this.
        """
        finish = self._finish_seconds()
        return max(finish, default=0.0)

    def remaining_critical_seconds(self) -> list[float]:
        """Per-op remaining critical path (own compute plus the longest
        dependent chain), the stamp :class:`CriticalPathScheduler`
        dispatches on."""
        compute = [self.op_seconds(op) for op in self.ops]
        remaining = list(compute)
        # Ops are topologically ordered (deps point backwards), so one
        # reverse sweep propagates the longest downstream chain.
        for i in range(len(self.ops) - 1, -1, -1):
            for dep in self.ops[i].deps:
                remaining[dep] = max(remaining[dep],
                                     compute[dep] + remaining[i])
        return remaining

    def _finish_seconds(self) -> list[float]:
        finish: list[float] = []
        for op in self.ops:
            ready = max((finish[d] for d in op.deps), default=0.0)
            finish.append(ready + self.op_seconds(op))
        return finish


@dataclass
class ProgramFuture:
    """Future-style handle for one simulated program execution."""

    request: int
    tenant: str
    arrival_seconds: float
    num_ops: int
    completed_ops: int = 0
    rejected_ops: int = 0
    finish_seconds: float = field(default=0.0)
    #: This request's simulated-clock span (arrival to last-op
    #: completion, one child per lowered job), attached when the
    #: owning :meth:`SimulatedRun.trace` is built.
    trace: Span | None = None

    @property
    def done(self) -> bool:
        """All ops accounted for (completed or rejected)."""
        return self.completed_ops + self.rejected_ops >= self.num_ops

    @property
    def succeeded(self) -> bool:
        return self.done and self.rejected_ops == 0

    @property
    def latency_seconds(self) -> float:
        """Arrival-to-last-op-completion span of the whole request."""
        if not self.succeeded:
            raise RuntimeError(
                f"request {self.request} did not complete "
                f"({self.rejected_ops} of {self.num_ops} ops rejected)"
            )
        return self.finish_seconds - self.arrival_seconds

    def result(self) -> float:
        """Future idiom: the latency, or an error for failed requests."""
        return self.latency_seconds


@dataclass
class SimulatedRun:
    """Everything one :meth:`SimulatedBackend.run` produced."""

    program: HEProgram
    futures: list[ProgramFuture]
    #: The underlying :class:`RuntimeReport` or :class:`ClusterReport`.
    report: object
    #: INPUT operands served from the server's cross-request resident
    #: cache this run (each priced as zero upload transfer).
    cache_hits: int = 0
    #: INPUT operands the server had to ingest fresh this run.
    cache_misses: int = 0
    #: The priced lowering this run executed (optimised when the
    #: backend's ``optimize`` knob is on).
    lowered: LoweredProgram | None = None

    @property
    def critical_path_seconds(self) -> float:
        """Intra-request compute critical path of the executed program."""
        return (self.lowered.critical_path_seconds()
                if self.lowered is not None else 0.0)

    @property
    def failure_report(self):
        """The cluster's fault ledger, or ``None`` for fault-free runs
        (and for single-board runtime targets, which cannot crash)."""
        return getattr(self.report, "failure", None)

    @property
    def completed(self) -> list[ProgramFuture]:
        return [f for f in self.futures if f.succeeded]

    @property
    def rejected(self) -> list[ProgramFuture]:
        return [f for f in self.futures if f.done and not f.succeeded]

    def latency_summary(self) -> LatencySummary:
        """Per-*request* p50/p95/p99 across completed executions."""
        return LatencySummary.of(
            [f.latency_seconds for f in self.completed]
        )

    def requests_per_second(self) -> float:
        """Completed program executions over the busy window."""
        done = self.completed
        if not done:
            return 0.0
        first = min(f.arrival_seconds for f in done)
        last = max(f.finish_seconds for f in done)
        span = last - first
        return len(done) / span if span > 0 else 0.0

    # -- observability handles ---------------------------------------------------------

    def trace(self) -> TraceReport:
        """Simulated-clock span tree of this run.

        The priced twin of :attr:`ProgramResult.trace
        <repro.api.backends.ProgramResult>`: one "request" span per
        program execution (arrival to last-op completion) containing
        one "op" span per lowered job with its simulated service
        interval, coprocessor and tenant. All timestamps are simulated
        seconds (``clock="sim"``).
        """
        results = getattr(self.report, "results", [])
        end = max((r.finish_seconds for r in results), default=0.0)
        root = Span(name="simulated.run", kind="program", clock="sim",
                    start=0.0, end=end,
                    attrs={"requests": len(self.futures),
                           "num_ops": self.program.num_ops})
        by_request: dict[int, list] = {}
        for result in results:
            by_request.setdefault(result.job.request, []).append(result)
        for future in self.futures:
            jobs = by_request.get(future.request, [])
            req = Span(
                name=f"request#{future.request}", kind="request",
                clock="sim", start=future.arrival_seconds,
                end=max((r.finish_seconds for r in jobs),
                        default=future.arrival_seconds),
                attrs={"tenant": future.tenant,
                       "rejected_ops": future.rejected_ops},
            )
            for result in jobs:
                req.children.append(Span(
                    name=result.job.kind.name.lower(), kind="op",
                    clock="sim", start=result.start_seconds,
                    end=result.finish_seconds,
                    attrs={"op": result.job.kind.name,
                           "coprocessor": result.coprocessor,
                           "tenant": result.job.tenant},
                ))
            future.trace = req
            root.children.append(req)
        return TraceReport(root)

    def timeline(self) -> list[dict]:
        """This run's event heap as Chrome trace events.

        Per-coprocessor lanes (one trace *process* per shard for
        cluster runs), one slice per job, and queue-depth counter
        tracks — load the JSON in Perfetto to see the DMA trains.
        """
        if hasattr(self.report, "shard_reports"):
            return cluster_timeline(self.report)
        return runtime_timeline(self.report)


class SimulatedBackend:
    """Execute programs against the serving runtime or the cluster.

    Construct with one of the factories::

        SimulatedBackend.over_runtime(params)            # one board
        SimulatedBackend.over_cluster(params, shards=8)  # a rack

    then ``run(program, requests=1000, rate_per_second=500)``. Each call
    builds a fresh single-use target from the stored factory, so one
    backend can run many programs / load points.
    """

    def __init__(self, params: ParameterSet,
                 target_factory: Callable[[], object], *,
                 description: str = "",
                 resident_cache_limit: int = 64,
                 cost: CostModel | None = None,
                 optimize: bool = False) -> None:
        self.params = params
        self.target_factory = target_factory
        self.description = description
        #: Cost model used for program-aware pricing (batched DMA
        #: trains, critical-path stamps); the factories pass the same
        #: model their serving target charges with.
        self.cost = cost if cost is not None else CostModel(params)
        #: Run every program through the optimiser pass stack before
        #: lowering (``repro.optim``); the resulting
        #: :class:`LoweredProgram` carries the optimiser's report.
        self.optimize = optimize
        #: Cross-request resident-operand cache: INPUT handles the
        #: simulated server has already ingested stay in its DDR, so a
        #: later program reusing them uploads nothing (the
        #: :meth:`HEProgram.lower` zero-transfer pricing). Bounded FIFO,
        #: like the board's operand memory.
        self.resident_cache = ResidentOperandCache(resident_cache_limit,
                                                   name="simulated")

    @property
    def telemetry(self) -> dict:
        """Cross-run telemetry: the resident-operand cache counters."""
        return {"resident_cache": self.resident_cache.stats()}

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def over_runtime(cls, params: ParameterSet, *,
                     config: HardwareConfig | None = None,
                     scheduler_factory: Callable[[], object] | None = None,
                     batching=None, tenants=None,
                     num_coprocessors: int | None = None,
                     optimize: bool = False,
                     ) -> SimulatedBackend:
        """One Arm+FPGA board (the paper's Fig. 11 server)."""
        cost = CostModel(params, config)

        def factory() -> ServingRuntime:
            scheduler = scheduler_factory() if scheduler_factory else None
            return ServingRuntime(
                cost, scheduler=scheduler, batching=batching,
                tenants=tenants, num_coprocessors=num_coprocessors,
            )

        return cls(params, factory, description="single board",
                   cost=cost, optimize=optimize)

    @classmethod
    def over_cluster(cls, params: ParameterSet, num_shards: int, *,
                     router_factory: Callable[[], object] | None = None,
                     config: HardwareConfig | None = None,
                     scheduler_factory: Callable[[], object] | None = None,
                     batching=None, tenants=None,
                     max_backlog_seconds: float | None = None,
                     optimize: bool = False,
                     fault_plan=None, retry=None,
                     replicas: int | None = None,
                     ) -> SimulatedBackend:
        """A multi-FPGA shard cluster behind a placement router.

        ``fault_plan`` / ``retry`` / ``replicas`` thread straight
        through to :meth:`FpgaCluster.homogeneous`, so a client program
        can run against a chaos scenario (board kills, retries,
        replica failover) and read the outcome from
        :attr:`SimulatedRun.failure_report`.
        """
        from ..cluster.cluster import FpgaCluster

        def factory() -> FpgaCluster:
            router = router_factory() if router_factory else None
            return FpgaCluster.homogeneous(
                params, num_shards, config=config, router=router,
                scheduler_factory=scheduler_factory, batching=batching,
                tenants=tenants, max_backlog_seconds=max_backlog_seconds,
                fault_plan=fault_plan, retry=retry, replicas=replicas,
            )

        return cls(params, factory,
                   description=f"{num_shards}-shard cluster",
                   cost=CostModel(params, config), optimize=optimize)

    # -- execution ---------------------------------------------------------------------

    def lower(self, program: HEProgram,
              resident_inputs: Sequence[object] = ()) -> LoweredProgram:
        """Price one program against this backend's cost model.

        With :attr:`optimize` on, the program first runs through the
        optimiser pass stack and the returned
        :class:`LoweredProgram` prices the *optimised* job stream —
        fewer keyswitches, one batched DMA train, and a critical path
        the schedulers can dispatch against.
        """
        optimization = None
        if self.optimize:
            from ..optim import optimize_program

            program, optimization = optimize_program(program)
        ops = program.lower(resident_inputs=resident_inputs)
        return LoweredProgram(program=program, ops=ops, cost=self.cost,
                              optimization=optimization)

    def lower_jobs(self, ops: Sequence[LoweredOp] | LoweredProgram, *,
                   requests: int, rate_per_second: float | None,
                   num_tenants: int, seed: int
                   ) -> tuple[list[Job], list[ProgramFuture]]:
        """The job stream for `requests` executions of one lowered program.

        Passing a :class:`LoweredProgram` (rather than a bare op list)
        additionally stamps every job with its remaining critical-path
        seconds so :class:`~repro.serve.CriticalPathScheduler` can
        prioritise the chains that bound request latency.
        """
        critical: list[float] | None = None
        if isinstance(ops, LoweredProgram):
            critical = ops.remaining_critical_seconds()
            ops = ops.ops
        if requests < 1:
            raise ValueError("need at least one request")
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        rng = np.random.default_rng(seed)
        if rate_per_second is None:
            arrivals = np.zeros(requests)
        else:
            if rate_per_second <= 0:
                raise ValueError("request rate must be positive")
            arrivals = np.cumsum(
                rng.exponential(1.0 / rate_per_second, size=requests)
            )
        jobs: list[Job] = []
        futures: list[ProgramFuture] = []
        index = 0
        for r in range(requests):
            tenant = tenant_name(r % num_tenants)
            at = float(arrivals[r])
            futures.append(ProgramFuture(
                request=r, tenant=tenant, arrival_seconds=at,
                num_ops=len(ops),
            ))
            for i, op in enumerate(ops):
                jobs.append(Job(
                    index=index, kind=op.kind, arrival_seconds=at,
                    tenant=tenant, polys_in=op.polys_in,
                    polys_out=op.polys_out, request=r,
                    critical_seconds=(critical[i] if critical is not None
                                      else None),
                ))
                index += 1
        return jobs, futures

    def run(self, program: HEProgram, *, requests: int = 1,
            rate_per_second: float | None = None, num_tenants: int = 1,
            seed: int = 0) -> SimulatedRun:
        """Simulate `requests` executions and resolve their futures.

        ``rate_per_second`` draws Poisson request arrivals; ``None``
        offers every request at t=0 (the saturated ceiling). Requests
        round-robin over ``num_tenants`` synthetic tenants so
        tenant-affinity routers spread program traffic across boards.

        INPUT operands this backend has seen in a previous :meth:`run`
        are still resident in the simulated server's DDR: their upload
        bursts are priced at zero transfer (surfaced as
        :attr:`SimulatedRun.cache_hits`), exactly like the paper's
        server skipping the upload DMA for operands it already holds.
        """
        resident = [node for node in program.inputs
                    if self.resident_cache.get(node) is not None]
        lowered = self.lower(program, resident_inputs=resident)
        for node in program.inputs:
            self.resident_cache.put(node, True)
        jobs, futures = self.lower_jobs(
            lowered, requests=requests, rate_per_second=rate_per_second,
            num_tenants=num_tenants, seed=seed,
        )
        target = self.target_factory()
        report = target.run(jobs)
        by_request = {future.request: future for future in futures}
        for result in report.results:
            future = by_request.get(result.job.request)
            if future is None:      # pragma: no cover - foreign job
                continue
            future.completed_ops += 1
            future.finish_seconds = max(future.finish_seconds,
                                        result.finish_seconds)
        for rejection in report.rejected:
            future = by_request.get(rejection.job.request)
            if future is None:      # pragma: no cover - foreign job
                continue
            future.rejected_ops += 1
        return SimulatedRun(program=lowered.program, futures=futures,
                            report=report,
                            cache_hits=len(resident),
                            cache_misses=len(program.inputs)
                            - len(resident),
                            lowered=lowered)
