"""The client session: keys, encoders, and handle minting.

A :class:`Session` is the one object a client application needs. It owns
the :class:`~repro.fv.scheme.FvContext`, generates and holds the
:class:`~repro.fv.keys.KeySet` (plus lazily-created Galois keys for
rotations), picks an encoder for the parameter set, and mints the opaque
:class:`~repro.api.program.CiphertextHandle` objects all client-side
arithmetic runs on::

    session = Session(mini(t=257), seed=7)
    a, b = session.encrypt([1, 2, 3]), session.encrypt([4, 5, 6])
    program = session.compile((a * b).sum_slots(), name="dot")
    print(session.decrypt(program_result))

Everything below the session — ``FvContext``, ``Evaluator``,
``GaloisEngine``, raw key material — remains importable for low-level
work, but application code should not need it.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncodingError, ParameterError
from ..fv.ciphertext import Ciphertext
from ..fv.encoder import BatchEncoder, IntegerEncoder, Plaintext
from ..fv.evaluator import Evaluator
from ..fv.galois import GaloisEngine, GaloisKey
from ..fv.keys import KeySet
from ..fv.noise import noise_budget_bits
from ..fv.scheme import FvContext
from ..params import ParameterSet, hpca19
from .program import CiphertextHandle, ExprNode, HEProgram, OpKind

#: Encoder selection values accepted by :class:`Session`.
ENCODERS = ("auto", "batch", "coeff", "integer")


class Session:
    """One client's view of the FV scheme: keys + encoder + handles."""

    def __init__(self, params: ParameterSet | None = None, *,
                 seed: int = 2019, encoder: str = "auto",
                 context: FvContext | None = None,
                 keys: KeySet | None = None) -> None:
        if encoder not in ENCODERS:
            raise ParameterError(
                f"unknown encoder {encoder!r}; pick one of {ENCODERS}"
            )
        if context is not None:
            self.context = context
            self.params = context.params
        else:
            self.params = params if params is not None else hpca19()
            self.context = FvContext(self.params, seed=seed)
        self.keys = keys if keys is not None else self.context.keygen()
        self.encoder_kind, self.encoder = self._pick_encoder(encoder)
        self.evaluator = Evaluator(self.context)
        self.galois = GaloisEngine(self.context)
        self._rotation_keys: dict[int, GaloisKey] = {}
        self._summation_keys: dict | None = None
        # Plaintext-constant NTT pool: the server-side cache of encoded
        # constants in the evaluation domain, so a constant reused
        # across ops/requests is transformed exactly once. Bounded
        # (FIFO eviction) so long-lived sessions that stream fresh
        # per-request plaintexts cannot grow it without limit.
        self._plain_pool_limit = 256
        self._plain_ntt_pool: dict[int, tuple[Plaintext, np.ndarray]] = {}
        self._plain_delta_pool: dict[int, tuple[Plaintext, np.ndarray]] = {}

    @classmethod
    def from_parts(cls, context: FvContext, keys: KeySet, *,
                   encoder: str = "auto") -> Session:
        """Adopt an existing context + key set (the migration shim).

        Code that used to hand-wire ``FvContext``/``keygen`` wraps those
        parts once and then speaks the handle API.
        """
        return cls(context=context, keys=keys, encoder=encoder)

    def _pick_encoder(self, requested: str):
        if requested == "batch" or requested == "auto":
            try:
                return "batch", BatchEncoder(self.params)
            except (ParameterError, EncodingError):
                if requested == "batch":
                    raise
        if requested == "integer":
            return "integer", IntegerEncoder(self.params)
        return "coeff", None

    # -- encoding ----------------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """SIMD slots per ciphertext (= n for the batch encoder)."""
        if self.encoder_kind == "batch":
            return self.encoder.slot_count
        return self.params.n

    def encode(self, values) -> Plaintext:
        """Encode scalars / vectors with the session's encoder.

        A scalar broadcasts: all slots under the batch encoder, the
        constant coefficient otherwise — so ``handle * 3`` means the
        same slot-wise scaling everywhere.
        """
        if isinstance(values, Plaintext):
            return values
        if isinstance(values, (int, np.integer)):
            if self.encoder_kind == "batch":
                return self.encoder.encode(
                    np.full(self.encoder.slot_count, int(values),
                            dtype=np.int64)
                )
            if self.encoder_kind == "integer":
                return self.encoder.encode(int(values))
            return Plaintext.from_list([int(values)], self.params.n,
                                       self.params.t)
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("encode expects a scalar or 1-D values")
        if self.encoder_kind == "batch":
            if len(arr) < self.encoder.slot_count:
                arr = np.concatenate([
                    arr, np.zeros(self.encoder.slot_count - len(arr),
                                  dtype=np.int64),
                ])
            return self.encoder.encode(arr)
        return Plaintext.from_list(arr.tolist(), self.params.n,
                                   self.params.t)

    def negate_plain(self, plain: Plaintext) -> Plaintext:
        """The additive inverse of an encoded plaintext (mod t)."""
        return Plaintext((-plain.coeffs) % self.params.t, self.params.t)

    # -- plaintext-constant NTT pool ---------------------------------------------

    def plain_ntt(self, plain: Plaintext) -> np.ndarray:
        """NTT rows of a plaintext constant (cached per object).

        The pool is what lets the NTT-resident executor multiply by the
        same plaintext constant many times while transforming it once —
        the software twin of the paper's server keeping operands
        resident in DDR between jobs.
        """
        return self._pool_lookup(self._plain_ntt_pool, plain,
                                 self.context.plain_ntt_rows)

    def plain_delta_ntt(self, plain: Plaintext) -> np.ndarray:
        """NTT rows of ``Delta * m`` for AddPlain (cached per object)."""
        return self._pool_lookup(
            self._plain_delta_pool, plain,
            lambda p: self.context._ntt_rows(
                self.context.delta_plain_rows(p)
            ),
        )

    def _pool_lookup(self, pool: dict, plain: Plaintext,
                     compute) -> np.ndarray:
        """Bounded id-keyed cache (the id check guards against a dead
        object's id being reused after its entry was evicted)."""
        key = id(plain)
        entry = pool.get(key)
        if entry is None or entry[0] is not plain:
            if len(pool) >= self._plain_pool_limit:
                pool.pop(next(iter(pool)))
            entry = (plain, compute(plain))
            pool[key] = entry
        return entry[1]

    def decode(self, plain: Plaintext, size: int | None = None):
        """Invert :meth:`encode`; ``size`` truncates vector results."""
        if self.encoder_kind == "integer":
            return self.encoder.decode(plain)
        decoded = (self.encoder.decode(plain)
                   if self.encoder_kind == "batch" else plain.coeffs)
        return decoded if size is None else decoded[:size]

    # -- encrypt / decrypt -------------------------------------------------------------

    def encrypt(self, values, *, resident: bool = False) -> CiphertextHandle:
        """Encode + encrypt; returns an opaque (lazy-capable) handle.

        ``resident=True`` births the ciphertext NTT-resident (the
        public-key products never leave the evaluation domain) — the
        right choice when the handle feeds resident execution chains
        or the NTT-domain wire format.
        """
        ct = self.context.encrypt(self.encode(values), self.keys.public,
                                  resident=resident)
        return self.wrap(ct)

    def wrap(self, ciphertext: Ciphertext) -> CiphertextHandle:
        """Adopt an existing ciphertext as a graph input."""
        return CiphertextHandle(
            ExprNode(OpKind.INPUT, payload=ciphertext), self
        )

    def save_ciphertext(self, path, value) -> None:
        """Serialise a handle or ciphertext, preserving its domain.

        NTT-resident operands are written in the NTT-domain wire format
        (no inverse transform), so a server can persist and reload
        resident state without ever visiting the coefficient domain.
        Lazy handles are materialised first — through a
        resident-emitting executor, so a resident expression chain is
        not degraded by the default output boundary on its way to disk.
        """
        from ..io import save_ciphertext

        if isinstance(value, CiphertextHandle):
            if value.node.cached is None:
                from .backends import LocalBackend

                LocalBackend(self, resident_outputs=True).run(
                    self.compile(value, check=False)
                )
            value = value.node.cached
        save_ciphertext(path, value)

    def load_ciphertext(self, path) -> CiphertextHandle:
        """Load a serialised ciphertext (either domain) as a handle."""
        from ..io import load_ciphertext

        return self.wrap(load_ciphertext(path, self.params))

    def decrypt(self, value, size: int | None = None):
        """Decrypt a handle (materialising it if lazy) or a ciphertext.

        Returns decoded values in the session encoder's domain: a slot
        vector for batch, coefficients for coeff, an int for integer.
        """
        return self.decode(self.decrypt_plaintext(value), size)

    def _materialized(self, value) -> Ciphertext:
        """A handle's ciphertext in its *current* domain (no forced
        coefficient conversion — decrypting an NTT-resident result is
        cheaper than degrading it first), or the ciphertext itself."""
        if isinstance(value, CiphertextHandle):
            if value.node.cached is None:
                self.run(value)
            return value.node.cached
        return value

    def decrypt_plaintext(self, value) -> Plaintext:
        return self.context.decrypt(self._materialized(value),
                                    self.keys.secret)

    def noise_budget_bits(self, value) -> float:
        """Measured (not worst-case) remaining budget of a result."""
        return noise_budget_bits(self.context, self._materialized(value),
                                 self.keys.secret)

    # -- Galois key management --------------------------------------------------------

    def rotation_key(self, steps: int) -> GaloisKey:
        """The key-switch key for one rotation amount (cached)."""
        steps = int(steps) % self.params.n
        if steps not in self._rotation_keys:
            self._rotation_keys.update(
                self.galois.rotation_keygen(self.keys.secret, [steps])
            )
        return self._rotation_keys[steps]

    def prefetch_rotation_keys(self, steps_list) -> int:
        """Derive every missing rotation key in one batch (deduped).

        Program executors call this with
        :meth:`HEProgram.rotation_steps` before walking the graph, so
        Galois keygen happens once per distinct step per session
        instead of per-op cache probes mid-run. Returns the number of
        keys actually generated.
        """
        wanted = {int(steps) % self.params.n for steps in steps_list}
        missing = sorted(wanted - self._rotation_keys.keys())
        if missing:
            self._rotation_keys.update(
                self.galois.rotation_keygen(self.keys.secret, missing)
            )
        return len(missing)

    def summation_keys(self) -> dict:
        """Every key :meth:`GaloisEngine.sum_all_slots` needs (cached)."""
        if self._summation_keys is None:
            self._summation_keys = self.galois.summation_keygen(
                self.keys.secret
            )
        return self._summation_keys

    def use_summation_keys(self, keys: dict) -> None:
        """Adopt externally generated summation keys (seeds the cache)."""
        self._summation_keys = keys

    # -- programs ----------------------------------------------------------------------

    def compile(self, outputs, *, name: str = "program",
                check: bool = True, optimize: bool = False) -> HEProgram:
        """Capture handles into an :class:`HEProgram`.

        ``outputs`` may be one handle, a list (labelled ``out0..``), or
        a dict of label -> handle. ``check=True`` runs the static
        depth/noise validation and raises
        :class:`~repro.errors.NoiseBudgetExhausted` for programs that
        could fail to decrypt in the worst case. ``optimize=True``
        additionally runs the captured graph through the
        :mod:`repro.optim` pass stack; the returned program carries its
        :class:`~repro.optim.OptimizationReport` as ``.optimization``.
        """
        if isinstance(outputs, CiphertextHandle):
            mapping = {"out": outputs}
        elif isinstance(outputs, dict):
            mapping = outputs
        else:
            mapping = {f"out{i}": h for i, h in enumerate(outputs)}
        for handle in mapping.values():
            if not isinstance(handle, CiphertextHandle):
                raise ParameterError("program outputs must be handles")
            if handle.session is not self:
                raise ParameterError(
                    "cannot compile handles from another session"
                )
        program = HEProgram(
            {label: h.node for label, h in mapping.items()},
            self.params, name=name, check=check,
        )
        if optimize:
            from ..optim import optimize_program

            program, _ = optimize_program(program)
        return program

    def run(self, outputs):
        """Materialise handle(s) through the local backend.

        The convenience path behind ``session.decrypt(lazy_handle)`` —
        compiles without the static check (the measured noise verify in
        the backend still guards correctness) and executes functionally.
        """
        from .backends import LocalBackend

        program = self.compile(outputs, check=False)
        return LocalBackend(self).run(program)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({self.params.name!r}, "
                f"encoder={self.encoder_kind!r})")
