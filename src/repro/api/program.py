"""Lazy HE expression graphs and the :class:`HEProgram` they compile to.

Arithmetic on :class:`CiphertextHandle` objects does not touch the FV
evaluator — it records an expression node. The captured graph compiles
into an :class:`HEProgram`, which is the unit both executors understand:

* :class:`~repro.api.backends.LocalBackend` walks the graph over the
  functional :class:`~repro.fv.evaluator.Evaluator` /
  :class:`~repro.fv.galois.GaloisEngine` and produces real ciphertexts;
* :class:`~repro.api.simulated.SimulatedBackend` lowers every node to a
  priced :class:`~repro.system.workloads.Job` (with the operation's real
  polynomial-transfer footprint) and plays the stream through the
  serving runtime or the multi-FPGA cluster.

Programs carry static checks: multiplicative-depth accounting and a
worst-case noise walk over :class:`~repro.fv.noise_model.NoiseModel`, so
a program that cannot decrypt is rejected before any backend runs it.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from ..errors import NoiseBudgetExhausted, ParameterError
from ..fv.ciphertext import Ciphertext
from ..fv.encoder import Plaintext
from ..fv.noise_model import NoiseModel
from ..params import ParameterSet
from ..system.workloads import JobKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session


class OpKind(Enum):
    """Graph node operations (the client-visible HE instruction set)."""

    INPUT = "input"
    ADD = "add"
    SUB = "sub"
    NEGATE = "negate"
    MULTIPLY = "multiply"
    ADD_PLAIN = "add_plain"
    MUL_PLAIN = "mul_plain"
    ROTATE = "rotate"
    SUM_SLOTS = "sum_slots"
    #: FV.Mult *without* relinearisation — a three-part intermediate.
    #: Only the optimiser emits these (lazy-relin placement); handle
    #: arithmetic always builds MULTIPLY.
    MULTIPLY_RAW = "multiply_raw"
    #: Fold a three-part ciphertext back to two parts (one keyswitch).
    RELINEARIZE = "relinearize"


#: Node ops that consume one level of multiplicative depth.
_DEPTH_OPS = frozenset({OpKind.MULTIPLY, OpKind.MULTIPLY_RAW})


def sum_slots_rounds(n: int) -> int:
    """Rotate-and-add rounds one SUM_SLOTS expands to: log2(n/2)
    power-of-two row rotations plus the row-folding conjugation."""
    return max((n // 2).bit_length() - 1, 0) + 1


class ExprNode:
    """One node of the lazy expression DAG (identity-hashed).

    ``payload`` depends on the op: the bound :class:`Ciphertext` for
    INPUT nodes, the :class:`Plaintext` operand for the ``*_PLAIN`` ops,
    the step count for ROTATE. ``cached`` holds the materialised
    ciphertext once a local execution has computed this node, so
    incremental flows (decrypt an intermediate, keep building) never
    recompute shared subexpressions.
    """

    #: ``__weakref__`` lets the cross-request resident-operand caches
    #: key entries on nodes without pinning the expression graph.
    __slots__ = ("op", "args", "payload", "depth", "cached",
                 "__weakref__")

    def __init__(self, op: OpKind, args: tuple[ExprNode, ...] = (),
                 payload=None) -> None:
        self.op = op
        self.args = args
        self.payload = payload
        base = max((arg.depth for arg in args), default=0)
        self.depth = base + (1 if op in _DEPTH_OPS else 0)
        self.cached: Ciphertext | None = payload if op is OpKind.INPUT \
            else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExprNode({self.op.value}, depth={self.depth})"


class CiphertextHandle:
    """An opaque reference to an (eventual) ciphertext.

    Handles are what :meth:`Session.encrypt` returns and what every
    homomorphic operator produces; they stay lazy until a backend runs
    the compiled program (or :meth:`Session.decrypt` forces one).
    Python arithmetic builds the graph::

        reply = h1 * h2 + h3          # cipher-cipher ops
        scaled = reply * 3            # plaintext op (encoded by session)
        total = sum_slots(scaled)     # rotate-and-add reduction

    Mixed-session arithmetic is rejected: a handle is only meaningful
    under the keys of the session that minted it.
    """

    __slots__ = ("node", "session")

    def __init__(self, node: ExprNode, session: Session) -> None:
        self.node = node
        self.session = session

    # -- introspection -------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Multiplicative depth consumed so far."""
        return self.node.depth

    @property
    def is_materialized(self) -> bool:
        return self.node.cached is not None

    @property
    def ciphertext(self) -> Ciphertext:
        """The concrete ciphertext (materialising lazily if needed).

        Handles are the user-facing boundary, so the result is always
        coefficient-domain — an NTT-resident intermediate left in the
        graph cache by the resident executor is converted (and written
        back) on first access.
        """
        if self.node.cached is None:
            self.session.run(self)
        if self.node.cached.ntt_resident:
            self.node.cached = self.session.context.to_coeff_ct(
                self.node.cached
            )
        return self.node.cached

    # -- graph-building helpers ------------------------------------------------------

    def _derive(self, op: OpKind, *args: CiphertextHandle,
                payload=None) -> CiphertextHandle:
        nodes = (self.node,) + tuple(a.node for a in args)
        return CiphertextHandle(ExprNode(op, nodes, payload), self.session)

    def _coerce(self, other) -> CiphertextHandle | Plaintext | None:
        """Classify an operand: handle, plaintext, or encodable value."""
        if isinstance(other, CiphertextHandle):
            if other.session is not self.session:
                raise ParameterError(
                    "cannot mix handles from different sessions"
                )
            return other
        if isinstance(other, Plaintext):
            return other
        try:
            return self.session.encode(other)
        except (TypeError, ValueError):
            return None

    # -- operators --------------------------------------------------------------------

    def __add__(self, other):
        operand = self._coerce(other)
        if isinstance(operand, CiphertextHandle):
            return self._derive(OpKind.ADD, operand)
        if isinstance(operand, Plaintext):
            return self._derive(OpKind.ADD_PLAIN, payload=operand)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        operand = self._coerce(other)
        if isinstance(operand, CiphertextHandle):
            return self._derive(OpKind.SUB, operand)
        if isinstance(operand, Plaintext):
            # h - p == h + (-p): one ADD_PLAIN with the negated encoding.
            return self._derive(
                OpKind.ADD_PLAIN,
                payload=self.session.negate_plain(operand),
            )
        return NotImplemented

    def __rsub__(self, other):
        # plain - handle = ADD_PLAIN(NEGATE(handle), plain)
        operand = self._coerce(other)
        if isinstance(operand, Plaintext):
            return self._derive(OpKind.NEGATE)._derive(
                OpKind.ADD_PLAIN, payload=operand
            )
        return NotImplemented

    def __neg__(self):
        return self._derive(OpKind.NEGATE)

    def __mul__(self, other):
        operand = self._coerce(other)
        if isinstance(operand, CiphertextHandle):
            return self._derive(OpKind.MULTIPLY, operand)
        if isinstance(operand, Plaintext):
            return self._derive(OpKind.MUL_PLAIN, payload=operand)
        return NotImplemented

    __rmul__ = __mul__

    def rotate(self, steps: int) -> CiphertextHandle:
        """Rotate the batching slots by ``steps`` (Galois automorphism)."""
        return self._derive(OpKind.ROTATE, payload=int(steps))

    def sum_slots(self) -> CiphertextHandle:
        """Rotate-and-add: every slot ends up holding the slot total."""
        return self._derive(OpKind.SUM_SLOTS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self.is_materialized else "lazy"
        return (f"CiphertextHandle({self.node.op.value}, "
                f"depth={self.depth}, {state})")


def rotate(handle: CiphertextHandle, steps: int) -> CiphertextHandle:
    """Free-function spelling of :meth:`CiphertextHandle.rotate`."""
    return handle.rotate(steps)


def sum_slots(handle: CiphertextHandle) -> CiphertextHandle:
    """Free-function spelling of :meth:`CiphertextHandle.sum_slots`."""
    return handle.sum_slots()


# -- lowering to the job stream --------------------------------------------------------


@dataclass(frozen=True)
class LoweredOp:
    """One serving-runtime job lowered from a graph node.

    ``polys_in`` counts only polynomial bursts the client actually
    uploads for this op (fresh INPUT operands and plaintext operands);
    operands produced by earlier ops stay resident in the server's DDR
    and cost nothing to move again — as do INPUT operands the server
    already holds from a previous request (the cross-request
    resident-operand cache), which lower with ``cached_inputs`` > 0
    and zero transfer. ``polys_out`` is non-zero only for program
    outputs — the reply the client downloads.
    """

    kind: JobKind
    polys_in: int
    polys_out: int
    source: OpKind
    #: INPUT operands of this op that were served from the server's
    #: cross-request resident cache (each saved one ciphertext upload).
    cached_inputs: int = 0
    #: Ciphertext operands that arrive NTT-resident at a MULT-family
    #: op: operands produced by earlier ops (the resident executor
    #: keeps them in the evaluation domain now that MULTIPLY consumes
    #: resident inputs directly) and server-cached INPUT operands. Each
    #: one skips the coefficient-boundary inverse transform the
    #: pre-resident datapath paid — the discount
    #: :meth:`~repro.api.simulated.LoweredProgram.op_seconds` prices.
    resident_operands: int = 0
    #: Indices (into the lowered op list) of the ops producing this
    #: op's operands — the intra-request dependency edges program-aware
    #: pricing walks for critical paths. INPUT operands have no
    #: producing op and do not appear.
    deps: tuple[int, ...] = ()


_JOB_KINDS = {
    OpKind.ADD: JobKind.ADD,
    OpKind.SUB: JobKind.ADD,
    OpKind.NEGATE: JobKind.ADD,
    OpKind.ADD_PLAIN: JobKind.ADD,
    OpKind.MULTIPLY: JobKind.MULT,
    OpKind.MUL_PLAIN: JobKind.MUL_PLAIN,
    OpKind.ROTATE: JobKind.ROTATE,
    OpKind.MULTIPLY_RAW: JobKind.MULT_RAW,
    OpKind.RELINEARIZE: JobKind.RELIN,
}

#: Polynomials per fresh two-part ciphertext on the wire.
_POLYS_PER_CT = 2
#: A plaintext operand travels as one (narrow) polynomial burst.
_POLYS_PER_PLAIN = 1


class HEProgram:
    """A compiled HE computation: topologically ordered expression DAG.

    The same program object drives both executors — that is the point
    of the facade: ``LocalBackend(session).run(program)`` returns real
    ciphertexts, ``SimulatedBackend.over_cluster(...).run(program,
    requests=1000)`` returns simulated latency percentiles, and nothing
    about the program changes between the two.
    """

    def __init__(self, outputs: Mapping[str, ExprNode],
                 params: ParameterSet, *, name: str = "program",
                 check: bool = True) -> None:
        if not outputs:
            raise ParameterError("a program needs at least one output")
        self.name = name
        self.params = params
        self.outputs = dict(outputs)
        self.nodes = self._topo_sort(self.outputs.values())
        self.inputs = [n for n in self.nodes if n.op is OpKind.INPUT]
        #: Rotation-hoisting groups (tuples of ROTATE nodes sharing one
        #: source), attached by the optimiser's hoist analysis; the
        #: resident executor computes each group's shared digit
        #: transform once.
        self.hoist_groups: list[tuple[ExprNode, ...]] = []
        #: The :class:`~repro.optim.OptimizationReport` that produced
        #: this program, when it came out of the pass stack.
        self.optimization = None
        if check:
            self.check_noise()

    @staticmethod
    def _topo_sort(roots: Iterable[ExprNode]) -> list[ExprNode]:
        """Iterative post-order DFS (graphs can be deep; no recursion)."""
        order: list[ExprNode] = []
        seen: set[int] = set()
        for root in roots:
            if id(root) in seen:
                continue
            stack: list[tuple[ExprNode, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for arg in node.args:
                    if id(arg) not in seen:
                        stack.append((arg, False))
        return order

    # -- static accounting -------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Multiplicative depth of the deepest output."""
        return max(node.depth for node in self.outputs.values())

    @property
    def num_ops(self) -> int:
        """Graph nodes that execute (everything but the inputs)."""
        return len(self.nodes) - len(self.inputs)

    def op_counts(self) -> dict[OpKind, int]:
        counts: dict[OpKind, int] = {}
        for node in self.nodes:
            if node.op is not OpKind.INPUT:
                counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def rotation_steps(self) -> list[int]:
        """Distinct rotation amounts the program needs, normalised the
        way the session's Galois-key cache keys them (mod n)."""
        steps = {
            int(node.payload) % self.params.n
            for node in self.nodes if node.op is OpKind.ROTATE
        }
        return sorted(steps)

    @property
    def uses_sum_slots(self) -> bool:
        return any(n.op is OpKind.SUM_SLOTS for n in self.nodes)

    def static_noise_bits(self) -> dict[str, float]:
        """Worst-case remaining noise budget (bits) of every output.

        Walks the graph through the analytic
        :class:`~repro.fv.noise_model.NoiseModel` bounds, assuming every
        INPUT is a fresh encryption. Being worst-case bounds, these run
        a few bits below what a real execution measures — a *positive*
        result here guarantees decryptability.
        """
        model = NoiseModel(self.params)
        noise: dict[int, float] = {}

        def keyswitch_round(value: float) -> float:
            """One rotate-and-add level: ct + keyswitched(rotated ct)."""
            return model.add_bound(value, model.relin_bound(value))

        for node in self.nodes:
            args = [noise[id(a)] for a in node.args]
            if node.op is OpKind.INPUT:
                value = model.fresh_bound()
            elif node.op in (OpKind.ADD, OpKind.SUB):
                value = model.add_bound(args[0], args[1])
            elif node.op is OpKind.NEGATE:
                value = args[0]
            elif node.op is OpKind.ADD_PLAIN:
                value = model.add_plain_bound(args[0])
            elif node.op is OpKind.MUL_PLAIN:
                value = model.mul_plain_bound(args[0])
            elif node.op is OpKind.MULTIPLY:
                value = model.mult_relin_bound(args[0], args[1])
            elif node.op is OpKind.MULTIPLY_RAW:
                value = model.mult_bound(args[0], args[1])
            elif node.op in (OpKind.RELINEARIZE, OpKind.ROTATE):
                value = model.relin_bound(args[0])
            else:  # SUM_SLOTS: log2(n/2) rotation levels + conjugation
                value = args[0]
                for _ in range(sum_slots_rounds(self.params.n)):
                    value = keyswitch_round(value)
            noise[id(node)] = value
        return {
            label: model.budget_bits(noise[id(node)])
            for label, node in self.outputs.items()
        }

    def check_noise(self) -> None:
        """Raise :class:`NoiseBudgetExhausted` if any output could fail.

        This is the compile-time guarantee: programs that pass decrypt
        correctly on every parameter-respecting execution.
        """
        for label, bits in self.static_noise_bits().items():
            if bits <= 0:
                raise NoiseBudgetExhausted(
                    f"program {self.name!r} output {label!r} exhausts the "
                    f"noise budget (depth {self.depth}, worst-case budget "
                    f"{bits:.1f} bits) — shrink the depth or grow q"
                )

    # -- lowering ----------------------------------------------------------------------

    def lower(self, resident_inputs: Iterable[ExprNode] = ()
              ) -> list[LoweredOp]:
        """Lower the graph to the serving runtime's job stream.

        SUM_SLOTS macro-expands into its log2(n/2) + 1 rotation +
        addition rounds so the simulated cost reflects what the
        hardware would actually execute. Transfer footprints follow the
        resident-intermediate model documented on :class:`LoweredOp`;
        INPUT nodes listed in ``resident_inputs`` are already held by
        the server (a cross-request resident-operand cache hit) and
        price at **zero** upload transfer, recorded per op in
        ``cached_inputs``.
        """
        output_ids = {id(node) for node in self.outputs.values()}
        resident_ids = {id(node) for node in resident_inputs}
        uploaded: set[int] = set()
        ops: list[LoweredOp] = []
        #: Node id -> index of the lowered op producing its value (for
        #: SUM_SLOTS, the final ADD of its expansion). INPUT operands
        #: have no producer and contribute no dependency edge.
        producer: dict[int, int] = {}
        for node in self.nodes:
            if node.op is OpKind.INPUT:
                continue
            # Each fresh INPUT is uploaded once, at its first consumer;
            # after that it is just as resident as any intermediate.
            # Server-cached inputs never upload at all.
            uploads = 0
            cached = 0
            for arg in node.args:
                if arg.op is OpKind.INPUT and id(arg) not in uploaded:
                    uploaded.add(id(arg))
                    if id(arg) in resident_ids:
                        cached += 1
                    else:
                        uploads += _POLYS_PER_CT
            if node.op in (OpKind.ADD_PLAIN, OpKind.MUL_PLAIN):
                uploads += _POLYS_PER_PLAIN
            downloads = _POLYS_PER_CT if id(node) in output_ids else 0
            deps = tuple(
                producer[id(arg)] for arg in node.args
                if id(arg) in producer
            )
            if node.op is OpKind.SUM_SLOTS:
                rounds = sum_slots_rounds(self.params.n)
                # result = arg; per round: result += rotate(result) —
                # each rotation depends on the running accumulator, the
                # addition on both accumulator and rotation.
                acc: tuple[int, ...] = deps
                for i in range(rounds):
                    last = i == rounds - 1
                    first = i == 0
                    ops.append(LoweredOp(JobKind.ROTATE,
                                         uploads if first else 0, 0,
                                         node.op,
                                         cached_inputs=cached if first
                                         else 0,
                                         deps=acc))
                    rot = len(ops) - 1
                    ops.append(LoweredOp(JobKind.ADD, 0,
                                         downloads if last else 0, node.op,
                                         deps=acc + (rot,)))
                    acc = (len(ops) - 1,)
                producer[id(node)] = len(ops) - 1
                continue
            resident_ops = 0
            if node.op in (OpKind.MULTIPLY, OpKind.MULTIPLY_RAW):
                # Evaluation-domain base extension: operands produced
                # on-chip stay resident, and server-cached inputs were
                # ingested resident — each skips the boundary inverse
                # transform the coefficient-domain datapath paid.
                resident_ops = sum(
                    1 for arg in node.args
                    if arg.op is not OpKind.INPUT
                    or id(arg) in resident_ids
                )
            ops.append(LoweredOp(_JOB_KINDS[node.op], uploads, downloads,
                                 node.op, cached_inputs=cached, deps=deps,
                                 resident_operands=resident_ops))
            producer[id(node)] = len(ops) - 1
        return ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HEProgram({self.name!r}, ops={self.num_ops}, "
                f"depth={self.depth}, outputs={list(self.outputs)})")
