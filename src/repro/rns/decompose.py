"""WordDecomp: decompositions used by relinearisation (paper Sec. II-B).

Two flavours, matching the two coprocessor variants:

* :func:`signed_digit_decompose` — classic base-w decomposition with
  *signed* digits in [-w/2, w/2), exactly like the paper's toy example
  (43 with w = 2^4 becomes digits (-5, 3) since 43 = -5 + 3*16). Used by
  the traditional-CRT coprocessor, which can pick the digit count freely
  (it uses two 90-bit digits, a "three times smaller" key).
* :func:`rns_decompose` — the RNS decomposition D_i(a) = [a_i * q~_i]_{q_i}
  with reconstruction sum_i D_i(a) * q*_i ≡ a (mod q). This is what the
  HPS coprocessor uses: six digit polynomials for six q-primes, which is
  why its relinearisation key is a vector of six polynomials.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath.modmath import modinv
from .basis import RnsBasis


def broadcast_digit_rows(residues: np.ndarray,
                         basis: RnsBasis) -> np.ndarray:
    """Raw-residue digit tensor: row i of ``residues`` broadcast to every
    basis channel, reduced per channel.

    This is the paper's cheap WordDecomp — pure data movement plus a
    per-channel reduction. For the standard 30-bit bases the values are
    below twice every prime, so one unsigned-minimum conditional
    subtract replaces the integer division.
    """
    from ..nttmath import batch

    k, n = residues.shape
    tiled = np.broadcast_to(residues[:, None, :], (k, basis.size, n))
    if min(basis.primes) >= 1 << 29 and not batch._PER_ROW_MODE:
        digits = np.ascontiguousarray(tiled)
        reduced = digits - basis.primes_col
        np.minimum(digits.view(np.uint64), reduced.view(np.uint64),
                   out=digits.view(np.uint64))
        return digits
    # Pre-batching form (and the safe fallback for narrow primes):
    # one integer-division reduction per channel.
    return tiled % basis.primes_col


def signed_digit_decompose(value: int, base: int, count: int) -> list[int]:
    """Signed base-``base`` digits of ``value``: d_i in [-base/2, base/2).

    ``value`` may be any integer with ``|value| < base**count / 2``; the
    digits satisfy ``value == sum(d_i * base**i)`` exactly.
    """
    if base < 2 or base % 2:
        raise ParameterError("digit base must be an even integer >= 2")
    digits = []
    remaining = value
    half = base // 2
    for _ in range(count):
        digit = remaining % base
        if digit >= half:
            digit -= base
        digits.append(digit)
        remaining = (remaining - digit) // base
    if remaining != 0:
        raise ParameterError(
            f"value {value} does not fit in {count} signed base-{base} digits"
        )
    return digits


def recompose_signed_digits(digits: list[int], base: int) -> int:
    """Inverse of :func:`signed_digit_decompose`."""
    value = 0
    for digit in reversed(digits):
        value = value * base + digit
    return value


def decompose_poly_signed(coeffs: list[int], modulus: int, base: int,
                          count: int) -> list[list[int]]:
    """Signed digit decomposition of a polynomial's centered coefficients.

    Returns ``count`` digit polynomials (lists of signed ints).
    """
    half_q = modulus // 2
    digit_polys = [[0] * len(coeffs) for _ in range(count)]
    for idx, coeff in enumerate(coeffs):
        coeff %= modulus
        if coeff > half_q:
            coeff -= modulus
        for level, digit in enumerate(
            signed_digit_decompose(coeff, base, count)
        ):
            digit_polys[level][idx] = digit
    return digit_polys


def rns_decompose(basis: RnsBasis, residues: np.ndarray) -> np.ndarray:
    """RNS decomposition of a residue matrix (HPS relinearisation).

    Input: (k x n) residues of a polynomial over the basis. Output: a
    (k x k x n) tensor ``out[i]`` where digit polynomial i is the small
    integer D_i(a) = [a_i * q~_i]_{q_i} broadcast to residues modulo every
    basis prime (a 30-bit value needs at most one conditional subtraction
    per channel, which is why the paper calls WordDecomp cheap).
    """
    matrix = np.asarray(residues, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != basis.size:
        raise ParameterError(
            f"expected ({basis.size} x n) residues, got {matrix.shape}"
        )
    k, n = matrix.shape
    digits = (matrix * basis.q_tilde_col) % basis.primes_col  # (k, n)
    out = np.empty((k, k, n), dtype=np.int64)
    for i in range(k):
        # Digit value D_i is a plain integer < q_i; reduce it into every
        # channel of the basis.
        out[i] = digits[i][None, :] % basis.primes_col
    return out


def prime_groups(size: int, group_size: int) -> list[tuple[int, ...]]:
    """Partition prime indices 0..size-1 into consecutive groups."""
    if group_size < 1:
        raise ParameterError("group size must be at least 1")
    return [
        tuple(range(start, min(start + group_size, size)))
        for start in range(0, size, group_size)
    ]


def grouped_rns_digits(basis: RnsBasis, residues: np.ndarray,
                       group_size: int) -> np.ndarray:
    """Grouped RNS decomposition: digit j = [a mod Q_j], Q_j a prime group.

    This is how RNS implementations keep the relinearisation component
    count constant as the basis grows (HPS Sec. 4; SEAL's key-switching):
    with groups of two 30-bit primes the digits are 60-bit integers and a
    twelve-prime modulus still needs only six key components. Output
    shape: (num_groups, basis.size, n) — each digit broadcast into every
    channel of the basis, ready for the NTT-domain sum of products.

    The group reconstruction is exact big-integer CRT per group (digits
    can exceed 63 bits for groups of three or more, hence the object
    arithmetic inside).
    """
    matrix = np.asarray(residues, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != basis.size:
        raise ParameterError(
            f"expected ({basis.size} x n) residues, got {matrix.shape}"
        )
    groups = prime_groups(basis.size, group_size)
    n = matrix.shape[1]
    out = np.empty((len(groups), basis.size, n), dtype=np.int64)
    for j, group in enumerate(groups):
        group_primes = [basis.primes[i] for i in group]
        modulus = 1
        for p in group_primes:
            modulus *= p
        # CRT weights within the group.
        weights = []
        for p in group_primes:
            star = modulus // p
            weights.append(star * modinv(star % p, p))
        # Exact reconstruction of each coefficient's digit.
        columns = matrix[list(group)].T.tolist()
        digits = [
            sum(int(r) * w for r, w in zip(column, weights, strict=True)) % modulus
            for column in columns
        ]
        for channel, p in enumerate(basis.primes):
            out[j, channel] = np.array(
                [d % p for d in digits], dtype=np.int64
            )
    return out


def grouped_reconstruction_weights(basis: RnsBasis,
                                   group_size: int) -> list[int]:
    """The key constants: w_j = q~_j q*_j with q*_j = q / Q_j.

    They satisfy sum_j [a]_{Q_j} * w_j ≡ a (mod q), which is the identity
    grouped relinearisation keys are built on.
    """
    weights = []
    for group in prime_groups(basis.size, group_size):
        modulus = 1
        for i in group:
            modulus *= basis.primes[i]
        star = basis.modulus // modulus
        weights.append(star * modinv(star % modulus, modulus))
    return weights


def rns_recompose(basis: RnsBasis, digit_tensor: np.ndarray) -> np.ndarray:
    """Reconstruction check: sum_i D_i * q*_i mod each prime.

    Returns the (k x n) residue matrix congruent to the original input of
    :func:`rns_decompose`; used by property tests.
    """
    tensor = np.asarray(digit_tensor, dtype=np.int64)
    k = basis.size
    n = tensor.shape[2]
    out = np.zeros((k, n), dtype=np.int64)
    for i in range(k):
        star_col = np.array(
            [basis.q_star[i] % p for p in basis.primes], dtype=np.int64
        )[:, None]
        out = (out + tensor[i] * star_col) % basis.primes_col
    return out
