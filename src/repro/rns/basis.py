"""RNS bases and the precomputed constant tables of the paper's ROMs.

An :class:`RnsBasis` is an ordered tuple of pairwise-coprime primes. The
class precomputes every constant the hardware keeps in read-only memory:

* ``q_star[i] = q / q_i`` and ``q_tilde[i] = (q/q_i)^-1 mod q_i``
  (Theorem 1 of the paper);
* fixed-point reciprocals ``round(2^89 / q_i)`` used by the HPS quotient
  estimate — the paper stores 89 fractional bits of ``1/q_i`` of which the
  first 29 are zero, i.e. a 60-bit mantissa (Sec. V-B2);
* cross-basis reduction tables ``q_star[i] mod t_j`` for base extension.

:class:`LiftContext` and :class:`ScaleContext` bundle the cross-basis
tables for the two conversions of Figs. 6 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import prod

import numpy as np

from ..errors import ParameterError
from ..nttmath.modmath import modinv

RECIP_FRACTION_BITS = 89
"""Fixed-point precision of the stored reciprocals 1/q_i (paper Sec. V-B2)."""

SCALE_FRACTION_BITS = 60
"""Fixed-point precision of the fractional scale constants R_i (Sec. V-C)."""

_MASK30 = (1 << 30) - 1


class RnsBasis:
    """An ordered RNS basis with precomputed CRT constants."""

    def __init__(self, primes) -> None:
        self.primes = tuple(int(p) for p in primes)
        if len(set(self.primes)) != len(self.primes):
            raise ParameterError("RNS basis primes must be distinct")
        if any(p < 3 for p in self.primes):
            raise ParameterError("RNS basis primes must be odd primes")
        self.modulus = prod(self.primes)
        self.size = len(self.primes)
        self.q_star = tuple(self.modulus // p for p in self.primes)
        self.q_tilde = tuple(
            modinv(star % p, p)
            for star, p in zip(self.q_star, self.primes, strict=True)
        )
        # The garbled-free constants as numpy columns for vectorised use.
        self.primes_col = np.array(self.primes, dtype=np.int64)[:, None]
        self.q_tilde_col = np.array(self.q_tilde, dtype=np.int64)[:, None]
        # 89-fractional-bit reciprocals; for ~30-bit primes the value fits
        # in 60 bits (first 29 fractional bits of 1/q_i are zero).
        self.recip = tuple(
            ((1 << RECIP_FRACTION_BITS) + p // 2) // p for p in self.primes
        )
        recips = np.array(self.recip, dtype=np.int64)
        if any(r >= (1 << 62) for r in self.recip):
            raise ParameterError("reciprocal table overflows the datapath")
        self.recip_hi_col = (recips >> 30)[:, None]
        self.recip_lo_col = (recips & _MASK30)[:, None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RnsBasis(size={self.size}, bits={self.modulus.bit_length()})"

    # -- conversions -----------------------------------------------------------

    def residues_of(self, value: int) -> np.ndarray:
        """Residue vector of a single integer."""
        return np.array([value % p for p in self.primes], dtype=np.int64)

    def residues_of_coeffs(self, coeffs) -> np.ndarray:
        """Residue matrix (size x n) of a list of big integers."""
        return np.array(
            [[int(c) % p for c in coeffs] for p in self.primes],
            dtype=np.int64,
        )

    def reconstruct(self, residues) -> int:
        """Exact CRT reconstruction of one residue vector into [0, modulus)."""
        total = 0
        for value, star, tilde, p in zip(
            residues, self.q_star, self.q_tilde, self.primes, strict=True
        ):
            total += (int(value) * tilde % p) * star
        return total % self.modulus

    def reconstruct_centered(self, residues) -> int:
        """CRT reconstruction into (-modulus/2, modulus/2]."""
        value = self.reconstruct(residues)
        if value > self.modulus // 2:
            value -= self.modulus
        return value

    def reconstruct_coeffs(self, residue_matrix: np.ndarray) -> list[int]:
        """Column-wise CRT of a (size x n) residue matrix to big integers."""
        matrix = np.asarray(residue_matrix)
        if matrix.shape[0] != self.size:
            raise ParameterError(
                f"residue matrix has {matrix.shape[0]} rows, basis needs "
                f"{self.size}"
            )
        columns = matrix.T.tolist()
        return [self.reconstruct(column) for column in columns]

    def reconstruct_coeffs_centered(
        self, residue_matrix: np.ndarray
    ) -> list[int]:
        half = self.modulus // 2
        return [
            v - self.modulus if v > half else v
            for v in self.reconstruct_coeffs(residue_matrix)
        ]

    # -- cross-basis tables ------------------------------------------------------

    def star_mod_table(self, target_primes) -> np.ndarray:
        """Matrix ``q_star[i] mod t_j`` with shape (len(targets), size)."""
        return np.array(
            [[star % t for star in self.q_star] for t in target_primes],
            dtype=np.int64,
        )

    def modulus_mod(self, target_primes) -> np.ndarray:
        """Vector ``modulus mod t_j``."""
        return np.array(
            [self.modulus % t for t in target_primes], dtype=np.int64
        )


@dataclass(frozen=True)
class LiftContext:
    """Precomputed tables for one base extension (paper Fig. 6).

    ``source`` is the basis the residues live in; ``target_primes`` are the
    primes whose residues are produced. For Lift q->Q the target is the
    p-basis; for the final step of Scale Q->q the roles are reversed.
    """

    source: RnsBasis
    target_primes: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "star_table", self.source.star_mod_table(self.target_primes)
        )
        object.__setattr__(
            self, "q_mod_target", self.source.modulus_mod(self.target_primes)
        )
        object.__setattr__(
            self,
            "target_col",
            np.array(self.target_primes, dtype=np.int64)[:, None],
        )
        # When the target basis starts with the source primes (Lift
        # q->Q), those output rows are *identical* to the input rows:
        # every representative of x differs from x by a multiple of q,
        # which vanishes modulo each source prime. The fast path then
        # only computes the genuinely new channels.
        object.__setattr__(
            self,
            "source_prefix",
            len(self.source.primes)
            if self.target_primes[: self.source.size] == self.source.primes
            else 0,
        )
        # The gemm path carries the HPS reciprocals as four 15-bit
        # limbs, i.e. 60 significant bits. Standard 30-bit bases fit
        # (recip ~ 2^89 / 2^29.x < 2^60); narrower primes would
        # truncate, so they keep the reference loop.
        object.__setattr__(
            self,
            "gemm_safe",
            all(r < (1 << 60) for r in self.source.recip),
        )
        object.__setattr__(self, "_gemm", None)

    def gemm_tables(self) -> tuple[np.ndarray, ...]:
        """Float64 tables for the limb-split Block 2 matrix product.

        ``star_cat`` is ``[star * 2^15 mod t_j | star]`` so one dgemm
        against the 15-bit limb split of x' computes the whole sum of
        products exactly (see :func:`repro.rns.lift._lift_block2_gemm`).
        Built lazily and cached on the (frozen) context.
        """
        if self._gemm is None:
            # Rows for source-prefix targets are free (see above), so
            # the gemm tables only cover the genuinely new channels.
            skip = self.source_prefix
            star = self.star_table[skip:]
            t_col = self.target_col[skip:]
            star15 = (star << 15) % t_col
            star_cat = np.concatenate([star15, star], axis=1).astype(
                np.float64
            )
            # Four extra output rows accumulate the HPS quotient's
            # fixed-point reciprocals, 15 bits at a time: row L holds
            # sum_i x'_i * ((recip_i >> 15L) & 0x7fff), assembled
            # against the same [x' >> 15 | x' & 0x7fff] limb columns.
            # Every partial sum stays below 2^50, so the dgemm is exact
            # and hps_quotient's separate passes disappear.
            recips = np.array(self.source.recip, dtype=np.int64)
            limb_rows = []
            for level in range(4):
                limb = (recips >> (15 * level)) & 0x7FFF
                limb_rows.append(
                    np.concatenate([limb << 15, limb]).astype(np.float64)
                )
            full = np.concatenate([star_cat, np.stack(limb_rows)])
            object.__setattr__(self, "_gemm", (
                full,
                t_col.astype(np.float64),
                1.0 / t_col,
                self.q_mod_target[skip:].astype(np.float64)[:, None],
            ))
        return self._gemm


@dataclass(frozen=True)
class ScaleContext:
    """Precomputed tables for Scale Q->q with the HPS method (Fig. 9).

    The input lives in the full basis Q = q-basis ∪ p-basis; the output is
    round(t * x / q) in the q-basis. Constants:

    * ``int_table[j][i]``: integer part of ``t * Q~_i * (p / q_i)`` taken
      mod p-prime j — wait, precisely: the constant multiplying
      ``x'_i = [x_i * Q~_i]_{q_i}`` is ``t * Q*_i / q`` whose integer part
      ``I_i`` is tabulated modulo each output-stage prime and whose
      fractional part ``R_i`` is stored with 60 fixed-point bits;
    * ``p_term[j]``: the surviving integer constant ``t * Q*_j / q mod q_j``
      for the p-basis residue's own channel (Fig. 9 Block 3);
    * a :class:`LiftContext` from the p-basis to the q-basis for the final
      base extension (Fig. 9 Block 5).
    """

    q_basis: RnsBasis
    p_basis: RnsBasis
    t: int

    def __post_init__(self) -> None:
        q = self.q_basis.modulus
        p = self.p_basis.modulus
        big_q = q * p
        # Q~_k = (Q / q_k)^-1 mod q_k for every prime of the full basis.
        q_tilde_q = [
            modinv((big_q // qi) % qi, qi) for qi in self.q_basis.primes
        ]
        q_tilde_p = [
            modinv((big_q // pj) % pj, pj) for pj in self.p_basis.primes
        ]
        object.__setattr__(
            self,
            "x_prime_mult_q",
            np.array(q_tilde_q, dtype=np.int64)[:, None],
        )
        object.__setattr__(
            self,
            "x_prime_mult_p",
            np.array(q_tilde_p, dtype=np.int64)[:, None],
        )
        # For q-basis channels: t * Q*_i / q = t * p / q_i = I_i + R_i.
        int_rows = []
        frac_hi = []
        frac_lo = []
        for qi in self.q_basis.primes:
            numerator = self.t * p
            integer_part = numerator // qi
            remainder = numerator % qi
            fraction = (remainder << SCALE_FRACTION_BITS) // qi
            int_rows.append(
                [integer_part % pj for pj in self.p_basis.primes]
            )
            frac_hi.append(fraction >> 30)
            frac_lo.append(fraction & _MASK30)
        object.__setattr__(
            self,
            "int_table",
            np.array(int_rows, dtype=np.int64).T,  # (k_p, k_q)
        )
        object.__setattr__(
            self, "frac_hi_col", np.array(frac_hi, dtype=np.int64)[:, None]
        )
        object.__setattr__(
            self, "frac_lo_col", np.array(frac_lo, dtype=np.int64)[:, None]
        )
        # For p-basis channel j: t * Q*_j / q = t * (p / p_j) (an integer),
        # taken mod p_j. All other p-channels vanish mod p_j.
        object.__setattr__(
            self,
            "p_term",
            np.array(
                [
                    (self.t * (p // pj)) % pj
                    for pj in self.p_basis.primes
                ],
                dtype=np.int64,
            )[:, None],
        )
        object.__setattr__(
            self,
            "final_lift",
            LiftContext(self.p_basis, self.q_basis.primes),
        )
        object.__setattr__(self, "_gemm", None)
        object.__setattr__(self, "_gemm_pre", None)
        object.__setattr__(
            self,
            "full_q_tilde",
            tuple(int(c) for c in self.x_prime_mult_q[:, 0])
            + tuple(int(c) for c in self.x_prime_mult_p[:, 0]),
        )

    def gemm_tables(self) -> tuple[np.ndarray, ...]:
        """Float64 tables for the limb-split Blocks 2-4 matrix product.

        The weight matrix concatenates ``[I * 2^15 mod p_j | I]`` for
        the integer parts of ``t * p / q_i`` with a block-diagonal tail
        carrying each p-channel's own term: channel j's combined
        constant ``c_j = Q~_j * (t * p / p_j) mod p_j`` multiplies only
        its own row's limbs, so Fig. 9's Blocks 2 *and* 3 come out of a
        single dgemm (see :func:`repro.rns.scale._scale_sop_gemm`).
        Built lazily and cached on the (frozen) context.
        """
        if self._gemm is None:
            self._build_gemm_tables()
        return self._gemm

    def gemm_tables_prescaled(self) -> tuple[np.ndarray, ...]:
        """Like :meth:`gemm_tables` but for inputs whose rows already
        carry their ``Q~_k`` factor (the evaluator folds those into the
        tensor step's inverse transforms): the own-term constants are
        just ``t * p / p_j mod p_j``."""
        if self._gemm_pre is None:
            self._build_gemm_tables()
        return self._gemm_pre

    def _build_gemm_tables(self) -> None:
        for prescaled in (False, True):
            p_col = self.p_basis.primes_col
            k_p = self.p_basis.size
            int15 = (self.int_table << 15) % p_col
            own = (self.p_term % p_col if prescaled
                   else (self.x_prime_mult_p * self.p_term) % p_col)
            own15 = (own << 15) % p_col
            diag_hi = np.zeros((k_p, k_p), dtype=np.int64)
            diag_lo = np.zeros((k_p, k_p), dtype=np.int64)
            np.fill_diagonal(diag_hi, own15[:, 0])
            np.fill_diagonal(diag_lo, own[:, 0])
            int_cat = np.concatenate(
                [int15, self.int_table, diag_hi, diag_lo], axis=1
            ).astype(np.float64)
            object.__setattr__(
                self, "_gemm_pre" if prescaled else "_gemm",
                (int_cat, p_col.astype(np.float64), 1.0 / p_col),
            )


@lru_cache(maxsize=None)
def basis_for(primes: tuple[int, ...]) -> RnsBasis:
    """Cached basis construction (constant tables are reused everywhere)."""
    return RnsBasis(primes)


@lru_cache(maxsize=None)
def lift_context(source_primes: tuple[int, ...],
                 target_primes: tuple[int, ...]) -> LiftContext:
    return LiftContext(basis_for(source_primes), tuple(target_primes))


@lru_cache(maxsize=None)
def scale_context(q_primes: tuple[int, ...], p_primes: tuple[int, ...],
                  t: int) -> ScaleContext:
    return ScaleContext(basis_for(q_primes), basis_for(p_primes), t)
