"""Lift q->Q: base extension of residue polynomials (paper Sec. IV-C).

Two algorithms, as in the paper:

* :func:`lift_traditional` — exact CRT reconstruction followed by
  reduction modulo the new primes (Eq. 1, the Fig. 5 architecture). It
  involves multi-precision arithmetic, which is what makes the
  corresponding hardware slow.
* :func:`lift_hps` — the Halevi–Polyakov–Shoup approximate method (Eq. 2,
  the Fig. 6 architecture): only single-word arithmetic, with the CRT
  quotient ``v`` estimated from fixed-point reciprocals. The estimate is
  exact except when the value sits within ~2^-59 of a rounding boundary,
  in which case the lifted representative shifts by one multiple of q —
  harmless for FV (it adds a q-multiple absorbed by the scale step).

Both functions map a residue matrix over the source basis to the residue
matrix over ``target_primes`` of (a representative of) the same integers.
The HPS lift produces the *centered* representative in (-q/2, q/2]; the
traditional lift produces the standard representative in [0, q). Tests
check both against exact big-integer CRT.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath import batch
from .basis import RECIP_FRACTION_BITS, LiftContext, RnsBasis

_MASK30 = (1 << 30) - 1


def _check_input(basis: RnsBasis, residues: np.ndarray) -> np.ndarray:
    matrix = np.asarray(residues, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != basis.size:
        raise ParameterError(
            f"expected a ({basis.size} x n) residue matrix, got shape "
            f"{matrix.shape}"
        )
    return matrix


def hps_quotient(basis: RnsBasis, x_prime: np.ndarray) -> np.ndarray:
    """Exact fixed-point evaluation of v' = round(sum_i x'_i / q_i).

    This reproduces Fig. 6 Block 3 bit-for-bit: each 1/q_i is the stored
    89-fractional-bit reciprocal (60 significant bits); the products are
    accumulated in split 30-bit limbs so that int64 arithmetic never
    overflows, and the final rounding is exact.
    """
    # Split accumulation: T = sum x'_i * recip_i = S_hi * 2^30 + S_lo.
    s_hi = (x_prime * basis.recip_hi_col).sum(axis=0)
    s_lo = (x_prime * basis.recip_lo_col).sum(axis=0)
    # v' = floor((T + 2^88) / 2^89); the carry propagation below is exact
    # because the discarded low 30 bits can never push the sum across a
    # multiple of 2^89 (see DESIGN.md / tests for the proof obligation).
    half = 1 << (RECIP_FRACTION_BITS - 1 - 30)  # 2^88 expressed in 2^30 units
    carry = s_lo >> 30
    return (s_hi + half + carry) >> (RECIP_FRACTION_BITS - 30)


def lift_hps(context: LiftContext, residues: np.ndarray,
             out: np.ndarray | None = None) -> np.ndarray:
    """HPS base extension (paper Eq. 2 / Fig. 6), fully vectorised.

    Returns the residues modulo ``context.target_primes`` of the centered
    representative of the input. The per-target-prime Block 2 loop is
    one limb-split float64 matrix product (exact — see
    :func:`_lift_block2_gemm`); :func:`~repro.nttmath.batch.per_row_mode`
    reinstates the pre-batching loop so benchmarks can price the old
    hot path.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    # Block 1: x'_i = x_i * q~_i mod q_i.
    x_prime = (matrix * basis.q_tilde_col) % basis.primes_col
    if batch._PER_ROW_MODE or not context.gemm_safe:
        # Block 3 (independent of block 2): quotient estimate.
        v = hps_quotient(basis, x_prime)
        result = _lift_block2_loop(context, x_prime, v)
        if out is not None:
            out[...] = result
            return out
        return result
    return _lift_block2_gemm(context, matrix, x_prime, out)


def _lift_block2_loop(context: LiftContext, x_prime: np.ndarray,
                      v: np.ndarray) -> np.ndarray:
    """Pre-batching Block 2: one Python iteration per target prime.

    Kept as the reference implementation (and the baseline the
    throughput benchmark measures inside ``per_row_mode``): products
    are reduced term-by-term before summation so any basis size is
    safe, at the cost of ``k_target`` numpy round trips.
    """
    n = x_prime.shape[1]
    out = np.empty((len(context.target_primes), n), dtype=np.int64)
    for j, t_j in enumerate(context.target_primes):
        star_row = context.star_table[j][:, None]
        partial = (x_prime * star_row) % t_j
        sop = partial.sum(axis=0) % t_j
        # Blocks 4 and 5: subtract v * (q mod t_j).
        correction = (v * int(context.q_mod_target[j])) % t_j
        out[j] = (sop - correction) % t_j
    return out


def _lift_block2_gemm(context: LiftContext, matrix: np.ndarray,
                      x_prime: np.ndarray,
                      out: np.ndarray | None = None) -> np.ndarray:
    """Blocks 2-4 as one exact float64 matrix product over all targets.

    ``x_prime`` splits into 15-bit limbs and the star table is stored
    as ``[star * 2^15 mod t_j | star]``, so every BLAS partial sum is
    below ``2 * k_source * 2^45 < 2^53`` and therefore exact. The same
    dgemm also emits the four 15-bit-limb accumulations of the HPS
    quotient's fixed-point reciprocals (Fig. 6 Block 3), which
    :func:`_quotient_from_limbs` reassembles into exactly the
    :func:`hps_quotient` value. The quotient correction joins in float
    (|v| < k_source, so the product is tiny) and a single rint-based
    reduction lands every channel in canonical [0, t_j) — no integer
    division anywhere.

    Target channels whose prime is a source prime (the leading q rows
    of Lift q->Q) are copied straight from the input: every lifted
    representative is congruent to x modulo each source prime, so the
    output rows equal the input rows exactly.
    """
    n = x_prime.shape[1]
    skip = context.source_prefix
    if out is None:
        out = np.empty((len(context.target_primes), n), dtype=np.int64)
    if skip:
        out[:skip] = matrix
    _lift_tail_gemm(context, x_prime, out[skip:])
    return out


def _lift_tail_gemm(context: LiftContext, x_prime: np.ndarray,
                    out_tail: np.ndarray) -> np.ndarray:
    """The Fig. 6 Blocks 2-5 gemm for the *non-prefix* target channels.

    Separated from :func:`_lift_block2_gemm` so the evaluation-domain
    entry point (:func:`lift_hps_ntt`) can run exactly this arithmetic
    — the only part of the lift that genuinely needs coefficient
    values — while the prefix channels stay resident in the NTT domain.
    """
    k_s = x_prime.shape[0]
    skip = context.source_prefix
    star_cat, t_col_f, inv_t_col, q_mod_f = context.gemm_tables()
    limbs = np.empty((2 * k_s, x_prime.shape[1]), dtype=np.float64)
    np.right_shift(x_prime, 15, out=limbs[:k_s], casting="unsafe")
    np.bitwise_and(x_prime, (1 << 15) - 1, out=limbs[k_s:],
                   casting="unsafe")
    g = star_cat @ limbs
    total = g[:-4]
    v = _quotient_from_limbs(g[-4:])
    # Blocks 4 and 5: subtract v * (q mod t_j) (exact: both factors are
    # far below 2^26.5, the product far below 2^53).
    total -= v.astype(np.float64)[None, :] * q_mod_f
    # Exact reduction: quotients are below 2^23, so rint(total / t) is
    # off by at most one and the remainder lands in (-t, t).
    q = np.rint(total * inv_t_col)
    total -= q * t_col_f
    total += t_col_f
    np.copyto(out_tail, total, casting="unsafe")
    reduced = out_tail - context.target_col[skip:]
    np.minimum(out_tail.view(np.uint64), reduced.view(np.uint64),
               out=out_tail.view(np.uint64))
    return out_tail


def lift_hps_ntt(context: LiftContext, ntt_rows: np.ndarray,
                 lazy: bool = True) -> np.ndarray:
    """Evaluation-domain HPS base extension: NTT rows in, NTT rows out.

    ``ntt_rows`` is a ``(k_s, n)`` matrix (or ``(j, k_s, n)`` stack) of
    *NTT-domain* residues over the source basis; the result holds the
    NTT-domain residues of the lifted representative over every target
    prime. Two facts make this resident:

    * the HPS quotient estimate is the only part of Fig. 6 that needs
      coefficient values, and its Block-1 input ``x'_i = x_i q~_i mod
      q_i`` comes out of ONE stacked inverse transform with the
      ``q~_i`` constants folded into the inverse gemm plan's twiddle
      tables (:func:`~repro.nttmath.batch.intt_rows_scaled`) — no
      per-limb round trip ever materialises the raw coefficients;
    * the lifted representative is congruent to x modulo every source
      prime, so when the target basis starts with the source primes
      (Lift q->Q always does) the resident input rows *are* the
      target's leading channels — the row-copy fast path stays in the
      evaluation domain, untouched.

    Only the gemm tail (the genuinely new target channels) is
    forward-transformed, ``lazy`` controlling its output bound the way
    :meth:`BasisTransformer.forward` does; the prefix rows pass through
    with the input's (canonical) bound. Falls back to the coefficient
    lift + full forward when the batched engine cannot serve either
    basis — exact, but paying the round trip this entry exists to
    avoid.
    """
    basis = context.source
    arr = np.asarray(ntt_rows, dtype=np.int64)
    stacked = arr.ndim == 3
    stack = arr if stacked else arr[None]
    if stack.shape[1] != basis.size:
        raise ParameterError(
            f"expected ({basis.size} x n) NTT rows over the source "
            f"basis, got shape {arr.shape}"
        )
    j, k_s, n = stack.shape
    skip = context.source_prefix
    tail_primes = tuple(context.target_primes[skip:])
    fast = (skip == k_s and context.gemm_safe
            and not batch._PER_ROW_MODE
            and batch.batched_engine_ok(basis.primes, n)
            and batch.batched_engine_ok(tail_primes, n))
    if not fast:
        coeff = batch.intt_rows(basis.primes, stack)
        lifted = np.stack([lift_hps(context, m) for m in coeff])
        full = batch.ntt_rows(tuple(context.target_primes), lifted)
        return full if stacked else full[0]
    x_prime = batch.intt_rows_scaled(basis.primes, stack,
                                     basis.q_tilde)
    tails = np.empty((j, len(tail_primes), n), dtype=np.int64)
    for idx in range(j):
        _lift_tail_gemm(context, x_prime[idx], tails[idx])
    out = np.empty((j, len(context.target_primes), n), dtype=np.int64)
    out[:, :skip] = stack
    out[:, skip:] = batch.basis_transformer(tail_primes, n).forward(
        tails, lazy=lazy
    )
    return out if stacked else out[0]


def _quotient_from_limbs(limb_sums: np.ndarray) -> np.ndarray:
    """Reassemble :func:`hps_quotient` from 15-bit limb accumulations.

    Rows hold ``S_L = sum_i x'_i * ((recip_i >> 15L) & 0x7fff)`` as
    exact float64 integers (< 2^50). ``S0 + S1 * 2^15`` and
    ``S2 + S3 * 2^15`` are the low/high 30-bit-split sums of the
    89-fractional-bit products (both below 2^63), so the rounding
    matches the reference bit for bit.
    """
    s0 = limb_sums[0].astype(np.int64)
    s1 = limb_sums[1].astype(np.int64)
    s2 = limb_sums[2].astype(np.int64)
    s3 = limb_sums[3].astype(np.int64)
    s_lo = s0 + (s1 << 15)
    s_hi = s2 + (s3 << 15)
    half = 1 << (RECIP_FRACTION_BITS - 1 - 30)
    return (s_hi + half + (s_lo >> 30)) >> (RECIP_FRACTION_BITS - 30)


def lift_hps_reference(context: LiftContext,
                       residues: np.ndarray) -> np.ndarray:
    """Big-integer re-evaluation of the HPS formula (for testing).

    Computes exactly the same quantity as :func:`lift_hps` but with
    unbounded Python integers, proving the limb-split arithmetic exact.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    n = matrix.shape[1]
    out = np.empty((len(context.target_primes), n), dtype=np.int64)
    half = 1 << (RECIP_FRACTION_BITS - 1)
    for col in range(n):
        x_prime = [
            int(matrix[i, col]) * basis.q_tilde[i] % basis.primes[i]
            for i in range(basis.size)
        ]
        total = sum(
            xp * basis.recip[i] for i, xp in enumerate(x_prime)
        )
        v = (total + half) >> RECIP_FRACTION_BITS
        value = sum(
            xp * basis.q_star[i] for i, xp in enumerate(x_prime)
        ) - v * basis.modulus
        for j, t_j in enumerate(context.target_primes):
            out[j, col] = value % t_j
    return out


def lift_traditional(context: LiftContext,
                     residues: np.ndarray) -> np.ndarray:
    """Exact CRT lift (paper Eq. 1 / Fig. 5).

    Reconstructs every coefficient with multi-precision arithmetic (the
    costly part the Fig. 5 architecture pays for with its long-integer
    division block) and reduces modulo the target primes.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    coeffs = basis.reconstruct_coeffs(matrix)
    return np.array(
        [[c % t for c in coeffs] for t in context.target_primes],
        dtype=np.int64,
    )
