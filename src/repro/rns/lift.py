"""Lift q->Q: base extension of residue polynomials (paper Sec. IV-C).

Two algorithms, as in the paper:

* :func:`lift_traditional` — exact CRT reconstruction followed by
  reduction modulo the new primes (Eq. 1, the Fig. 5 architecture). It
  involves multi-precision arithmetic, which is what makes the
  corresponding hardware slow.
* :func:`lift_hps` — the Halevi–Polyakov–Shoup approximate method (Eq. 2,
  the Fig. 6 architecture): only single-word arithmetic, with the CRT
  quotient ``v`` estimated from fixed-point reciprocals. The estimate is
  exact except when the value sits within ~2^-59 of a rounding boundary,
  in which case the lifted representative shifts by one multiple of q —
  harmless for FV (it adds a q-multiple absorbed by the scale step).

Both functions map a residue matrix over the source basis to the residue
matrix over ``target_primes`` of (a representative of) the same integers.
The HPS lift produces the *centered* representative in (-q/2, q/2]; the
traditional lift produces the standard representative in [0, q). Tests
check both against exact big-integer CRT.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .basis import RECIP_FRACTION_BITS, LiftContext, RnsBasis

_MASK30 = (1 << 30) - 1


def _check_input(basis: RnsBasis, residues: np.ndarray) -> np.ndarray:
    matrix = np.asarray(residues, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != basis.size:
        raise ParameterError(
            f"expected a ({basis.size} x n) residue matrix, got shape "
            f"{matrix.shape}"
        )
    return matrix


def hps_quotient(basis: RnsBasis, x_prime: np.ndarray) -> np.ndarray:
    """Exact fixed-point evaluation of v' = round(sum_i x'_i / q_i).

    This reproduces Fig. 6 Block 3 bit-for-bit: each 1/q_i is the stored
    89-fractional-bit reciprocal (60 significant bits); the products are
    accumulated in split 30-bit limbs so that int64 arithmetic never
    overflows, and the final rounding is exact.
    """
    # Split accumulation: T = sum x'_i * recip_i = S_hi * 2^30 + S_lo.
    s_hi = (x_prime * basis.recip_hi_col).sum(axis=0)
    s_lo = (x_prime * basis.recip_lo_col).sum(axis=0)
    # v' = floor((T + 2^88) / 2^89); the carry propagation below is exact
    # because the discarded low 30 bits can never push the sum across a
    # multiple of 2^89 (see DESIGN.md / tests for the proof obligation).
    half = 1 << (RECIP_FRACTION_BITS - 1 - 30)  # 2^88 expressed in 2^30 units
    carry = s_lo >> 30
    return (s_hi + half + carry) >> (RECIP_FRACTION_BITS - 30)


def lift_hps(context: LiftContext, residues: np.ndarray) -> np.ndarray:
    """HPS base extension (paper Eq. 2 / Fig. 6), fully vectorised.

    Returns the residues modulo ``context.target_primes`` of the centered
    representative of the input.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    # Block 1: x'_i = x_i * q~_i mod q_i.
    x_prime = (matrix * basis.q_tilde_col) % basis.primes_col
    # Block 3 (independent of block 2): quotient estimate.
    v = hps_quotient(basis, x_prime)
    # Block 2: a'_j = sum_i x'_i * (q*_i mod t_j) mod t_j. Products are
    # reduced term-by-term before summation so any basis size is safe.
    n = matrix.shape[1]
    out = np.empty((len(context.target_primes), n), dtype=np.int64)
    for j, t_j in enumerate(context.target_primes):
        star_row = context.star_table[j][:, None]
        partial = (x_prime * star_row) % t_j
        sop = partial.sum(axis=0) % t_j
        # Blocks 4 and 5: subtract v * (q mod t_j).
        correction = (v * int(context.q_mod_target[j])) % t_j
        out[j] = (sop - correction) % t_j
    return out


def lift_hps_reference(context: LiftContext,
                       residues: np.ndarray) -> np.ndarray:
    """Big-integer re-evaluation of the HPS formula (for testing).

    Computes exactly the same quantity as :func:`lift_hps` but with
    unbounded Python integers, proving the limb-split arithmetic exact.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    n = matrix.shape[1]
    out = np.empty((len(context.target_primes), n), dtype=np.int64)
    half = 1 << (RECIP_FRACTION_BITS - 1)
    for col in range(n):
        x_prime = [
            int(matrix[i, col]) * basis.q_tilde[i] % basis.primes[i]
            for i in range(basis.size)
        ]
        total = sum(
            xp * basis.recip[i] for i, xp in enumerate(x_prime)
        )
        v = (total + half) >> RECIP_FRACTION_BITS
        value = sum(
            xp * basis.q_star[i] for i, xp in enumerate(x_prime)
        ) - v * basis.modulus
        for j, t_j in enumerate(context.target_primes):
            out[j, col] = value % t_j
    return out


def lift_traditional(context: LiftContext,
                     residues: np.ndarray) -> np.ndarray:
    """Exact CRT lift (paper Eq. 1 / Fig. 5).

    Reconstructs every coefficient with multi-precision arithmetic (the
    costly part the Fig. 5 architecture pays for with its long-integer
    division block) and reduces modulo the target primes.
    """
    basis = context.source
    matrix = _check_input(basis, residues)
    coeffs = basis.reconstruct_coeffs(matrix)
    return np.array(
        [[c % t for c in coeffs] for t in context.target_primes],
        dtype=np.int64,
    )
