"""Scale Q->q: division-and-rounding of residue polynomials (Sec. IV-D).

Given the residues over Q = q*p of a (centered) coefficient x, compute the
residues over q of ``round(t * x / q)``.

* :func:`scale_traditional` — exact multi-precision route (Fig. 8):
  reconstruct x, divide, round, reduce.
* :func:`scale_hps` — the HPS route (Fig. 9): compute the result in the
  p-basis with single-word arithmetic using the tabulated integer and
  60-fractional-bit parts of ``t * p / q_i``, then base-extend from the
  p-basis back to the q-basis with the Fig. 6 lift datapath.

Why the p-basis step is exact modulo each p-prime: expanding
``t*x/q = sum_k [x_k Q~_k]_{q_k} (t Q*_k / q) - v t p`` shows every term
except channel k's own survives reduction mod p_j because p divides it.
The scaled value satisfies |round(t*x/q)| <= t*n*q/4 < p/2 for the paper's
parameters, so the centered base extension recovers it exactly — this is
the reason the p-basis has seven primes where q has six.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath import batch
from ..utils import round_half_away
from .basis import SCALE_FRACTION_BITS, RnsBasis, ScaleContext
from .lift import lift_hps

_MASK30 = (1 << 30) - 1


def _split_rows(context: ScaleContext, residues: np.ndarray) -> tuple:
    matrix = np.asarray(residues, dtype=np.int64)
    expected = context.q_basis.size + context.p_basis.size
    if matrix.ndim != 2 or matrix.shape[0] != expected:
        raise ParameterError(
            f"expected a ({expected} x n) residue matrix over Q, got shape "
            f"{matrix.shape}"
        )
    return matrix[: context.q_basis.size], matrix[context.q_basis.size:]


def scale_hps(context: ScaleContext, residues: np.ndarray,
              prescaled: bool = False) -> np.ndarray:
    """HPS scale-and-round (Fig. 9), fully vectorised and bit-exact.

    ``residues`` rows are ordered q-basis first then p-basis, matching
    how the coprocessor stores an R_Q polynomial across its RPAUs. The
    per-output-channel integer sum of products is one limb-split
    float64 matrix product (exact, same argument as the lift's Block 2);
    :func:`~repro.nttmath.batch.per_row_mode` reinstates the
    pre-batching loop for benchmarking the old hot path.
    """
    q_rows, p_rows = _split_rows(context, residues)
    # Fig. 9 Block 1/2 prep: x'_i = x_i * Q~_i mod q_i for the q-basis
    # part. ``prescaled=True`` means the caller already folded the Q~_i
    # factors into its inverse transforms (see Evaluator.multiply_raw),
    # so the rows arrive as x' directly.
    x_prime_q = (q_rows if prescaled
                 else (q_rows * context.x_prime_mult_q)
                 % context.q_basis.primes_col)
    # Fractional accumulation sop_R = round(sum_i x'_i * R_i) via split
    # 30-bit limbs (exact; see rns.lift.hps_quotient for the argument).
    s_hi = (x_prime_q * context.frac_hi_col).sum(axis=0)
    s_lo = (x_prime_q * context.frac_lo_col).sum(axis=0)
    half = 1 << (SCALE_FRACTION_BITS - 1 - 30)
    rounded = (s_hi + half + (s_lo >> 30)) >> (SCALE_FRACTION_BITS - 30)
    y_p = (_scale_sop_loop(context, x_prime_q, p_rows, rounded)
           if batch._PER_ROW_MODE
           else _scale_sop_gemm(context, x_prime_q, p_rows, rounded,
                                prescaled))
    # Fig. 9 Block 5: base-extend the p-basis result back to the q-basis
    # re-using the lift datapath, exactly as the hardware does.
    return lift_hps(context.final_lift, y_p)


def scale_hps_ntt(context: ScaleContext,
                  ntt_residues: np.ndarray) -> np.ndarray:
    """Evaluation-domain Scale Q->q: NTT rows over Q in, coefficient
    q-basis rows out.

    ``ntt_residues`` is a ``(k_Q, n)`` NTT-domain matrix over the full
    basis (q rows first, then p rows) or a ``(j, k_Q, n)`` stack — the
    tensor step's point-wise products live here. The Fig. 9 datapath
    needs coefficient values, but the Block-1/2 ``Q~_i`` multiplies
    ride along for free inside ONE stacked inverse transform whose
    gemm plan folds the constants into its twiddle tables
    (:func:`~repro.nttmath.batch.intt_rows_scaled`), so the rows reach
    :func:`scale_hps` already prescaled — the single INTT the HPS
    quotient estimate genuinely requires, and the only
    coefficient-domain excursion of a fully resident multiply. A
    stack is scaled in one :func:`scale_hps` call by treating the
    polynomials as column blocks of a single wide matrix (exact: every
    channel's arithmetic is element-wise in the column dimension).
    """
    arr = np.asarray(ntt_residues, dtype=np.int64)
    stacked = arr.ndim == 3
    stack = arr if stacked else arr[None]
    expected = context.q_basis.size + context.p_basis.size
    if stack.shape[1] != expected:
        raise ParameterError(
            f"expected ({expected} x n) NTT rows over Q, got shape "
            f"{arr.shape}"
        )
    j, k, n = stack.shape
    full_primes = context.q_basis.primes + context.p_basis.primes
    prescaled = batch.intt_rows_scaled(full_primes, stack,
                                       context.full_q_tilde)
    wide = prescaled.transpose(1, 0, 2).reshape(k, j * n)
    scaled = scale_hps(context, wide, prescaled=True)
    out = scaled.reshape(context.q_basis.size, j, n).transpose(1, 0, 2)
    return out if stacked else out[0]


def _scale_sop_loop(context: ScaleContext, x_prime_q: np.ndarray,
                    p_rows: np.ndarray,
                    rounded: np.ndarray) -> np.ndarray:
    """Pre-batching Blocks 2-4: one Python iteration per p-basis prime.

    Kept as the reference implementation and the ``per_row_mode``
    benchmark baseline.
    """
    k_p, n = p_rows.shape
    y_p = np.empty((k_p, n), dtype=np.int64)
    for j in range(k_p):
        p_j = context.p_basis.primes[j]
        int_row = context.int_table[j][:, None]
        sop_i = ((x_prime_q * int_row) % p_j).sum(axis=0) % p_j
        # Fig. 9 Block 3: a'_j = [x_j * Q~_j]_{p_j} * (t * p/p_j mod p_j).
        x_prime_j = (p_rows[j] * int(context.x_prime_mult_p[j, 0])) % p_j
        own = (x_prime_j * int(context.p_term[j, 0])) % p_j
        # Fig. 9 Block 4: combine integer SoP, rounded fraction, own term.
        y_p[j] = (sop_i + rounded + own) % p_j
    return y_p


def _scale_sop_gemm(context: ScaleContext, x_prime_q: np.ndarray,
                    p_rows: np.ndarray, rounded: np.ndarray,
                    prescaled: bool = False) -> np.ndarray:
    """Blocks 2-4 as one exact float64 matrix product over all channels.

    The limb matrix stacks the 15-bit splits of x' (q basis) and of the
    raw p-basis rows; the weight matrix pairs them with
    ``[I * 2^15 | I]`` and a block-diagonal own-term tail (see
    :meth:`~repro.rns.basis.ScaleContext.gemm_tables`), so Fig. 9's
    integer sum of products *and* own-channel term come out of one
    dgemm. Every partial sum stays below 2^53, the rounded-fraction
    term joins in float, and one rint-based reduction lands each
    channel in canonical [0, p_j).

    The own-term fold is exact modulo p_j even though the p rows are
    unreduced: the gemm computes ``c_j * x_j`` with ``c_j`` already
    reduced, and the final reduction takes the result mod p_j.
    """
    k_q = x_prime_q.shape[0]
    k_p = p_rows.shape[0]
    n = x_prime_q.shape[1]
    int_cat, p_col_f, inv_p_col = (context.gemm_tables_prescaled()
                                   if prescaled
                                   else context.gemm_tables())
    p_col = context.p_basis.primes_col
    limbs = np.empty((2 * k_q + 2 * k_p, n), dtype=np.float64)
    np.right_shift(x_prime_q, 15, out=limbs[:k_q], casting="unsafe")
    np.bitwise_and(x_prime_q, (1 << 15) - 1,
                   out=limbs[k_q: 2 * k_q], casting="unsafe")
    np.right_shift(p_rows, 15, out=limbs[2 * k_q: 2 * k_q + k_p],
                   casting="unsafe")
    np.bitwise_and(p_rows, (1 << 15) - 1, out=limbs[2 * k_q + k_p:],
                   casting="unsafe")
    total = int_cat @ limbs
    # Fig. 9 Block 4: add the rounded fraction in float (all addends
    # below 2^52, exact), then reduce.
    total += rounded.astype(np.float64)[None, :]
    q = np.rint(total * inv_p_col)
    total -= q * p_col_f
    total += p_col_f
    y_p = total.astype(np.int64)
    reduced = y_p - p_col
    np.minimum(y_p.view(np.uint64), reduced.view(np.uint64),
               out=y_p.view(np.uint64))
    return y_p


def scale_traditional(context: ScaleContext,
                      residues: np.ndarray) -> np.ndarray:
    """Exact multi-precision scale-and-round (Fig. 8).

    Reconstructs the centered value over Q, computes round(t*x/q), and
    reduces modulo the q-basis primes. This is the functional model of the
    slower coprocessor variant (Sec. VI-C).
    """
    matrix = np.asarray(residues, dtype=np.int64)
    q_rows, p_rows = _split_rows(context, residues)
    full_primes = context.q_basis.primes + context.p_basis.primes
    full_basis = RnsBasis(full_primes)
    coeffs = full_basis.reconstruct_coeffs_centered(matrix)
    q = context.q_basis.modulus
    scaled = [round_half_away(context.t * c, q) for c in coeffs]
    return np.array(
        [[v % qi for v in scaled] for qi in context.q_basis.primes],
        dtype=np.int64,
    )
