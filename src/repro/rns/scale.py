"""Scale Q->q: division-and-rounding of residue polynomials (Sec. IV-D).

Given the residues over Q = q*p of a (centered) coefficient x, compute the
residues over q of ``round(t * x / q)``.

* :func:`scale_traditional` — exact multi-precision route (Fig. 8):
  reconstruct x, divide, round, reduce.
* :func:`scale_hps` — the HPS route (Fig. 9): compute the result in the
  p-basis with single-word arithmetic using the tabulated integer and
  60-fractional-bit parts of ``t * p / q_i``, then base-extend from the
  p-basis back to the q-basis with the Fig. 6 lift datapath.

Why the p-basis step is exact modulo each p-prime: expanding
``t*x/q = sum_k [x_k Q~_k]_{q_k} (t Q*_k / q) - v t p`` shows every term
except channel k's own survives reduction mod p_j because p divides it.
The scaled value satisfies |round(t*x/q)| <= t*n*q/4 < p/2 for the paper's
parameters, so the centered base extension recovers it exactly — this is
the reason the p-basis has seven primes where q has six.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..utils import round_half_away
from .basis import SCALE_FRACTION_BITS, RnsBasis, ScaleContext
from .lift import lift_hps

_MASK30 = (1 << 30) - 1


def _split_rows(context: ScaleContext, residues: np.ndarray) -> tuple:
    matrix = np.asarray(residues, dtype=np.int64)
    expected = context.q_basis.size + context.p_basis.size
    if matrix.ndim != 2 or matrix.shape[0] != expected:
        raise ParameterError(
            f"expected a ({expected} x n) residue matrix over Q, got shape "
            f"{matrix.shape}"
        )
    return matrix[: context.q_basis.size], matrix[context.q_basis.size:]


def scale_hps(context: ScaleContext, residues: np.ndarray) -> np.ndarray:
    """HPS scale-and-round (Fig. 9), fully vectorised and bit-exact.

    ``residues`` rows are ordered q-basis first then p-basis, matching how
    the coprocessor stores an R_Q polynomial across its RPAUs.
    """
    q_rows, p_rows = _split_rows(context, residues)
    # Fig. 9 Block 1/2 prep: x'_i = x_i * Q~_i mod q_i for the q-basis part.
    x_prime_q = (q_rows * context.x_prime_mult_q) % context.q_basis.primes_col
    # Fractional accumulation sop_R = round(sum_i x'_i * R_i) via split
    # 30-bit limbs (exact; see rns.lift.hps_quotient for the argument).
    s_hi = (x_prime_q * context.frac_hi_col).sum(axis=0)
    s_lo = (x_prime_q * context.frac_lo_col).sum(axis=0)
    half = 1 << (SCALE_FRACTION_BITS - 1 - 30)
    rounded = (s_hi + half + (s_lo >> 30)) >> (SCALE_FRACTION_BITS - 30)
    # Per-output-channel integer accumulation and own-channel term.
    k_p, n = p_rows.shape
    y_p = np.empty((k_p, n), dtype=np.int64)
    for j in range(k_p):
        p_j = context.p_basis.primes[j]
        int_row = context.int_table[j][:, None]
        sop_i = ((x_prime_q * int_row) % p_j).sum(axis=0) % p_j
        # Fig. 9 Block 3: a'_j = [x_j * Q~_j]_{p_j} * (t * p/p_j mod p_j).
        x_prime_j = (p_rows[j] * int(context.x_prime_mult_p[j, 0])) % p_j
        own = (x_prime_j * int(context.p_term[j, 0])) % p_j
        # Fig. 9 Block 4: combine integer SoP, rounded fraction, own term.
        y_p[j] = (sop_i + rounded + own) % p_j
    # Fig. 9 Block 5: base-extend the p-basis result back to the q-basis
    # re-using the lift datapath, exactly as the hardware does.
    return lift_hps(context.final_lift, y_p)


def scale_traditional(context: ScaleContext,
                      residues: np.ndarray) -> np.ndarray:
    """Exact multi-precision scale-and-round (Fig. 8).

    Reconstructs the centered value over Q, computes round(t*x/q), and
    reduces modulo the q-basis primes. This is the functional model of the
    slower coprocessor variant (Sec. VI-C).
    """
    matrix = np.asarray(residues, dtype=np.int64)
    q_rows, p_rows = _split_rows(context, residues)
    full_primes = context.q_basis.primes + context.p_basis.primes
    full_basis = RnsBasis(full_primes)
    coeffs = full_basis.reconstruct_coeffs_centered(matrix)
    q = context.q_basis.modulus
    scaled = [round_half_away(context.t * c, q) for c in coeffs]
    return np.array(
        [[v % qi for v in scaled] for qi in context.q_basis.primes],
        dtype=np.int64,
    )
