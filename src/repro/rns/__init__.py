"""Residue Number System arithmetic (paper Sections III-B, IV-C, IV-D).

The modules here are pure residue-vector mathematics, independent of both
the FV scheme and the hardware model:

* :mod:`~repro.rns.basis` — RNS bases with every precomputed constant the
  paper stores in on-chip ROMs (q*_i, q~_i, fixed-point reciprocals, the
  integer/fractional splits of t*p/q_i).
* :mod:`~repro.rns.lift` — Lift q->Q: traditional CRT (paper Eq. 1,
  Fig. 5) and the HPS approximate-CRT method (Eq. 2, Fig. 6).
* :mod:`~repro.rns.scale` — Scale Q->q: multi-precision (Fig. 8) and HPS
  (Fig. 9) variants.
* :mod:`~repro.rns.decompose` — WordDecomp: signed base-w digits and the
  RNS decomposition used for relinearisation.
"""

from .basis import LiftContext, RnsBasis, ScaleContext
from .decompose import (
    recompose_signed_digits,
    rns_decompose,
    signed_digit_decompose,
)
from .lift import lift_hps, lift_traditional
from .scale import scale_hps, scale_traditional

__all__ = [
    "RnsBasis",
    "LiftContext",
    "ScaleContext",
    "lift_hps",
    "lift_traditional",
    "scale_hps",
    "scale_traditional",
    "signed_digit_decompose",
    "recompose_signed_digits",
    "rns_decompose",
]
