"""Unified observability: metrics registry, request tracing, timelines.

The serving stack grew signals in four unrelated shapes — the global
transform counters in :mod:`repro.nttmath.batch`, per-runtime
:class:`~repro.serve.telemetry.Telemetry` collectors, the cluster
merge in :mod:`repro.cluster.report`, and backend-private cache
counters in :mod:`repro.api.resident`. This package is the one
substrate they all report through:

* :mod:`~repro.obs.registry` — a process-wide **metrics registry**
  (counters, gauges, histograms with labels) with snapshot/diff/reset
  semantics, a Prometheus-style text exposition, and
  :func:`scoped_metrics`, the context manager that gives each test or
  concurrent backend its own counter plane instead of a shared
  mutable global;
* :mod:`~repro.obs.trace` — **request tracing**: a :class:`Span` tree
  propagated from ``Session`` / ``HEProgram`` execution through both
  backends down to individual engine transform calls, reduced by
  :class:`TraceReport` into per-op rollups and a critical path over
  the program DAG;
* :mod:`~repro.obs.timeline` — **timeline export**: spans and
  simulated runtime/cluster reports serialised to Chrome trace-event
  JSON (loadable in Perfetto / ``chrome://tracing``) plus a validator
  the tests gate exports on.

Everything here is dependency-free (stdlib only) so the hot paths in
:mod:`repro.nttmath` can import it without cycles.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    current_registry,
    diff_snapshots,
    gauge,
    histogram,
    render_prometheus,
    scoped_metrics,
)
from .timeline import (
    cluster_timeline,
    runtime_timeline,
    spans_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .trace import (
    Span,
    TraceReport,
    Tracer,
    active_tracer,
    maybe_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "current_registry",
    "scoped_metrics",
    "diff_snapshots",
    "render_prometheus",
    "Span",
    "Tracer",
    "TraceReport",
    "active_tracer",
    "maybe_span",
    "spans_to_chrome",
    "runtime_timeline",
    "cluster_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
]
