"""Request tracing: span trees over both execution paths.

A :class:`Span` covers one timed region — a whole ``HEProgram`` run, a
single lowered op, a restore/boundary phase, one engine transform call,
or one simulated runtime job. Spans nest into a tree, carry a
``clock`` tag ("wall" for the functional path's measured seconds,
"sim" for the priced path's simulated seconds), and hold free-form
``attrs`` (op kind, node id, transform-count diffs, bytes moved).

A :class:`Tracer` builds the tree. The functional backend opens spans
with the :meth:`Tracer.span` context manager (wall clock, measured
via ``perf_counter``); the simulated backend records already-priced
intervals with :meth:`Tracer.add`. :meth:`Tracer.activate` publishes
the tracer through a context variable so deep layers — the gemm NTT
engine in :mod:`repro.nttmath.batch` — can attach transform spans via
:func:`maybe_span` without threading a tracer argument through every
call; when no tracer is active :func:`maybe_span` is a no-op, keeping
the untraced hot path free of bookkeeping.

:class:`TraceReport` reduces a finished tree into the queryable
shapes the ISSUE asks for: per-op-kind rollups, exact transform-count
totals (summed from the per-op registry diffs), and the critical path
through the program DAG.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "TraceReport",
    "active_tracer",
    "maybe_span",
]


@dataclass
class Span:
    """One timed region of a request.

    ``kind`` tags the layer: "program" (a whole run), "op" (one
    lowered HEProgram op), "phase" (restore / output-boundary work),
    "transform" (one engine NTT batch), "job" (a simulated runtime
    job), "lane" bookkeeping, etc. ``clock`` says which timebase
    ``start``/``end`` live on — "wall" seconds from ``perf_counter``
    or "sim" seconds from the discrete-event clock; the two are never
    mixed inside one subtree reduction.
    """

    name: str
    kind: str = "span"
    clock: str = "wall"
    start: float = 0.0
    end: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list[Span] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def walk(self) -> Iterator[Span]:
        """This span, then every descendant, depth-first preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly nested form (used by trace file exports)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "clock": self.clock,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


_ACTIVE: ContextVar[Tracer | None] = ContextVar(
    "repro_active_tracer", default=None
)


def active_tracer() -> Tracer | None:
    """The tracer published by the innermost :meth:`Tracer.activate`."""
    return _ACTIVE.get()


class Tracer:
    """Builds one span tree for one request / program run."""

    def __init__(self, name: str = "trace", kind: str = "program",
                 clock: str = "wall") -> None:
        self.root = Span(name=name, kind=kind, clock=clock,
                         start=time.perf_counter())
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def finish(self) -> Span:
        """Close the root span (wall clock) and return it."""
        if self.root.end == 0.0:
            self.root.end = time.perf_counter()
        return self.root

    @contextmanager
    def span(self, name: str, kind: str = "phase",
             **attrs: Any) -> Iterator[Span]:
        """Open a wall-clock child span for the duration of the block.

        The yielded span is live — callers set ``attrs`` on it while
        the block runs (e.g. the transform-count diff measured across
        the op).
        """
        child = Span(name=name, kind=kind, attrs=dict(attrs),
                     start=time.perf_counter())
        self.current.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.end = time.perf_counter()
            self._stack.pop()

    def add(self, name: str, kind: str, start: float, end: float,
            clock: str = "sim", parent: Span | None = None,
            **attrs: Any) -> Span:
        """Record an already-timed interval (simulated clock path)."""
        child = Span(name=name, kind=kind, clock=clock, start=start,
                     end=end, attrs=dict(attrs))
        (parent if parent is not None else self.current).children.append(child)
        return child

    @contextmanager
    def activate(self) -> Iterator[Tracer]:
        """Publish this tracer to :func:`active_tracer` for the block."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def report(self) -> TraceReport:
        return TraceReport(self.finish())


def maybe_span(name: str, kind: str = "transform", **attrs: Any):
    """A span on the active tracer, or a free no-op when untraced.

    The engine hot paths call this unconditionally; the single
    context-variable read is the entire cost when tracing is off.
    """
    tracer = active_tracer()
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, kind=kind, **attrs)


@dataclass
class TraceReport:
    """Structured reductions over one finished span tree."""

    root: Span

    def spans(self, kind: str | None = None) -> list[Span]:
        return [s for s in self.root.walk()
                if kind is None or s.kind == kind]

    @property
    def total_seconds(self) -> float:
        return self.root.duration

    def rollup(self) -> dict[str, dict[str, float]]:
        """Per-op-kind totals over the "op" spans.

        Keyed by the span's ``op`` attr (falling back to its name):
        count, total seconds, summed transform rows/calls, and bytes
        moved — the per-stage accounting the accelerator papers argue
        the story lives in.
        """
        out: dict[str, dict[str, float]] = {}
        for span in self.spans("op"):
            key = str(span.attrs.get("op", span.name))
            row = out.setdefault(key, {
                "count": 0.0,
                "seconds": 0.0,
                "transform_rows": 0.0,
                "transform_calls": 0.0,
                "bytes_moved": 0.0,
            })
            row["count"] += 1
            row["seconds"] += span.duration
            transforms = span.attrs.get("transforms", {})
            row["transform_rows"] += (transforms.get("forward_rows", 0)
                                      + transforms.get("inverse_rows", 0))
            row["transform_calls"] += (transforms.get("forward_calls", 0)
                                       + transforms.get("inverse_calls", 0)
                                       + transforms.get("fallback_calls", 0))
            row["bytes_moved"] += span.attrs.get("bytes_moved", 0)
        return out

    def transform_totals(self) -> dict[str, int]:
        """Summed per-op transform-count diffs across the whole run.

        Only "op" and "phase" spans contribute: their ``transforms``
        attrs are registry diffs measured *across* each region, so
        they already include the nested engine "transform" spans —
        summing those too would double count.
        """
        totals: dict[str, int] = {}
        for span in self.root.walk():
            if span.kind not in ("op", "phase"):
                continue
            for key, value in span.attrs.get("transforms", {}).items():
                totals[key] = totals.get(key, 0) + int(value)
        return {k: v for k, v in totals.items() if v}

    def critical_path(self) -> list[Span]:
        """Longest-duration dependency chain through the program DAG.

        "op" spans carry ``node`` (their HEProgram node id) and
        ``deps`` (ids of argument nodes). Ops execute in topological
        order, so one pass of longest-path DP over the recorded order
        suffices; nodes without a recorded span (program inputs) cost
        nothing. Returns the chain input-side first.
        """
        ops = [s for s in self.spans("op") if "node" in s.attrs]
        if not ops:
            return []
        cost: dict[int, float] = {}
        prev: dict[int, int | None] = {}
        span_of: dict[int, Span] = {}
        for span in ops:
            node = span.attrs["node"]
            span_of[node] = span
            best_dep, best_cost = None, 0.0
            for dep in span.attrs.get("deps", ()):  # inputs have no span
                if dep in cost and cost[dep] > best_cost:
                    best_dep, best_cost = dep, cost[dep]
            cost[node] = best_cost + span.duration
            prev[node] = best_dep
        tail = max(cost, key=cost.__getitem__)
        path: list[Span] = []
        at: int | None = tail
        while at is not None:
            path.append(span_of[at])
            at = prev[at]
        path.reverse()
        return path

    def critical_path_seconds(self) -> float:
        return sum(s.duration for s in self.critical_path())
