"""Timeline export: spans and simulated runs as Chrome trace events.

Everything here emits the Chrome trace-event JSON format (the
``traceEvents`` array of ``ph: "X"`` complete events), which loads
directly in Perfetto / ``chrome://tracing``:

* :func:`spans_to_chrome` — a functional-path :class:`~.trace.Span`
  tree (wall-clock, nested ops and engine transforms) as one process;
* :func:`runtime_timeline` — a simulated
  :class:`~repro.serve.engine.RuntimeReport`: one thread lane per
  coprocessor, one slice per job (batch-mates share their DMA train's
  interval), and a ``queue_depth`` counter track from the telemetry
  trace;
* :func:`cluster_timeline` — a multi-shard
  :class:`~repro.cluster.report.ClusterReport`: one *process* per
  shard so Perfetto groups each shard's lanes together.

:func:`validate_chrome_trace` is the schema gate the tests (and the
CLI before writing a file) run exports through: required keys per
event phase, non-negative timestamps and durations, and proper
nesting per (pid, tid) lane — slices may contain each other but never
partially overlap.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .trace import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..cluster.report import ClusterReport
    from ..serve.engine import RuntimeReport

__all__ = [
    "spans_to_chrome",
    "runtime_timeline",
    "cluster_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_US = 1e6  # trace-event timestamps are microseconds


def _meta(pid: int, name: str, tid: int | None = None,
          thread_name: str | None = None) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": name},
    }]
    if tid is not None:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": thread_name or f"lane {tid}"},
        })
    return events


def spans_to_chrome(root: Span, pid: int = 0, tid: int = 0,
                    process_name: str | None = None) -> list[dict[str, Any]]:
    """One span tree as nested complete events on a single lane.

    Timestamps are re-based to the root span's start so wall-clock
    (``perf_counter``) trees begin at t=0. Single-lane means the tree
    must be sequential — sibling spans may not overlap in time, which
    a :class:`~.trace.Tracer` guarantees by construction. Concurrent
    simulated runs (overlapping requests, parallel coprocessors) are
    exported with :func:`runtime_timeline` / :func:`cluster_timeline`
    instead, which spread jobs over per-coprocessor lanes.

    The one sanctioned source of concurrency in a functional trace is
    the parallel executor: tile spans carry a ``worker`` attribute and
    overlap each other across workers. Each distinct worker gets its
    own thread lane (named after the worker) so the main lane stays
    sequential and every worker lane is sequential by construction —
    a pool worker runs its tiles one at a time.
    """
    base = root.start
    events = _meta(pid, process_name or root.name, tid,
                   f"{root.clock} clock")
    worker_tids: dict[str, int] = {}
    for span in root.walk():
        lane = tid
        worker = span.attrs.get("worker")
        if worker is not None:
            label = str(worker)
            if label not in worker_tids:
                worker_tids[label] = tid + 1 + len(worker_tids)
                events.extend(_meta(pid, process_name or root.name,
                                    worker_tids[label], label)[1:])
            lane = worker_tids[label]
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.kind,
            "ts": max(0.0, (span.start - base) * _US),
            "dur": span.duration * _US,
            "pid": pid,
            "tid": lane,
            "args": _json_safe(span.attrs),
        })
    return events


def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    return json.loads(json.dumps(attrs, default=str))


def runtime_timeline(report: RuntimeReport | Any, pid: int = 0,
                     name: str = "runtime") -> list[dict[str, Any]]:
    """A simulated run as per-coprocessor lanes plus a queue counter.

    Jobs dispatched in one DMA train share a start/finish interval;
    they render stacked inside the same slice bounds, which is exactly
    the batching structure the timeline should show. Works on any
    report with ``results`` (so plain :class:`ServeReport` too);
    queue-depth counters appear only when telemetry is present.
    """
    lanes = sorted({r.coprocessor for r in report.results})
    events: list[dict[str, Any]] = _meta(pid, name)
    for lane in lanes:
        events.extend(_meta(pid, name, lane, f"coprocessor {lane}")[1:])
    for result in report.results:
        job = result.job
        events.append({
            "ph": "X",
            "name": f"{job.kind.name.lower()}#{job.index}",
            "cat": "job",
            "ts": result.start_seconds * _US,
            "dur": max(0.0, result.finish_seconds * _US
                       - result.start_seconds * _US),
            "pid": pid,
            "tid": result.coprocessor,
            "args": {
                "tenant": job.tenant,
                "kind": job.kind.name,
                "arrival_seconds": job.arrival_seconds,
                "latency_seconds": result.latency_seconds,
            },
        })
    telemetry = getattr(report, "telemetry", None)
    if telemetry is not None:
        for now, depth in telemetry.queue_depth_trace:
            events.append({
                "ph": "C",
                "name": "queue_depth",
                "ts": max(0.0, now * _US),
                "pid": pid,
                "tid": 0,
                "args": {"depth": depth},
            })
    return events


def cluster_timeline(report: ClusterReport) -> list[dict[str, Any]]:
    """A multi-shard run: one trace process per shard."""
    events: list[dict[str, Any]] = []
    for pid, (shard_name, shard_report) in enumerate(
            zip(report.shard_names, report.shard_reports, strict=True)):
        events.extend(runtime_timeline(shard_report, pid=pid,
                                       name=shard_name))
    return events


def validate_chrome_trace(events: list[dict[str, Any]] | dict[str, Any],
                          ) -> bool:
    """Check an export against the trace-event schema; raise on failure.

    Enforces what a viewer needs to render sanely: every event has a
    phase; complete events carry name/ts/dur/pid/tid with non-negative
    times; and within each (pid, tid) lane slices nest — an event
    either contains its successor or is disjoint from it, never a
    partial overlap.
    """
    if isinstance(events, dict):
        events = events.get("traceEvents", [])
    slices: dict[tuple[Any, Any], list[tuple[float, float]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"event {i}: not a trace event (missing 'ph')")
        ph = event["ph"]
        if ph == "M":
            if "name" not in event or "pid" not in event:
                raise ValueError(f"event {i}: metadata needs name and pid")
            continue
        for key in ("name", "ts", "pid"):
            if key not in event:
                raise ValueError(f"event {i} ({ph}): missing {key!r}")
        if event["ts"] < 0:
            raise ValueError(f"event {i}: negative timestamp {event['ts']}")
        if ph == "C":
            continue
        if ph != "X":
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        if "dur" not in event or "tid" not in event:
            raise ValueError(f"event {i}: complete event needs dur and tid")
        if event["dur"] < 0:
            raise ValueError(f"event {i}: negative duration {event['dur']}")
        slices.setdefault((event["pid"], event["tid"]), []).append(
            (event["ts"], event["ts"] + event["dur"])
        )
    # Nesting: sweep each lane in (start asc, end desc) order with a
    # stack of open intervals; a slice starting inside an open interval
    # must also end inside it. The tolerance absorbs the last-ulp
    # jitter of seconds-to-microseconds scaling (~1e-12 us on adjacent
    # slices) without masking any real overlap.
    eps = 1e-6
    for lane, intervals in slices.items():
        intervals.sort(key=lambda se: (se[0], -se[1]))
        stack: list[tuple[float, float]] = []
        for start, end in intervals:
            while stack and stack[-1][1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                raise ValueError(
                    f"lane {lane}: slice [{start}, {end}] partially "
                    f"overlaps open slice {stack[-1]}"
                )
            stack.append((start, end))
    return True


def write_chrome_trace(path: str | Path,
                       events: list[dict[str, Any]]) -> Path:
    """Validate and write one export as a Perfetto-loadable JSON file."""
    validate_chrome_trace(events)
    path = Path(path)
    path.write_text(json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, indent=None,
        separators=(",", ":"),
    ) + "\n")
    return path
