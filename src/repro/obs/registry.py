"""The process-wide metrics registry: counters, gauges, histograms.

Before this module existed the repo's counters were bare module
globals (``TRANSFORM_STATS`` in :mod:`repro.nttmath.batch`) and
object attributes (:class:`~repro.api.resident.ResidentOperandCache`
hit counts): one backend calling ``reset_transform_counts()``
silently corrupted every other backend's telemetry in the same
process, and tests had to be careful not to observe each other.

The registry fixes the sharing model, not just the bookkeeping:

* **Instruments are declared once, values live per registry.** A
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` object is a
  lightweight handle registered in a process-wide catalogue; every
  ``inc``/``set``/``observe`` resolves :func:`current_registry` *at
  call time*, so the same instrument writes to whichever registry is
  active.
* **Scoped contexts.** :func:`scoped_metrics` installs a fresh (or
  caller-supplied) registry for the duration of a ``with`` block —
  the pytest fixture in ``tests/conftest.py`` wraps every test in one,
  and concurrent backends can isolate their counter planes the same
  way. The context variable makes the scope thread- and task-local.
* **Snapshot / diff / reset.** :meth:`MetricsRegistry.snapshot`
  returns a flat, JSON-friendly mapping of series name to value;
  :func:`diff_snapshots` subtracts two snapshots (monotone series
  only); :meth:`MetricsRegistry.reset` zeroes one registry without
  touching any other.
* **Exposition.** :func:`render_prometheus` serialises a registry in
  the Prometheus text format, ``# HELP`` / ``# TYPE`` comments
  included.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "current_registry",
    "scoped_metrics",
    "diff_snapshots",
    "render_prometheus",
]

#: Ordered (label, value) pairs — the hashable identity of one series.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the latency ranges the serving simulations produce).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class InstrumentSpec:
    """One declared instrument: its identity across every registry."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    label_names: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()


_CATALOG: dict[str, InstrumentSpec] = {}
_CATALOG_LOCK = threading.Lock()


def _register(spec: InstrumentSpec) -> InstrumentSpec:
    with _CATALOG_LOCK:
        existing = _CATALOG.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise ValueError(
                    f"instrument {spec.name!r} already registered with a "
                    f"different spec ({existing.kind}, labels "
                    f"{existing.label_names})"
                )
            return existing
        _CATALOG[spec.name] = spec
        return spec


def _label_key(label_names: tuple[str, ...],
               labels: dict[str, object]) -> LabelKey:
    if tuple(sorted(labels)) != tuple(sorted(label_names)):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def series_name(name: str, key: LabelKey) -> str:
    """Exposition-style series id: ``name{label="value",...}``."""
    if not key:
        return name
    inner = ",".join(f'{label}="{value}"' for label, value in key)
    return f"{name}{{{inner}}}"


@dataclass
class _HistogramData:
    """Mutable state of one histogram series."""

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +Inf tail

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """One isolated plane of metric values.

    Values are keyed ``(instrument name, label key)``; the instrument
    metadata (kind, help, label names) lives in the process-wide
    catalogue so every registry renders the same schema. All methods
    are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._gauges: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], _HistogramData] = {}

    # -- mutation (called through the instrument handles) ------------------------------

    def _add(self, name: str, key: LabelKey, amount: float) -> None:
        with self._lock:
            slot = (name, key)
            self._counters[slot] = self._counters.get(slot, 0.0) + amount

    def _set(self, name: str, key: LabelKey, value: float) -> None:
        with self._lock:
            self._gauges[(name, key)] = value

    def _observe(self, name: str, key: LabelKey, value: float,
                 buckets: tuple[float, ...]) -> None:
        with self._lock:
            slot = (name, key)
            data = self._histograms.get(slot)
            if data is None:
                data = self._histograms[slot] = _HistogramData(buckets)
            data.observe(value)

    # -- reads -------------------------------------------------------------------------

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter/gauge series (0.0 if unseen)."""
        spec = _CATALOG.get(name)
        label_names = spec.label_names if spec else tuple(sorted(labels))
        key = _label_key(label_names, labels)
        with self._lock:
            if (name, key) in self._counters:
                return self._counters[(name, key)]
            return self._gauges.get((name, key), 0.0)

    def snapshot(self) -> dict[str, float]:
        """Flat, JSON-friendly mapping of every live series.

        Counter and gauge series map their exposition name to the
        value; each histogram series contributes ``..._count`` and
        ``..._sum`` entries plus one ``..._bucket{le=...}`` per bound.
        """
        out: dict[str, float] = {}
        with self._lock:
            for (name, key), value in self._counters.items():
                out[series_name(name, key)] = value
            for (name, key), value in self._gauges.items():
                out[series_name(name, key)] = value
            for (name, key), data in self._histograms.items():
                out[series_name(f"{name}_count", key)] = float(data.count)
                out[series_name(f"{name}_sum", key)] = data.total
                cumulative = 0
                for bound, bucket in zip(data.buckets, data.counts[:-1],
                                         strict=True):
                    cumulative += bucket
                    le = ((f"{bound:g}",))
                    out[series_name(f"{name}_bucket", key + (("le", le[0]),))] \
                        = float(cumulative)
                out[series_name(f"{name}_bucket", key + (("le", "+Inf"),))] \
                    = float(data.count)
        return out

    def reset(self) -> None:
        """Zero every series in *this* registry only."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def reset_instrument(self, name: str) -> None:
        """Zero every series of one instrument in this registry."""
        with self._lock:
            for store in (self._counters, self._gauges, self._histograms):
                for slot in [s for s in store if s[0] == name]:
                    del store[slot]


def diff_snapshots(before: dict[str, float],
                   after: dict[str, float]) -> dict[str, float]:
    """Per-series deltas between two snapshots (non-zero entries only).

    Series absent from ``before`` count from zero, so a diff across a
    run that created new series reports their full value.
    """
    out: dict[str, float] = {}
    for series, value in after.items():
        delta = value - before.get(series, 0.0)
        if delta != 0:
            out[series] = delta
    return out


# -- the active-registry context ------------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics_registry", default=None
)


def current_registry() -> MetricsRegistry:
    """The registry instrument writes resolve against right now."""
    active = _ACTIVE.get()
    return _DEFAULT_REGISTRY if active is None else active


@contextmanager
def scoped_metrics(registry: MetricsRegistry | None = None):
    """Install a fresh (or supplied) registry for the ``with`` block.

    Everything recorded inside the block — by this thread/task and by
    anything it calls — lands in the scoped registry and becomes
    invisible to the enclosing scope when the block exits. This is
    the isolation primitive: the per-test pytest fixture, and any
    backend that must not stomp a sibling's counters, wrap their work
    in one.
    """
    scoped = MetricsRegistry() if registry is None else registry
    token = _ACTIVE.set(scoped)
    try:
        yield scoped
    finally:
        _ACTIVE.reset(token)


# -- instrument handles ---------------------------------------------------------------


class Counter:
    """Monotone counter handle; values live in the current registry."""

    def __init__(self, spec: InstrumentSpec) -> None:
        self.spec = spec

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        current_registry()._add(
            self.spec.name, _label_key(self.spec.label_names, labels),
            amount,
        )

    def value(self, **labels: object) -> float:
        return current_registry().value(self.spec.name, **labels)


class Gauge:
    """Set-to-current-value handle (queue depths, cache occupancy)."""

    def __init__(self, spec: InstrumentSpec) -> None:
        self.spec = spec

    def set(self, value: float, **labels: object) -> None:
        current_registry()._set(
            self.spec.name, _label_key(self.spec.label_names, labels),
            float(value),
        )

    def value(self, **labels: object) -> float:
        return current_registry().value(self.spec.name, **labels)


class Histogram:
    """Bucketed distribution handle (latencies, batch sizes)."""

    def __init__(self, spec: InstrumentSpec) -> None:
        self.spec = spec

    def observe(self, value: float, **labels: object) -> None:
        current_registry()._observe(
            self.spec.name, _label_key(self.spec.label_names, labels),
            float(value), self.spec.buckets,
        )


def counter(name: str, help: str = "",
            labels: tuple[str, ...] = ()) -> Counter:
    """Declare (or re-fetch) a counter instrument."""
    return Counter(_register(InstrumentSpec(name, "counter", help,
                                            tuple(labels))))


def gauge(name: str, help: str = "",
          labels: tuple[str, ...] = ()) -> Gauge:
    """Declare (or re-fetch) a gauge instrument."""
    return Gauge(_register(InstrumentSpec(name, "gauge", help,
                                          tuple(labels))))


def histogram(name: str, help: str = "", labels: tuple[str, ...] = (),
              buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    """Declare (or re-fetch) a histogram instrument."""
    return Histogram(_register(InstrumentSpec(name, "histogram", help,
                                              tuple(labels),
                                              tuple(buckets))))


# -- exposition ----------------------------------------------------------------------


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus text exposition of one registry (default: current).

    Series are grouped per instrument under ``# HELP`` / ``# TYPE``
    headers; instruments with no recorded series are omitted, so the
    exposition shows exactly what this registry observed.
    """
    registry = registry if registry is not None else current_registry()
    with registry._lock:
        counters = dict(registry._counters)
        gauges = dict(registry._gauges)
        histograms = {
            slot: (data.buckets, tuple(data.counts), data.total, data.count)
            for slot, data in registry._histograms.items()
        }
    lines: list[str] = []
    seen: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name in seen:
            return
        seen.add(name)
        spec = _CATALOG.get(name)
        if spec is not None and spec.help:
            lines.append(f"# HELP {name} {spec.help}")
        lines.append(f"# TYPE {name} {kind}")

    for (name, key), value in sorted(counters.items()):
        header(name, "counter")
        lines.append(f"{series_name(name, key)} {value:g}")
    for (name, key), value in sorted(gauges.items()):
        header(name, "gauge")
        lines.append(f"{series_name(name, key)} {value:g}")
    for (name, key), (buckets, counts, total, count) in sorted(
            histograms.items()):
        header(name, "histogram")
        cumulative = 0
        for bound, bucket in zip(buckets, counts[:-1], strict=True):
            cumulative += bucket
            bucket_key = key + (("le", f"{bound:g}"),)
            lines.append(
                f"{series_name(name + '_bucket', bucket_key)} {cumulative}"
            )
        inf_key = key + (("le", "+Inf"),)
        lines.append(f"{series_name(name + '_bucket', inf_key)} {count}")
        lines.append(f"{series_name(name + '_sum', key)} {total:g}")
        lines.append(f"{series_name(name + '_count', key)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")
