"""RNS-resident polynomials: the working format of evaluator and hardware.

An :class:`RnsPoly` is a (k x n) residue matrix plus its basis and a
domain flag (coefficient domain or NTT domain). It deliberately stays a
thin wrapper — the FV evaluator and the hardware simulator orchestrate the
underlying numpy arrays directly when they need to, and use this class at
API boundaries where the bookkeeping (basis identity, domain mixing)
prevents real bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..nttmath import batch
from ..nttmath.batch import intt_rows, ntt_rows
from ..rns.basis import RnsBasis
from .ring import RingContext, ring_context


@dataclass
class RnsPoly:
    """A polynomial resident in an RNS basis.

    Attributes:
        basis: the RNS basis the residues live in.
        n: ring degree.
        residues: int64 matrix of shape (basis.size, n).
        ntt_domain: True when rows hold NTT evaluations, False for
            coefficients.
    """

    basis: RnsBasis
    residues: np.ndarray
    ntt_domain: bool = False

    def __post_init__(self) -> None:
        self.residues = np.asarray(self.residues, dtype=np.int64)
        if self.residues.ndim != 2:
            raise ParameterError("residues must be a 2-D matrix")
        if self.residues.shape[0] != self.basis.size:
            raise ParameterError(
                f"residue matrix rows ({self.residues.shape[0]}) do not "
                f"match basis size ({self.basis.size})"
            )
        # Reduce into a fresh array: ``%=`` would mutate the *caller's*
        # array in place whenever ``np.asarray`` returned its input
        # unchanged (the aliasing regression test pins this down).
        self.residues = self.residues % self.basis.primes_col

    # -- constructors ---------------------------------------------------------

    @classmethod
    def trusted(cls, basis: RnsBasis, residues: np.ndarray,
                ntt_domain: bool = False) -> RnsPoly:
        """Adopt an already-reduced (size x n) int64 matrix without copying.

        Hot-path constructor for internal call sites whose arithmetic
        already produced canonical residues — it skips the defensive
        reduction (and its allocation) of the public constructor. The
        caller must guarantee shape, dtype, entries in [0, q_i), and
        exclusive ownership of ``residues``. Inside
        :func:`~repro.nttmath.batch.per_row_mode` it falls back to the
        validating constructor, which is what every pre-batching call
        site paid.
        """
        if batch._PER_ROW_MODE:
            return cls(basis, residues, ntt_domain)
        poly = object.__new__(cls)
        poly.basis = basis
        poly.residues = residues
        poly.ntt_domain = ntt_domain
        return poly

    @classmethod
    def zero(cls, basis: RnsBasis, n: int) -> RnsPoly:
        return cls.trusted(basis, np.zeros((basis.size, n), dtype=np.int64))

    @classmethod
    def from_int_coeffs(cls, basis: RnsBasis, coeffs) -> RnsPoly:
        """Build from big-integer coefficients (exact residue reduction)."""
        return cls(basis, basis.residues_of_coeffs(list(coeffs)))

    @classmethod
    def from_small_coeffs(cls, basis: RnsBasis, coeffs) -> RnsPoly:
        """Build from machine-int coefficients (fast path, e.g. samples)."""
        arr = np.asarray(coeffs, dtype=np.int64)[None, :]
        return cls(basis, arr % basis.primes_col)

    # -- properties -----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.residues.shape[1]

    def ring(self, row: int) -> RingContext:
        return ring_context(self.n, self.basis.primes[row])

    def copy(self) -> RnsPoly:
        return RnsPoly.trusted(self.basis, self.residues.copy(),
                               self.ntt_domain)

    # -- conversions ------------------------------------------------------------

    def to_int_coeffs(self) -> list[int]:
        """Exact CRT reconstruction to [0, modulus) coefficients."""
        self._require_coeff_domain("to_int_coeffs")
        return self.basis.reconstruct_coeffs(self.residues)

    def to_centered_coeffs(self) -> list[int]:
        """Exact CRT reconstruction to centered coefficients."""
        self._require_coeff_domain("to_centered_coeffs")
        return self.basis.reconstruct_coeffs_centered(self.residues)

    def to_ntt(self) -> RnsPoly:
        """Forward NTT on every residue row (batched over all limbs)."""
        self._require_coeff_domain("to_ntt")
        return RnsPoly.trusted(
            self.basis, ntt_rows(self.basis.primes, self.residues),
            ntt_domain=True,
        )

    def to_coeff(self) -> RnsPoly:
        """Inverse NTT on every residue row (batched over all limbs)."""
        if not self.ntt_domain:
            return self.copy()
        return RnsPoly.trusted(
            self.basis, intt_rows(self.basis.primes, self.residues),
            ntt_domain=False,
        )

    # -- arithmetic --------------------------------------------------------------

    def _assert_compatible(self, other: RnsPoly) -> None:
        if self.basis is not other.basis and (
            self.basis.primes != other.basis.primes
        ):
            raise ParameterError("operands live in different RNS bases")
        if self.ntt_domain != other.ntt_domain:
            raise ParameterError("operands live in different domains")
        if self.n != other.n:
            raise ParameterError("operands have different degrees")

    def _require_coeff_domain(self, op: str) -> None:
        if self.ntt_domain:
            raise ParameterError(f"{op} requires the coefficient domain")

    def __add__(self, other: RnsPoly) -> RnsPoly:
        self._assert_compatible(other)
        return RnsPoly.trusted(
            self.basis,
            (self.residues + other.residues) % self.basis.primes_col,
            self.ntt_domain,
        )

    def __sub__(self, other: RnsPoly) -> RnsPoly:
        self._assert_compatible(other)
        return RnsPoly.trusted(
            self.basis,
            (self.residues - other.residues) % self.basis.primes_col,
            self.ntt_domain,
        )

    def __neg__(self) -> RnsPoly:
        return RnsPoly.trusted(
            self.basis,
            (-self.residues) % self.basis.primes_col,
            self.ntt_domain,
        )

    def pointwise_mul(self, other: RnsPoly) -> RnsPoly:
        """Coefficient-wise product (requires both operands in NTT domain)."""
        self._assert_compatible(other)
        if not self.ntt_domain:
            raise ParameterError("pointwise_mul requires the NTT domain")
        return RnsPoly.trusted(
            self.basis,
            (self.residues * other.residues) % self.basis.primes_col,
            ntt_domain=True,
        )

    def multiply(self, other: RnsPoly) -> RnsPoly:
        """Negacyclic product via batched NTT (both in coefficient domain)."""
        self._assert_compatible(other)
        self._require_coeff_domain("multiply")
        primes = self.basis.primes
        fa, fb = ntt_rows(primes, np.stack([self.residues, other.residues]))
        product = (fa * fb) % self.basis.primes_col
        return RnsPoly.trusted(
            self.basis, intt_rows(primes, product), ntt_domain=False
        )

    def scalar_mul(self, scalar: int) -> RnsPoly:
        cols = np.array(
            [scalar % p for p in self.basis.primes], dtype=np.int64
        )[:, None]
        return RnsPoly.trusted(
            self.basis,
            (self.residues * cols) % self.basis.primes_col,
            self.ntt_domain,
        )
