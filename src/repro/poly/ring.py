"""Single-prime ring R_{q_i} = Z_{q_i}[x]/(x^n + 1) with vectorised arithmetic.

One :class:`RingContext` models one RNS channel: a 30-bit prime with its
negacyclic NTT tables. This is the unit of work one RPAU (Residue
Polynomial Arithmetic Unit) of the paper processes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..nttmath.ntt import NegacyclicTransformer


class RingContext:
    """Arithmetic context for one residue ring.

    All methods take and return int64 numpy arrays of length ``n`` with
    entries already reduced modulo ``modulus``.
    """

    def __init__(self, n: int, modulus: int) -> None:
        self.n = n
        self.modulus = modulus
        self.transformer = NegacyclicTransformer(n, modulus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingContext(n={self.n}, modulus={self.modulus})"

    # -- element helpers -----------------------------------------------------

    def zero(self) -> np.ndarray:
        return np.zeros(self.n, dtype=np.int64)

    def reduce(self, coeffs) -> np.ndarray:
        """Reduce arbitrary integer coefficients into the ring."""
        arr = np.asarray(coeffs)
        if arr.shape != (self.n,):
            raise ParameterError(f"expected {self.n} coefficients")
        if arr.dtype == object:
            return np.array([int(c) % self.modulus for c in arr],
                            dtype=np.int64)
        return arr.astype(np.int64) % self.modulus

    def centered(self, coeffs: np.ndarray) -> np.ndarray:
        """Signed representatives in (-modulus/2, modulus/2]."""
        half = self.modulus // 2
        return np.where(coeffs > half, coeffs - self.modulus, coeffs)

    # -- coefficient-wise operations (the RPAU instruction set) ---------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a + b) % self.modulus

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a - b) % self.modulus

    def neg(self, a: np.ndarray) -> np.ndarray:
        return (self.modulus - a) % self.modulus

    def pointwise_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a * b) % self.modulus

    def scalar_mul(self, a: np.ndarray, scalar: int) -> np.ndarray:
        return (a * (scalar % self.modulus)) % self.modulus

    # -- transforms ------------------------------------------------------------

    def ntt(self, coeffs: np.ndarray) -> np.ndarray:
        return self.transformer.forward(coeffs)

    def intt(self, values: np.ndarray) -> np.ndarray:
        return self.transformer.inverse(values)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full negacyclic product (NTT, pointwise, INTT)."""
        return self.transformer.multiply(a, b)


@lru_cache(maxsize=None)
def ring_context(n: int, modulus: int) -> RingContext:
    """Shared, cached ring context (NTT tables are expensive to rebuild)."""
    return RingContext(n, modulus)
