"""Polynomial representations.

Three layers, matching the needs of the rest of the library:

* :class:`~repro.poly.dense.IntPoly` — arbitrary-precision coefficients,
  schoolbook arithmetic. The ground truth for everything.
* :class:`~repro.poly.ring.RingContext` — a single-prime ring with
  vectorised NTT arithmetic (one RNS channel).
* :class:`~repro.poly.rns_poly.RnsPoly` — a polynomial resident in an RNS
  basis (matrix of residue rows), the working format of both the FV
  evaluator and the hardware simulator.
"""

from .dense import IntPoly
from .ring import RingContext
from .rns_poly import RnsPoly

__all__ = ["IntPoly", "RingContext", "RnsPoly"]
