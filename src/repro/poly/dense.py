"""Arbitrary-precision polynomial over Z_q[x]/(x^n + 1).

This is the reference representation: plain Python integers, schoolbook
negacyclic multiplication. It is exact for moduli of any size (the FV
textbook path uses the 180-bit q and 390-bit Q directly) and is the ground
truth against which the RNS and hardware paths are verified.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..nttmath.ntt import negacyclic_convolution
from ..utils import is_power_of_two, round_half_away


@dataclass(frozen=True)
class IntPoly:
    """Immutable polynomial with big-integer coefficients modulo ``modulus``.

    Coefficients are stored reduced to ``[0, modulus)``; use
    :meth:`centered` for the signed representative.
    """

    coeffs: tuple[int, ...]
    modulus: int

    def __post_init__(self) -> None:
        if not is_power_of_two(len(self.coeffs)):
            raise ParameterError("IntPoly degree must be a power of two")
        if self.modulus < 2:
            raise ParameterError("modulus must be at least 2")
        object.__setattr__(
            self, "coeffs", tuple(c % self.modulus for c in self.coeffs)
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, n: int, modulus: int) -> IntPoly:
        return cls((0,) * n, modulus)

    @classmethod
    def constant(cls, value: int, n: int, modulus: int) -> IntPoly:
        return cls((value,) + (0,) * (n - 1), modulus)

    @classmethod
    def from_list(cls, coeffs: list[int], modulus: int) -> IntPoly:
        return cls(tuple(coeffs), modulus)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.coeffs)

    def centered(self) -> list[int]:
        """Coefficients mapped to (-modulus/2, modulus/2]."""
        half = self.modulus // 2
        return [c - self.modulus if c > half else c for c in self.coeffs]

    def infinity_norm(self) -> int:
        """Max absolute value of the centered coefficients."""
        return max((abs(c) for c in self.centered()), default=0)

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    # -- ring arithmetic -----------------------------------------------------

    def _assert_compatible(self, other: IntPoly) -> None:
        if self.n != other.n or self.modulus != other.modulus:
            raise ParameterError("polynomials live in different rings")

    def __add__(self, other: IntPoly) -> IntPoly:
        self._assert_compatible(other)
        return IntPoly(
            tuple((a + b) % self.modulus
                  for a, b in zip(self.coeffs, other.coeffs, strict=True)),
            self.modulus,
        )

    def __sub__(self, other: IntPoly) -> IntPoly:
        self._assert_compatible(other)
        return IntPoly(
            tuple((a - b) % self.modulus
                  for a, b in zip(self.coeffs, other.coeffs, strict=True)),
            self.modulus,
        )

    def __neg__(self) -> IntPoly:
        return IntPoly(tuple(-c % self.modulus for c in self.coeffs),
                       self.modulus)

    def __mul__(self, other: IntPoly) -> IntPoly:
        self._assert_compatible(other)
        product = negacyclic_convolution(
            list(self.coeffs), list(other.coeffs), self.modulus
        )
        return IntPoly(tuple(product), self.modulus)

    def scalar_mul(self, scalar: int) -> IntPoly:
        return IntPoly(
            tuple((c * scalar) % self.modulus for c in self.coeffs),
            self.modulus,
        )

    # -- modulus switching ---------------------------------------------------

    def lift_to(self, new_modulus: int) -> IntPoly:
        """Re-interpret the centered coefficients modulo a larger modulus.

        This is the exact (non-RNS) form of the paper's Lift q->Q: a
        centered coefficient of Z_q is also a valid element of Z_Q.
        """
        if new_modulus < self.modulus:
            raise ParameterError("lift_to expects a larger modulus")
        return IntPoly(
            tuple(c % new_modulus for c in self.centered()), new_modulus
        )

    def scale_round(self, numerator: int, denominator: int,
                    new_modulus: int) -> IntPoly:
        """Compute round(numerator * x / denominator) mod new_modulus.

        The exact (non-RNS) form of the paper's Scale Q->q with
        numerator = t and denominator = q, applied to the centered
        representative.
        """
        scaled = [
            round_half_away(numerator * c, denominator)
            for c in self.centered()
        ]
        return IntPoly(tuple(v % new_modulus for v in scaled), new_modulus)

    def mod_switch(self, new_modulus: int) -> IntPoly:
        """Reduce the centered coefficients into a (possibly smaller) ring."""
        return IntPoly(
            tuple(c % new_modulus for c in self.centered()), new_modulus
        )
