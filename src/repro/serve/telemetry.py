"""Latency, queue-depth and utilisation telemetry for the runtime.

Throughput alone (the paper's 400 Mult/s) says nothing about what a
client experiences under load; serving systems are judged on tail
latency. The engine feeds every state change through a
:class:`Telemetry` collector, which keeps full traces (queue depth and
per-coprocessor busy time against the simulated clock) and reduces
them to the numbers operators actually watch: p50/p95/p99 latency,
mean/max queue depth, utilisation, and SLA violations.

This collector is runtime-local and sample-exact; the process-wide
counter plane (engine transform counts, resident-cache events) lives
in the :mod:`repro.obs` metrics registry, and the per-job schedule a
collector summarises can be exported as a Perfetto-loadable timeline
via :func:`repro.obs.runtime_timeline`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 for an empty series."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class LatencySummary:
    """The percentile digest of one latency series (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, latencies: list[float]) -> LatencySummary:
        if not latencies:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                       max=0.0)
        return cls(
            count=len(latencies),
            mean=float(np.mean(latencies)),
            p50=percentile(latencies, 50),
            p95=percentile(latencies, 95),
            p99=percentile(latencies, 99),
            max=float(np.max(latencies)),
        )

    def row(self, label: str) -> str:
        return (f"{label:<10} n={self.count:<6} "
                f"p50={self.p50 * 1e3:8.2f} ms  "
                f"p95={self.p95 * 1e3:8.2f} ms  "
                f"p99={self.p99 * 1e3:8.2f} ms  "
                f"max={self.max * 1e3:8.2f} ms")


@dataclass
class Telemetry:
    """Trace collector wired into the event engine."""

    num_coprocessors: int
    queue_depth_trace: list[tuple[float, int]] = field(default_factory=list)
    busy_seconds: list[float] = field(init=False)
    dispatch_count: list[int] = field(init=False)
    batch_sizes: list[int] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    tenant_latencies: dict[str, list[float]] = field(default_factory=dict)
    sla_violations: int = 0

    def __post_init__(self) -> None:
        self.busy_seconds = [0.0] * self.num_coprocessors
        self.dispatch_count = [0] * self.num_coprocessors

    # -- recording hooks ---------------------------------------------------------------

    def record_queue_depth(self, now: float, depth: int) -> None:
        self.queue_depth_trace.append((now, depth))

    def record_dispatch(self, coprocessor: int, batch_size: int) -> None:
        self.dispatch_count[coprocessor] += 1
        self.batch_sizes.append(batch_size)

    def record_completion(self, coprocessor: int, service_seconds: float,
                          latencies: list[tuple[str, float]],
                          sla_violations: int) -> None:
        self.busy_seconds[coprocessor] += service_seconds
        for tenant, latency in latencies:
            self.latencies.append(latency)
            self.tenant_latencies.setdefault(tenant, []).append(latency)
        self.sla_violations += sla_violations

    # -- reductions --------------------------------------------------------------------

    def latency_summary(self, tenant: str | None = None) -> LatencySummary:
        series = (self.latencies if tenant is None
                  else self.tenant_latencies.get(tenant, []))
        return LatencySummary.of(series)

    def utilization(self, horizon_seconds: float) -> list[float]:
        """Busy fraction of each coprocessor over the run's busy window."""
        if horizon_seconds <= 0:
            return [0.0] * self.num_coprocessors
        return [min(b / horizon_seconds, 1.0) for b in self.busy_seconds]

    @property
    def max_queue_depth(self) -> int:
        return max((d for _, d in self.queue_depth_trace), default=0)

    def mean_queue_depth(self) -> float:
        """Time-weighted mean depth over the queue-depth trace."""
        trace = self.queue_depth_trace
        if len(trace) < 2:
            return float(trace[0][1]) if trace else 0.0
        area = 0.0
        for (t0, d0), (t1, _) in zip(trace, trace[1:], strict=False):
            area += d0 * (t1 - t0)
        span = trace[-1][0] - trace[0][0]
        return area / span if span > 0 else float(trace[-1][1])

    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    # -- merging (multi-shard aggregation) ---------------------------------------------

    @classmethod
    def merged(cls, parts: Sequence[Telemetry]) -> Telemetry:
        """Combine per-shard collectors into one cluster-wide view.

        Telemetry keeps the raw sample series (not just digests), so
        the merge is exact: percentiles of the merged collector equal
        percentiles over the concatenated samples — there is no
        digest-merging approximation error. The queue-depth trace of a
        merge interleaves *per-shard* depth samples by time (there is
        no single cluster queue); ``busy_seconds`` and
        ``dispatch_count`` concatenate, so coprocessor ``i`` of shard
        ``k`` keeps a distinct slot. Merging zero parts (or parts from
        idle shards) yields a valid empty collector.
        """
        total = cls(num_coprocessors=sum(p.num_coprocessors
                                         for p in parts))
        total.busy_seconds = [b for p in parts for b in p.busy_seconds]
        total.dispatch_count = [d for p in parts
                                for d in p.dispatch_count]
        total.queue_depth_trace = sorted(
            (sample for p in parts for sample in p.queue_depth_trace),
            key=lambda sample: sample[0],
        )
        total.batch_sizes = [s for p in parts for s in p.batch_sizes]
        total.latencies = [lat for p in parts for lat in p.latencies]
        for part in parts:
            for tenant, series in part.tenant_latencies.items():
                total.tenant_latencies.setdefault(tenant,
                                                  []).extend(series)
        total.sla_violations = sum(p.sla_violations for p in parts)
        return total
