"""Discrete-event serving runtime for the Arm+FPGA server (Fig. 11).

Grows the single static scheduling loop of
:meth:`repro.system.server.CloudServer.serve` into a serving system:

* :mod:`~repro.serve.events` — event heap and simulated clock;
* :mod:`~repro.serve.engine` — the arrival/dispatch/completion loop;
* :mod:`~repro.serve.schedulers` — FIFO, shortest-job-first, weighted
  fair queueing, and per-coprocessor work stealing;
* :mod:`~repro.serve.batching` — DMA upload coalescing that amortises
  the Table I Arm setup cost across a backlog;
* :mod:`~repro.serve.tenants` — multi-tenant clients, SLA deadlines,
  admission control;
* :mod:`~repro.serve.telemetry` — latency percentiles, queue-depth and
  utilisation traces.
"""

from .batching import BatchPolicy, DmaBatcher
from .engine import RuntimeReport, ServingRuntime, simulate
from .events import Event, EventHeap, EventKind
from .schedulers import (
    CriticalPathScheduler,
    FifoScheduler,
    Scheduler,
    ShortestJobFirstScheduler,
    WeightedFairScheduler,
    WorkStealingScheduler,
    default_schedulers,
)
from .telemetry import LatencySummary, Telemetry, percentile
from .tenants import AdmissionController, Rejection, Tenant, TenantSet

__all__ = [
    "BatchPolicy",
    "DmaBatcher",
    "RuntimeReport",
    "ServingRuntime",
    "simulate",
    "Event",
    "EventHeap",
    "EventKind",
    "Scheduler",
    "CriticalPathScheduler",
    "FifoScheduler",
    "ShortestJobFirstScheduler",
    "WeightedFairScheduler",
    "WorkStealingScheduler",
    "default_schedulers",
    "LatencySummary",
    "Telemetry",
    "percentile",
    "AdmissionController",
    "Rejection",
    "Tenant",
    "TenantSet",
]
