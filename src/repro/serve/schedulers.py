"""Pluggable dispatch policies for the serving runtime.

Each scheduler owns the ready queue(s) between job arrival and
coprocessor dispatch. The engine funnels every admitted job through
:meth:`Scheduler.enqueue` and asks :meth:`Scheduler.next_entry`
whenever a coprocessor frees up; a policy must hand back every entry
exactly once (conservation) but is free to choose the order and, for
partitioned policies, may prefer the asking coprocessor's own queue.

Policies:

* :class:`FifoScheduler` — global arrival-order queue (the behaviour of
  the static ``CloudServer.serve`` loop);
* :class:`ShortestJobFirstScheduler` — minimises mean latency for mixed
  Add/Mult traffic by letting the ~80x-cheaper Adds overtake Mults;
* :class:`WeightedFairScheduler` — per-tenant virtual-finish-time
  queueing so no tenant can starve another regardless of offered load;
* :class:`WorkStealingScheduler` — statically partitioned
  per-coprocessor queues (one Arm core per coprocessor, as in Fig. 11)
  with idle coprocessors stealing from the longest backlog;
* :class:`CriticalPathScheduler` — longest-remaining-chain-first for
  program traffic whose jobs carry
  :attr:`~repro.system.workloads.Job.critical_seconds` stamps.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

from ..system.workloads import Job, JobKind


@dataclass(frozen=True)
class QueueEntry:
    """One admitted job waiting for a coprocessor."""

    job: Job
    cost_seconds: float
    seq: int

    @property
    def arrival_seconds(self) -> float:
        return self.job.arrival_seconds

    @property
    def tenant(self) -> str:
        return self.job.tenant

    @property
    def kind(self) -> JobKind:
        return self.job.kind


class Scheduler(ABC):
    """Base class: a queue between admission and dispatch."""

    name = "scheduler"

    def __init__(self) -> None:
        self._backlog_seconds = 0.0
        self._queued = 0

    def bind(self, num_coprocessors: int) -> None:
        """Called once before a run; partitioned policies size queues."""

    def enqueue(self, entry: QueueEntry) -> None:
        self._queued += 1
        self._backlog_seconds += entry.cost_seconds
        self._push(entry)

    def next_entry(self, coprocessor: int, now: float) -> QueueEntry | None:
        entry = self._pop(coprocessor, now)
        if entry is not None:
            self._queued -= 1
            self._backlog_seconds -= entry.cost_seconds
        return entry

    @property
    def backlog_seconds(self) -> float:
        """Total service time of all queued work (admission signal)."""
        return max(self._backlog_seconds, 0.0)

    def __len__(self) -> int:
        return self._queued

    @abstractmethod
    def _push(self, entry: QueueEntry) -> None: ...

    @abstractmethod
    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None: ...


class FifoScheduler(Scheduler):
    """First-in-first-out: jobs dispatch strictly in arrival order."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[QueueEntry] = deque()

    def _push(self, entry: QueueEntry) -> None:
        self._queue.append(entry)

    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None:
        return self._queue.popleft() if self._queue else None


class ShortestJobFirstScheduler(Scheduler):
    """Dispatch the cheapest queued job first (ties by arrival order)."""

    name = "sjf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, QueueEntry]] = []

    def _push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (entry.cost_seconds, entry.seq, entry))

    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]


class WeightedFairScheduler(Scheduler):
    """Per-tenant weighted fair queueing via virtual finish times.

    Each tenant's jobs are stamped with a virtual finish tag
    ``start + cost / weight`` where ``start`` continues the tenant's
    previous tag or the current virtual time, whichever is later; the
    queue always dispatches the smallest tag. A tenant with weight 2
    therefore receives twice the service share of a weight-1 tenant
    while both are backlogged, and an idle tenant's unused share is
    redistributed rather than banked.
    """

    name = "wfq"

    def __init__(self, weights: dict[str, float] | None = None,
                 default_weight: float = 1.0) -> None:
        super().__init__()
        if default_weight <= 0:
            raise ValueError("weights must be positive")
        if weights and any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self._heap: list[tuple[float, int, float, QueueEntry]] = []
        self._last_finish: dict[str, float] = {}
        self._virtual = 0.0

    def weight_of(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def _push(self, entry: QueueEntry) -> None:
        start = max(self._virtual,
                    self._last_finish.get(entry.tenant, 0.0))
        finish = start + entry.cost_seconds / self.weight_of(entry.tenant)
        self._last_finish[entry.tenant] = finish
        heapq.heappush(self._heap, (finish, entry.seq, start, entry))

    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None:
        if not self._heap:
            return None
        finish, _, start, entry = heapq.heappop(self._heap)
        # Advance virtual time to the dispatched job's start tag so a
        # tenant returning from idle does not replay its unused share.
        self._virtual = max(self._virtual, start)
        return entry


class WorkStealingScheduler(Scheduler):
    """Per-coprocessor queues (one Arm core each) with work stealing.

    Arrivals are sprayed round-robin across the coprocessor queues —
    the static partitioning of Fig. 11, where each application core
    feeds its own coprocessor. An idle coprocessor first drains its own
    queue in FIFO order and otherwise steals the *newest* entry from
    the longest other queue, bounding the imbalance a round-robin spray
    produces under heterogeneous job costs.
    """

    name = "steal"

    def __init__(self, num_queues: int | None = None) -> None:
        super().__init__()
        self._queues: list[deque[QueueEntry]] = (
            [deque() for _ in range(num_queues)] if num_queues else []
        )
        self._next = 0

    def bind(self, num_coprocessors: int) -> None:
        if not self._queues:
            self._queues = [deque() for _ in range(num_coprocessors)]

    def _push(self, entry: QueueEntry) -> None:
        if not self._queues:
            raise RuntimeError("bind() must run before enqueue()")
        self._queues[self._next].append(entry)
        self._next = (self._next + 1) % len(self._queues)

    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None:
        own = self._queues[coprocessor % len(self._queues)]
        if own:
            return own.popleft()
        victim = max(self._queues, key=len)
        return victim.pop() if victim else None


class CriticalPathScheduler(Scheduler):
    """Dispatch the job with the longest remaining dependency chain.

    The classic list-scheduling heuristic for DAG-shaped requests:
    :class:`~repro.api.simulated.SimulatedBackend` stamps every lowered
    job with the remaining critical-path seconds of its request (this
    op's service time plus the longest chain of dependents behind it),
    and this policy dispatches the largest stamp first so the chains
    that bound request latency are never stuck behind bulk parallel
    work. Unstamped jobs fall back to their own cost, which degrades
    to longest-job-first for flat traffic.
    """

    name = "critpath"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, QueueEntry]] = []

    @staticmethod
    def priority(entry: QueueEntry) -> float:
        critical = entry.job.critical_seconds
        return critical if critical is not None else entry.cost_seconds

    def _push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap,
                       (-self.priority(entry), entry.seq, entry))

    def _pop(self, coprocessor: int, now: float) -> QueueEntry | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]


def default_schedulers() -> list[Scheduler]:
    """Fresh instances of every built-in policy (for sweeps)."""
    return [FifoScheduler(), ShortestJobFirstScheduler(),
            WeightedFairScheduler(), WorkStealingScheduler(),
            CriticalPathScheduler()]
