"""The discrete-event serving runtime for the Arm+FPGA server.

Replaces the static list-scheduling loop of ``CloudServer.serve`` with
an event-driven simulation: job arrivals, batch dispatches and
completions advance a simulated clock through an event heap, so the
model expresses queueing delay, tenant contention, DMA batching and
admission control — while pricing every job with the *same*
:class:`~repro.system.server.CostModel` the static loop uses. On a
saturated single-tenant stream with batching disabled the two produce
identical schedules (validated in the test suite), so the paper's
400 Mult/s headline carries over unchanged.

A runtime can be driven two ways:

* :meth:`ServingRuntime.run` — the one-shot mode: inject a whole job
  list and drain the heap to completion;
* the stepping API — :meth:`begin`, :meth:`inject`, :meth:`advance_to`
  and :meth:`drain` — which lets an outer simulation (the multi-FPGA
  shard layer in :mod:`repro.cluster`) feed arrivals one at a time on
  a shared clock and read live load signals
  (:meth:`outstanding_seconds`, :meth:`drain_estimate_seconds`)
  between injections for routing decisions. ``run`` is exactly
  ``begin`` + ``inject``\\* + ``drain``, so both paths share one event
  loop and produce identical schedules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..system.server import CloudServer, CostModel, JobResult, ServeReport
from ..system.workloads import Job
from .batching import BatchPolicy, DmaBatcher
from .events import EventHeap, EventKind
from .schedulers import FifoScheduler, QueueEntry, Scheduler, \
    WeightedFairScheduler
from .telemetry import LatencySummary, Telemetry
from .tenants import AdmissionController, Rejection, TenantSet


@dataclass(frozen=True)
class _Dispatched:
    """Payload of a COMPLETION event: one batch on one coprocessor."""

    coprocessor: int
    entries: tuple[QueueEntry, ...]
    start_seconds: float
    service_seconds: float


@dataclass
class RuntimeReport(ServeReport):
    """A :class:`ServeReport` plus the serving-runtime extras."""

    rejected: list[Rejection] = field(default_factory=list)
    telemetry: Telemetry | None = None

    @property
    def offered(self) -> int:
        return len(self.results) + len(self.rejected)

    @property
    def rejection_fraction(self) -> float:
        return len(self.rejected) / self.offered if self.offered else 0.0

    def latency_summary(self, tenant: str | None = None) -> LatencySummary:
        if self.telemetry is not None:
            return self.telemetry.latency_summary(tenant)
        return LatencySummary.of([
            r.latency_seconds for r in self.results
            if tenant is None or r.job.tenant == tenant
        ])

    def utilization(self) -> list[float]:
        if self.telemetry is None:
            return []
        return self.telemetry.utilization(self.makespan_seconds)

    def mean_utilization(self) -> float:
        """Average busy fraction across coprocessors; 0.0 when empty.

        Safe on reports with no results (an idle shard in a cluster
        must not crash the aggregation that averages utilizations).
        """
        util = self.utilization()
        return sum(util) / len(util) if util else 0.0


class ServingRuntime:
    """Event-driven scheduler simulation over the per-op cost models.

    One runtime instance performs one run: schedulers and telemetry are
    stateful, so construct a fresh runtime (or at least a fresh
    scheduler) for every workload.
    """

    def __init__(self, cost: CostModel, *,
                 scheduler: Scheduler | None = None,
                 batching: BatchPolicy | None = None,
                 tenants: TenantSet | None = None,
                 num_coprocessors: int | None = None) -> None:
        self.cost = cost
        self.num_coprocessors = (cost.config.num_coprocessors
                                 if num_coprocessors is None
                                 else num_coprocessors)
        if self.num_coprocessors < 1:
            raise ValueError("need at least one coprocessor")
        # `is None`, not `or`: an empty scheduler is falsy via __len__.
        self.scheduler = FifoScheduler() if scheduler is None else scheduler
        self.tenants = TenantSet() if tenants is None else tenants
        # A weight-less WFQ scheduler inherits the tenant weights.
        if (isinstance(self.scheduler, WeightedFairScheduler)
                and not self.scheduler.weights):
            self.scheduler.weights.update(self.tenants.weights())
        self.batcher = DmaBatcher(cost, batching)
        self.admission = AdmissionController(self.tenants,
                                             self.num_coprocessors)
        self._ran = False
        self._heap: EventHeap | None = None
        self._telemetry: Telemetry | None = None
        self._report: RuntimeReport | None = None
        self._free: list[bool] = []
        self._busy_until: list[float] = []
        self._queued_per_tenant: dict[str, int] = {}
        self._seq: itertools.count[int] = itertools.count()
        self._now = 0.0
        self._pending_seconds = 0.0
        self._pending_jobs = 0
        self._in_flight_jobs = 0
        self._service_scale = 1.0

    @classmethod
    def for_server(cls, server: CloudServer, **kwargs) -> ServingRuntime:
        return cls(server.cost, **kwargs)

    # -- the stepping API --------------------------------------------------------------

    def begin(self) -> None:
        """Arm the runtime for one simulation (idempotent guard)."""
        if self._ran:
            raise RuntimeError(
                "a ServingRuntime is single-use; build a fresh one per run"
            )
        self._ran = True
        self.scheduler.bind(self.num_coprocessors)
        self._heap = EventHeap()
        self._telemetry = Telemetry(self.num_coprocessors)
        self._report = RuntimeReport(telemetry=self._telemetry)
        self._free = [True] * self.num_coprocessors
        self._busy_until = [0.0] * self.num_coprocessors

    def inject(self, job: Job) -> None:
        """Feed one arrival into the simulation (shared-clock mode).

        The arrival is queued on the event heap, not processed: events
        advance only through :meth:`advance_to` / :meth:`drain`, so an
        outer simulation injecting several equal-time arrivals observes
        the same event ordering as a one-shot :meth:`run`.
        """
        if self._heap is None:
            raise RuntimeError("begin() must run before inject()")
        if job.arrival_seconds < self._now:
            raise ValueError(
                f"cannot inject an arrival at {job.arrival_seconds} behind "
                f"the shard clock at {self._now}"
            )
        self._heap.push(job.arrival_seconds, EventKind.ARRIVAL, job)
        self._pending_seconds += self.cost.job_seconds_of(job)
        self._pending_jobs += 1

    def advance_to(self, time_seconds: float, *,
                   inclusive: bool = True) -> None:
        """Process every event due by ``time_seconds``.

        With ``inclusive=False`` only events *strictly before* the
        deadline run — the shard layer uses this so arrivals injected
        at the deadline keep the one-shot heap ordering (all tied
        arrivals pop before the dispatches they trigger).
        """
        if self._heap is None:
            raise RuntimeError("begin() must run before advance_to()")
        while self._heap:
            due = self._heap.peek().time_seconds
            if due > time_seconds or (due == time_seconds
                                      and not inclusive):
                break
            self._step()
        # The clock always reaches the deadline — exclusive mode only
        # defers the *events* at it. Load signals (outstanding in-flight
        # time) must be measured against the deadline, not the last
        # processed event, or shards would report stale snapshots to
        # the router; equal-time injects still pass the strict `<`
        # guard.
        self._now = max(self._now, time_seconds)

    def drain(self) -> RuntimeReport:
        """Process all remaining events and return the final report."""
        if self._heap is None:
            raise RuntimeError("begin() must run before drain()")
        while self._heap:
            self._step()
        return self._report

    def run(self, jobs: list[Job]) -> RuntimeReport:
        self.begin()
        for job in jobs:
            self.inject(job)
        return self.drain()

    # -- failure semantics (driven by the cluster's fault loop) ------------------------

    @property
    def service_scale(self) -> float:
        """Service-time multiplier (1.0 nominal; >1 under a DMA stall)."""
        return self._service_scale

    @service_scale.setter
    def service_scale(self, value: float) -> None:
        if value < 1.0:
            raise ValueError("service scale cannot beat nominal hardware")
        self._service_scale = float(value)

    def spill(self) -> list[Job]:
        """Crash semantics: abandon all outstanding work, return it.

        Drains the event heap and the scheduler without processing
        anything: queued arrivals, scheduled entries and in-flight
        batches all come back as bare jobs (the cluster's retry path
        re-prices and re-routes them); pending DISPATCH markers are
        dropped. The runtime itself stays usable — a recovered board
        re-enters service with empty queues on the same clock.
        """
        if self._heap is None:
            raise RuntimeError("begin() must run before spill()")
        spilled: list[Job] = []
        while self._heap:
            event = self._heap.pop()
            if event.kind is EventKind.ARRIVAL:
                spilled.append(event.payload)
            elif event.kind is EventKind.COMPLETION:
                spilled.extend(e.job for e in event.payload.entries)
        while True:
            entry = self.scheduler.next_entry(0, self._now)
            if entry is None:
                break
            self._queued_per_tenant[entry.tenant] -= 1
            spilled.append(entry.job)
        self._pending_seconds = 0.0
        self._pending_jobs = 0
        self._in_flight_jobs = 0
        self._free = [True] * self.num_coprocessors
        self._busy_until = [self._now] * self.num_coprocessors
        return spilled

    def fail_one(self) -> Job | None:
        """Transient-fault semantics: kill one queued job, return it.

        Pops the entry the scheduler would dispatch next (determinism:
        no sampling involved); ``None`` when nothing is queued.
        """
        if self._heap is None:
            raise RuntimeError("begin() must run before fail_one()")
        entry = self.scheduler.next_entry(0, self._now)
        if entry is None:
            return None
        self._queued_per_tenant[entry.tenant] -= 1
        return entry.job

    # -- live load signals (routing/backpressure hints) --------------------------------

    @property
    def now(self) -> float:
        """The shard-local simulated clock (last processed event)."""
        return self._now

    def next_event_seconds(self) -> float | None:
        """Due time of the next queued event, or None when idle.

        Closed-loop drivers peek this to know how far they can advance
        before the simulation state changes.
        """
        if self._heap is None or not self._heap:
            return None
        return self._heap.peek().time_seconds

    def completion_feeds(self) -> list[list[JobResult]]:
        """Live completion list(s); entries appear as events process.

        Part of the stepping protocol closed-loop clients drive
        (:class:`~repro.system.workloads.ClosedLoopClients`): callers
        keep a cursor per feed and must not mutate the lists.
        """
        if self._report is None:
            raise RuntimeError("begin() must run before completion_feeds()")
        return [self._report.results]

    def rejection_feeds(self) -> list[list[Rejection]]:
        """Live rejection list(s), parallel to :meth:`completion_feeds`."""
        if self._report is None:
            raise RuntimeError("begin() must run before rejection_feeds()")
        return [self._report.rejected]

    def outstanding_seconds(self) -> float:
        """Service-seconds of admitted-or-pending work not yet finished.

        Counts the scheduler backlog, the remaining service of in-flight
        batches, and injected-but-unprocessed arrivals — the signal
        load-aware routers compare across shards.
        """
        in_flight = sum(max(until - self._now, 0.0)
                        for until in self._busy_until)
        return (self.scheduler.backlog_seconds + in_flight
                + self._pending_seconds)

    def outstanding_jobs(self) -> int:
        return (len(self.scheduler) + self._in_flight_jobs
                + self._pending_jobs)

    def drain_estimate_seconds(self) -> float:
        """Optimistic time-to-idle: outstanding work split evenly."""
        return self.outstanding_seconds() / self.num_coprocessors

    def would_admit(self, job: Job) -> bool:
        """Whether admission control would accept `job` right now.

        A routing hint only — the authoritative decision happens when
        the arrival event is processed (equal-time arrivals injected
        after this check still count against the backlog then).
        """
        cost = self.cost.job_seconds_of(job)
        reason = self.admission.reject_reason(
            job, self._queued_per_tenant.get(job.tenant, 0),
            self.scheduler.backlog_seconds, cost,
        )
        return reason is None

    # -- the event loop ----------------------------------------------------------------

    def _step(self) -> None:
        event = self._heap.pop()
        self._now = event.time_seconds
        if event.kind is EventKind.ARRIVAL:
            self._on_arrival(event.payload, self._now)
        elif event.kind is EventKind.DISPATCH:
            self._on_dispatch(self._now)
        else:
            self._on_completion(event.payload, self._now)

    def _on_arrival(self, job: Job, now: float) -> None:
        cost = self.cost.job_seconds_of(job)
        self._pending_seconds = max(self._pending_seconds - cost, 0.0)
        self._pending_jobs -= 1
        reason = self.admission.reject_reason(
            job, self._queued_per_tenant.get(job.tenant, 0),
            self.scheduler.backlog_seconds, cost,
        )
        if reason is not None:
            self._report.rejected.append(
                Rejection(job=job, time_seconds=now, reason=reason)
            )
            return
        self.scheduler.enqueue(
            QueueEntry(job=job, cost_seconds=cost, seq=next(self._seq))
        )
        self._queued_per_tenant[job.tenant] = \
            self._queued_per_tenant.get(job.tenant, 0) + 1
        self._telemetry.record_queue_depth(now, len(self.scheduler))
        # All-busy arrivals just queue; the next completion dispatches.
        if any(self._free):
            self._heap.push(now, EventKind.DISPATCH)

    def _on_dispatch(self, now: float) -> None:
        for coproc in range(self.num_coprocessors):
            if not self._free[coproc] or not len(self.scheduler):
                continue
            # Coalesce only the backlog beyond what the still-free
            # coprocessors can absorb one job each: a train must never
            # serialize work that could run in parallel right now.
            still_free = sum(
                1 for c in range(coproc, self.num_coprocessors)
                if self._free[c]
            )
            fair_share = -(-len(self.scheduler) // still_free)
            limit = min(self.batcher.max_jobs, fair_share)
            batch: list[QueueEntry] = []
            while len(batch) < limit:
                entry = self.scheduler.next_entry(coproc, now)
                if entry is None:
                    break
                self._queued_per_tenant[entry.tenant] -= 1
                deadline = entry.job.deadline_seconds
                if deadline is not None and now > deadline:
                    # Expired while queued: reject instead of burning
                    # coprocessor time on an answer nobody awaits.
                    self._report.rejected.append(Rejection(
                        job=entry.job, time_seconds=now, reason="timeout"))
                    continue
                batch.append(entry)
            if not batch:
                continue
            self._telemetry.record_queue_depth(now, len(self.scheduler))
            self._telemetry.record_dispatch(coproc, len(batch))
            service = self.batcher.service_seconds(batch) \
                * self._service_scale
            self._free[coproc] = False
            self._busy_until[coproc] = now + service
            self._in_flight_jobs += len(batch)
            self._heap.push(now + service, EventKind.COMPLETION, _Dispatched(
                coprocessor=coproc, entries=tuple(batch),
                start_seconds=now, service_seconds=service,
            ))

    def _on_completion(self, done: _Dispatched, now: float) -> None:
        latencies: list[tuple[str, float]] = []
        violations = 0
        for entry in done.entries:
            self._report.results.append(JobResult(
                job=entry.job, coprocessor=done.coprocessor,
                start_seconds=done.start_seconds, finish_seconds=now,
            ))
            # Retried jobs measure latency from the client's *first*
            # submission, not the retry's re-injection instant.
            origin = entry.job.first_arrival_seconds
            latency = now - (entry.arrival_seconds if origin is None
                             else origin)
            latencies.append((entry.tenant, latency))
            sla = self.tenants.get(entry.tenant).sla_seconds
            if sla is not None and latency > sla:
                violations += 1
        self._telemetry.record_completion(done.coprocessor,
                                          done.service_seconds,
                                          latencies, violations)
        self._free[done.coprocessor] = True
        self._in_flight_jobs -= len(done.entries)
        self._heap.push(now, EventKind.DISPATCH)


def simulate(server: CloudServer, jobs: list[Job],
             scheduler: Scheduler | None = None,
             batching: BatchPolicy | None = None,
             tenants: TenantSet | None = None) -> RuntimeReport:
    """One-call convenience: build a runtime for `server` and run it."""
    runtime = ServingRuntime.for_server(server, scheduler=scheduler,
                                        batching=batching, tenants=tenants)
    return runtime.run(jobs)
