"""The discrete-event serving runtime for the Arm+FPGA server.

Replaces the static list-scheduling loop of ``CloudServer.serve`` with
an event-driven simulation: job arrivals, batch dispatches and
completions advance a simulated clock through an event heap, so the
model expresses queueing delay, tenant contention, DMA batching and
admission control — while pricing every job with the *same*
:class:`~repro.system.server.CostModel` the static loop uses. On a
saturated single-tenant stream with batching disabled the two produce
identical schedules (validated in the test suite), so the paper's
400 Mult/s headline carries over unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..system.server import CloudServer, CostModel, JobResult, ServeReport
from ..system.workloads import Job
from .batching import BatchPolicy, DmaBatcher
from .events import EventHeap, EventKind
from .schedulers import FifoScheduler, QueueEntry, Scheduler, \
    WeightedFairScheduler
from .telemetry import LatencySummary, Telemetry
from .tenants import AdmissionController, Rejection, TenantSet


@dataclass(frozen=True)
class _Dispatched:
    """Payload of a COMPLETION event: one batch on one coprocessor."""

    coprocessor: int
    entries: tuple[QueueEntry, ...]
    start_seconds: float
    service_seconds: float


@dataclass
class RuntimeReport(ServeReport):
    """A :class:`ServeReport` plus the serving-runtime extras."""

    rejected: list[Rejection] = field(default_factory=list)
    telemetry: Telemetry | None = None

    @property
    def offered(self) -> int:
        return len(self.results) + len(self.rejected)

    @property
    def rejection_fraction(self) -> float:
        return len(self.rejected) / self.offered if self.offered else 0.0

    def latency_summary(self, tenant: str | None = None) -> LatencySummary:
        if self.telemetry is not None:
            return self.telemetry.latency_summary(tenant)
        return LatencySummary.of([
            r.latency_seconds for r in self.results
            if tenant is None or r.job.tenant == tenant
        ])

    def utilization(self) -> list[float]:
        if self.telemetry is None:
            return []
        return self.telemetry.utilization(self.makespan_seconds)


class ServingRuntime:
    """Event-driven scheduler simulation over the per-op cost models.

    One runtime instance performs one run: schedulers and telemetry are
    stateful, so construct a fresh runtime (or at least a fresh
    scheduler) for every workload.
    """

    def __init__(self, cost: CostModel, *,
                 scheduler: Scheduler | None = None,
                 batching: BatchPolicy | None = None,
                 tenants: TenantSet | None = None,
                 num_coprocessors: int | None = None) -> None:
        self.cost = cost
        self.num_coprocessors = (cost.config.num_coprocessors
                                 if num_coprocessors is None
                                 else num_coprocessors)
        if self.num_coprocessors < 1:
            raise ValueError("need at least one coprocessor")
        # `is None`, not `or`: an empty scheduler is falsy via __len__.
        self.scheduler = FifoScheduler() if scheduler is None else scheduler
        self.tenants = TenantSet() if tenants is None else tenants
        # A weight-less WFQ scheduler inherits the tenant weights.
        if (isinstance(self.scheduler, WeightedFairScheduler)
                and not self.scheduler.weights):
            self.scheduler.weights.update(self.tenants.weights())
        self.batcher = DmaBatcher(cost, batching)
        self.admission = AdmissionController(self.tenants,
                                             self.num_coprocessors)
        self._ran = False

    @classmethod
    def for_server(cls, server: CloudServer, **kwargs) -> "ServingRuntime":
        return cls(server.cost, **kwargs)

    # -- the event loop ----------------------------------------------------------------

    def run(self, jobs: list[Job]) -> RuntimeReport:
        if self._ran:
            raise RuntimeError(
                "a ServingRuntime is single-use; build a fresh one per run"
            )
        self._ran = True
        self.scheduler.bind(self.num_coprocessors)

        heap = EventHeap()
        for job in jobs:
            heap.push(job.arrival_seconds, EventKind.ARRIVAL, job)

        telemetry = Telemetry(self.num_coprocessors)
        report = RuntimeReport(telemetry=telemetry)
        free = [True] * self.num_coprocessors
        queued_per_tenant: dict[str, int] = {}
        seq = itertools.count()

        while heap:
            event = heap.pop()
            now = event.time_seconds
            if event.kind is EventKind.ARRIVAL:
                self._on_arrival(event.payload, now, heap, telemetry,
                                 report, queued_per_tenant, seq, free)
            elif event.kind is EventKind.DISPATCH:
                self._on_dispatch(now, heap, telemetry, free,
                                  queued_per_tenant)
            else:
                self._on_completion(event.payload, now, heap, telemetry,
                                    report, free)
        return report

    def _on_arrival(self, job: Job, now: float, heap: EventHeap,
                    telemetry: Telemetry, report: RuntimeReport,
                    queued_per_tenant: dict[str, int],
                    seq: "itertools.count", free: list[bool]) -> None:
        cost = self.cost.job_seconds(job.kind)
        reason = self.admission.reject_reason(
            job, queued_per_tenant.get(job.tenant, 0),
            self.scheduler.backlog_seconds, cost,
        )
        if reason is not None:
            report.rejected.append(
                Rejection(job=job, time_seconds=now, reason=reason)
            )
            return
        self.scheduler.enqueue(
            QueueEntry(job=job, cost_seconds=cost, seq=next(seq))
        )
        queued_per_tenant[job.tenant] = \
            queued_per_tenant.get(job.tenant, 0) + 1
        telemetry.record_queue_depth(now, len(self.scheduler))
        # All-busy arrivals just queue; the next completion dispatches.
        if any(free):
            heap.push(now, EventKind.DISPATCH)

    def _on_dispatch(self, now: float, heap: EventHeap,
                     telemetry: Telemetry, free: list[bool],
                     queued_per_tenant: dict[str, int]) -> None:
        for coproc in range(self.num_coprocessors):
            if not free[coproc] or not len(self.scheduler):
                continue
            # Coalesce only the backlog beyond what the still-free
            # coprocessors can absorb one job each: a train must never
            # serialize work that could run in parallel right now.
            still_free = sum(
                1 for c in range(coproc, self.num_coprocessors) if free[c]
            )
            fair_share = -(-len(self.scheduler) // still_free)
            limit = min(self.batcher.max_jobs, fair_share)
            batch: list[QueueEntry] = []
            while len(batch) < limit:
                entry = self.scheduler.next_entry(coproc, now)
                if entry is None:
                    break
                batch.append(entry)
                queued_per_tenant[entry.tenant] -= 1
            if not batch:
                continue
            telemetry.record_queue_depth(now, len(self.scheduler))
            telemetry.record_dispatch(coproc, len(batch))
            service = self.batcher.service_seconds(batch)
            free[coproc] = False
            heap.push(now + service, EventKind.COMPLETION, _Dispatched(
                coprocessor=coproc, entries=tuple(batch),
                start_seconds=now, service_seconds=service,
            ))

    def _on_completion(self, done: _Dispatched, now: float,
                       heap: EventHeap, telemetry: Telemetry,
                       report: RuntimeReport, free: list[bool]) -> None:
        latencies: list[tuple[str, float]] = []
        violations = 0
        for entry in done.entries:
            report.results.append(JobResult(
                job=entry.job, coprocessor=done.coprocessor,
                start_seconds=done.start_seconds, finish_seconds=now,
            ))
            latency = now - entry.arrival_seconds
            latencies.append((entry.tenant, latency))
            sla = self.tenants.get(entry.tenant).sla_seconds
            if sla is not None and latency > sla:
                violations += 1
        telemetry.record_completion(done.coprocessor, done.service_seconds,
                                    latencies, violations)
        free[done.coprocessor] = True
        heap.push(now, EventKind.DISPATCH)


def simulate(server: CloudServer, jobs: list[Job],
             scheduler: Scheduler | None = None,
             batching: BatchPolicy | None = None,
             tenants: TenantSet | None = None) -> RuntimeReport:
    """One-call convenience: build a runtime for `server` and run it."""
    runtime = ServingRuntime.for_server(server, scheduler=scheduler,
                                        batching=batching, tenants=tenants)
    return runtime.run(jobs)
