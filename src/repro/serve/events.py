"""Event primitives of the discrete-event serving runtime.

The engine advances a simulated clock through a priority queue of
timestamped events. Three kinds exist: a job ARRIVAL from a client
stream, the DISPATCH of a batch onto a coprocessor (recorded for the
telemetry traces), and the COMPLETION that frees the coprocessor.
Events at equal timestamps are ordered by insertion sequence so runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class EventKind(Enum):
    ARRIVAL = "arrival"
    DISPATCH = "dispatch"
    COMPLETION = "completion"


@dataclass(order=True, frozen=True)
class Event:
    """One timestamped occurrence in the simulation."""

    time_seconds: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventHeap:
    """A deterministic min-heap of events (time, then insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time_seconds: float, kind: EventKind,
             payload: Any = None) -> Event:
        if time_seconds < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time_seconds=time_seconds, seq=next(self._seq),
                      kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
