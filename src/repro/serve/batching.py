"""Batched DMA: coalescing uploads to amortise Arm/DMA setup cost.

Table I prices each polynomial burst with its own Arm-side DMA setup
(~14.4 us); sending two operand ciphertexts is four bursts and four
setups. When a backlog exists, the runtime can coalesce the uploads of
several queued jobs into one descriptor train: the payload bursts still
pay full DMA time, but the Arm setup is paid once per train instead of
once per polynomial. This is the server-side face of the batching that
:meth:`repro.system.network.ClientSession.batched_throughput` models on
the network side — one network request (one request latency) carries
the operands of many operations, and one DMA train moves them to BRAM.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..system.network import NetworkModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..system.server import CostModel
    from .schedulers import QueueEntry


@dataclass(frozen=True)
class BatchPolicy:
    """How aggressively the dispatcher coalesces queued jobs.

    ``max_jobs=1`` disables batching (every job pays the full Table I
    transfer cost, matching ``CloudServer.serve``). Larger values let a
    free coprocessor grab up to ``max_jobs`` queued jobs and run them
    as one upload train / compute burst / download train; all jobs in
    the train complete together.
    """

    max_jobs: int = 1

    def __post_init__(self) -> None:
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be at least 1")

    @classmethod
    def none(cls) -> BatchPolicy:
        return cls(max_jobs=1)


class DmaBatcher:
    """Prices a coalesced train of jobs against the DMA model."""

    #: Polynomial bursts per direction (2 operand cts x 2 polys in,
    #: 1 result ct = 2 polys out) — the Table I job shape.
    POLYS_IN_PER_JOB = 4
    POLYS_OUT_PER_JOB = 2

    def __init__(self, cost: CostModel,
                 policy: BatchPolicy | None = None) -> None:
        self.cost = cost
        self.policy = BatchPolicy.none() if policy is None else policy
        dma = cost.dma
        self._burst_seconds = dma.transfer_seconds(cost.params.poly_bytes)
        self._setup_seconds = dma.arm_setup_seconds

    @property
    def max_jobs(self) -> int:
        return self.policy.max_jobs

    def upload_seconds(self, num_jobs: int) -> float:
        """One descriptor train for all operand polynomials of the batch."""
        if num_jobs == 1:
            return self.cost.transfer_in_seconds()
        bursts = num_jobs * self.POLYS_IN_PER_JOB
        return bursts * self._burst_seconds + self._setup_seconds

    def download_seconds(self, num_jobs: int) -> float:
        if num_jobs == 1:
            return self.cost.transfer_out_seconds()
        bursts = num_jobs * self.POLYS_OUT_PER_JOB
        return bursts * self._burst_seconds + self._setup_seconds

    def service_seconds(self, entries: Sequence[QueueEntry]) -> float:
        """Coprocessor occupancy of one dispatched batch.

        A single-job "train" prices exactly as the unbatched job —
        including any per-op transfer footprint the job carries. Longer
        trains coalesce each job's real polynomial bursts behind one
        Arm setup per direction.
        """
        if not entries:
            raise ValueError("a batch needs at least one job")
        if len(entries) == 1:
            return self.cost.job_seconds_of(entries[0].job)
        compute = sum(self.cost.compute_seconds(e.kind) for e in entries)
        bursts_in = sum(
            self.POLYS_IN_PER_JOB if e.job.polys_in is None
            else e.job.polys_in for e in entries
        )
        bursts_out = sum(
            self.POLYS_OUT_PER_JOB if e.job.polys_out is None
            else e.job.polys_out for e in entries
        )
        # A direction that moves no bursts (all-resident operands or
        # no downloads) pays no Arm setup either.
        upload = (bursts_in * self._burst_seconds + self._setup_seconds
                  if bursts_in else 0.0)
        download = (bursts_out * self._burst_seconds + self._setup_seconds
                    if bursts_out else 0.0)
        return upload + compute + download

    def setup_savings_seconds(self, num_jobs: int) -> float:
        """Arm setup time a train of `num_jobs` saves over singles."""
        singles = num_jobs * (self.POLYS_IN_PER_JOB
                              + self.POLYS_OUT_PER_JOB) * self._setup_seconds
        batched = 2 * self._setup_seconds
        return max(singles - batched, 0.0) if num_jobs > 1 else 0.0

    def saturated_mult_throughput(self, num_coprocessors: int,
                                  num_jobs: int) -> float:
        """Mult/s of always-full trains (the batching ceiling)."""
        from ..system.workloads import JobKind

        per_job = self.cost.compute_seconds(JobKind.MULT)
        batch = (self.upload_seconds(num_jobs) + num_jobs * per_job
                 + self.download_seconds(num_jobs))
        return num_coprocessors * num_jobs / batch


def network_amortized_upload_seconds(params, num_jobs: int,
                                     network: NetworkModel | None = None,
                                     ) -> float:
    """Ingress time of one coalesced client upload carrying `num_jobs`.

    The network-side analogue of the DMA train: one request latency for
    the whole batch, payload at line rate — the per-op cost this
    amortises is what lets ``ClientSession.batched_throughput`` return
    to the FPGA-bound 400 Mult/s.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be at least 1")
    network = network or NetworkModel()
    payload = num_jobs * 2 * params.ciphertext_bytes
    return network.transfer_seconds(payload)
