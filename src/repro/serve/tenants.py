"""Multi-tenant clients: weights, SLA deadlines, admission control.

The ROADMAP's "millions of users" goal makes the server a shared
resource: tenants submit independent job streams, pay for a service
share (their WFQ weight), and may carry a latency SLA. Admission
control protects the SLAs of admitted work — once the backlog predicts
a completion past a job's deadline, rejecting at arrival is strictly
better than accepting work that is already dead on arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..system.workloads import Job


@dataclass(frozen=True)
class Tenant:
    """One client organisation sharing the server."""

    name: str
    weight: float = 1.0
    #: Completion deadline measured from arrival; None = best-effort.
    sla_seconds: float | None = None
    #: Reject arrivals beyond this many queued jobs; None = unbounded.
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")
        if self.sla_seconds is not None and self.sla_seconds <= 0:
            raise ValueError("SLA deadline must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("queue depth bound must be non-negative")


@dataclass
class TenantSet:
    """The tenants known to a runtime; unknown names get defaults."""

    tenants: dict[str, Tenant] = field(default_factory=dict)

    @classmethod
    def of(cls, *tenants: Tenant) -> TenantSet:
        return cls({t.name: t for t in tenants})

    def get(self, name: str) -> Tenant:
        return self.tenants.get(name) or Tenant(name=name)

    def weights(self) -> dict[str, float]:
        return {name: t.weight for name, t in self.tenants.items()}

    def __contains__(self, name: str) -> bool:
        return name in self.tenants


@dataclass(frozen=True)
class Rejection:
    """One refused arrival, with the reason admission gave."""

    job: Job
    time_seconds: float
    reason: str


class AdmissionController:
    """Arrival-time gate: queue-depth caps and deadline feasibility.

    ``reject_reason`` sees the tenant's current in-queue count and the
    scheduler's total backlog (in service-seconds). A job is refused
    when its tenant's queue cap is hit, or when the backlog divided
    across the coprocessors already predicts a completion past the
    job's SLA deadline. The prediction assumes a FIFO drain of the
    backlog with per-job transfer costs: under a reordering policy
    (SJF, WFQ) a cheap job may overtake the backlog and meet a
    deadline this gate rejected, and conversely batching discounts
    and later arrivals mean admitted jobs can still miss their SLA
    (counted by telemetry). Scheduler-aware admission is an open
    ROADMAP item.
    """

    def __init__(self, tenants: TenantSet,
                 num_coprocessors: int) -> None:
        self.tenants = tenants
        self.num_coprocessors = max(num_coprocessors, 1)

    def reject_reason(self, job: Job, queued_for_tenant: int,
                      backlog_seconds: float,
                      job_cost_seconds: float) -> str | None:
        """The reason to refuse `job`, or None to admit it."""
        tenant = self.tenants.get(job.tenant)
        if (tenant.max_queue_depth is not None
                and queued_for_tenant >= tenant.max_queue_depth):
            return "queue-depth"
        if tenant.sla_seconds is not None:
            predicted = (backlog_seconds / self.num_coprocessors
                         + job_cost_seconds)
            if predicted > tenant.sla_seconds:
                return "deadline"
        return None
