"""Pluggable executors: serial, GIL-releasing threads, processes.

One :class:`Executor` protocol, three implementations:

* :class:`SerialExecutor` — the do-nothing baseline; ``workers == 1``
  makes every dispatcher take its untiled fast path, so default runs
  are byte-identical to the pre-parallel engine.
* :class:`ThreadPoolExecutor` — worker threads over the tile tasks.
  The engine's hot loops are dgemms and wide numpy ufuncs, which drop
  the GIL for the duration of the kernel, so threads buy real
  multi-core wall-clock on the dominant cost without any pickling or
  copying.
* :class:`~repro.parallel.shmem.SharedMemoryProcessExecutor`
  (built here, defined in :mod:`.shmem`) — spawn-based workers over
  preallocated shared-memory arenas, for the fully GIL-free regime.

Executors never decide *what* is parallel — the engine plans disjoint
(polynomial, channel) tiles and hands them over — and they never
change results: tiles write disjoint slices and each tile's
arithmetic is bit-identical to its serial counterpart, so scheduling
order is unobservable. Every dispatch records utilisation and
tile-shape instruments in the active metrics registry, and returns
per-tile timings the engine turns into per-worker trace spans.

:func:`build_executor` is the only constructor call sites use: when a
requested executor cannot be built (unknown mode, bad worker count,
process pool failure) it records a structured :class:`ExecutorFallback`,
warns once through the module logger, bumps the fallback counter, and
returns a serial executor — loud degradation, never a crash and never
a silent behaviour change.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent import futures
from dataclasses import dataclass
from typing import Any, Protocol

from ..obs import counter as _obs_counter
from ..obs import gauge as _obs_gauge
from ..obs import histogram as _obs_histogram
from .config import EXECUTOR_MODES, ExecutionConfig

__all__ = [
    "Executor",
    "ExecutorFallback",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "TileTiming",
    "build_executor",
    "executor_fallbacks",
    "in_worker",
    "reset_executor_fallbacks",
    "split_range",
]

logger = logging.getLogger(__name__)

PARALLEL_DISPATCHES = _obs_counter(
    "parallel_dispatch_total",
    "Tile fan-outs dispatched by the functional engine.",
    labels=("executor",),
)
PARALLEL_TILE_QUEUE = _obs_histogram(
    "parallel_tiles_per_dispatch",
    "Tile-queue length of each engine fan-out.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
WORKER_UTILISATION = _obs_gauge(
    "parallel_worker_utilisation",
    "Busy fraction of the worker pool over the last dispatch.",
    labels=("executor",),
)
EXECUTOR_FALLBACK_COUNTER = _obs_counter(
    "executor_fallback_total",
    "Executor requests that degraded to the serial executor.",
)


@dataclass(frozen=True)
class TileTiming:
    """One tile's execution record: who ran it and when (wall clock)."""

    tile: tuple
    worker: str
    start: float
    end: float

    @property
    def busy_seconds(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass(frozen=True)
class ExecutorFallback:
    """Structured record of one executor request that went serial."""

    mode: str
    workers: int
    reason: str


_FALLBACKS: list[ExecutorFallback] = []
_FALLBACK_LIMIT = 64
_WARNED_FALLBACKS: set[tuple[str, int]] = set()


def executor_fallbacks() -> tuple[ExecutorFallback, ...]:
    """Every recorded degrade-to-serial event (bounded, process-wide)."""
    return tuple(_FALLBACKS)


def reset_executor_fallbacks() -> None:
    _FALLBACKS.clear()
    _WARNED_FALLBACKS.clear()


def _note_fallback(mode: str, workers: int, reason: str) -> None:
    EXECUTOR_FALLBACK_COUNTER.inc()
    if len(_FALLBACKS) < _FALLBACK_LIMIT:
        _FALLBACKS.append(ExecutorFallback(mode, workers, reason))
    key = (mode, workers)
    if key not in _WARNED_FALLBACKS:
        _WARNED_FALLBACKS.add(key)
        logger.warning(
            "executor %r (workers=%d) unavailable, degrading to serial: %s",
            mode, workers, reason,
        )


class Executor(Protocol):
    """What the engine needs from an execution strategy."""

    #: Human-readable family name ("serial" | "threads" | "processes").
    name: str
    #: Concurrently running tiles; 1 means dispatchers skip tiling.
    workers: int
    #: Whether tasks see the caller's arrays directly (threads) or
    #: through a copied shared-memory arena (processes). Fan-outs that
    #: rely on closures over caller state require this.
    shares_address_space: bool

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, results in input order."""
        ...  # pragma: no cover - protocol

    def map_array_tiles(self, kind: str, src: Any, dst: Any,
                        tiles: Sequence[tuple], common: tuple,
                        ) -> list[TileTiming]:
        """Run registered task ``kind`` over disjoint tiles of dst."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release pool resources; the executor is dead afterwards."""
        ...  # pragma: no cover - protocol


#: Set while a pool worker is executing a task, so nested engine calls
#: made from inside a task resolve to the serial executor instead of
#: re-entering (and deadlocking or forking) the pool.
_IN_WORKER = threading.local()


def in_worker() -> bool:
    return getattr(_IN_WORKER, "flag", False)


def _run_as_worker(fn: Callable[..., Any], *args: Any) -> Any:
    _IN_WORKER.flag = True
    try:
        return fn(*args)
    finally:
        _IN_WORKER.flag = False


def split_range(size: int, parts: int) -> list[tuple[int, int]]:
    """``size`` positions as ``min(parts, size)`` contiguous chunks.

    Deterministic and as even as possible (remainder spread over the
    leading chunks) — the channel-tiling primitive shared by the NTT
    dispatcher and the evaluator's element-wise fan-outs.
    """
    parts = max(1, min(parts, size))
    base, rem = divmod(size, parts)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class _InstrumentedExecutor:
    """Shared dispatch accounting for every executor implementation."""

    name = "base"
    workers = 1
    shares_address_space = True

    def _run_tiles(self, kind: str, src: Any, dst: Any,
                   tiles: Sequence[tuple], common: tuple,
                   ) -> list[TileTiming]:
        raise NotImplementedError  # pragma: no cover - abstract

    def map_array_tiles(self, kind: str, src: Any, dst: Any,
                        tiles: Sequence[tuple], common: tuple,
                        ) -> list[TileTiming]:
        started = time.perf_counter()
        timings = self._run_tiles(kind, src, dst, tiles, common)
        wall = time.perf_counter() - started
        PARALLEL_DISPATCHES.inc(executor=self.name)
        PARALLEL_TILE_QUEUE.observe(len(tiles))
        capacity = wall * max(1, self.workers)
        if capacity > 0:
            busy = sum(t.busy_seconds for t in timings)
            WORKER_UTILISATION.set(min(1.0, busy / capacity),
                                   executor=self.name)
        return timings

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class SerialExecutor(_InstrumentedExecutor):
    """In-thread execution; the engine's untiled default."""

    name = "serial"
    workers = 1
    shares_address_space = True

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> list[Any]:
        return [fn(item) for item in items]

    def _run_tiles(self, kind: str, src: Any, dst: Any,
                   tiles: Sequence[tuple], common: tuple,
                   ) -> list[TileTiming]:
        from .tasks import TASKS

        fn = TASKS[kind]
        timings = []
        for tile in tiles:
            t0 = time.perf_counter()
            fn(src, dst, tile, common)
            timings.append(TileTiming(tile, "main", t0,
                                      time.perf_counter()))
        return timings


class ThreadPoolExecutor(_InstrumentedExecutor):
    """Worker threads that release the GIL into BLAS gemms.

    The engine tiles are dominated by dgemm and wide int64/float64
    ufunc passes; numpy releases the GIL for both, so a thread pool
    gets real concurrency on the expensive part while sharing the
    caller's arrays (no copies, no pickling). Tasks run with the
    in-worker flag set, so any engine call a task makes internally is
    forced serial rather than re-entering this pool.
    """

    name = "threads"
    shares_address_space = True

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._pool = futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-w"
        )

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> list[Any]:
        jobs = [self._pool.submit(_run_as_worker, fn, item)
                for item in items]
        return [job.result() for job in jobs]

    def _run_tiles(self, kind: str, src: Any, dst: Any,
                   tiles: Sequence[tuple], common: tuple,
                   ) -> list[TileTiming]:
        from .tasks import TASKS

        fn = TASKS[kind]

        def run(tile: tuple) -> TileTiming:
            t0 = time.perf_counter()
            fn(src, dst, tile, common)
            return TileTiming(tile, threading.current_thread().name,
                              t0, time.perf_counter())

        jobs = [self._pool.submit(_run_as_worker, run, tile)
                for tile in tiles]
        return [job.result() for job in jobs]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def build_executor(config: ExecutionConfig) -> Executor:
    """Construct the configured executor, degrading loudly to serial.

    Every failure path — unknown mode, non-positive worker count,
    pool construction raising — records an :class:`ExecutorFallback`
    (plus a rate-limited warning and a counter increment) and returns
    a :class:`SerialExecutor`, so a bad ``REPRO_EXECUTOR`` env or a
    container without shared-memory support costs throughput, never
    correctness or a crash.
    """
    mode = config.mode
    if mode == "serial":
        return SerialExecutor()
    if mode not in EXECUTOR_MODES:
        _note_fallback(mode, config.workers,
                       f"unknown executor mode (expected one of "
                       f"{', '.join(EXECUTOR_MODES)})")
        return SerialExecutor()
    if config.workers < 1:
        _note_fallback(mode, config.workers,
                       "worker count must be a positive integer "
                       "(check REPRO_WORKERS)")
        return SerialExecutor()
    try:
        if mode == "threads":
            return ThreadPoolExecutor(config.workers)
        from .shmem import SharedMemoryProcessExecutor

        return SharedMemoryProcessExecutor(config.workers)
    except Exception as exc:  # noqa: BLE001 - any failure degrades
        _note_fallback(mode, config.workers,
                       f"{type(exc).__name__}: {exc}")
        return SerialExecutor()
