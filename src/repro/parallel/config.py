"""Executor selection: one small config object, sourced from the env.

The functional engine picks its execution strategy from an
:class:`ExecutionConfig` — ``mode`` names the executor family
(``serial`` | ``threads`` | ``processes``) and ``workers`` sizes the
pool. The default comes from the environment (``REPRO_EXECUTOR``,
``REPRO_WORKERS``) so the CI parallel leg, the bench sweep, and a
user shell can switch the whole stack without touching call sites;
`LocalBackend` / the CLI override it per run.

Parsing here is deliberately forgiving: an unknown mode or a garbled
worker count is *kept* in the config and rejected loudly later by
:func:`repro.parallel.executors.build_executor`, which records a
structured :class:`~repro.parallel.executors.ExecutorFallback` and
degrades to serial — a typo in an env var must never crash a run,
and must never silently change the numbers either.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["EXECUTOR_MODES", "ExecutionConfig", "available_cores"]

#: The executor families :func:`build_executor` knows how to build.
EXECUTOR_MODES = ("serial", "threads", "processes")

#: Pool-size ceiling when ``REPRO_WORKERS`` is unset: enough to cover
#: the limb/channel tiling sweet spot without oversubscribing small
#: CI runners.
_DEFAULT_WORKER_CAP = 8


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutionConfig:
    """How the functional engine should spread its work.

    ``mode`` is one of :data:`EXECUTOR_MODES` (anything else survives
    parsing and triggers the loud serial fallback at build time);
    ``workers`` is the pool size — ``serial`` ignores it, and the
    parallel executors treat it as the number of concurrently running
    tiles.
    """

    mode: str = "serial"
    workers: int = 1

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> ExecutionConfig:
        """Read ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``.

        An absent ``REPRO_WORKERS`` sizes the pool to the affinity
        mask (capped); a malformed one is carried through as
        ``workers=0`` so the builder can report it instead of raising
        mid-parse.
        """
        env = os.environ if env is None else env
        mode = env.get("REPRO_EXECUTOR", "serial").strip().lower() or "serial"
        raw_workers = env.get("REPRO_WORKERS")
        if raw_workers is None:
            workers = 1 if mode == "serial" else min(
                _DEFAULT_WORKER_CAP, available_cores()
            )
        else:
            try:
                workers = int(raw_workers)
            except ValueError:
                workers = 0  # flagged by build_executor
        return cls(mode=mode, workers=workers)
