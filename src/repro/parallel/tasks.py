"""Named array-tile tasks: the work units executors know how to run.

A task is a module-level function ``task(src, dst, tile, common)``
operating on one disjoint slice of a shared input/output array pair —
module-level so the process executor can name it across a spawn
boundary (closures don't pickle; a registry key does). The thread and
serial executors call the same functions directly, so every executor
runs byte-for-byte the same tile code.

The one engine task, ``ntt_tile``, runs a single (polynomial, channel
range) tile of a batched transform through a *channel-subset*
:class:`~repro.nttmath.batch.BasisTransformer` that inherits the
parent's stage geometry — same limb plans, same reduction schedule,
so tiled output is bit-identical to the serial loop (see
``BasisTransformer.subset``). Imports of the engine stay inside the
function bodies: this module must be importable by a bare spawned
worker before the heavy numeric stack is touched, and the engine
imports :mod:`repro.parallel` itself.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

__all__ = ["TASKS", "task"]

#: Registry of picklable tile tasks, keyed by the wire name the
#: executors dispatch on.
TASKS: dict[str, Callable[..., None]] = {}


def task(name: str) -> Callable[[Callable[..., None]], Callable[..., None]]:
    """Register ``fn`` under ``name`` in :data:`TASKS`."""

    def register(fn: Callable[..., None]) -> Callable[..., None]:
        TASKS[name] = fn
        return fn

    return register


@task("ntt_tile")
def _ntt_tile(src: Any, dst: Any, tile: tuple[int, int, int],
              common: tuple) -> None:
    """One (polynomial, channel-range) tile of a batched transform.

    ``common`` is ``(op, primes, n, lazy, constants)`` — enough to
    rebuild the parent transformer (cached per process) and carve the
    channel-subset plan out of it. ``src``/``dst`` are the full
    stacked arrays; the tile touches only its own disjoint slices, so
    any number of tiles may run concurrently.
    """
    from ..nttmath import batch

    op, primes, n, lazy, constants = common
    jdx, c0, c1 = tile
    sub = batch.basis_transformer(primes, n).subset(c0, c1)
    if op == "forward":
        sub._fwd.apply(sub, src[jdx, c0:c1], dst[jdx, c0:c1], lazy=lazy)
    elif op == "inverse":
        sub._inv.apply(sub, src[jdx, c0:c1], dst[jdx, c0:c1])
    elif op == "inverse_scaled":
        plan = sub.scaled_plan(tuple(constants[c0:c1]))
        plan.apply(sub, src[jdx, c0:c1], dst[jdx, c0:c1])
    elif op == "forward_broadcast":
        sub._fwd.apply_broadcast(sub, src[jdx], dst[jdx, c0:c1], lazy=lazy)
    else:  # pragma: no cover - dispatcher bug, not a runtime state
        raise ValueError(f"unknown ntt tile op {op!r}")
