"""True wall-clock parallelism for the functional engine.

The paper's architecture is parallel by construction — residue
channels and NTT cores advance in lockstep — while the functional
engine was, until this package, exact single-process numpy. This
layer makes the hardware story literal on the software side:

* :mod:`.executors` — one :class:`~.executors.Executor` protocol with
  a serial baseline, a GIL-releasing thread pool, and (via
  :mod:`.shmem`) a spawn-based shared-memory process pool;
* :mod:`.config` — :class:`~.config.ExecutionConfig`, sourced from
  ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``;
* :mod:`.tasks` — the named, picklable tile tasks every executor
  runs identically.

Call sites read :func:`active_executor` — an explicitly scoped
executor (:func:`use_executor`, used by ``LocalBackend`` and the
CLI's ``--executor/--workers`` flags), else the process default built
lazily from the environment. Inside a pool worker the resolution is
pinned to serial so tile tasks can call back into the engine without
re-entering the pool. Parallel execution is bit-identical to serial:
tiles inherit the parent transform's stage geometry and write
disjoint slices, so only the wall clock changes.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from .config import EXECUTOR_MODES, ExecutionConfig, available_cores
from .executors import (
    Executor,
    ExecutorFallback,
    SerialExecutor,
    ThreadPoolExecutor,
    TileTiming,
    build_executor,
    executor_fallbacks,
    in_worker,
    reset_executor_fallbacks,
    split_range,
)
from .shmem import SharedMemoryProcessExecutor

__all__ = [
    "EXECUTOR_MODES",
    "ExecutionConfig",
    "Executor",
    "ExecutorFallback",
    "SerialExecutor",
    "SharedMemoryProcessExecutor",
    "ThreadPoolExecutor",
    "TileTiming",
    "active_executor",
    "available_cores",
    "build_executor",
    "executor_fallbacks",
    "in_worker",
    "inproc_executor",
    "reset_default_executor",
    "reset_executor_fallbacks",
    "split_range",
    "use_executor",
]

_SERIAL = SerialExecutor()
_ACTIVE: ContextVar[Executor | None] = ContextVar(
    "repro_active_executor", default=None
)
_DEFAULT: Executor | None = None
_DEFAULT_LOCK = threading.Lock()


def active_executor() -> Executor:
    """The executor engine dispatchers fan out on right now.

    Resolution order: the in-worker serial pin (tasks never nest
    pools), the innermost :func:`use_executor` scope, then the
    process-wide default built once from the environment.
    """
    if in_worker():
        return _SERIAL
    scoped = _ACTIVE.get()
    if scoped is not None:
        return scoped
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = build_executor(ExecutionConfig.from_env())
    return _DEFAULT


def reset_default_executor() -> None:
    """Drop (and close) the env-derived default executor.

    The next :func:`active_executor` call rebuilds it from the current
    environment — the hook tests and long-lived processes use after
    changing ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        closing, _DEFAULT = _DEFAULT, None
    if closing is not None and closing is not _SERIAL:
        closing.close()


@contextmanager
def use_executor(executor: Executor | ExecutionConfig | str,
                 workers: int | None = None) -> Iterator[Executor]:
    """Scope an executor over a block.

    Accepts a live :class:`Executor` (caller keeps ownership), an
    :class:`ExecutionConfig`, or a mode string plus ``workers`` — the
    latter two are built here (with the loud serial fallback) and
    closed when the block exits.
    """
    owned: Executor | None = None
    if isinstance(executor, str):
        config = ExecutionConfig(
            mode=executor.strip().lower() or "serial",
            workers=1 if workers is None else workers,
        )
        executor = owned = build_executor(config)
    elif isinstance(executor, ExecutionConfig):
        executor = owned = build_executor(executor)
    token = _ACTIVE.set(executor)
    try:
        yield executor
    finally:
        _ACTIVE.reset(token)
        if owned is not None and not isinstance(owned, SerialExecutor):
            owned.close()


def inproc_executor() -> Executor | None:
    """The active executor iff it can run closures over caller arrays.

    The evaluator's element-wise fan-outs (tensor products, keyswitch
    accumulation, the four lifts) capture live numpy views, which only
    address-space-sharing executors can execute — under the process
    executor those stages stay serial and the NTT tiles carry the
    parallelism. Returns ``None`` when the fan-out should not happen.
    """
    executor = active_executor()
    if executor.workers > 1 and executor.shares_address_space:
        return executor
    return None
