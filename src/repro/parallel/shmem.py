"""Shared-memory process executor: spawn workers over float64 arenas.

The fully GIL-free strategy: persistent spawned worker processes pull
tile batches from per-worker queues and execute them against two
preallocated :class:`SharedArena` blocks — the dispatcher copies the
stacked input into the input arena, workers write their disjoint
tile slices into the output arena, and the dispatcher copies the
result back out. Copies are O(data) while the tile work is
O(data * limbs * sub-DFT length), so the trade wins exactly where
parallelism matters: the large-ring gemm transforms.

Design constraints this implementation answers:

* **Determinism** — tiles write disjoint slices of the output arena
  and each tile is bit-identical to its serial counterpart, so the
  assembled result does not depend on worker scheduling.
* **No fork bombs** — workers pin ``REPRO_EXECUTOR=serial`` in their
  own environment before importing the engine, and run tasks with the
  in-worker flag set, so an engine call inside a tile can never
  recursively build another process pool.
* **Spawn correctness** — the ``spawn`` start method is used
  unconditionally (fork would duplicate BLAS thread state and the
  metrics ContextVars); workers import :mod:`repro.parallel.tasks`
  lazily, and the dispatcher ships ``sys.path`` so the spawned
  interpreter can resolve the package regardless of how the parent
  was launched.
* **Comparable clocks** — tile timings are taken with
  ``time.perf_counter`` inside the workers; on Linux that is
  CLOCK_MONOTONIC, which is system-wide, so the per-worker spans the
  engine emits line up with the dispatcher's wall clock.

Construction failures (no /dev/shm, sandboxed semaphores, dead
spawn) are raised to :func:`~repro.parallel.executors.build_executor`,
which converts them into the structured serial fallback.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import sys
import time
import traceback
from collections.abc import Callable, Iterable, Sequence
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from typing import Any

import numpy as np

from .executors import TileTiming, _InstrumentedExecutor, _note_fallback, \
    _run_as_worker

__all__ = ["SharedArena", "SharedMemoryProcessExecutor"]

#: Generous ceiling on one worker round trip: the first dispatch pays
#: for a cold interpreter + numpy + engine import in every worker.
_RESULT_TIMEOUT_SECONDS = 300.0

#: Construction handshake budget: a spawned interpreter only has to
#: import the stdlib before reporting ready, so a silence this long
#: means the spawn is broken (unimportable ``__main__``, dead fd) and
#: the pool must fail construction — loudly, into the serial fallback.
_START_TIMEOUT_SECONDS = 60.0

_MIN_ARENA_BYTES = 1 << 20


class SharedArena:
    """One resizable shared-memory block with ndarray views.

    Grows by powers of two and only ever forward — reallocation swaps
    in a fresh uniquely-named segment, and workers attach by name per
    dispatch, so a grown arena is picked up automatically.
    """

    def __init__(self, tag: str, nbytes: int = _MIN_ARENA_BYTES) -> None:
        self.tag = tag
        self._shm: _shm.SharedMemory | None = None
        self._generation = 0
        self.ensure(nbytes)

    @property
    def name(self) -> str:
        assert self._shm is not None
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return 0 if self._shm is None else self._shm.size

    def ensure(self, nbytes: int) -> None:
        """Guarantee capacity for ``nbytes`` (amortised doubling)."""
        if self._shm is not None and self._shm.size >= nbytes:
            return
        size = _MIN_ARENA_BYTES
        while size < nbytes:
            size *= 2
        self.close()
        self._generation += 1
        self._shm = _shm.SharedMemory(
            create=True, size=size,
            name=f"repro-{self.tag}-{os.getpid()}-{self._generation}",
        )

    def asarray(self, shape: tuple[int, ...], dtype: Any) -> np.ndarray:
        assert self._shm is not None
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        with contextlib.suppress(FileNotFoundError, OSError):
            shm.close()
            shm.unlink()


def _attach(cache: dict[str, tuple[str, _shm.SharedMemory]],
            name: str) -> _shm.SharedMemory:
    """Worker-side segment attachment, cached per arena *tag*.

    Names look like ``repro-<tag>-<pid>-<generation>``; a new
    generation of one tag (the dispatcher grew that arena) replaces —
    and closes — only the stale segment of the same tag, never the
    other arenas referenced by the same message.
    """
    tag = name.split("-")[1] if name.count("-") >= 2 else name
    cached = cache.get(tag)
    if cached is not None:
        cached_name, seg = cached
        if cached_name == name:
            return seg
        seg.close()
    seg = _shm.SharedMemory(name=name)
    cache[tag] = (name, seg)
    return seg


def _worker_main(worker_id: int, sys_path: list[str],
                 task_queue: Any, result_queue: Any) -> None:
    """Worker loop: attach arenas, run tile batches, report timings."""
    os.environ["REPRO_EXECUTOR"] = "serial"  # no nested pools, ever
    for entry in sys_path:
        if entry not in sys.path:
            sys.path.append(entry)
    label = f"proc-w{worker_id}"
    segments: dict[str, tuple[str, _shm.SharedMemory]] = {}
    result_queue.put((worker_id, "ready", None))
    while True:
        message = task_queue.get()
        if message is None:
            break
        (kind, in_name, in_shape, in_dtype, out_name, out_shape,
         out_dtype, tiles, common) = message
        try:
            from .tasks import TASKS

            fn = TASKS[kind]
            src = np.ndarray(in_shape, dtype=np.dtype(in_dtype),
                             buffer=_attach(segments, in_name).buf)
            dst = np.ndarray(out_shape, dtype=np.dtype(out_dtype),
                             buffer=_attach(segments, out_name).buf)
            timings = []
            for tile in tiles:
                t0 = time.perf_counter()
                _run_as_worker(fn, src, dst, tile, common)
                timings.append((tile, label, t0, time.perf_counter()))
            result_queue.put((worker_id, "ok", timings))
        except Exception:  # noqa: BLE001 - report, don't die silently
            result_queue.put((worker_id, "error",
                              traceback.format_exc(limit=20)))


class SharedMemoryProcessExecutor(_InstrumentedExecutor):
    """Persistent spawned workers over shared float64/int64 arenas."""

    name = "processes"
    shares_address_space = False

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        ctx = get_context("spawn")
        self._closed = False
        #: Set after a mid-dispatch worker death: the pool is gone and
        #: every subsequent dispatch runs serially in-process.
        self._fallen_back = False
        self._arena_in = SharedArena("in")
        self._arena_out = SharedArena("out")
        self._task_queues = [ctx.SimpleQueue() for _ in range(workers)]
        self._results = ctx.Queue()
        sys_path = list(sys.path)
        self._procs = [
            ctx.Process(target=_worker_main,
                        args=(i, sys_path, self._task_queues[i],
                              self._results),
                        daemon=True, name=f"repro-proc-w{i}")
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        atexit.register(self.close)
        try:
            ready: set[int] = set()
            deadline = time.monotonic() + _START_TIMEOUT_SECONDS
            while len(ready) < workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"worker handshake timed out after "
                        f"{_START_TIMEOUT_SECONDS:.0f}s "
                        f"({len(ready)}/{workers} ready)"
                    )
                if any(not proc.is_alive() for proc in self._procs):
                    raise RuntimeError(
                        "worker process died during startup (spawn "
                        "could not re-import the parent __main__?)"
                    )
                try:
                    worker_id, status, _ = self._results.get(
                        timeout=min(remaining, 0.25))
                except Exception:
                    continue
                if status == "ready":
                    ready.add(worker_id)
        except Exception:
            self.close()
            raise

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> list[Any]:
        """Arbitrary callables stay in-process (closures don't pickle);
        only the named array-tile tasks cross the process boundary."""
        return [fn(item) for item in items]

    def _serial_tiles(self, kind: str, src: Any, dst: Any,
                      tiles: Sequence[tuple], common: tuple,
                      ) -> list[TileTiming]:
        """In-process rerun of a whole dispatch (degraded mode)."""
        from .tasks import TASKS

        fn = TASKS[kind]
        timings = []
        for tile in tiles:
            t0 = time.perf_counter()
            fn(src, dst, tile, common)
            timings.append(TileTiming(tuple(tile), "main", t0,
                                      time.perf_counter()))
        return timings

    def _degrade(self, reason: str, kind: str, src: Any, dst: Any,
                 tiles: Sequence[tuple], common: tuple,
                 ) -> list[TileTiming]:
        """A worker died or hung mid-dispatch: finish serially, stay up.

        Workers only ever write the *output arena*, never the caller's
        ``dst`` (the copy-out happens after every result lands), so
        rerunning the full tile list in-process is idempotent and
        bit-identical. The dead pool is closed and every later
        dispatch short-circuits to the serial path.
        """
        _note_fallback(self.name, self.workers, reason)
        self._fallen_back = True
        self.close()
        return self._serial_tiles(kind, src, dst, tiles, common)

    def _run_tiles(self, kind: str, src: Any, dst: Any,
                   tiles: Sequence[tuple], common: tuple,
                   ) -> list[TileTiming]:
        if self._fallen_back:
            return self._serial_tiles(kind, src, dst, tiles, common)
        if self._closed:
            raise RuntimeError("executor already closed")
        src = np.ascontiguousarray(src)
        dst_np = np.asarray(dst)
        self._arena_in.ensure(src.nbytes)
        self._arena_out.ensure(dst_np.nbytes)
        shared_src = self._arena_in.asarray(src.shape, src.dtype)
        shared_dst = self._arena_out.asarray(dst_np.shape, dst_np.dtype)
        shared_src[...] = src
        assignments = [list(tiles[i::self.workers])
                       for i in range(self.workers)]
        live = 0
        for worker_id, chunk in enumerate(assignments):
            if not chunk:
                continue
            self._task_queues[worker_id].put((
                kind, self._arena_in.name, src.shape, src.dtype.str,
                self._arena_out.name, dst_np.shape, dst_np.dtype.str,
                chunk, common,
            ))
            live += 1
        timings: list[TileTiming] = []
        for _ in range(live):
            deadline = time.monotonic() + _RESULT_TIMEOUT_SECONDS
            while True:
                if any(not proc.is_alive() for proc in self._procs):
                    return self._degrade(
                        "worker process died mid-dispatch",
                        kind, src, dst, tiles, common,
                    )
                try:
                    worker_id, status, payload = self._results.get(
                        timeout=min(1.0, max(0.01,
                                             deadline - time.monotonic())))
                    break
                except Exception:
                    if time.monotonic() >= deadline:
                        return self._degrade(
                            "worker did not respond within "
                            f"{_RESULT_TIMEOUT_SECONDS:.0f}s",
                            kind, src, dst, tiles, common,
                        )
            if status != "ok":
                self.close()
                raise RuntimeError(
                    f"process executor worker {worker_id} failed:\n"
                    f"{payload}"
                )
            timings.extend(TileTiming(tuple(tile), label, t0, t1)
                           for tile, label, t0, t1 in payload)
        dst_np[...] = shared_dst
        return timings

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for queue in self._task_queues:
            with contextlib.suppress(OSError, ValueError):
                queue.put(None)
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._results.close()
        self._arena_in.close()
        self._arena_out.close()
