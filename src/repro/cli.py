"""Command-line interface: regenerate the paper's experiments.

Usage (installed as ``python -m repro``):

    python -m repro list                 # available experiments
    python -m repro table1               # Table I rows
    python -m repro table2               # Table II instruction timings
    python -m repro table3               # Table III DMA comparison
    python -m repro table4               # Table IV resources
    python -m repro table5               # Table V scaling
    python -m repro fig3                 # Fig. 3 access pattern
    python -m repro headline             # 400 Mult/s + 13x speedup
    python -m repro noise                # analytic depth budget
    python -m repro serve                # multi-tenant serving runtime
    python -m repro cluster --shards 8   # multi-FPGA shard layer
    python -m repro program              # HE program on both executors
    python -m repro trace lookup         # Perfetto timelines + metrics
    python -m repro trace matmul         # encrypted matmul, optimised
    python -m repro all                  # everything above

``program`` and ``trace`` run captured graphs through the
:mod:`repro.optim` pass stack and print its report; pass
``--no-optimize`` for raw lowering.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext

from .fv.noise_model import NoiseModel
from .hw.config import HardwareConfig
from .hw.coprocessor import Coprocessor
from .hw.dma import DmaModel
from .hw.isa import Opcode
from .hw.power import PowerModel
from .hw.resources import ResourceEstimator
from .hw.scaling import scaling_table
from .hw.trace import render_fig3
from .parallel import EXECUTOR_MODES, available_cores, use_executor
from .params import hpca19
from .system.arm import ArmCoreModel
from .system.baseline import SoftwareBaseline
from .system.server import CloudServer

PAPER_TABLE2 = {
    Opcode.NTT: 87_582,
    Opcode.INTT: 102_043,
    Opcode.CMUL: 15_662,
    Opcode.CADD: 16_292,
    Opcode.REARRANGE: 25_006,
    Opcode.LIFT: 99_137,
    Opcode.SCALE: 99_274,
}


def _print_header(title: str) -> None:
    print()
    print(title)
    print("=" * len(title))


def cmd_table1(args: argparse.Namespace) -> None:
    _print_header("Table I — high-level operations (one coprocessor)")
    params = hpca19()
    config = HardwareConfig()
    server = CloudServer(params, config)
    arm = ArmCoreModel(config)
    mult_s = server.mult_compute_seconds()
    add_s = server.add_compute_seconds()
    rows = [
        ("Mult in HW", mult_s, 4.458e-3),
        ("Add in HW", add_s, 0.026e-3),
        ("Add in SW", arm.add_in_sw_seconds(params), 45.567e-3),
        ("Send two ciphertexts", server.transfer_in_seconds(), 0.362e-3),
        ("Receive result", server.transfer_out_seconds(), 0.180e-3),
    ]
    print(f"{'operation':<24}{'ours (ms)':>12}{'paper (ms)':>12}")
    for label, ours, paper in rows:
        print(f"{label:<24}{ours * 1e3:>12.3f}{paper * 1e3:>12.3f}")


def cmd_table2(args: argparse.Namespace) -> None:
    _print_header("Table II — individual instructions (Arm cycles/call)")
    params = hpca19()
    coprocessor = Coprocessor(params)
    model = coprocessor.instruction_cycle_model()
    print(f"{'instruction':<22}{'ours':>10}{'paper':>10}{'delta':>8}")
    for op, paper in PAPER_TABLE2.items():
        ours = coprocessor.config.fpga_to_arm_cycles(model[op])
        print(f"{op.value:<22}{ours:>10,}{paper:>10,}"
              f"{(ours - paper) / paper * 100:>+7.1f}%")


def cmd_table3(args: argparse.Namespace) -> None:
    _print_header("Table III — data transfer techniques (Arm cycles)")
    dma = DmaModel(HardwareConfig())
    rows = [("single 98,304-byte burst", None, 90_708),
            ("16,384-byte chunks", 16_384, 130_686),
            ("1,024-byte chunks", 1_024, 242_771)]
    print(f"{'technique':<28}{'ours':>10}{'paper':>10}")
    for label, chunk, paper in rows:
        ours = dma.transfer_arm_cycles(98_304, chunk_bytes=chunk)
        print(f"{label:<28}{ours:>10,}{paper:>10,}")


def cmd_table4(args: argparse.Namespace) -> None:
    _print_header("Table IV — resource utilisation (ZCU102)")
    estimator = ResourceEstimator(hpca19(), HardwareConfig())
    full = estimator.full_design()
    single = estimator.single_coprocessor()
    print(f"{'':<22}{'LUT':>10}{'FF':>10}{'BRAM36':>8}{'DSP':>6}")
    print(f"{'two coprocs (ours)':<22}{full.luts:>10,}{full.regs:>10,}"
          f"{full.bram36:>8}{full.dsps:>6}")
    print(f"{'two coprocs (paper)':<22}{133_692:>10,}{60_312:>10,}"
          f"{815:>8}{416:>6}")
    print(f"{'one coproc (ours)':<22}{single.luts:>10,}{single.regs:>10,}"
          f"{single.bram36:>8}{single.dsps:>6}")
    print(f"{'one coproc (paper)':<22}{63_522:>10,}{25_622:>10,}"
          f"{388:>8}{208:>6}")


def cmd_table5(args: argparse.Namespace) -> None:
    _print_header("Table V — scaling estimates (single coprocessor)")
    params = hpca19()
    config = HardwareConfig()
    server = CloudServer(params, config)
    base = ResourceEstimator(params, config).single_coprocessor()
    comm = server.transfer_in_seconds() + server.transfer_out_seconds()
    for point in scaling_table(base, server.mult_compute_seconds(), comm):
        print(point.row())


def cmd_fig3(args: argparse.Namespace) -> None:
    _print_header("Fig. 3 — two-core NTT memory access pattern")
    print(render_fig3())


def cmd_headline(args: argparse.Namespace) -> None:
    _print_header("Headline — throughput, speedup, power")
    params = hpca19()
    config = HardwareConfig()
    server = CloudServer(params, config)
    baseline = SoftwareBaseline(params)
    power = PowerModel(config)
    throughput = server.mult_throughput_per_second()
    print(f"Mult/s with two coprocessors: {throughput:6.0f}  (paper: 400)")
    print(f"software baseline:            "
          f"{baseline.mult_seconds() * 1e3:6.1f} ms/Mult (paper: 33)")
    print(f"speedup:                      "
          f"{baseline.mult_seconds() * throughput:6.1f}x (paper: >13x)")
    print(f"peak power:                   {power.peak_watts():6.1f} W  (paper: 8.7 W)")
    print(f"add speedup over Arm SW:      "
          f"{server.add_speedup_over_sw():6.0f}x (paper: 80x)")


def cmd_noise(args: argparse.Namespace) -> None:
    _print_header("Analytic noise budget (paper Sec. II-A/III-A)")
    print(NoiseModel(hpca19()).report())


def cmd_serve(args: argparse.Namespace) -> None:
    _print_header("Serving runtime — multi-tenant discrete-event simulation")
    from .serve import (
        BatchPolicy,
        ServingRuntime,
        Tenant,
        TenantSet,
        WeightedFairScheduler,
        default_schedulers,
    )
    from .system.workloads import (
        JobKind,
        merge_streams,
        multi_tenant_stream,
        poisson_stream,
    )

    params = hpca19()
    server = CloudServer(params, HardwareConfig())
    capacity = server.mult_throughput_per_second()
    tenants = TenantSet.of(
        Tenant("gold", weight=3.0, sla_seconds=0.5),
        Tenant("silver", weight=1.0),
        Tenant("free", weight=0.5, max_queue_depth=16),
    )
    # Mults from gold/free at ~1.2x the service rate, plus a stream of
    # cheap Adds from silver — mixed costs separate the policies.
    mults = multi_tenant_stream(
        {"gold": 0.8 * capacity, "free": 0.4 * capacity},
        duration_seconds=2.0, seed=7,
    )
    adds = poisson_stream(0.5 * capacity, 2.0, kind=JobKind.ADD,
                          seed=11, tenant="silver")
    workload = merge_streams(mults, adds)
    print(f"capacity {capacity:.0f} Mult/s; offered over 2 s: "
          f"{len(mults)} Mults + {len(adds)} Adds from 3 tenants\n")
    print(f"{'policy':<8}{'done':>6}{'rej':>6}{'tput/s':>9}"
          f"{'p50 ms':>9}{'p99 ms':>9}{'util':>7}{'SLA miss':>10}")
    wfq_report = None
    for scheduler in default_schedulers():
        runtime = ServingRuntime.for_server(
            server, scheduler=scheduler, tenants=tenants,
            batching=BatchPolicy(max_jobs=4),
        )
        report = runtime.run(workload)
        if isinstance(scheduler, WeightedFairScheduler):
            wfq_report = report
        latency = report.latency_summary()
        util = sum(report.utilization()) / len(report.utilization())
        print(f"{scheduler.name:<8}{len(report.results):>6}"
              f"{len(report.rejected):>6}"
              f"{report.throughput_per_second():>9.0f}"
              f"{latency.p50 * 1e3:>9.2f}{latency.p99 * 1e3:>9.2f}"
              f"{util:>7.0%}{report.telemetry.sla_violations:>10}")
    print("\nper-tenant p99 under WFQ (weights 3/1/0.5):")
    for name in sorted(tenants.tenants):
        print("  " + wfq_report.latency_summary(name).row(name))

    # -- closed-loop clients: offered load self-regulates --------------
    from .system.workloads import ClosedLoopClients

    think = 0.05
    print(f"\nclosed-loop clients (think time {think * 1e3:.0f} ms, "
          f"1 s window) — the interactive-system law:")
    print(f"{'clients':>8}{'done':>7}{'tput/s':>9}{'p50 ms':>9}"
          f"{'p99 ms':>9}{'util':>7}")
    for clients in (4, 16, 64, 256):
        runtime = ServingRuntime.for_server(server)
        result = ClosedLoopClients(clients, think, seed=3).drive(
            runtime, duration_seconds=1.0)
        report = result.report
        latency = report.latency_summary()
        print(f"{clients:>8}{len(report.results):>7}"
              f"{report.throughput_per_second():>9.0f}"
              f"{latency.p50 * 1e3:>9.2f}{latency.p99 * 1e3:>9.2f}"
              f"{report.mean_utilization():>7.0%}")


def cmd_cluster(args: argparse.Namespace) -> None:
    _print_header("Multi-FPGA cluster — sharded serving simulation")
    from dataclasses import replace

    from .cluster import FpgaCluster, TenantAffinityRouter, default_routers
    from .system.workloads import cluster_trace, saturated_tenant_jobs

    params = hpca19()
    shards = args.shards
    seed = args.seed
    single_capacity = FpgaCluster.homogeneous(
        params, 1).capacity_mults_per_second()

    # -- chaos mode: seeded fault plan + replicated tenants ------------
    if args.faults is not None:
        from .cluster import FaultPlan, RetryPolicy

        replicas = 2 if args.replicas is None else args.replicas
        capacity = shards * single_capacity
        trace = cluster_trace(args.tenants, 0.6 * capacity,
                              args.duration, skew=1.1, seed=seed)
        plan = FaultPlan.seeded(args.faults, shards, args.duration,
                                crashes=min(2, shards - 1) if shards > 1
                                else 0,
                                transient_failures=8, dma_stalls=2)
        cluster = FpgaCluster.homogeneous(
            params, shards, router=TenantAffinityRouter(),
            fault_plan=plan, retry=RetryPolicy(seed=seed),
            replicas=replicas)
        report = cluster.run(trace)
        latency = report.latency_summary()
        print(f"chaos run: {shards} boards, R={replicas} replication, "
              f"fault seed {args.faults}, {len(trace)} jobs at 60% "
              f"capacity over {args.duration:.1f} s")
        print(f"  completed {report.completed}, "
              f"rejected {len(report.rejected)}, "
              f"availability {report.availability * 100:.2f}%, "
              f"p99 {latency.p99 * 1e3:.2f} ms\n")
        print(report.failure.render())
        return

    # -- saturated throughput scaling under tenant-affinity routing --
    print(f"one board: {single_capacity:.0f} Mult/s "
          f"({HardwareConfig().num_coprocessors} coprocessors)\n")
    print("saturated scaling, tenant-affinity (rendezvous) routing:")
    print(f"{'shards':>7}{'tenants':>9}{'Mult/s':>9}{'scale':>8}"
          f"{'imbalance':>11}")
    counts = []
    n = 1
    while n < shards:
        counts.append(n)
        n *= 2
    counts.append(shards)  # always measure the requested size
    baseline = None
    for n in counts:
        jobs = saturated_tenant_jobs(256 * shards, 1)
        cluster = FpgaCluster.homogeneous(
            params, n, router=TenantAffinityRouter())
        report = cluster.run(jobs)
        tput = report.throughput_per_second()
        if baseline is None:
            baseline = tput
        print(f"{n:>7}{256 * shards:>9}{tput:>9.0f}"
              f"{tput / baseline:>7.2f}x{report.imbalance():>11.3f}")

    # -- routing policies on a skewed open-loop trace --
    if args.hetero:
        fast = HardwareConfig()
        slow = replace(fast, butterfly_cores_per_rpau=1)
        configs = [fast if i % 2 == 0 else slow for i in range(shards)]

        def build(router):
            return FpgaCluster.heterogeneous(params, configs,
                                             router=router)

        capacity = build(None).capacity_mults_per_second()
        flavour = "heterogeneous (alternating 2/1 butterfly cores)"
    else:
        def build(router):
            return FpgaCluster.homogeneous(params, shards, router=router)

        capacity = shards * single_capacity
        flavour = "homogeneous"
    trace = cluster_trace(args.tenants, 0.8 * capacity, args.duration,
                          skew=1.1, seed=seed)
    print(f"\nrouting policies, {flavour} x{shards}, Zipf(1.1) trace of "
          f"{len(trace)} jobs at 80% capacity over {args.duration:.1f} s:")
    print(f"{'router':<12}{'done':>7}{'rej':>6}{'reroute':>8}"
          f"{'tput/s':>8}{'p50 ms':>9}{'p99 ms':>9}{'imbal':>8}")
    for router in default_routers(seed=seed):
        report = build(router).run(trace)
        latency = report.latency_summary()
        print(f"{router.name:<12}{report.completed:>7}"
              f"{len(report.rejected):>6}{report.reroutes:>8}"
              f"{report.throughput_per_second():>8.0f}"
              f"{latency.p50 * 1e3:>9.2f}{latency.p99 * 1e3:>9.2f}"
              f"{report.imbalance():>8.3f}")
    print("\n(pure affinity keeps every tenant's DMA trains on one board "
          "but a hot tenant\n can swamp its shard; bounded-load affinity "
          "spills just enough to cap p99.)")

    # -- closed-loop clients against the whole cluster -----------------
    from .system.workloads import ClosedLoopClients

    think = 0.05
    clients = 64 * shards
    cluster = build(TenantAffinityRouter())
    result = ClosedLoopClients(clients, think, num_tenants=32 * shards,
                               seed=seed).drive(cluster, 0.5)
    report = result.report
    latency = report.latency_summary()
    print(f"\nclosed-loop: {clients} clients "
          f"(think {think * 1e3:.0f} ms) on affinity routing: "
          f"{report.completed} done, "
          f"{report.throughput_per_second():.0f} jobs/s, "
          f"p99 {latency.p99 * 1e3:.2f} ms, "
          f"imbalance {report.imbalance():.3f}")


def cmd_program(args: argparse.Namespace) -> None:
    _print_header("HE programs — one graph, two executors")
    from .api import LocalBackend, Session, SimulatedBackend
    from .apps.lookup import EncryptedLookupTable
    from .cluster.routing import TenantAffinityRouter
    from .params import mini
    from .system.server import CostModel
    from .system.workloads import Job

    params = mini(t=257)
    session = Session(params, seed=13)
    table = [13, 42, 7, 99, 1, 64, 250, 8, 77, 31, 5, 190, 2, 120, 55, 86]
    server = EncryptedLookupTable(session, table)
    index = 6
    program = server.lookup_program(server.encrypt_index(index))
    static = program.static_noise_bits()["out"]
    print(f"program {program.name!r}: {program.num_ops} ops, "
          f"depth {program.depth}, static worst-case budget "
          f"{static:.1f} bits")

    # Executor 1: the functional FV evaluator (real ciphertexts). Run
    # the same graph eagerly and NTT-resident to show the transform
    # saving (fresh sessions so the node caches don't share work).
    eager_session = Session(params, seed=13)
    eager_server = EncryptedLookupTable(eager_session, table)
    eager_program = eager_server.lookup_program(
        eager_server.encrypt_index(index))
    eager = LocalBackend(eager_session, ntt_resident=False)
    eager.run(eager_program)
    resident = LocalBackend(session, ntt_resident=True)
    result = resident.run(program)
    value = int(result.decrypt("out")[0])
    status = "OK" if value == table[index] else "WRONG"
    print(f"LocalBackend: lookup(index={index}) -> {value} "
          f"(expected {table[index]}, {status}; measured budget "
          f"{result.noise_budget_bits('out'):.1f} bits)")
    eager_rows = (eager.last_transform_counts["forward_rows"]
                  + eager.last_transform_counts["inverse_rows"])
    resident_rows = (resident.last_transform_counts["forward_rows"]
                     + resident.last_transform_counts["inverse_rows"])
    print(f"NTT residency: eager executor ran {eager_rows} row "
          f"transforms, resident executor {resident_rows} "
          f"({eager_rows - resident_rows} eliminated by staying in the "
          f"evaluation domain)")

    # Executor 2: the same program object through the simulated cluster.
    cost = CostModel(params)
    ops = program.lower()
    per_request = sum(
        cost.job_seconds_of(Job(index=0, kind=op.kind,
                                polys_in=op.polys_in,
                                polys_out=op.polys_out))
        for op in ops
    )
    shards = args.shards
    capacity = shards * cost.config.num_coprocessors / per_request
    backend = SimulatedBackend.over_cluster(
        params, shards, router_factory=TenantAffinityRouter)
    print(f"\nSimulatedBackend: {shards} boards, "
          f"~{capacity:.0f} requests/s ceiling "
          f"({len(ops)} jobs per request, "
          f"{per_request * 1e3:.2f} ms service each)")
    print(f"{'rate/s':>8}{'done':>7}{'req/s':>8}{'p50 ms':>9}"
          f"{'p95 ms':>9}{'p99 ms':>9}")
    for rho in (0.3, 0.6, 0.9):
        run = backend.run(program, requests=args.requests,
                          rate_per_second=rho * capacity,
                          num_tenants=16 * shards, seed=args.seed)
        latency = run.latency_summary()
        print(f"{rho * capacity:>8.0f}{len(run.completed):>7}"
              f"{run.requests_per_second():>8.0f}"
              f"{latency.p50 * 1e3:>9.2f}{latency.p95 * 1e3:>9.2f}"
              f"{latency.p99 * 1e3:>9.2f}")
    print("\n(same HEProgram object both times: the facade decides "
          "whether a graph\n becomes ciphertext math or a priced job "
          "stream on the shard cluster.)")

    if not args.optimize:
        return
    from .optim import optimize_program

    _, lookup_report = optimize_program(program)
    print()
    print(lookup_report.render())

    # -- the optimiser's motivating workload: encrypted matmul ---------
    _print_header("Encrypted matmul — the optimiser pass stack")
    from .apps.matmul import EncryptedMatmul

    bparams = mini(t=65537)         # t = 1 mod 2n: slot batching
    msession = Session(bparams, seed=29)
    matmul = EncryptedMatmul(msession, block_slots=4)
    a = [[1, 2, 3, 4, 5, 6, 7, 8], [2, 0, 1, 3, 5, 2, 4, 1]]
    b = [[1, 2], [0, 1], [3, 1], [1, 0],
         [2, 2], [1, 1], [0, 3], [2, 1]]
    mprogram = matmul.matmul_program(matmul.encrypt_rows(a),
                                     matmul.encrypt_cols(b))
    optimized, report = optimize_program(mprogram)
    print(f"2x8 @ 8x2, blocks of {matmul.block_slots} slots: "
          f"{mprogram.num_ops} ops, depth {mprogram.depth}")
    print()
    print(report.render())
    mresult = LocalBackend(msession).run(optimized)
    reference = EncryptedMatmul.reference(a, b, bparams.t)
    got = [
        [matmul.decrypt_entry(mresult.handle(f"c{i}_{j}"))
         for j in range(len(reference[0]))]
        for i in range(len(reference))
    ]
    status = "OK" if got == reference else f"WRONG (expected {reference})"
    print(f"LocalBackend (optimised program): C = {got} ({status})")
    raw = SimulatedBackend.over_runtime(bparams).lower(mprogram)
    opt = SimulatedBackend.over_runtime(bparams,
                                        optimize=True).lower(mprogram)
    saved = 1 - opt.keyswitch_ops() / raw.keyswitch_ops()
    print(f"SimulatedBackend: keyswitch ops {raw.keyswitch_ops()} -> "
          f"{opt.keyswitch_ops()} ({saved:.0%} saved), DMA train "
          f"{raw.train_seconds() * 1e3:.2f} -> "
          f"{opt.train_seconds() * 1e3:.2f} ms, critical path "
          f"{opt.critical_path_seconds() * 1e3:.2f} ms")


def cmd_trace(args: argparse.Namespace) -> None:
    _print_header("Observability — request traces, timelines, registry")
    from pathlib import Path

    from .api import LocalBackend, Session, SimulatedBackend
    from .obs import (
        render_prometheus,
        scoped_metrics,
        spans_to_chrome,
        write_chrome_trace,
    )
    from .params import mini

    app = args.app or "lookup"
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    # Matmul packs values element-wise into slots, so it needs a
    # batching plaintext modulus (t = 1 mod 2n).
    params = mini(t=65537) if app == "matmul" else mini(t=257)
    session = Session(params, seed=13)
    if app == "lookup":
        from .apps.lookup import EncryptedLookupTable

        table = [13, 42, 7, 99, 1, 64, 250, 8,
                 77, 31, 5, 190, 2, 120, 55, 86]
        server = EncryptedLookupTable(session, table)
        program = server.lookup_program(server.encrypt_index(6))
    elif app == "matmul":
        from .apps.matmul import EncryptedMatmul

        matmul = EncryptedMatmul(session, block_slots=4)
        a = [[1, 2, 3, 4, 5, 6, 7, 8], [2, 0, 1, 3, 5, 2, 4, 1]]
        b = [[1, 2], [0, 1], [3, 1], [1, 0],
             [2, 2], [1, 1], [0, 3], [2, 1]]
        program = matmul.matmul_program(matmul.encrypt_rows(a),
                                        matmul.encrypt_cols(b))
    else:  # a Mult-heavy balanced product tree
        leaves = [session.encrypt([i + 1, i + 2, i + 3, i + 4])
                  for i in range(4)]
        t0 = leaves[0] * leaves[1]
        t1 = leaves[2] * leaves[3]
        program = session.compile(t0 * t1 + t0, name="mult-tree")
    print(f"app {app!r}: {program.num_ops} ops, depth {program.depth}")
    if args.optimize:
        from .optim import optimize_program

        program, opt_report = optimize_program(program)
        print()
        print(opt_report.render())

    # The scoped registry isolates this command's counters, so the
    # exposition below shows exactly what these two runs recorded.
    with scoped_metrics() as registry:
        backend = LocalBackend(session)
        trace = backend.run(program).trace
        functional = write_chrome_trace(
            out_dir / f"{app}_functional.json",
            spans_to_chrome(trace.root,
                            process_name=f"{app} (functional)"),
        )
        simulated = SimulatedBackend.over_runtime(params)
        run = simulated.run(program, requests=args.requests, seed=args.seed)
        priced = write_chrome_trace(out_dir / f"{app}_simulated.json",
                                    run.timeline())

    print("\nper-op rollup (functional path, wall clock):")
    print(f"{'op':<12}{'count':>6}{'ms':>9}{'t-rows':>8}{'t-calls':>8}"
          f"{'bytes':>12}")
    for op, row in sorted(trace.rollup().items()):
        print(f"{op:<12}{row['count']:>6.0f}{row['seconds'] * 1e3:>9.2f}"
              f"{row['transform_rows']:>8.0f}"
              f"{row['transform_calls']:>8.0f}"
              f"{row['bytes_moved']:>12,.0f}")
    path = trace.critical_path()
    print(f"critical path: {len(path)} of {len(trace.spans('op'))} ops, "
          f"{trace.critical_path_seconds() * 1e3:.2f} ms of "
          f"{trace.total_seconds * 1e3:.2f} ms wall")
    totals = trace.transform_totals()
    run_diff = {k: v for k, v in backend.last_transform_counts.items()
                if v}
    check = "OK" if totals == run_diff else f"MISMATCH vs {run_diff}"
    print(f"transform totals from op spans: {totals} ({check})")

    latency = run.latency_summary()
    print(f"\nsimulated path: {len(run.completed)} requests, "
          f"p50 {latency.p50 * 1e3:.2f} ms, "
          f"p99 {latency.p99 * 1e3:.2f} ms "
          f"(simulated clock, {len(run.trace().spans('op'))} op spans)")
    print(f"\nChrome trace JSON (load in Perfetto / chrome://tracing):")
    print(f"  functional: {functional}")
    print(f"  simulated:  {priced}")
    print("\nPrometheus exposition of the run's metrics registry:")
    print(render_prometheus(registry).rstrip())


def cmd_security(args: argparse.Namespace) -> None:
    _print_header("Security placement (paper Sec. III-A, ref. [26])")
    from .params import mini, table5_large
    from .security import assess

    for params in (hpca19(), table5_large(), mini()):
        print(assess(params).report())
        print()


def cmd_report(args: argparse.Namespace) -> None:
    """Collate every regenerated table from benchmarks/results into one
    report on stdout (run the benchmark suite first)."""
    _print_header("Collated experiment report")
    from pathlib import Path

    results = Path.cwd() / "benchmarks" / "results"
    if not results.is_dir():
        # Editable installs: repository root relative to this file
        # (src/repro/cli.py -> repo root).
        results = Path(__file__).resolve().parents[2] / "benchmarks" \
            / "results"
    files = sorted(results.glob("*.txt")) if results.is_dir() else []
    if not files:
        print("no results found — run: pytest benchmarks/ --benchmark-only")
        return
    for path in files:
        print(path.read_text().rstrip())
        print("-" * 72)


def cmd_verify(args: argparse.Namespace) -> None:
    _print_header("Hardware-vs-software equivalence campaign")
    from .hw.verification import run_configuration_matrix

    results = run_configuration_matrix(operations=4)
    for result in results:
        print(result.report())
        print()
    if not all(result.passed for result in results):
        raise SystemExit(1)
    print("all configurations bit-exact.")


def cmd_sweep(args: argparse.Namespace) -> None:
    _print_header("Design-space sweeps (paper Sec. VII)")
    from .hw.sweeps import (
        sweep_butterfly_cores,
        sweep_conversion_cores,
        sweep_coprocessor_count,
    )

    params = hpca19()
    for title, points in (
        ("coprocessor instances", sweep_coprocessor_count(params)),
        ("conversion cores", sweep_conversion_cores(params)),
        ("butterfly cores", sweep_butterfly_cores(params)),
    ):
        print(f"-- {title} --")
        for point in points:
            print(point.row())
        print()


# Every command takes the parsed argparse namespace (most ignore it;
# `cluster` reads its --shards/--tenants/... group).
COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "fig3": cmd_fig3,
    "headline": cmd_headline,
    "noise": cmd_noise,
    "serve": cmd_serve,
    "cluster": cmd_cluster,
    "program": cmd_program,
    "trace": cmd_trace,
    "verify": cmd_verify,
    "sweep": cmd_sweep,
    "security": cmd_security,
    "report": cmd_report,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the HPCA'19 FV-accelerator experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "list"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "app", nargs="?", choices=["lookup", "mult", "matmul"],
        help="application to trace (`trace` command only; "
             "default lookup)",
    )
    parser.add_argument(
        "--optimize", action=argparse.BooleanOptionalAction,
        default=True,
        help="run HE programs through the optimiser pass stack and "
             "print its report (`program`/`trace` commands; "
             "--no-optimize lowers the raw graph)",
    )
    parser.add_argument(
        "--out", default="traces",
        help="directory for exported Chrome trace JSON (default traces/)",
    )
    cluster_group = parser.add_argument_group(
        "cluster options",
        "used by `python -m repro cluster` and `python -m repro program`")
    cluster_group.add_argument("--shards", type=_positive_int, default=4,
                               help="number of FPGA boards (default 4)")
    cluster_group.add_argument("--requests", type=_positive_int,
                               default=200,
                               help="program executions per load point "
                                    "(default 200)")
    cluster_group.add_argument("--tenants", type=_positive_int,
                               default=192,
                               help="tenant population of the open-loop "
                                    "trace (default 192)")
    cluster_group.add_argument("--duration", type=float, default=1.0,
                               help="trace duration in simulated seconds")
    cluster_group.add_argument("--hetero", action="store_true",
                               help="alternate 2- and 1-butterfly-core "
                                    "boards")
    cluster_group.add_argument("--seed", type=int, default=0)
    cluster_group.add_argument("--faults", type=int, default=None,
                               metavar="SEED",
                               help="run the chaos scenario: a seeded "
                                    "fault plan (board kills, transient "
                                    "job failures, DMA stalls) and the "
                                    "failure report it produced")
    cluster_group.add_argument("--replicas", type=_positive_int,
                               default=None,
                               help="tenant key-state replication factor "
                                    "for the chaos scenario (default 2)")
    executor_group = parser.add_argument_group(
        "executor options",
        "multi-core execution of the functional engine (overrides the "
        "REPRO_EXECUTOR / REPRO_WORKERS environment for this run)")
    executor_group.add_argument(
        "--executor", choices=list(EXECUTOR_MODES), default=None,
        help="execution strategy for functional FV math "
             "(default: environment, else serial)")
    executor_group.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker pool size for --executor threads/processes "
             "(default: available cores, capped)")
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    scope = nullcontext()
    if args.executor is not None:
        workers = args.workers
        if workers is None and args.executor != "serial":
            workers = min(8, available_cores())
        scope = use_executor(args.executor, workers)
    with scope as executor:
        if executor is not None:
            print(f"executor: {executor.name} x{executor.workers}")
        if args.experiment == "all":
            for name in ("table1", "table2", "table3", "table4",
                         "table5", "fig3", "headline", "noise"):
                COMMANDS[name](args)
            return 0
        COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
