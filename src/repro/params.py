"""Parameter sets for the FV scheme and the hardware model.

The paper's production set (Section III): ring degree n = 4096, ciphertext
modulus q = product of six 30-bit primes (180 bits), extension modulus
p = product of seven more 30-bit primes so Q = q*p is 390 bits (>= the
372 bits required for exact tensor products), error standard deviation
sigma = 102, plaintext modulus t = 2, multiplicative depth 4, >= 80-bit
security.

Smaller sets with the *same prime width* (30 bits) are provided for tests:
the hardware datapath models (30x30 multiplier, sliding-window reduction)
behave identically on them, only the ring degree shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import prod

from .errors import ParameterError
from .nttmath.primes import find_ntt_primes
from .utils import is_power_of_two

PRIME_BITS = 30
"""Residue width of the paper's datapath (30-bit primes, Sec. III-B)."""


@dataclass(frozen=True)
class ParameterSet:
    """An FV parameter set in RNS form.

    Attributes:
        name: human-readable identifier.
        n: ring degree (power of two); the ring is Z[x]/(x^n + 1).
        q_primes: RNS primes whose product is the ciphertext modulus q.
        p_primes: extension primes; Q = q * prod(p_primes) is the tensor
            modulus used inside homomorphic multiplication.
        t: plaintext modulus.
        sigma: standard deviation of the discrete Gaussian error sampler.
    """

    name: str
    n: int
    q_primes: tuple[int, ...]
    p_primes: tuple[int, ...]
    t: int = 2
    sigma: float = 102.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ParameterError(f"ring degree {self.n} is not a power of two")
        all_primes = self.q_primes + self.p_primes
        if len(set(all_primes)) != len(all_primes):
            raise ParameterError("RNS primes must be distinct")
        for prime in all_primes:
            if (prime - 1) % (2 * self.n) != 0:
                raise ParameterError(
                    f"prime {prime} is not NTT-friendly for degree {self.n}"
                )
            if prime.bit_length() > PRIME_BITS:
                raise ParameterError(
                    f"prime {prime} exceeds the {PRIME_BITS}-bit datapath"
                )
        if self.t < 2:
            raise ParameterError("plaintext modulus must be at least 2")
        if self.t >= min(all_primes):
            raise ParameterError("plaintext modulus must be below every prime")

    # -- derived moduli ----------------------------------------------------

    @property
    def q(self) -> int:
        """Ciphertext modulus (product of the q-basis primes)."""
        return prod(self.q_primes)

    @property
    def p(self) -> int:
        """Extension modulus (product of the p-basis primes)."""
        return prod(self.p_primes)

    @property
    def big_q(self) -> int:
        """Tensor modulus Q = q * p."""
        return self.q * self.p

    @property
    def delta(self) -> int:
        """Plaintext scaling factor Delta = floor(q / t)."""
        return self.q // self.t

    @property
    def k_q(self) -> int:
        """Number of primes in the q basis (6 in the paper)."""
        return len(self.q_primes)

    @property
    def k_p(self) -> int:
        """Number of extension primes (7 in the paper)."""
        return len(self.p_primes)

    @property
    def k_total(self) -> int:
        """Total number of RNS primes (13 in the paper)."""
        return self.k_q + self.k_p

    @property
    def log2_q(self) -> int:
        """Bit size of q (180 in the paper)."""
        return self.q.bit_length()

    @property
    def log2_big_q(self) -> int:
        """Bit size of Q (390 in the paper)."""
        return self.big_q.bit_length()

    # -- sizes that drive the DMA / memory models ---------------------------

    @property
    def poly_bytes(self) -> int:
        """Serialised size of one R_q polynomial.

        Residues are packed one per 32-bit word as the paper's DMA does:
        4096 coefficients x 6 residues x 4 bytes = 98,304 bytes, the
        transfer size of Table III.
        """
        return self.n * self.k_q * 4

    @property
    def ciphertext_bytes(self) -> int:
        """Serialised size of one ciphertext (two R_q polynomials)."""
        return 2 * self.poly_bytes

    # -- correctness / security checks --------------------------------------

    def tensor_bound_bits(self) -> int:
        """Bits needed to hold a tensor-product coefficient exactly.

        A product of two centered R_q polynomials has coefficients bounded
        by n * (q/2)^2; Q must exceed twice this (sign), which is the
        paper's ">= 372-bit" requirement for Q.
        """
        bound = self.n * (self.q // 2) ** 2 * 2
        return bound.bit_length()

    def validate_tensor_capacity(self) -> None:
        """Raise unless Q can represent the centered tensor product."""
        if self.log2_big_q < self.tensor_bound_bits():
            raise ParameterError(
                f"Q ({self.log2_big_q} bits) cannot hold tensor products "
                f"({self.tensor_bound_bits()} bits needed)"
            )

    def estimated_security_bits(self) -> float:
        """Heuristic ring-LWE security estimate.

        Linear-in-(n / log2 q) rule calibrated against published
        lwe-estimator outputs (n=4096, log2 q = 109, sigma ~ 3.2 gives
        ~128 bits classical). The paper's set (n=4096, log2 q = 180,
        sigma = 102) lands at ~80 bits under the same rule, matching its
        Section III claim. This is a sanity gauge, not a security proof.
        """
        base = 3.41 * self.n / self.log2_q
        # Wider error distributions buy a little extra security; the rule
        # of thumb is ~ log2(sigma / 3.2) extra bits.
        import math

        return base + max(0.0, math.log2(self.sigma / 3.2))


@lru_cache(maxsize=None)
def _ntt_primes(bits: int, n: int, count: int) -> tuple[int, ...]:
    return tuple(find_ntt_primes(bits, n, count))


def _build(name: str, n: int, k_q: int, k_p: int, t: int,
           sigma: float) -> ParameterSet:
    primes = _ntt_primes(PRIME_BITS, n, k_q + k_p)
    return ParameterSet(
        name=name,
        n=n,
        q_primes=primes[:k_q],
        p_primes=primes[k_q:],
        t=t,
        sigma=sigma,
    )


@lru_cache(maxsize=None)
def hpca19(t: int = 2) -> ParameterSet:
    """The paper's production parameter set (Section III)."""
    params = _build("hpca19", n=4096, k_q=6, k_p=7, t=t, sigma=102.0)
    params.validate_tensor_capacity()
    return params


@lru_cache(maxsize=None)
def mini(t: int = 2) -> ParameterSet:
    """A reduced set for integration tests: n = 256, same prime width.

    Every datapath (30-bit multiplier, reduction tables, lift/scale
    pipelines) is exercised identically; only the ring is smaller, so the
    cycle-level simulator runs in milliseconds instead of minutes.
    """
    params = _build("mini", n=256, k_q=4, k_p=5, t=t, sigma=8.0)
    params.validate_tensor_capacity()
    return params


@lru_cache(maxsize=None)
def toy(t: int = 2) -> ParameterSet:
    """The smallest coherent set (n = 64) for exhaustive unit tests."""
    params = _build("toy", n=64, k_q=3, k_p=4, t=t, sigma=3.2)
    params.validate_tensor_capacity()
    return params


@lru_cache(maxsize=None)
def large16k(t: int = 2) -> ParameterSet:
    """n = 16384 with a 360-bit q — the sweep point between the Table V
    extrapolations.

    Same basis shape as :func:`table5_large` (twelve q primes, thirteen
    extension primes: Q = 750 bits comfortably holds the ~733-bit
    tensor bound, and p > q * t * n / 4 keeps the HPS scale's p-basis
    representative exact), one ring doubling up. Heuristic security
    ~155 bits classical (3.41 * 16384 / 360 + log2(102 / 3.2)).
    """
    params = _build("large16k", n=16384, k_q=12, k_p=13, t=t, sigma=102.0)
    params.validate_tensor_capacity()
    return params


@lru_cache(maxsize=None)
def hpca19_large(t: int = 2) -> ParameterSet:
    """The large-ring production set: n = 32768, 360-bit q.

    The ring the paper's architecture (and the accelerators it
    inspired — HEAX, Medha) is sized against for deep circuits. Twelve
    30-bit q primes (360 bits) and thirteen extension primes (Q = 750
    bits) satisfy both exactness obligations: the tensor bound
    (log2(2 n (q/2)^2) ~ 734 bits < 750) and the HPS scale's p-basis
    bound (p ~ 2^390 > q * t * n / 4 ~ 2^375).

    Security: under the same calibrated heuristic as
    :meth:`ParameterSet.estimated_security_bits` (linear in
    n / log2 q, sigma credit ~5 bits), n = 32768 with a 360-bit q and
    sigma = 102 lands at ~315 bits classical — far above the paper's
    80-bit floor. The ring is sized for the large-ring NTT engine and
    deep SIMD workloads, not for minimal security: growing q (more
    depth) trades that headroom down, staying >= 128-bit until
    log2 q ~ 870.
    """
    params = _build("hpca19_large", n=32768, k_q=12, k_p=13, t=t,
                    sigma=102.0)
    params.validate_tensor_capacity()
    return params


def large_ring(n: int, t: int = 2) -> ParameterSet:
    """The benchmark-sweep parameter set for one ring degree.

    Maps each degree of the throughput sweep (n = 4096 ... 32768) to
    its named set: the paper's production set at n = 4096, the Table V
    instantiation at n = 8192, and the 360-bit-q large-ring sets above
    it. Raises for degrees outside the sweep.
    """
    sets = {4096: hpca19, 8192: table5_large, 16384: large16k,
            32768: hpca19_large}
    if n not in sets:
        raise ParameterError(
            f"no sweep parameter set for ring degree {n}; "
            f"pick one of {sorted(sets)}"
        )
    return sets[n](t=t)


def table5_parameter_points() -> list[tuple[int, int]]:
    """(n, log2 q) points of the paper's Table V scaling study."""
    return [(2 ** 12, 180), (2 ** 13, 360), (2 ** 14, 720), (2 ** 15, 1440)]


@lru_cache(maxsize=None)
def table5_large(t: int = 2) -> ParameterSet:
    """The second Table V point, actually instantiated: n = 8192, 360-bit q.

    The paper only *estimates* this design (Sec. VI-D assumes a larger
    FPGA); our simulator can execute it outright, which lets the tests
    validate the paper's scaling model against real schedule-derived
    cycle counts instead of extrapolation. q uses twelve 30-bit primes
    (360 bits); the extension basis has thirteen primes so Q comfortably
    exceeds the n * q^2 tensor bound.
    """
    params = _build("table5_large", n=8192, k_q=12, k_p=13, t=t,
                    sigma=102.0)
    params.validate_tensor_capacity()
    return params
