"""repro — reproduction of the HPCA 2019 FPGA FV accelerator.

A functional + cycle-level Python reproduction of:

    Sujoy Sinha Roy, Furkan Turan, Kimmo Järvinen, Frederik Vercauteren,
    Ingrid Verbauwhede. "FPGA-Based High-Performance Parallel
    Architecture for Homomorphic Computing on Encrypted Data."
    HPCA 2019, pp. 387-398.

Public API tour:

>>> from repro import hpca19, FvContext, Evaluator, Plaintext
>>> params = hpca19()
>>> ctx = FvContext(params, seed=1)
>>> keys = ctx.keygen()

Encrypt, compute, decrypt:

>>> import numpy as np
>>> m = Plaintext(np.ones(params.n, dtype=np.int64), params.t)
>>> ct = ctx.encrypt(m, keys.public)
>>> prod = Evaluator(ctx).multiply(ct, ct, keys.relin)

Run the same multiplication on the simulated coprocessor and read the
paper's Table I/II numbers off the report:

>>> from repro import Coprocessor
>>> hw_result, report = Coprocessor(params).mult(ct, ct, keys.relin)
>>> report.seconds           # ~4.3e-3, the paper measures 4.458 ms
"""

from .errors import (
    CapacityError,
    EncodingError,
    HardwareModelError,
    IsaError,
    MemoryConflictError,
    NoiseBudgetExhausted,
    ParameterError,
    ReproError,
)
from .fv import (
    BatchEncoder,
    Ciphertext,
    DigitRelinKey,
    Evaluator,
    FvContext,
    IntegerEncoder,
    KeySet,
    Plaintext,
    PublicKey,
    RelinKey,
    SecretKey,
    noise_budget_bits,
)
from .hw import Coprocessor, HardwareConfig, MultReport, Opcode
from .hw.config import slow_coprocessor_config
from .params import ParameterSet, hpca19, mini, toy
from .system import CloudServer, SoftwareBaseline

__version__ = "1.0.0"

__all__ = [
    # parameters
    "ParameterSet", "hpca19", "mini", "toy",
    # FV scheme
    "FvContext", "Evaluator", "Plaintext", "IntegerEncoder", "BatchEncoder",
    "Ciphertext", "KeySet", "SecretKey", "PublicKey", "RelinKey",
    "DigitRelinKey", "noise_budget_bits",
    # hardware simulator
    "Coprocessor", "HardwareConfig", "slow_coprocessor_config",
    "MultReport", "Opcode",
    # system
    "CloudServer", "SoftwareBaseline",
    # errors
    "ReproError", "ParameterError", "EncodingError", "NoiseBudgetExhausted",
    "HardwareModelError", "MemoryConflictError", "CapacityError", "IsaError",
]
