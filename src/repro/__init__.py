"""repro — reproduction of the HPCA 2019 FPGA FV accelerator.

A functional + cycle-level Python reproduction of:

    Sujoy Sinha Roy, Furkan Turan, Kimmo Järvinen, Frederik Vercauteren,
    Ingrid Verbauwhede. "FPGA-Based High-Performance Parallel
    Architecture for Homomorphic Computing on Encrypted Data."
    HPCA 2019, pp. 387-398.

Public API tour — the :class:`Session` facade is the front door:

>>> from repro import Session, mini
>>> s = Session(mini(t=65537), seed=7)
>>> a, b = s.encrypt([1, 2, 3]), s.encrypt([4, 5, 6])
>>> s.decrypt(a * b + a, size=3)          # lazy graph, auto-executed
array([ 5, 14, 27])

The same expression compiles into an :class:`HEProgram` that also runs
through the simulated serving stack (latency under load on N boards):

>>> from repro import SimulatedBackend, sum_slots
>>> program = s.compile(sum_slots(a * b), name="dot")
>>> run = SimulatedBackend.over_cluster(s.params, 4).run(
...     program, requests=100, rate_per_second=200.0)
>>> run.latency_summary().p99             # simulated seconds

The low-level layers stay importable for scheme internals work:

>>> from repro import hpca19, FvContext, Evaluator, Plaintext
>>> params = hpca19()
>>> ctx = FvContext(params, seed=1)
>>> keys = ctx.keygen()

Run one multiplication on the simulated coprocessor and read the
paper's Table I/II numbers off the report:

>>> from repro import Coprocessor
>>> m = Plaintext.from_list([1, 1], params.n, params.t)
>>> ct = ctx.encrypt(m, keys.public)
>>> hw_result, report = Coprocessor(params).mult(ct, ct, keys.relin)
>>> report.seconds           # ~4.3e-3, the paper measures 4.458 ms
"""

from .api import (
    Backend,
    CiphertextHandle,
    HEProgram,
    LocalBackend,
    ProgramFuture,
    ProgramResult,
    Session,
    LoweredProgram,
    SimulatedBackend,
    SimulatedRun,
    rotate,
    sum_slots,
)

from .errors import (
    CapacityError,
    EncodingError,
    HardwareModelError,
    IsaError,
    MemoryConflictError,
    NoiseBudgetExhausted,
    ParameterError,
    ReproError,
)
from .fv import (
    BatchEncoder,
    Ciphertext,
    DigitRelinKey,
    Evaluator,
    FvContext,
    IntegerEncoder,
    KeySet,
    Plaintext,
    PublicKey,
    RelinKey,
    SecretKey,
    noise_budget_bits,
)
from .hw import Coprocessor, HardwareConfig, MultReport, Opcode
from .hw.config import slow_coprocessor_config
from .params import ParameterSet, hpca19, hpca19_large, large_ring, mini, toy
from .system import CloudServer, SoftwareBaseline

__version__ = "1.1.0"

__all__ = [
    # client facade (start here)
    "Session", "CiphertextHandle", "HEProgram", "rotate", "sum_slots",
    "Backend", "LocalBackend", "ProgramResult",
    "SimulatedBackend", "SimulatedRun", "ProgramFuture",
    "LoweredProgram",
    # parameters
    "ParameterSet", "hpca19", "hpca19_large", "large_ring", "mini", "toy",
    # FV scheme
    "FvContext", "Evaluator", "Plaintext", "IntegerEncoder", "BatchEncoder",
    "Ciphertext", "KeySet", "SecretKey", "PublicKey", "RelinKey",
    "DigitRelinKey", "noise_budget_bits",
    # hardware simulator
    "Coprocessor", "HardwareConfig", "slow_coprocessor_config",
    "MultReport", "Opcode",
    # system
    "CloudServer", "SoftwareBaseline",
    # errors
    "ReproError", "ParameterError", "EncodingError", "NoiseBudgetExhausted",
    "HardwareModelError", "MemoryConflictError", "CapacityError", "IsaError",
]
