"""Client-server network model (paper Fig. 11, the 'Networking' Arm core).

The paper dedicates its third Arm core to a lightweight IP stack for
client communication but does not evaluate the network path. This module
extends the system model to full client round trips over the ZCU102's
gigabit Ethernet, which exposes a finding the paper's numbers imply but
never state: at 400 Mult/s, shipping two operand ciphertexts per
multiplication (393 KiB) needs ~157 MB/s of ingress — beyond gigabit
Ethernet — so the *network*, not the FPGA, bounds a naive
one-shot-per-request deployment. Applications therefore batch work
server-side (as the smart-grid pipeline does), which is consistent with
the paper's application framing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import ParameterSet
from .server import CloudServer
from .workloads import JobKind

GIGABIT_ETHERNET_BYTES_PER_SEC = 125_000_000
#: lwIP on a Cortex-A53 sustains well under line rate; the paper's stack
#: is "light-weight", so we model 70% of line rate.
LWIP_EFFICIENCY = 0.70
#: Per-request protocol overhead (headers, acks, syscall-free baremetal
#: loop) — one round trip on a switched LAN.
PER_REQUEST_LATENCY_SECONDS = 200e-6


@dataclass(frozen=True)
class NetworkModel:
    """Ingress/egress cost of shipping ciphertexts to the server."""

    bandwidth_bytes_per_sec: float = (GIGABIT_ETHERNET_BYTES_PER_SEC
                                      * LWIP_EFFICIENCY)
    request_latency_seconds: float = PER_REQUEST_LATENCY_SECONDS

    def transfer_seconds(self, num_bytes: int) -> float:
        return (self.request_latency_seconds
                + num_bytes / self.bandwidth_bytes_per_sec)


@dataclass(frozen=True)
class RoundTrip:
    """End-to-end timing of one client request."""

    upload_seconds: float
    server_seconds: float
    download_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.upload_seconds + self.server_seconds
                + self.download_seconds)


class ClientSession:
    """A remote client using the homomorphic cloud service."""

    def __init__(self, params: ParameterSet, server: CloudServer,
                 network: NetworkModel | None = None) -> None:
        self.params = params
        self.server = server
        self.network = network or NetworkModel()

    def mult_round_trip(self) -> RoundTrip:
        """Upload two ciphertexts, one Mult, download the result."""
        upload = self.network.transfer_seconds(
            2 * self.params.ciphertext_bytes
        )
        download = self.network.transfer_seconds(
            self.params.ciphertext_bytes
        )
        return RoundTrip(
            upload_seconds=upload,
            server_seconds=self.server.job_seconds(JobKind.MULT),
            download_seconds=download,
        )

    def network_bound_throughput(self) -> float:
        """Mults/s the network alone can feed (2 operand cts each)."""
        per_request = 2 * self.params.ciphertext_bytes
        return self.network.bandwidth_bytes_per_sec / per_request

    def effective_throughput(self) -> float:
        """min(server, network) — the deployable rate for one-shot jobs."""
        return min(self.server.mult_throughput_per_second(),
                   self.network_bound_throughput())

    def is_network_bound(self) -> bool:
        return (self.network_bound_throughput()
                < self.server.mult_throughput_per_second())

    def batched_throughput(self, ops_per_upload: int) -> float:
        """Server-side batching: one upload feeds many operations.

        The smart-grid pipeline computes many adds/mults per uploaded
        ciphertext set, amortising the ingress cost; with enough reuse
        the FPGA becomes the bottleneck again.
        """
        if ops_per_upload < 1:
            raise ValueError("ops_per_upload must be at least 1")
        network_rate = self.network_bound_throughput() * ops_per_upload
        return min(self.server.mult_throughput_per_second(), network_rate)
