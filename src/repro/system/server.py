"""The cloud server: 2 coprocessors + 3 Arm cores (paper Fig. 11).

The paper reserves one Arm application core per coprocessor and a third
core for networking and DDR/DMA arbitration (Xilinx mutex IP prevents
simultaneous DMA requests). This module models that system at the job
level: each homomorphic request pays its ciphertext transfers and its
coprocessor compute time, coprocessors run in parallel, and the scheduler
dispatches to the earliest-free instance — reproducing the paper's "two
Mult operations take roughly the same time as one" and the 400 Mult/s
headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import HardwareConfig
from ..hw.coprocessor import Coprocessor
from ..hw.dma import DmaModel
from ..params import ParameterSet
from .arm import ArmCoreModel
from .workloads import Job, JobKind


@dataclass(frozen=True)
class JobResult:
    """Completion record of one scheduled job."""

    job: Job
    coprocessor: int
    start_seconds: float
    finish_seconds: float

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.job.arrival_seconds


@dataclass
class ServeReport:
    """Timing summary of one workload run."""

    results: list[JobResult] = field(default_factory=list)

    @property
    def makespan_seconds(self) -> float:
        return max((r.finish_seconds for r in self.results), default=0.0)

    def throughput_per_second(self, kind: JobKind | None = None) -> float:
        jobs = [r for r in self.results
                if kind is None or r.job.kind is kind]
        if not jobs or self.makespan_seconds == 0:
            return 0.0
        return len(jobs) / self.makespan_seconds

    @property
    def mean_latency_seconds(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.latency_seconds for r in self.results) / len(self.results)


class CloudServer:
    """The Arm+FPGA homomorphic computing server."""

    def __init__(self, params: ParameterSet,
                 config: HardwareConfig | None = None) -> None:
        self.params = params
        self.config = config or HardwareConfig()
        self.dma = DmaModel(self.config)
        self.arm = ArmCoreModel(self.config)
        # One functional coprocessor is enough to derive the per-op
        # latencies; the scheduler replicates its timing N times.
        self.reference = Coprocessor(params, self.config)
        self._mult_seconds_cache: float | None = None

    # -- per-job costs ---------------------------------------------------------------

    def transfer_in_seconds(self, num_operands: int = 2) -> float:
        return self.dma.send_ciphertexts_seconds(self.params.poly_bytes,
                                                 num_operands)

    def transfer_out_seconds(self) -> float:
        return self.dma.receive_ciphertext_seconds(self.params.poly_bytes)

    def mult_compute_seconds(self) -> float:
        """Modelled Mult latency (includes relin key streaming)."""
        if self._mult_seconds_cache is None:
            from ..hw.compiler import expected_table2_calls
            from ..hw.isa import Opcode

            model = self.reference.instruction_cycle_model()
            calls = expected_table2_calls(self.params, self.config)
            cycles = sum(
                model[op] * count for op, count in calls.items()
                if op in model
            )
            # Digit broadcasts.
            digit_cycles = (self.params.n // 2
                            + self.config.stage_sync_overhead)
            cycles += calls[Opcode.DIGIT] * digit_cycles
            seconds = cycles / self.config.fpga_clock_hz
            # Relinearisation key streaming.
            if not self.config.relin_key_on_chip:
                per_component = 2 * (
                    self.dma.transfer_seconds(self.params.poly_bytes)
                    + self.dma.arm_setup_seconds
                )
                seconds += calls[Opcode.LOAD_RLK] * per_component
            self._mult_seconds_cache = seconds
        return self._mult_seconds_cache

    def add_compute_seconds(self) -> float:
        from ..hw.isa import Opcode

        model = self.reference.instruction_cycle_model()
        return 2 * model[Opcode.CADD] / self.config.fpga_clock_hz

    def job_seconds(self, kind: JobKind) -> float:
        compute = (self.mult_compute_seconds() if kind is JobKind.MULT
                   else self.add_compute_seconds())
        return (self.transfer_in_seconds() + compute
                + self.transfer_out_seconds())

    # -- scheduling --------------------------------------------------------------------

    def serve(self, jobs: list[Job]) -> ServeReport:
        """Dispatch jobs to the earliest-free coprocessor."""
        free_at = [0.0] * self.config.num_coprocessors
        report = ServeReport()
        for job in jobs:
            coproc = min(range(len(free_at)), key=free_at.__getitem__)
            start = max(free_at[coproc], job.arrival_seconds)
            finish = start + self.job_seconds(job.kind)
            free_at[coproc] = finish
            report.results.append(
                JobResult(job=job, coprocessor=coproc,
                          start_seconds=start, finish_seconds=finish)
            )
        return report

    # -- headline numbers ----------------------------------------------------------------

    def mult_throughput_per_second(self) -> float:
        """The paper's 400-Mult/s claim (both coprocessors busy)."""
        return self.config.num_coprocessors / self.job_seconds(JobKind.MULT)

    def add_speedup_over_sw(self) -> float:
        """Table I: Add in SW / Add in HW (incl. transfers) ~ 80x."""
        hw = self.job_seconds(JobKind.ADD)
        sw = self.arm.add_in_sw_seconds(self.params)
        return sw / hw
