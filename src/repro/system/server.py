"""The cloud server: 2 coprocessors + 3 Arm cores (paper Fig. 11).

The paper reserves one Arm application core per coprocessor and a third
core for networking and DDR/DMA arbitration (Xilinx mutex IP prevents
simultaneous DMA requests). This module models that system at the job
level: each homomorphic request pays its ciphertext transfers and its
coprocessor compute time, coprocessors run in parallel, and the scheduler
dispatches to the earliest-free instance — reproducing the paper's "two
Mult operations take roughly the same time as one" and the 400 Mult/s
headline.

The per-job costs live in :class:`CostModel` so that both the static
:meth:`CloudServer.serve` loop kept here and the discrete-event runtime
in :mod:`repro.serve` price jobs identically; the two are validated
against each other on saturated streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import HardwareConfig
from ..hw.coprocessor import Coprocessor
from ..hw.dma import DmaModel
from ..hw.isa import Opcode
from ..params import ParameterSet
from .arm import ArmCoreModel
from .workloads import Job, JobKind


class CostModel:
    """Per-job service cost of the Fig. 11 server (transfers + compute).

    Derives Mult/Add latencies from the coprocessor's instruction cycle
    model and the DMA transfer model, caching the cycle model and the
    per-kind compute times so repeated pricing (the event engine asks on
    every dispatch) costs a dictionary lookup.
    """

    def __init__(self, params: ParameterSet,
                 config: HardwareConfig | None = None) -> None:
        self.params = params
        self.config = config or HardwareConfig()
        self.dma = DmaModel(self.config)
        # One functional coprocessor is enough to derive the per-op
        # latencies; the scheduler replicates its timing N times.
        self.reference = Coprocessor(params, self.config)
        self._cycle_model: dict[Opcode, int] | None = None
        self._compute_cache: dict[JobKind, float] = {}

    def instruction_cycle_model(self) -> dict[Opcode, int]:
        """The Table II cycle model, built once and shared by all ops."""
        if self._cycle_model is None:
            self._cycle_model = self.reference.instruction_cycle_model()
        return self._cycle_model

    # -- transfers ---------------------------------------------------------------------

    def transfer_in_seconds(self, num_operands: int = 2) -> float:
        return self.dma.send_ciphertexts_seconds(self.params.poly_bytes,
                                                 num_operands)

    def transfer_out_seconds(self) -> float:
        return self.dma.receive_ciphertext_seconds(self.params.poly_bytes)

    # -- compute -----------------------------------------------------------------------

    def mult_compute_seconds(self) -> float:
        """Modelled Mult latency (includes relin key streaming)."""
        if JobKind.MULT not in self._compute_cache:
            from ..hw.compiler import expected_table2_calls

            model = self.instruction_cycle_model()
            calls = expected_table2_calls(self.params, self.config)
            cycles = sum(
                model[op] * count for op, count in calls.items()
                if op in model
            )
            # Digit broadcasts.
            digit_cycles = (self.params.n // 2
                            + self.config.stage_sync_overhead)
            cycles += calls[Opcode.DIGIT] * digit_cycles
            seconds = cycles / self.config.fpga_clock_hz
            # Relinearisation key streaming.
            if not self.config.relin_key_on_chip:
                per_component = 2 * (
                    self.dma.transfer_seconds(self.params.poly_bytes)
                    + self.dma.arm_setup_seconds
                )
                seconds += calls[Opcode.LOAD_RLK] * per_component
            self._compute_cache[JobKind.MULT] = seconds
        return self._compute_cache[JobKind.MULT]

    def add_compute_seconds(self) -> float:
        if JobKind.ADD not in self._compute_cache:
            model = self.instruction_cycle_model()
            self._compute_cache[JobKind.ADD] = (
                2 * model[Opcode.CADD] / self.config.fpga_clock_hz
            )
        return self._compute_cache[JobKind.ADD]

    def rotate_compute_seconds(self) -> float:
        """Modelled Galois rotation (slot-rotate + key switch).

        The permutation runs on the memory-rearrange datapath (two
        polynomial passes); the key switch is the relinearisation
        sum-of-products with the same RNS digit structure: k_q digit
        NTTs, 2 k_q coefficient multiplies/accumulates, two inverse
        transforms — plus streaming the k_q-component Galois key from
        DDR when relinearisation keys are not resident on chip.
        """
        if JobKind.ROTATE not in self._compute_cache:
            model = self.instruction_cycle_model()
            k = self.params.k_q
            cycles = (2 * model[Opcode.REARRANGE]
                      + k * model[Opcode.NTT]
                      + 2 * model[Opcode.INTT]
                      + 2 * k * (model[Opcode.CMUL] + model[Opcode.CADD]))
            cycles += k * (self.params.n // 2
                           + self.config.stage_sync_overhead)
            seconds = cycles / self.config.fpga_clock_hz
            if not self.config.relin_key_on_chip:
                per_component = 2 * (
                    self.dma.transfer_seconds(self.params.poly_bytes)
                    + self.dma.arm_setup_seconds
                )
                seconds += k * per_component
            self._compute_cache[JobKind.ROTATE] = seconds
        return self._compute_cache[JobKind.ROTATE]

    def mul_plain_compute_seconds(self) -> float:
        """Ciphertext x plaintext multiply: 3 NTT + 2 CMUL + 2 INTT."""
        if JobKind.MUL_PLAIN not in self._compute_cache:
            model = self.instruction_cycle_model()
            cycles = (3 * model[Opcode.NTT] + 2 * model[Opcode.CMUL]
                      + 2 * model[Opcode.INTT])
            self._compute_cache[JobKind.MUL_PLAIN] = (
                cycles / self.config.fpga_clock_hz
            )
        return self._compute_cache[JobKind.MUL_PLAIN]

    def relin_compute_seconds(self) -> float:
        """The relinearisation keyswitch on its own (deferred ReLin).

        Same digit structure as the rotation keyswitch — k_q digit
        NTTs, 2 k_q multiply/accumulates, two inverse transforms and
        the key streaming — without the rotation's two memory-rearrange
        passes.
        """
        if JobKind.RELIN not in self._compute_cache:
            model = self.instruction_cycle_model()
            k = self.params.k_q
            cycles = (k * model[Opcode.NTT]
                      + 2 * model[Opcode.INTT]
                      + 2 * k * (model[Opcode.CMUL] + model[Opcode.CADD]))
            cycles += k * (self.params.n // 2
                           + self.config.stage_sync_overhead)
            seconds = cycles / self.config.fpga_clock_hz
            if not self.config.relin_key_on_chip:
                per_component = 2 * (
                    self.dma.transfer_seconds(self.params.poly_bytes)
                    + self.dma.arm_setup_seconds
                )
                seconds += k * per_component
            self._compute_cache[JobKind.RELIN] = seconds
        return self._compute_cache[JobKind.RELIN]

    def mult_raw_compute_seconds(self) -> float:
        """Mult without its relinearisation tail (tensor + scale only).

        Modelled as the full Mult minus the deferred-ReLin keyswitch it
        no longer performs, floored at the Add cost so an aggressive
        config cannot price it negative.
        """
        if JobKind.MULT_RAW not in self._compute_cache:
            self._compute_cache[JobKind.MULT_RAW] = max(
                self.mult_compute_seconds()
                - self.relin_compute_seconds(),
                self.add_compute_seconds(),
            )
        return self._compute_cache[JobKind.MULT_RAW]

    def compute_seconds(self, kind: JobKind) -> float:
        if kind is JobKind.MULT:
            return self.mult_compute_seconds()
        if kind is JobKind.ROTATE:
            return self.rotate_compute_seconds()
        if kind is JobKind.MUL_PLAIN:
            return self.mul_plain_compute_seconds()
        if kind is JobKind.MULT_RAW:
            return self.mult_raw_compute_seconds()
        if kind is JobKind.RELIN:
            return self.relin_compute_seconds()
        return self.add_compute_seconds()

    def job_seconds(self, kind: JobKind) -> float:
        """Full coprocessor occupancy of one job: in + compute + out."""
        return (self.transfer_in_seconds() + self.compute_seconds(kind)
                + self.transfer_out_seconds())

    def job_seconds_of(self, job: Job) -> float:
        """Occupancy of one concrete job, honouring its real byte sizes.

        Falls back to the canonical Table I shape (4 polynomial bursts
        in, 2 out) when the job carries no per-op transfer footprint, so
        plain MULT/ADD streams price exactly as :meth:`job_seconds`.
        """
        if job.polys_in is None and job.polys_out is None:
            return self.job_seconds(job.kind)
        poly_bytes = self.params.poly_bytes
        polys_in = 4 if job.polys_in is None else job.polys_in
        polys_out = 2 if job.polys_out is None else job.polys_out
        transfer_in = (self.dma.polynomial_job_seconds(poly_bytes, polys_in)
                       if polys_in else 0.0)
        transfer_out = (self.dma.polynomial_job_seconds(poly_bytes, polys_out)
                        if polys_out else 0.0)
        return transfer_in + self.compute_seconds(job.kind) + transfer_out


@dataclass(frozen=True)
class JobResult:
    """Completion record of one scheduled job."""

    job: Job
    coprocessor: int
    start_seconds: float
    finish_seconds: float

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.job.arrival_seconds


@dataclass
class ServeReport:
    """Timing summary of one workload run."""

    results: list[JobResult] = field(default_factory=list)

    @property
    def first_arrival_seconds(self) -> float:
        return min((r.job.arrival_seconds for r in self.results),
                   default=0.0)

    @property
    def last_finish_seconds(self) -> float:
        return max((r.finish_seconds for r in self.results), default=0.0)

    @property
    def makespan_seconds(self) -> float:
        """Busy interval of the run, measured from the *first arrival*.

        Open-loop streams (e.g. Poisson) may not deliver their first job
        at t=0; measuring from t=0 would dilute the throughput of every
        such run by the initial idle gap.
        """
        if not self.results:
            return 0.0
        return self.last_finish_seconds - self.first_arrival_seconds

    def throughput_per_second(self, kind: JobKind | None = None) -> float:
        jobs = [r for r in self.results
                if kind is None or r.job.kind is kind]
        if not jobs or self.makespan_seconds == 0:
            return 0.0
        return len(jobs) / self.makespan_seconds

    @property
    def mean_latency_seconds(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.latency_seconds for r in self.results) / len(self.results)


class CloudServer:
    """The Arm+FPGA homomorphic computing server."""

    def __init__(self, params: ParameterSet,
                 config: HardwareConfig | None = None) -> None:
        self.params = params
        self.config = config or HardwareConfig()
        self.cost = CostModel(params, self.config)
        self.dma = self.cost.dma
        self.reference = self.cost.reference
        self.arm = ArmCoreModel(self.config)

    # -- per-job costs (delegated to the shared CostModel) -----------------------------

    def transfer_in_seconds(self, num_operands: int = 2) -> float:
        return self.cost.transfer_in_seconds(num_operands)

    def transfer_out_seconds(self) -> float:
        return self.cost.transfer_out_seconds()

    def mult_compute_seconds(self) -> float:
        return self.cost.mult_compute_seconds()

    def add_compute_seconds(self) -> float:
        return self.cost.add_compute_seconds()

    def job_seconds(self, kind: JobKind) -> float:
        return self.cost.job_seconds(kind)

    # -- scheduling --------------------------------------------------------------------

    def serve(self, jobs: list[Job]) -> ServeReport:
        """Dispatch jobs to the earliest-free coprocessor.

        Static list scheduling in arrival order — the original Fig. 11
        reproduction. For queueing delay, tenant contention, batching and
        admission control use :class:`repro.serve.ServingRuntime`, which
        matches this loop on saturated streams (see tests).
        """
        free_at = [0.0] * self.config.num_coprocessors
        report = ServeReport()
        for job in jobs:
            coproc = min(range(len(free_at)), key=free_at.__getitem__)
            start = max(free_at[coproc], job.arrival_seconds)
            finish = start + self.job_seconds(job.kind)
            free_at[coproc] = finish
            report.results.append(
                JobResult(job=job, coprocessor=coproc,
                          start_seconds=start, finish_seconds=finish)
            )
        return report

    # -- headline numbers --------------------------------------------------------------

    def mult_throughput_per_second(self) -> float:
        """The paper's 400-Mult/s claim (both coprocessors busy)."""
        return self.config.num_coprocessors / self.job_seconds(JobKind.MULT)

    def add_speedup_over_sw(self) -> float:
        """Table I: Add in SW / Add in HW (incl. transfers) ~ 80x."""
        hw = self.job_seconds(JobKind.ADD)
        sw = self.arm.add_in_sw_seconds(self.params)
        return sw / hw
