"""System level: the Arm+FPGA server of paper Fig. 11 and its baselines.

* :mod:`~repro.system.arm` — cost model of the baremetal Arm software;
* :mod:`~repro.system.baseline` — instrumented software FV mapped onto
  the Intel i5 / FV-NFLlib reference of Sec. VI-E;
* :mod:`~repro.system.related_work` — the comparison points of Sec. VI-E;
* :mod:`~repro.system.server` — the dual-coprocessor cloud server, its
  reusable per-job :class:`~repro.system.server.CostModel`, and the
  static job scheduler;
* :mod:`~repro.system.workloads` — homomorphic job streams (saturating,
  Poisson, bursty MMPP, multi-tenant) for the throughput experiments.

The discrete-event serving runtime built on these models lives in
:mod:`repro.serve`.
"""

from .arm import ArmCoreModel
from .baseline import SoftwareBaseline
from .server import CloudServer, CostModel, JobResult, ServeReport
from .workloads import (
    Job,
    JobKind,
    merge_streams,
    mixed_workload,
    mmpp_stream,
    mult_stream,
    multi_tenant_stream,
    poisson_stream,
)

__all__ = [
    "ArmCoreModel",
    "SoftwareBaseline",
    "CloudServer",
    "CostModel",
    "JobResult",
    "ServeReport",
    "Job",
    "JobKind",
    "mult_stream",
    "merge_streams",
    "mixed_workload",
    "mmpp_stream",
    "multi_tenant_stream",
    "poisson_stream",
]
