"""System level: the Arm+FPGA server of paper Fig. 11 and its baselines.

* :mod:`~repro.system.arm` — cost model of the baremetal Arm software;
* :mod:`~repro.system.baseline` — instrumented software FV mapped onto
  the Intel i5 / FV-NFLlib reference of Sec. VI-E;
* :mod:`~repro.system.related_work` — the comparison points of Sec. VI-E;
* :mod:`~repro.system.server` — the dual-coprocessor cloud server with
  its three Arm cores and job scheduler;
* :mod:`~repro.system.workloads` — homomorphic job streams for the
  throughput experiments.
"""

from .arm import ArmCoreModel
from .baseline import SoftwareBaseline
from .server import CloudServer, JobResult
from .workloads import Job, JobKind, mixed_workload, mult_stream

__all__ = [
    "ArmCoreModel",
    "SoftwareBaseline",
    "CloudServer",
    "JobResult",
    "Job",
    "JobKind",
    "mult_stream",
    "mixed_workload",
]
