"""Software baseline: FV-NFLlib on an Intel i5 (paper Sec. VI-E).

The paper's headline compares its FPGA against the highly optimised
single-threaded FV-NFLlib implementation of Bos et al. [4] on an Intel
i5-3427U at 1.8 GHz: 33 ms per Mult and 0.1 ms per Add for the same
parameter set.

We cannot run NFLlib (no such hardware, no network), so the baseline is
an *instrumented cost model*: :func:`count_mult_operations` counts the
primitive modular operations the RNS-HPS multiplication performs for a
parameter set — the same dataflow our own evaluator executes — and a
per-operation cycle constant maps counts to time. The constant
(~10 cycles per modular multiplication) is calibrated once against the
33 ms NFLlib datapoint and is consistent with AVX2 Barrett/NTT kernels
of that era; the *shape* over parameter sets then follows from the
counts, not from the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from ..params import ParameterSet

#: Calibrated against NFLlib's 33 ms Mult at (n=4096, 6+7 primes): the
#: operation census of that configuration is ~5.8M modmuls + ~7.1M
#: modadds, and 5.7 cycles per vectorised modular multiplication lands on
#: the measured 33 ms (consistent with AVX2 Barrett/NTT kernels).
I5_CYCLES_PER_MODMUL = 5.7
#: Additions ride along with the multiplies in vectorised kernels.
I5_CYCLES_PER_MODADD = 3.7
I5_CLOCK_HZ = 1_800_000_000


@dataclass(frozen=True)
class OperationCounts:
    """Primitive-operation census of one homomorphic operation."""

    modmuls: int
    modadds: int

    def __add__(self, other: OperationCounts) -> OperationCounts:
        return OperationCounts(self.modmuls + other.modmuls,
                               self.modadds + other.modadds)

    def scaled(self, factor: int) -> OperationCounts:
        return OperationCounts(self.modmuls * factor,
                               self.modadds * factor)


def ntt_operations(n: int) -> OperationCounts:
    """One n-point NTT: (n/2) log n butterflies."""
    butterflies = (n // 2) * int(log2(n))
    return OperationCounts(modmuls=butterflies, modadds=2 * butterflies)


def count_mult_operations(params: ParameterSet) -> OperationCounts:
    """Primitive ops of one RNS-HPS FV.Mult (the paper Fig. 2 dataflow)."""
    n, k_q, k_p, k_total = params.n, params.k_q, params.k_p, params.k_total
    total = OperationCounts(0, 0)
    # Lift q->Q of four polynomials: per coefficient, k_q scaling muls,
    # k_p sums of k_q products, and the quotient estimate (k_q muls).
    lift_per_coeff = OperationCounts(
        modmuls=k_q + k_p * k_q + k_q + k_p,
        modadds=k_p * k_q + k_q,
    )
    total += lift_per_coeff.scaled(4 * n)
    # Forward NTT of four polynomials over the full basis.
    total += ntt_operations(n).scaled(4 * k_total)
    # Tensor: four pointwise products + one addition over the full basis.
    total += OperationCounts(modmuls=4 * n, modadds=n).scaled(k_total)
    # Inverse NTT of three tensor polynomials (plus the n^-1 scaling).
    total += ntt_operations(n).scaled(3 * k_total)
    total += OperationCounts(modmuls=n, modadds=0).scaled(3 * k_total)
    # Scale Q->q of three polynomials.
    scale_per_coeff = OperationCounts(
        modmuls=k_q + 2 * k_q * k_p + k_p + k_q * k_p,
        modadds=2 * k_q * k_p + k_p,
    )
    total += scale_per_coeff.scaled(3 * n)
    # Relinearisation: k_q digit NTTs, 2*k_q pointwise MACs, 2 inverse NTTs.
    total += ntt_operations(n).scaled(k_q + 2)
    total += OperationCounts(modmuls=2 * n, modadds=2 * n).scaled(
        k_q * k_q
    )
    return total


def count_add_operations(params: ParameterSet) -> OperationCounts:
    return OperationCounts(modmuls=0, modadds=2 * params.k_q * params.n)


@dataclass(frozen=True)
class SoftwareBaseline:
    """The Intel i5 / FV-NFLlib reference point."""

    params: ParameterSet
    clock_hz: int = I5_CLOCK_HZ

    def _seconds(self, ops: OperationCounts) -> float:
        cycles = (ops.modmuls * I5_CYCLES_PER_MODMUL
                  + ops.modadds * I5_CYCLES_PER_MODADD)
        return cycles / self.clock_hz

    def mult_seconds(self) -> float:
        return self._seconds(count_mult_operations(self.params))

    def add_seconds(self) -> float:
        return self._seconds(count_add_operations(self.params))

    def mults_per_second(self) -> float:
        return 1.0 / self.mult_seconds()
