"""Workload generators for the throughput experiments.

The paper's server executes streams of homomorphic operations arriving
from network clients (Fig. 11). These generators produce deterministic
job streams for the scheduler simulations: pure Mult streams for the
400-Mult/s headline, mixed Add/Mult streams shaped like the smart-grid
forecasting application of [4] (many additions per multiplication),
and open-loop arrival processes — Poisson, bursty MMPP, and
multi-tenant superpositions — for the serving-runtime experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

DEFAULT_TENANT = "default"


class JobKind(Enum):
    MULT = "mult"
    ADD = "add"
    ROTATE = "rotate"
    MUL_PLAIN = "mul_plain"
    #: Tensor + scale without the relinearisation keyswitch (the
    #: optimiser's lazy-relin placement defers the fold).
    MULT_RAW = "mult_raw"
    #: The deferred relinearisation keyswitch on its own.
    RELIN = "relin"


@dataclass(frozen=True)
class Job:
    """One homomorphic operation request from a client.

    ``polys_in``/``polys_out`` override the canonical Table I transfer
    shape (two operand ciphertexts in, one result out = 4/2 polynomial
    bursts) with the operation's real byte footprint — the HE-program
    lowering in :mod:`repro.api` sets them per graph node (a rotation
    moves one ciphertext, not two). ``request`` tags every job lowered
    from the same client program execution so request-level latency can
    be reassembled from per-op completions.
    """

    index: int
    kind: JobKind
    arrival_seconds: float = 0.0
    tenant: str = DEFAULT_TENANT
    polys_in: int | None = None
    polys_out: int | None = None
    request: int | None = None
    #: Remaining critical-path seconds of this job's request (this op's
    #: service time plus the longest dependent chain behind it), stamped
    #: by program-aware lowering; ``None`` for jobs outside a program.
    critical_seconds: float | None = None
    #: Absolute sim-clock deadline: a job still queued past this instant
    #: is rejected with reason ``"timeout"`` instead of dispatched.
    deadline_seconds: float | None = None
    #: Original arrival instant of a retried job — latency (and SLA
    #: accounting) is always measured from the client's first submission,
    #: not the retry's re-injection time. ``None`` for first attempts.
    first_arrival_seconds: float | None = None


def mult_stream(count: int) -> list[Job]:
    """A saturating stream of multiplications (all available at t=0)."""
    return [Job(index=i, kind=JobKind.MULT) for i in range(count)]


def add_stream(count: int) -> list[Job]:
    return [Job(index=i, kind=JobKind.ADD) for i in range(count)]


def poisson_stream(rate_per_second: float, duration_seconds: float,
                   kind: JobKind = JobKind.MULT,
                   seed: int = 0,
                   tenant: str = DEFAULT_TENANT) -> list[Job]:
    """Jobs with exponential inter-arrival times (an open-loop client).

    Lets the scheduler experiments study latency under load rather than
    just saturated throughput: below the service rate the queue stays
    short; above it, latency grows with the backlog.
    """
    if rate_per_second <= 0 or duration_seconds <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    now = 0.0
    index = 0
    while True:
        now += rng.exponential(1.0 / rate_per_second)
        if now >= duration_seconds:
            break
        jobs.append(Job(index=index, kind=kind, arrival_seconds=now,
                        tenant=tenant))
        index += 1
    return jobs


def mmpp_stream(low_rate: float, high_rate: float,
                mean_dwell_seconds: float, duration_seconds: float,
                kind: JobKind = JobKind.MULT, seed: int = 0,
                tenant: str = DEFAULT_TENANT) -> list[Job]:
    """Two-state Markov-modulated Poisson process (bursty clients).

    The process alternates between a quiet state (``low_rate``) and a
    burst state (``high_rate``); dwell times in each state are
    exponential with the given mean. MMPP is the standard model for
    bursty request traffic — the time-averaged rate is the mean of the
    two rates, but arrivals cluster, which stresses schedulers and
    admission control far more than a plain Poisson stream of the same
    average rate.
    """
    if low_rate < 0 or high_rate <= 0:
        raise ValueError("rates must be non-negative (high rate positive)")
    if mean_dwell_seconds <= 0 or duration_seconds <= 0:
        raise ValueError("dwell and duration must be positive")
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    now = 0.0
    index = 0
    rate = low_rate
    state_end = rng.exponential(mean_dwell_seconds)
    while now < duration_seconds:
        if rate <= 0:
            now = state_end
        else:
            now += rng.exponential(1.0 / rate)
        if now >= state_end:
            # Switch state; the interrupted inter-arrival gap is
            # re-drawn at the new rate (memorylessness makes this
            # exact). Checked before the duration cut-off so a long
            # quiet-state draw cannot swallow the bursts behind it.
            now = state_end
            rate = high_rate if rate == low_rate else low_rate
            state_end = now + rng.exponential(mean_dwell_seconds)
            continue
        if now >= duration_seconds:
            break
        jobs.append(Job(index=index, kind=kind, arrival_seconds=now,
                        tenant=tenant))
        index += 1
    return jobs


def merge_streams(*streams: list[Job]) -> list[Job]:
    """Interleave job streams by arrival time and re-index contiguously.

    The schedulers rely on the merged invariant: arrival-sorted, with
    ``index`` running 0..n-1 across the combined stream.
    """
    merged = sorted((job for stream in streams for job in stream),
                    key=lambda job: job.arrival_seconds)
    return [replace(j, index=i) for i, j in enumerate(merged)]


def multi_tenant_stream(rates_per_second: dict[str, float],
                        duration_seconds: float,
                        kind: JobKind = JobKind.MULT,
                        seed: int = 0) -> list[Job]:
    """Superpose independent per-tenant Poisson streams.

    Each tenant gets its own arrival process; the merged stream is
    sorted by arrival time and re-indexed, so schedulers see one
    interleaved queue with per-job tenant tags.
    """
    if not rates_per_second:
        raise ValueError("need at least one tenant")
    return merge_streams(*(
        poisson_stream(rate, duration_seconds, kind=kind,
                       seed=seed + offset, tenant=tenant)
        for offset, (tenant, rate) in enumerate(
            sorted(rates_per_second.items()))
    ))


def zipf_tenant_rates(num_tenants: int, total_rate_per_second: float,
                      skew: float = 1.1) -> dict[str, float]:
    """Zipf-popularity tenant rates summing to ``total_rate_per_second``.

    Request traffic across a large tenant population is famously
    heavy-tailed: a few tenants dominate, most trickle. Tenant ``i``
    (zero-based) gets weight ``(i + 1) ** -skew``, normalised so the
    cluster-wide offered load is exactly the requested total. ``skew=0``
    degenerates to a uniform population.
    """
    if num_tenants < 1:
        raise ValueError("need at least one tenant")
    if total_rate_per_second <= 0:
        raise ValueError("total rate must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = [(i + 1) ** -skew for i in range(num_tenants)]
    scale = total_rate_per_second / sum(weights)
    return {tenant_name(i): w * scale for i, w in enumerate(weights)}


def tenant_name(index: int) -> str:
    """The canonical name of synthetic tenant `index` (``t0042``)."""
    return f"t{index:04d}"


def cluster_trace(num_tenants: int, total_rate_per_second: float,
                  duration_seconds: float, *, skew: float = 1.1,
                  add_fraction: float = 0.0,
                  seed: int = 0) -> list[Job]:
    """An open-loop cluster-scale trace: many tenants, Zipf popularity.

    Superposes one Poisson stream per tenant (rates from
    :func:`zipf_tenant_rates`) and optionally flips a deterministic
    fraction of jobs to cheap Adds, mimicking the mixed Add/Mult
    traffic of the forecasting application. This is the workload shape
    the multi-FPGA shard layer routes: enough distinct tenants that
    consistent-hash placement spreads load, with the skew stressing the
    balance of any tenant-sticky policy.
    """
    if not 0.0 <= add_fraction <= 1.0:
        raise ValueError("add_fraction must be within [0, 1]")
    rates = zipf_tenant_rates(num_tenants, total_rate_per_second, skew)
    jobs = multi_tenant_stream(rates, duration_seconds, seed=seed)
    if add_fraction == 0.0:
        return jobs
    rng = np.random.default_rng(seed + 0x5EED)
    flips = rng.random(len(jobs)) < add_fraction
    return [replace(j, kind=JobKind.ADD) if flip else j
            for j, flip in zip(jobs, flips, strict=True)]


def saturated_tenant_jobs(num_tenants: int, jobs_per_tenant: int,
                          kind: JobKind = JobKind.MULT) -> list[Job]:
    """A saturating multi-tenant backlog: everything available at t=0.

    Tenants are interleaved round-robin so any prefix of the stream
    spans the whole population — the shape used to measure the
    saturated throughput ceiling of a cluster under tenant-affinity
    routing, where per-tenant placement determines the balance.
    """
    if num_tenants < 1 or jobs_per_tenant < 1:
        raise ValueError("need at least one tenant and one job each")
    jobs = []
    index = 0
    for _ in range(jobs_per_tenant):
        for tenant in range(num_tenants):
            jobs.append(Job(index=index, kind=kind,
                            tenant=tenant_name(tenant)))
            index += 1
    return jobs


# -- closed-loop clients ---------------------------------------------------------------


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop drive: the target's report + client stats.

    ``report`` is whatever the target's ``drain()`` returned (a
    :class:`~repro.serve.engine.RuntimeReport` for a runtime, a
    :class:`~repro.cluster.report.ClusterReport` for a cluster).
    """

    report: object
    submitted: int
    completed: int
    rejected: int
    jobs_per_client: dict[int, int]

    @property
    def mean_jobs_per_client(self) -> float:
        if not self.jobs_per_client:
            return 0.0
        return sum(self.jobs_per_client.values()) / len(self.jobs_per_client)


class ClosedLoopClients:
    """A population of think-time clients driving a steppable target.

    Open-loop generators (:func:`poisson_stream` and friends) offer load
    regardless of how the server keeps up — above capacity the queue
    grows without bound. Real client populations are *closed-loop*: each
    client submits one request, waits for its response, thinks for an
    exponential think time, and only then submits again, so the offered
    load self-regulates at ``num_clients / (response + think)`` — the
    interactive-system law. This driver implements that model against
    anything exposing the stepping protocol shared by
    :class:`~repro.serve.engine.ServingRuntime` and
    :class:`~repro.cluster.cluster.FpgaCluster`: ``begin``, ``inject``,
    ``advance_to``, ``drain``, ``next_event_seconds``, and the live
    ``completion_feeds()`` / ``rejection_feeds()`` lists.

    The driver is duck-typed on purpose — it lives below both consumers
    in the layering, so `serve` and `cluster` (and their CLI commands)
    share one client model.
    """

    def __init__(self, num_clients: int, think_seconds_mean: float, *,
                 kind: JobKind = JobKind.MULT, num_tenants: int = 1,
                 seed: int = 0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if think_seconds_mean < 0:
            raise ValueError("think time cannot be negative")
        if num_tenants < 1:
            raise ValueError("need at least one tenant")
        self.num_clients = num_clients
        self.think_seconds_mean = think_seconds_mean
        self.kind = kind
        self.num_tenants = num_tenants
        self.seed = seed

    def _think(self, rng: np.random.Generator) -> float:
        if self.think_seconds_mean == 0:
            return 0.0
        return float(rng.exponential(self.think_seconds_mean))

    def drive(self, target, duration_seconds: float) -> ClosedLoopResult:
        """Run the client population against ``target`` until no client
        will submit again before ``duration_seconds``.

        Clients whose next ready time falls past the horizon retire;
        the target is then drained so every in-flight job completes.
        """
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        target.begin()
        # Stagger the first submissions with one think draw each so the
        # population does not arrive as a thundering herd at t=0.
        ready: list[tuple[float, int]] = []
        for client in range(self.num_clients):
            heapq.heappush(ready, (self._think(rng), client))
        outstanding: dict[int, int] = {}   # job index -> client
        jobs_per_client: dict[int, int] = {}
        completion_cursors = [0] * len(target.completion_feeds())
        rejection_cursors = [0] * len(target.rejection_feeds())
        next_index = 0

        def scan_feedback() -> None:
            """Wake clients whose jobs finished (or were rejected)."""
            for i, feed in enumerate(target.completion_feeds()):
                while completion_cursors[i] < len(feed):
                    result = feed[completion_cursors[i]]
                    completion_cursors[i] += 1
                    client = outstanding.pop(result.job.index, None)
                    if client is None:
                        continue
                    wake = result.finish_seconds + self._think(rng)
                    if wake < duration_seconds:
                        heapq.heappush(ready, (wake, client))
            for i, feed in enumerate(target.rejection_feeds()):
                while rejection_cursors[i] < len(feed):
                    rejection = feed[rejection_cursors[i]]
                    rejection_cursors[i] += 1
                    client = outstanding.pop(rejection.job.index, None)
                    if client is None:
                        continue
                    # Rejected clients back off one think time and retry.
                    wake = rejection.time_seconds + self._think(rng)
                    if wake < duration_seconds:
                        heapq.heappush(ready, (wake, client))

        while ready or outstanding:
            due = target.next_event_seconds()
            if ready and (due is None or ready[0][0] <= due):
                at, client = heapq.heappop(ready)
                target.advance_to(at, inclusive=False)
                tenant = tenant_name(client % self.num_tenants)
                target.inject(Job(index=next_index, kind=self.kind,
                                  arrival_seconds=at, tenant=tenant,
                                  request=client))
                outstanding[next_index] = client
                jobs_per_client[client] = jobs_per_client.get(client, 0) + 1
                next_index += 1
                # Cluster-edge backpressure rejects synchronously at
                # inject time; scan now so the shed client's retry wake
                # is scheduled before the loop can run out of events.
                scan_feedback()
            elif due is not None:
                target.advance_to(due)
                scan_feedback()
            else:      # pragma: no cover - no events and nothing ready
                break
        report = target.drain()
        completed = sum(len(feed) for feed in target.completion_feeds())
        rejected = sum(len(feed) for feed in target.rejection_feeds())
        return ClosedLoopResult(report=report, submitted=next_index,
                                completed=completed, rejected=rejected,
                                jobs_per_client=jobs_per_client)


def mixed_workload(mults: int, adds_per_mult: int,
                   seed: int = 0) -> list[Job]:
    """Forecasting-shaped workload: bursts of adds around each mult.

    The smart-grid application of [4] accumulates many ciphertext
    additions per multiplication; the paper cites it as the motivation
    for accelerating Mult first (Sec. IV-A).
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    index = 0
    for _ in range(mults):
        for _ in range(adds_per_mult):
            jobs.append(Job(index=index, kind=JobKind.ADD))
            index += 1
        jobs.append(Job(index=index, kind=JobKind.MULT))
        index += 1
    # Shuffle deterministically: clients interleave.
    order = rng.permutation(len(jobs))
    return [jobs[i] for i in order]
