"""Workload generators for the throughput experiments.

The paper's server executes streams of homomorphic operations arriving
from network clients (Fig. 11). These generators produce deterministic
job streams for the scheduler simulation: pure Mult streams for the
400-Mult/s headline, and mixed Add/Mult streams shaped like the
smart-grid forecasting application of [4] (many additions per
multiplication).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class JobKind(Enum):
    MULT = "mult"
    ADD = "add"


@dataclass(frozen=True)
class Job:
    """One homomorphic operation request from a client."""

    index: int
    kind: JobKind
    arrival_seconds: float = 0.0


def mult_stream(count: int) -> list[Job]:
    """A saturating stream of multiplications (all available at t=0)."""
    return [Job(index=i, kind=JobKind.MULT) for i in range(count)]


def add_stream(count: int) -> list[Job]:
    return [Job(index=i, kind=JobKind.ADD) for i in range(count)]


def poisson_stream(rate_per_second: float, duration_seconds: float,
                   kind: JobKind = JobKind.MULT,
                   seed: int = 0) -> list[Job]:
    """Jobs with exponential inter-arrival times (an open-loop client).

    Lets the scheduler experiments study latency under load rather than
    just saturated throughput: below the service rate the queue stays
    short; above it, latency grows with the backlog.
    """
    if rate_per_second <= 0 or duration_seconds <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    now = 0.0
    index = 0
    while True:
        now += rng.exponential(1.0 / rate_per_second)
        if now >= duration_seconds:
            break
        jobs.append(Job(index=index, kind=kind, arrival_seconds=now))
        index += 1
    return jobs


def mixed_workload(mults: int, adds_per_mult: int,
                   seed: int = 0) -> list[Job]:
    """Forecasting-shaped workload: bursts of adds around each mult.

    The smart-grid application of [4] accumulates many ciphertext
    additions per multiplication; the paper cites it as the motivation
    for accelerating Mult first (Sec. IV-A).
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    index = 0
    for _ in range(mults):
        for _ in range(adds_per_mult):
            jobs.append(Job(index=index, kind=JobKind.ADD))
            index += 1
        jobs.append(Job(index=index, kind=JobKind.MULT))
        index += 1
    # Shuffle deterministically: clients interleave.
    order = rng.permutation(len(jobs))
    return [jobs[i] for i in order]
