"""Related-work comparison points (paper Sec. VI-E).

Published numbers from the implementations the paper compares against,
plus helpers that compute our modelled system's entries so the
comparison bench regenerates the section's claims:

* >13x throughput over FV-NFLlib on the i5;
* 400 Mult/s beats the Tesla V100's ~388 Mult/s at matched parameters;
* faster than Pöppelmann et al.'s Catapult YASHE implementation despite
  their computationally lighter (and since-broken) scheme;
* orders of magnitude less data-transfer-bound than HEPCloud [20].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComparisonPoint:
    """One row of the Sec. VI-E comparison."""

    name: str
    platform: str
    scheme: str
    n: int
    log2_q: int
    mult_ms: float
    power_watts: float | None = None
    note: str = ""

    @property
    def mults_per_second(self) -> float:
        return 1000.0 / self.mult_ms


def published_points() -> list[ComparisonPoint]:
    """The literature numbers quoted in Sec. VI-E."""
    return [
        ComparisonPoint(
            name="FV-NFLlib [4]",
            platform="Intel i5-3427U @ 1.8 GHz, 1 thread",
            scheme="FV", n=4096, log2_q=186, mult_ms=33.0,
            power_watts=40.0,
            note="the paper's primary software baseline",
        ),
        ComparisonPoint(
            name="Badawi et al. [33] CPU",
            platform="Xeon Platinum @ 2.1 GHz, 1 thread",
            scheme="FV (HPS RNS)", n=4096, log2_q=180, mult_ms=30.0,
            note="10 ms at 60-bit q, ~3x at 180-bit per the paper",
        ),
        ComparisonPoint(
            name="Badawi et al. [33] CPU 26T",
            platform="Xeon Platinum @ 2.1 GHz, 26 threads",
            scheme="FV (HPS RNS)", n=4096, log2_q=180, mult_ms=12.0,
            note="4 ms at 60-bit q, ~3x at 180-bit",
        ),
        ComparisonPoint(
            name="Badawi et al. [33] K80",
            platform="Tesla K80 GPU (2496 cores)",
            scheme="FV (HPS RNS)", n=4096, log2_q=180, mult_ms=5.94,
            power_watts=300.0,
            note="1.98 ms at 60-bit q, ~3x at 180-bit",
        ),
        ComparisonPoint(
            name="Badawi et al. [33] V100",
            platform="Tesla V100 GPU (5120 cores)",
            scheme="FV (HPS RNS)", n=4096, log2_q=180, mult_ms=2.58,
            power_watts=300.0,
            note="0.86 ms at 60-bit q, ~3x at 180-bit -> ~388 Mult/s",
        ),
        ComparisonPoint(
            name="Poppelmann et al. [14]",
            platform="Catapult (Stratix V) @ 100 MHz",
            scheme="YASHE (broken by [35])", n=4096, log2_q=128,
            mult_ms=6.75,
            note="lighter scheme, smaller q, still slower",
        ),
        ComparisonPoint(
            name="HEPCloud [20]",
            platform="Virtex-6 FPGA",
            scheme="FV", n=32768, log2_q=1228, mult_ms=26_670.0,
            note="much larger parameters; DDR-transfer dominated",
        ),
    ]


def our_point(mult_ms_single: float, num_coprocessors: int,
              peak_watts: float) -> ComparisonPoint:
    """Our modelled system entry (throughput scales with coprocessors)."""
    return ComparisonPoint(
        name=f"This work ({num_coprocessors} coprocessors)",
        platform="Zynq UltraScale+ ZCU102 @ 200 MHz",
        scheme="FV (HPS RNS)", n=4096, log2_q=180,
        mult_ms=mult_ms_single / num_coprocessors,
        power_watts=peak_watts,
        note="cycle-level simulator of the HPCA'19 design",
    )
