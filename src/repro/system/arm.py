"""Cost model of the baremetal Arm software (paper Fig. 11, Table I).

The paper runs its server software directly on the Cortex-A53 cores
("baremetal, light-weight IP stack") and measures that a plain FV.Add in
software takes 54,680,467 Arm cycles — 80x slower than shipping the
ciphertexts to the FPGA and back. That is ~1,112 cycles per modular
addition: the baremetal loop is memory-bound on uncached DDR traffic, not
arithmetic-bound. The constant is calibrated from that Table I row and
drives the HW-vs-SW Add comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import HardwareConfig
from ..params import ParameterSet

#: Calibrated from Table I: 54,680,467 cycles / (2 * 6 * 4096) additions.
ARM_CYCLES_PER_MODADD = 1112

#: Modular multiplication with reduction is ~3x a modular addition on the
#: in-order A53 once both operands stream from DDR.
ARM_CYCLES_PER_MODMUL = 3336


@dataclass(frozen=True)
class ArmCoreModel:
    """One Cortex-A53 application core of the processing system."""

    config: HardwareConfig

    @property
    def clock_hz(self) -> int:
        return self.config.arm_clock_hz

    def add_in_sw_cycles(self, params: ParameterSet) -> int:
        """FV.Add in software: coefficient-wise addition of two parts."""
        additions = 2 * params.k_q * params.n
        return additions * ARM_CYCLES_PER_MODADD

    def add_in_sw_seconds(self, params: ParameterSet) -> float:
        return self.add_in_sw_cycles(params) / self.clock_hz

    def mult_in_sw_seconds(self, params: ParameterSet) -> float:
        """FV.Mult in Arm software (never worth it; shown for scale).

        Uses the same operation counts as the instrumented baseline with
        the Arm per-op constants.
        """
        from .baseline import count_mult_operations

        ops = count_mult_operations(params)
        cycles = (ops.modmuls * ARM_CYCLES_PER_MODMUL
                  + ops.modadds * ARM_CYCLES_PER_MODADD)
        return cycles / self.clock_hz
