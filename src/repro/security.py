"""Security-level checks against the Homomorphic Encryption Standard.

The paper targets ">= 80-bit security" using Albrecht's LWE estimator
[26]. This module encodes the maximum ciphertext modulus widths tabulated
by the HomomorphicEncryption.org standard (Albrecht et al., 2018) for
ternary secrets and sigma ~ 3.2, interpolating the paper's wider sigma =
102 with the estimator's rule that a wider error distribution only adds
security. It gives the library a SEAL-style ``meets_security`` gate and
places the paper's (4096, 180) point on the standard's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import ParameterSet

# HE-standard maximum log2(q) for classical security, ternary secret.
# Rows: n -> {security_bits: max_log2_q}.
HE_STANDARD_MAX_LOG2_Q = {
    1024: {128: 27, 192: 19, 256: 14},
    2048: {128: 54, 192: 37, 256: 29},
    4096: {128: 109, 192: 75, 256: 58},
    8192: {128: 218, 192: 152, 256: 118},
    16384: {128: 438, 192: 305, 256: 237},
    32768: {128: 881, 192: 611, 256: 476},
}

SUPPORTED_LEVELS = (128, 192, 256)


@dataclass(frozen=True)
class SecurityAssessment:
    """Outcome of placing a parameter set on the standard's scale."""

    params_name: str
    n: int
    log2_q: int
    classical_bits_estimate: float
    meets_128: bool
    notes: str

    def report(self) -> str:
        status = "yes" if self.meets_128 else "no"
        return (
            f"{self.params_name}: n={self.n}, log2(q)={self.log2_q}\n"
            f"  HE-standard 128-bit compliant: {status}\n"
            f"  heuristic classical estimate:  "
            f"~{self.classical_bits_estimate:.0f} bits\n"
            f"  {self.notes}"
        )


def max_log2_q(n: int, security_bits: int) -> int | None:
    """Standard's maximum modulus width, or None if n is off-table."""
    if security_bits not in SUPPORTED_LEVELS:
        raise ValueError(f"supported levels: {SUPPORTED_LEVELS}")
    row = HE_STANDARD_MAX_LOG2_Q.get(n)
    return None if row is None else row[security_bits]


def meets_security(params: ParameterSet, security_bits: int = 128) -> bool:
    """True when the set satisfies the HE-standard table at that level.

    Conservative: ring degrees not in the table fail closed.
    """
    limit = max_log2_q(params.n, security_bits)
    if limit is None:
        return False
    return params.log2_q <= limit


def estimate_security_level(params: ParameterSet) -> int:
    """The highest tabulated level the set satisfies (0 if none)."""
    best = 0
    for level in SUPPORTED_LEVELS:
        if meets_security(params, level):
            best = level
    return best


def assess(params: ParameterSet) -> SecurityAssessment:
    """Full placement of a parameter set, with the paper-relevant nuance.

    The paper's (4096, 180-bit) set sits *between* the standard's 128-bit
    line (max 109 bits of modulus at n = 4096) and nothing: the standard
    has no 80-bit row. The paper instead cites the LWE estimator directly
    for ">= 80-bit"; our heuristic linear rule reproduces that figure.
    """
    level = estimate_security_level(params)
    heuristic = params.estimated_security_bits()
    if level >= 128:
        notes = f"within the standard's {level}-bit table"
    elif params.n in HE_STANDARD_MAX_LOG2_Q:
        limit = max_log2_q(params.n, 128)
        notes = (
            f"exceeds the 128-bit modulus cap ({limit} bits) — the paper "
            "targets 80-bit security via the LWE estimator, below the "
            "standard's smallest tabulated level"
        )
    else:
        notes = "ring degree not tabulated by the HE standard"
    return SecurityAssessment(
        params_name=params.name,
        n=params.n,
        log2_q=params.log2_q,
        classical_bits_estimate=heuristic,
        meets_128=level >= 128,
        notes=notes,
    )
