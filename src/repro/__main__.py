"""``python -m repro`` entry point.

The ``__name__`` guard is load-bearing: the process executor's
``spawn`` workers re-import the parent's main module (as
``__mp_main__``), and an unguarded ``sys.exit(main())`` would make
every worker re-run the CLI command instead of reporting for duty.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
