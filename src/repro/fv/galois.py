"""Galois automorphisms and SIMD slot rotations (extension feature).

The paper's coprocessor implements Add and Mult; modern FV deployments
also use the Galois automorphisms x -> x^g to rotate the batching slots,
which turns "sum across a ciphertext's slots" into log2(n) rotate-and-add
steps. This module implements the full machinery — the coefficient
permutation, the key-switching keys (same RNS decomposition as
relinearisation, so the paper's datapath would run it unchanged), and
the slot-rotation algebra — as a documented extension of the reproduced
system.

Mathematics: in R = Z[x]/(x^n + 1), tau_g(a)(x) = a(x^g) for odd g is a
ring automorphism; coefficient i moves to position i*g mod 2n with a
sign flip when the result lands in [n, 2n). Batching slot j holds the
evaluation at psi^(2j+1), so tau_g permutes slots by
j -> ((g*(2j+1) mod 4n... precisely (g*(2j+1) mod 2n) - 1)/2. Applying
tau_g to a ciphertext yields an encryption of tau_g(m) under tau_g(s);
a key-switch with a key encrypting q~_i q*_i tau_g(s) brings it back
under s.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..parallel import inproc_executor, split_range
from ..poly.rns_poly import RnsPoly
from .ciphertext import Ciphertext
from .keys import SecretKey
from .sampler import discrete_gaussian, uniform_rns_rows
from .scheme import FvContext


def _check_galois_element(g: int, n: int) -> None:
    if g % 2 == 0 or not 0 < g < 2 * n:
        raise ParameterError(
            f"Galois element must be odd in (0, {2 * n}); got {g}"
        )


def galois_index_maps(n: int, g: int) -> tuple[np.ndarray, np.ndarray]:
    """(destination index, sign) for every source coefficient index."""
    _check_galois_element(g, n)
    indices = np.arange(n, dtype=np.int64)
    raw = (indices * g) % (2 * n)
    dest = raw % n
    sign = np.where(raw < n, 1, -1).astype(np.int64)
    return dest, sign


def apply_galois_rows(rows: np.ndarray, primes_col: np.ndarray, n: int,
                      g: int) -> np.ndarray:
    """tau_g on a residue matrix: permute columns with sign flips."""
    dest, sign = galois_index_maps(n, g)
    out = np.zeros_like(rows)
    out[:, dest] = rows * sign
    return out % primes_col


def rotation_element(steps: int, n: int) -> int:
    """Galois element rotating the batching slots by ``steps``.

    Uses the generator 3 of the odd residues modulo 2n (standard BFV
    convention). The subgroup <3> has index 2, so the slots form a
    2 x (n/2) matrix: powers of 3 rotate within the two rows and the
    conjugation element (:func:`conjugation_element`) swaps the rows —
    exactly SEAL's rotate_rows / rotate_columns split.
    """
    steps %= n
    return pow(3, steps, 2 * n)


def conjugation_element(n: int) -> int:
    """The row-swapping Galois element 2n - 1 (x -> x^-1)."""
    return 2 * n - 1


def slot_permutation(n: int, g: int) -> np.ndarray:
    """perm with decode(tau_g(a))[j] == decode(a)[perm[j]].

    The same permutation moves *NTT evaluations*: position j of the
    forward transform holds a(psi^(2j+1)), and tau_g(a)(psi^(2j+1)) =
    a(psi^(g(2j+1))), so in the evaluation domain the automorphism is
    the free column gather ``values[:, perm]`` — the reason HEAX-style
    designs keep rotation chains NTT-resident. Cached per (n, g).
    """
    return _slot_permutation_cached(n, g)


@lru_cache(maxsize=None)
def _slot_permutation_cached(n: int, g: int) -> np.ndarray:
    _check_galois_element(g, n)
    j = np.arange(n, dtype=np.int64)
    source_odd = (g * (2 * j + 1)) % (2 * n)
    perm = (source_odd - 1) // 2
    perm.flags.writeable = False
    return perm


@dataclass
class GaloisKey:
    """Key-switch key for one Galois element (NTT domain, RNS digits)."""

    element: int
    pairs: list[tuple[np.ndarray, np.ndarray]]


class GaloisEngine:
    """Automorphism application and slot rotation over one context."""

    def __init__(self, context: FvContext) -> None:
        self.context = context

    # -- key generation ---------------------------------------------------------

    def keygen(self, secret: SecretKey, g: int) -> GaloisKey:
        """Key encrypting q~_i q*_i * tau_g(s) for each q prime."""
        context = self.context
        params = context.params
        _check_galois_element(g, params.n)
        primes_col = context.q_basis.primes_col
        s_rows = secret.rns.residues
        tau_s = apply_galois_rows(s_rows, primes_col, params.n, g)
        tau_s_ntt = context._ntt_rows(tau_s)
        s_ntt = secret.ntt_rows
        pairs = []
        for i in range(params.k_q):
            a_rows = uniform_rns_rows(context.rng, params.n,
                                      params.q_primes)
            a_ntt = context._ntt_rows(a_rows)
            e_rows = context._small_poly_rows(
                discrete_gaussian(context.rng, params.n, params.sigma)
            )
            e_ntt = context._ntt_rows(e_rows)
            weight = (context.q_basis.q_tilde[i]
                      * context.q_basis.q_star[i])
            weight_col = np.array(
                [weight % qj for qj in params.q_primes], dtype=np.int64,
            )[:, None]
            b_ntt = (weight_col * tau_s_ntt - a_ntt * s_ntt
                     - e_ntt) % primes_col
            pairs.append((b_ntt, a_ntt))
        return GaloisKey(element=g, pairs=pairs)

    def rotation_keygen(self, secret: SecretKey,
                        steps_list) -> dict[int, GaloisKey]:
        """Keys for a set of rotation amounts (e.g. powers of two)."""
        n = self.context.params.n
        return {
            steps: self.keygen(secret, rotation_element(steps, n))
            for steps in steps_list
        }

    def summation_keygen(self, secret: SecretKey) -> dict:
        """All keys :meth:`sum_all_slots` needs: power-of-two row
        rotations plus the row-swapping conjugation."""
        n = self.context.params.n
        keys = self.rotation_keygen(
            secret, [1 << k for k in range((n // 2).bit_length() - 1)]
        )
        keys["conjugate"] = self.keygen(secret, conjugation_element(n))
        return keys

    # -- homomorphic application -----------------------------------------------------

    def _digit_ntt_rows(self, c1_rows: np.ndarray) -> np.ndarray:
        """Stacked forward NTT of the raw-residue digit decomposition.

        This is the expensive half of every keyswitch — and a function
        of the ciphertext alone, not of the Galois key, which is what
        :meth:`apply_many_resident` exploits to share it across a
        hoisted rotation group.
        """
        from ..nttmath import batch
        from ..rns.decompose import broadcast_digit_rows

        context = self.context
        if batch._PER_ROW_MODE:
            return context._ntt_rows(
                broadcast_digit_rows(c1_rows, context.q_basis)
            )
        # Fused WordDecomp + NTT on the raw coefficient rows: all
        # digits share one stage-0 dgemm (apply_broadcast_many), and
        # the outputs stay lazy in [0, 2q) — the halved accumulation
        # window in :meth:`_fold_digit_pairs` absorbs the slack, so
        # the final conditional-subtract pass is skipped entirely.
        return batch.ntt_broadcast_rows(context.params.q_primes, c1_rows,
                                        lazy=True)

    def _key_switch_accumulators(self, tau_c1: np.ndarray,
                                 key: GaloisKey) -> tuple[np.ndarray,
                                                          np.ndarray]:
        """NTT-domain key-switch accumulators for coefficient rows.

        The raw-residue digits (each row of tau(c1) broadcast across
        the basis) go through one stacked forward transform; products
        of 30-bit residues accumulate lazily (they are < 2^60, so the
        whole q basis of at most eight primes sums within int64) and
        are reduced once.
        """
        return self._fold_digit_pairs(self._digit_ntt_rows(tau_c1), key)

    def _fold_digit_pairs(self, d_ntt: np.ndarray,
                          key: GaloisKey) -> tuple[np.ndarray,
                                                   np.ndarray]:
        """Fold NTT-domain digits against one key's (b, a) pairs."""
        from ..nttmath import batch

        context = self.context
        primes_col = context.q_basis.primes_col
        acc0 = np.zeros_like(d_ntt[0])
        acc1 = np.zeros_like(d_ntt[0])
        if batch._PER_ROW_MODE:
            # Pre-batching accumulation: reduce after every product.
            for i, (b_ntt, a_ntt) in enumerate(key.pairs):
                acc0 = (acc0 + d_ntt[i] * b_ntt) % primes_col
                acc1 = (acc1 + d_ntt[i] * a_ntt) % primes_col
            return acc0, acc1
        def fold(c0: int, c1: int) -> None:
            # One channel band, same digit order and reduction window
            # as the serial loop — banding cannot change the result.
            pending = 0
            for i, (b_ntt, a_ntt) in enumerate(key.pairs):
                acc0[c0:c1] += d_ntt[i][c0:c1] * b_ntt[c0:c1]
                acc1[c0:c1] += d_ntt[i][c0:c1] * a_ntt[c0:c1]
                pending += 1
                # Lazy [0, 2q) digits double each summand, so the
                # window halves: q + 4 * 2q * q stays below 2^63.
                if pending == 4:
                    acc0[c0:c1] %= primes_col[c0:c1]
                    acc1[c0:c1] %= primes_col[c0:c1]
                    pending = 0
            if pending:
                acc0[c0:c1] %= primes_col[c0:c1]
                acc1[c0:c1] %= primes_col[c0:c1]

        executor = inproc_executor()
        if executor is None:
            fold(0, acc0.shape[0])
        else:
            executor.map(lambda band: fold(*band),
                         split_range(acc0.shape[0], 2 * executor.workers))
        return acc0, acc1

    def apply(self, ct: Ciphertext, key: GaloisKey) -> Ciphertext:
        """tau_g on a two-part ciphertext, key-switched back under s."""
        if ct.size != 2:
            raise ParameterError("apply_galois expects a 2-part ciphertext")
        context = self.context
        params = context.params
        primes_col = context.q_basis.primes_col
        ct = context.to_coeff_ct(ct)
        g = key.element
        tau_c0 = apply_galois_rows(ct.c0.residues, primes_col, params.n, g)
        tau_c1 = apply_galois_rows(ct.c1.residues, primes_col, params.n, g)
        # Key switch tau(c1) from tau(s) to s with raw-residue digits.
        acc0, acc1 = self._key_switch_accumulators(tau_c1, key)
        delta0, delta1 = context._intt_rows(np.stack([acc0, acc1]))
        c0 = RnsPoly.trusted(
            context.q_basis,
            (tau_c0 + delta0) % primes_col,
        )
        c1 = RnsPoly.trusted(context.q_basis, delta1)
        return Ciphertext((c0, c1), params)

    def apply_resident(self, ct: Ciphertext, key: GaloisKey) -> Ciphertext:
        """tau_g keeping the result NTT-resident (the HEAX schedule).

        tau_g on the resident c0 is a free column permutation of its
        NTT evaluations; only c1 is inverse-transformed (its raw-residue
        digits live in the coefficient domain), and the key-switch
        accumulators — already NTT-domain — are *not* transformed back.
        Per rotation that is one inverse transform instead of two, and
        chained rotations/additions stay in the evaluation domain
        end to end.
        """
        if ct.size != 2:
            raise ParameterError("apply_galois expects a 2-part ciphertext")
        context = self.context
        params = context.params
        primes_col = context.q_basis.primes_col
        n = params.n
        g = key.element
        c1_coeff = (context._intt_rows(ct.c1.residues)
                    if ct.c1.ntt_domain else ct.c1.residues)
        tau_c1 = apply_galois_rows(c1_coeff, primes_col, n, g)
        tau_c0_ntt = (
            ct.c0.residues[:, slot_permutation(n, g)]
            if ct.c0.ntt_domain
            else context._ntt_rows(
                apply_galois_rows(ct.c0.residues, primes_col, n, g)
            )
        )
        acc0, acc1 = self._key_switch_accumulators(tau_c1, key)
        c0 = RnsPoly.trusted(
            context.q_basis,
            (tau_c0_ntt + acc0) % primes_col,
            ntt_domain=True,
        )
        c1 = RnsPoly.trusted(context.q_basis, acc1, ntt_domain=True)
        return Ciphertext((c0, c1), params)

    def apply_many_resident(self, ct: Ciphertext,
                            keys_by_step: dict[int, GaloisKey]
                            ) -> dict[int, Ciphertext]:
        """Hoisted rotations: one digit transform shared by every key.

        Halevi–Shoup hoisting: the digit decomposition's stacked
        forward NTT depends only on c1, so it runs **once**; each
        rotation then costs a free column permutation of the shared
        digit evaluations (NTT(tau_g(x)) is NTT(x) gathered through
        :func:`slot_permutation`) plus the cheap multiply-accumulate
        fold against its own key. Results are NTT-resident.

        The permuted digits represent tau_g of each digit polynomial
        with *signed* coefficients — congruent mod every q_i to the
        non-negative digits :meth:`apply_resident` decomposes, with the
        same (centred, slightly tighter) noise bound, so results are
        decrypt-equivalent to per-rotation application but not
        bit-identical to it.
        """
        if ct.size != 2:
            raise ParameterError("apply_galois expects a 2-part ciphertext")
        context = self.context
        params = context.params
        primes_col = context.q_basis.primes_col
        n = params.n
        c1_coeff = (context._intt_rows(ct.c1.residues)
                    if ct.c1.ntt_domain else ct.c1.residues)
        c0_ntt = (ct.c0.residues if ct.c0.ntt_domain
                  else context._ntt_rows(ct.c0.residues))
        d_ntt = self._digit_ntt_rows(c1_coeff)
        results: dict[int, Ciphertext] = {}
        for steps, key in keys_by_step.items():
            perm = slot_permutation(n, key.element)
            acc0, acc1 = self._fold_digit_pairs(
                np.ascontiguousarray(d_ntt[:, :, perm]), key
            )
            c0 = RnsPoly.trusted(
                context.q_basis,
                (c0_ntt[:, perm] + acc0) % primes_col,
                ntt_domain=True,
            )
            c1 = RnsPoly.trusted(context.q_basis, acc1, ntt_domain=True)
            results[steps] = Ciphertext((c0, c1), params)
        return results

    def rotate(self, ct: Ciphertext, steps: int,
               keys: dict[int, GaloisKey]) -> Ciphertext:
        if steps not in keys:
            raise ParameterError(f"no rotation key for {steps} steps")
        return self.apply(ct, keys[steps])

    def sum_all_slots(self, ct: Ciphertext, keys: dict) -> Ciphertext:
        """Rotate-and-add: every slot ends up holding the total.

        The slots form a 2 x (n/2) matrix under the Galois action:
        log2(n/2) power-of-two row rotations sum within each row, then
        one conjugation folds the two rows together. Build the key set
        with :meth:`summation_keygen`.
        """
        n = self.context.params.n
        result = ct
        step = 1
        while step < n // 2:
            rotated = self.rotate(result, step, keys)
            result = self.context.add(result, rotated)
            step *= 2
        conjugated = self.apply(result, keys["conjugate"])
        return self.context.add(result, conjugated)

    def sum_all_slots_resident(self, ct: Ciphertext,
                               keys: dict) -> Ciphertext:
        """NTT-resident rotate-and-add (same algebra as sum_all_slots).

        Every round's rotation output and addition stays in the
        evaluation domain, so the whole reduction performs no inverse
        transforms beyond the one per round that key-switching
        fundamentally needs.
        """
        n = self.context.params.n
        result = self.context.to_ntt_ct(ct)
        step = 1
        while step < n // 2:
            if step not in keys:
                raise ParameterError(f"no rotation key for {step} steps")
            rotated = self.apply_resident(result, keys[step])
            result = self.context.add(result, rotated)
            step *= 2
        conjugated = self.apply_resident(result, keys["conjugate"])
        return self.context.add(result, conjugated)
