"""Galois automorphisms and SIMD slot rotations (extension feature).

The paper's coprocessor implements Add and Mult; modern FV deployments
also use the Galois automorphisms x -> x^g to rotate the batching slots,
which turns "sum across a ciphertext's slots" into log2(n) rotate-and-add
steps. This module implements the full machinery — the coefficient
permutation, the key-switching keys (same RNS decomposition as
relinearisation, so the paper's datapath would run it unchanged), and
the slot-rotation algebra — as a documented extension of the reproduced
system.

Mathematics: in R = Z[x]/(x^n + 1), tau_g(a)(x) = a(x^g) for odd g is a
ring automorphism; coefficient i moves to position i*g mod 2n with a
sign flip when the result lands in [n, 2n). Batching slot j holds the
evaluation at psi^(2j+1), so tau_g permutes slots by
j -> ((g*(2j+1) mod 4n... precisely (g*(2j+1) mod 2n) - 1)/2. Applying
tau_g to a ciphertext yields an encryption of tau_g(m) under tau_g(s);
a key-switch with a key encrypting q~_i q*_i tau_g(s) brings it back
under s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..poly.rns_poly import RnsPoly
from .ciphertext import Ciphertext
from .keys import SecretKey
from .sampler import discrete_gaussian, uniform_rns_rows
from .scheme import FvContext


def _check_galois_element(g: int, n: int) -> None:
    if g % 2 == 0 or not 0 < g < 2 * n:
        raise ParameterError(
            f"Galois element must be odd in (0, {2 * n}); got {g}"
        )


def galois_index_maps(n: int, g: int) -> tuple[np.ndarray, np.ndarray]:
    """(destination index, sign) for every source coefficient index."""
    _check_galois_element(g, n)
    indices = np.arange(n, dtype=np.int64)
    raw = (indices * g) % (2 * n)
    dest = raw % n
    sign = np.where(raw < n, 1, -1).astype(np.int64)
    return dest, sign


def apply_galois_rows(rows: np.ndarray, primes_col: np.ndarray, n: int,
                      g: int) -> np.ndarray:
    """tau_g on a residue matrix: permute columns with sign flips."""
    dest, sign = galois_index_maps(n, g)
    out = np.zeros_like(rows)
    out[:, dest] = rows * sign
    return out % primes_col


def rotation_element(steps: int, n: int) -> int:
    """Galois element rotating the batching slots by ``steps``.

    Uses the generator 3 of the odd residues modulo 2n (standard BFV
    convention). The subgroup <3> has index 2, so the slots form a
    2 x (n/2) matrix: powers of 3 rotate within the two rows and the
    conjugation element (:func:`conjugation_element`) swaps the rows —
    exactly SEAL's rotate_rows / rotate_columns split.
    """
    steps %= n
    return pow(3, steps, 2 * n)


def conjugation_element(n: int) -> int:
    """The row-swapping Galois element 2n - 1 (x -> x^-1)."""
    return 2 * n - 1


def slot_permutation(n: int, g: int) -> np.ndarray:
    """perm with decode(tau_g(a))[j] == decode(a)[perm[j]]."""
    _check_galois_element(g, n)
    j = np.arange(n, dtype=np.int64)
    source_odd = (g * (2 * j + 1)) % (2 * n)
    return (source_odd - 1) // 2


@dataclass
class GaloisKey:
    """Key-switch key for one Galois element (NTT domain, RNS digits)."""

    element: int
    pairs: list[tuple[np.ndarray, np.ndarray]]


class GaloisEngine:
    """Automorphism application and slot rotation over one context."""

    def __init__(self, context: FvContext) -> None:
        self.context = context

    # -- key generation ---------------------------------------------------------

    def keygen(self, secret: SecretKey, g: int) -> GaloisKey:
        """Key encrypting q~_i q*_i * tau_g(s) for each q prime."""
        context = self.context
        params = context.params
        _check_galois_element(g, params.n)
        primes_col = context.q_basis.primes_col
        s_rows = secret.rns.residues
        tau_s = apply_galois_rows(s_rows, primes_col, params.n, g)
        tau_s_ntt = context._ntt_rows(tau_s)
        s_ntt = secret.ntt_rows
        pairs = []
        for i in range(params.k_q):
            a_rows = uniform_rns_rows(context.rng, params.n,
                                      params.q_primes)
            a_ntt = context._ntt_rows(a_rows)
            e_rows = context._small_poly_rows(
                discrete_gaussian(context.rng, params.n, params.sigma)
            )
            e_ntt = context._ntt_rows(e_rows)
            weight = (context.q_basis.q_tilde[i]
                      * context.q_basis.q_star[i])
            weight_col = np.array(
                [weight % qj for qj in params.q_primes], dtype=np.int64,
            )[:, None]
            b_ntt = (weight_col * tau_s_ntt - a_ntt * s_ntt
                     - e_ntt) % primes_col
            pairs.append((b_ntt, a_ntt))
        return GaloisKey(element=g, pairs=pairs)

    def rotation_keygen(self, secret: SecretKey,
                        steps_list) -> dict[int, GaloisKey]:
        """Keys for a set of rotation amounts (e.g. powers of two)."""
        n = self.context.params.n
        return {
            steps: self.keygen(secret, rotation_element(steps, n))
            for steps in steps_list
        }

    def summation_keygen(self, secret: SecretKey) -> dict:
        """All keys :meth:`sum_all_slots` needs: power-of-two row
        rotations plus the row-swapping conjugation."""
        n = self.context.params.n
        keys = self.rotation_keygen(
            secret, [1 << k for k in range((n // 2).bit_length() - 1)]
        )
        keys["conjugate"] = self.keygen(secret, conjugation_element(n))
        return keys

    # -- homomorphic application -----------------------------------------------------

    def apply(self, ct: Ciphertext, key: GaloisKey) -> Ciphertext:
        """tau_g on a two-part ciphertext, key-switched back under s."""
        if ct.size != 2:
            raise ParameterError("apply_galois expects a 2-part ciphertext")
        context = self.context
        params = context.params
        primes_col = context.q_basis.primes_col
        g = key.element
        tau_c0 = apply_galois_rows(ct.c0.residues, primes_col, params.n, g)
        tau_c1 = apply_galois_rows(ct.c1.residues, primes_col, params.n, g)
        # Key switch tau(c1) from tau(s) to s with raw-residue digits.
        acc0 = np.zeros_like(tau_c0)
        acc1 = np.zeros_like(tau_c1)
        for i, (b_ntt, a_ntt) in enumerate(key.pairs):
            digit = tau_c1[i][None, :] % primes_col
            d_ntt = context._ntt_rows(digit)
            acc0 = (acc0 + d_ntt * b_ntt) % primes_col
            acc1 = (acc1 + d_ntt * a_ntt) % primes_col
        c0 = RnsPoly(
            context.q_basis,
            (tau_c0 + context._intt_rows(acc0)) % primes_col,
        )
        c1 = RnsPoly(context.q_basis, context._intt_rows(acc1))
        return Ciphertext((c0, c1), params)

    def rotate(self, ct: Ciphertext, steps: int,
               keys: dict[int, GaloisKey]) -> Ciphertext:
        if steps not in keys:
            raise ParameterError(f"no rotation key for {steps} steps")
        return self.apply(ct, keys[steps])

    def sum_all_slots(self, ct: Ciphertext, keys: dict) -> Ciphertext:
        """Rotate-and-add: every slot ends up holding the total.

        The slots form a 2 x (n/2) matrix under the Galois action:
        log2(n/2) power-of-two row rotations sum within each row, then
        one conjugation folds the two rows together. Build the key set
        with :meth:`summation_keygen`.
        """
        n = self.context.params.n
        result = ct
        step = 1
        while step < n // 2:
            rotated = self.rotate(result, step, keys)
            result = self.context.add(result, rotated)
            step *= 2
        conjugated = self.apply(result, keys["conjugate"])
        return self.context.add(result, conjugated)
