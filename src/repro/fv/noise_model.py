"""Analytic noise-growth model for the FV scheme (paper Sec. II-A).

The paper chooses its parameters so that "the maximum number of
homomorphic multiplications in the critical path ... before the noise
crosses the threshold" is four. This module provides the standard
worst-case noise bounds for every operation the library implements, so
that the depth claim can be *predicted* (not just observed) and so tests
can verify the implementation never exceeds its analytic envelope.

Bounds follow the usual FV/BFV analysis (Fan–Vercauteren 2012; Lepoint–
Naehrig 2014) with the conventions of this implementation: ternary
secrets and encryption randomness, rounded-Gaussian errors with standard
deviation sigma cut at 10 sigma, RNS relinearisation with 30-bit digits.
They are worst-case (infinity-norm) bounds, typically 2–4 bits above the
measured noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..params import ParameterSet
from .sampler import TAIL_CUT_SIGMAS


@dataclass(frozen=True)
class NoiseModel:
    """Worst-case noise bounds for one parameter set."""

    params: ParameterSet

    @property
    def error_bound(self) -> float:
        """Infinity-norm bound of one error sample (tail-cut Gaussian)."""
        return TAIL_CUT_SIGMAS * self.params.sigma

    @property
    def decryption_threshold(self) -> float:
        """Decryption is correct while noise stays below q / (2t)."""
        return self.params.q / (2 * self.params.t)

    # -- per-operation bounds --------------------------------------------------------

    def fresh_bound(self) -> float:
        """Noise of a fresh encryption: e1 + e2*s + e*u ~ B(1 + 2n)."""
        n = self.params.n
        return self.error_bound * (2 * n + 1)

    def add_bound(self, noise_a: float, noise_b: float) -> float:
        """FV.Add noise: sum of operand noises (plus rounding slack)."""
        return noise_a + noise_b + 1

    def add_plain_bound(self, noise: float) -> float:
        """Adding a plaintext costs at most the Delta-rounding residue."""
        return noise + self.params.t

    def mul_plain_bound(self, noise: float) -> float:
        """Multiplying by a plaintext polynomial scales by n*t."""
        return noise * self.params.n * self.params.t + self.params.t

    def mult_bound(self, noise_a: float, noise_b: float) -> float:
        """FV.Mult (tensor + scale) before relinearisation.

        The dominant term is t*n*(noise_a + noise_b) from the cross
        products of noises with the K-polynomials (magnitude <= n) of the
        operands; the scale rounding adds O(t * n).
        """
        t, n = self.params.t, self.params.n
        cross = 2.0 * t * n * (noise_a + noise_b + 1)
        rounding = t * (n + 1)
        return cross + rounding

    def relin_bound(self, noise: float) -> float:
        """RNS relinearisation adds sum_i D_i * e_i with 30-bit digits."""
        k = self.params.k_q
        digit_bound = float(1 << 30)
        return noise + k * self.params.n * digit_bound * self.error_bound

    def mult_relin_bound(self, noise_a: float, noise_b: float) -> float:
        return self.relin_bound(self.mult_bound(noise_a, noise_b))

    # -- depth prediction --------------------------------------------------------------

    def noise_after_depth(self, depth: int) -> float:
        """Worst-case noise after a balanced square-and-relinearise tree."""
        noise = self.fresh_bound()
        for _ in range(depth):
            noise = self.mult_relin_bound(noise, noise)
        return noise

    def supported_depth(self) -> int:
        """Largest depth whose worst-case noise stays decryptable."""
        depth = 0
        noise = self.fresh_bound()
        while True:
            noise = self.mult_relin_bound(noise, noise)
            if noise >= self.decryption_threshold:
                return depth
            depth += 1
            if depth > 64:  # unbounded in practice; cap the loop
                return depth

    def budget_bits(self, noise: float) -> float:
        """Noise budget (bits) corresponding to a noise magnitude."""
        if noise <= 0:
            return math.log2(self.decryption_threshold)
        return max(0.0, math.log2(self.decryption_threshold / noise))

    def report(self) -> str:
        """Human-readable depth budget table."""
        lines = [
            f"noise model for {self.params.name} "
            f"(n={self.params.n}, log2 q={self.params.log2_q}, "
            f"t={self.params.t}, sigma={self.params.sigma})",
            f"decryption threshold: 2^{math.log2(self.decryption_threshold):.1f}",
            f"fresh noise bound:    2^{math.log2(self.fresh_bound()):.1f}",
        ]
        noise = self.fresh_bound()
        depth = 0
        while noise < self.decryption_threshold and depth < 16:
            noise = self.mult_relin_bound(noise, noise)
            depth += 1
            status = "ok" if noise < self.decryption_threshold else "FAIL"
            lines.append(
                f"after depth {depth}: 2^{math.log2(noise):5.1f}  [{status}]"
            )
        lines.append(f"supported depth (worst case): {self.supported_depth()}")
        return "\n".join(lines)
