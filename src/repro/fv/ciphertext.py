"""Ciphertexts and their wire format.

A fresh FV ciphertext is a pair of R_q polynomials; multiplication before
relinearisation yields three parts. The serialised layout packs each
30-bit residue into a little-endian 32-bit word, coefficients contiguous
per residue row — the contiguous-DMA-friendly layout of paper Sec. V-D
(one R_q polynomial = 4096 x 6 x 4 = 98,304 bytes, the Table III transfer
size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..params import ParameterSet
from ..poly.rns_poly import RnsPoly
from ..rns.basis import RnsBasis


@dataclass
class Ciphertext:
    """An FV ciphertext: two (or, pre-relinearisation, three) R_q parts."""

    parts: tuple[RnsPoly, ...]
    params: ParameterSet

    def __post_init__(self) -> None:
        if len(self.parts) not in (2, 3):
            raise ParameterError("a ciphertext has two or three parts")
        degrees = {part.n for part in self.parts}
        if degrees != {self.params.n}:
            raise ParameterError("ciphertext parts must have degree n")

    @property
    def size(self) -> int:
        return len(self.parts)

    @property
    def ntt_resident(self) -> bool:
        """True when every part lives in the evaluation (NTT) domain.

        NTT-resident ciphertexts are what the resident executor passes
        between operations; serialise them with the versioned
        NTT-domain wire format (:func:`repro.io.save_ciphertext`) or
        convert with :meth:`~repro.fv.scheme.FvContext.to_coeff_ct`
        for the legacy coefficient wire.
        """
        return all(part.ntt_domain for part in self.parts)

    @property
    def domain(self) -> str:
        """Wire-format domain tag: ``"ntt"``, ``"coeff"``, or ``"mixed"``.

        Mixed-domain ciphertexts are transient executor states and are
        not serialisable.
        """
        if all(part.ntt_domain for part in self.parts):
            return "ntt"
        if not any(part.ntt_domain for part in self.parts):
            return "coeff"
        return "mixed"

    @property
    def c0(self) -> RnsPoly:
        return self.parts[0]

    @property
    def c1(self) -> RnsPoly:
        return self.parts[1]

    @property
    def c2(self) -> RnsPoly:
        if self.size < 3:
            raise ParameterError("ciphertext has no third part")
        return self.parts[2]

    def byte_size(self) -> int:
        """Serialised size in bytes (what the DMA actually moves)."""
        return self.size * self.params.poly_bytes

    # -- wire format -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pack every part as uint32 residues, row-major.

        The legacy coefficient-domain wire: NTT-resident parts are
        rejected so pre-versioned consumers can never mistake
        evaluation-domain residues for coefficients. Use
        :meth:`to_wire_bytes` for the domain-tagged format.
        """
        if self.domain != "coeff":
            raise ParameterError("serialise coefficient-domain parts only")
        return self.to_wire_bytes()

    def to_wire_bytes(self) -> bytes:
        """Pack the residue payload of either uniform domain.

        The byte layout is identical in both domains (canonical 30-bit
        residues in little-endian 32-bit words, coefficients contiguous
        per residue row); the *domain* travels in the versioned header
        :func:`repro.io.save_ciphertext` writes, so a server can
        persist NTT-resident operands without an inverse transform.
        Mixed-domain ciphertexts are rejected.
        """
        if self.domain == "mixed":
            raise ParameterError(
                "cannot serialise a mixed-domain ciphertext; convert "
                "all parts to one domain first"
            )
        return b"".join(
            part.residues.astype(np.uint32).tobytes()
            for part in self.parts
        )

    @classmethod
    def from_bytes(cls, blob: bytes, params: ParameterSet,
                   basis: RnsBasis,
                   ntt_domain: bool = False) -> Ciphertext:
        """Inverse of :meth:`to_wire_bytes` (two- or three-part blobs).

        ``ntt_domain=True`` marks every part as evaluation-domain —
        what :func:`repro.io.load_ciphertext` passes when the versioned
        header declares an NTT-resident payload.
        """
        part_bytes = params.poly_bytes
        if len(blob) % part_bytes:
            raise ParameterError("ciphertext blob has a partial polynomial")
        count = len(blob) // part_bytes
        if count not in (2, 3):
            raise ParameterError(f"blob holds {count} parts; expected 2 or 3")
        parts = []
        for index in range(count):
            chunk = blob[index * part_bytes: (index + 1) * part_bytes]
            matrix = np.frombuffer(chunk, dtype=np.uint32).astype(np.int64)
            matrix = matrix.reshape(basis.size, params.n)
            parts.append(RnsPoly(basis, matrix, ntt_domain=ntt_domain))
        return cls(tuple(parts), params)
