"""Plaintext encoders (the Encoder/Decoder boxes of paper Fig. 1).

Three encoders cover the applications in the paper's introduction:

* :class:`Plaintext` — raw polynomial with coefficients in [0, t).
* :class:`IntegerEncoder` — an integer becomes a polynomial via its signed
  base-B expansion; homomorphic +/* on ciphertexts then mirror integer
  +/* as long as coefficients do not wrap (the classic SEAL v2 encoder).
* :class:`BatchEncoder` — SIMD slot packing via the CRT over
  Z_t[x]/(x^n + 1) when t is an NTT-friendly prime. This is what makes
  the smart-meter forecasting example process thousands of readings in
  one ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EncodingError, ParameterError
from ..nttmath.ntt import NegacyclicTransformer
from ..params import ParameterSet
from ..utils import centered


@dataclass(frozen=True)
class Plaintext:
    """A plaintext polynomial: int64 coefficients reduced modulo t."""

    coeffs: np.ndarray
    t: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.coeffs, dtype=np.int64) % self.t
        object.__setattr__(self, "coeffs", arr)

    @property
    def n(self) -> int:
        return len(self.coeffs)

    @classmethod
    def zero(cls, n: int, t: int) -> Plaintext:
        return cls(np.zeros(n, dtype=np.int64), t)

    @classmethod
    def from_list(cls, coeffs, n: int, t: int) -> Plaintext:
        arr = np.zeros(n, dtype=np.int64)
        if len(coeffs) > n:
            raise EncodingError(f"{len(coeffs)} coefficients exceed degree {n}")
        arr[: len(coeffs)] = np.asarray(coeffs, dtype=np.int64)
        return cls(arr, t)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plaintext):
            return NotImplemented
        return self.t == other.t and np.array_equal(self.coeffs, other.coeffs)


class IntegerEncoder:
    """Signed base-``base`` integer encoder.

    ``encode(v)`` writes the signed digits of v into the low coefficients.
    ``decode`` evaluates the polynomial at x = base over the *centered*
    coefficient representatives, which stays correct through homomorphic
    additions and multiplications until coefficients wrap modulo t.
    """

    def __init__(self, params: ParameterSet, base: int = 2) -> None:
        if base < 2:
            raise ParameterError("encoder base must be >= 2")
        self.params = params
        self.base = base

    def encode(self, value: int) -> Plaintext:
        n, t = self.params.n, self.params.t
        coeffs = np.zeros(n, dtype=np.int64)
        remaining = abs(value)
        sign = 1 if value >= 0 else -1
        index = 0
        while remaining:
            if index >= n:
                raise EncodingError(f"integer {value} needs more than {n} digits")
            digit = remaining % self.base
            coeffs[index] = (sign * digit) % t
            remaining //= self.base
            index += 1
        return Plaintext(coeffs, t)

    def decode(self, plain: Plaintext) -> int:
        t = self.params.t
        value = 0
        for coeff in reversed(plain.coeffs.tolist()):
            value = value * self.base + centered(int(coeff), t)
        return value


class BatchEncoder:
    """SIMD batching: n plaintext slots per ciphertext.

    Requires t prime with t ≡ 1 (mod 2n) so that x^n + 1 splits into n
    linear factors over Z_t; encoding is then an inverse negacyclic NTT
    over Z_t and the homomorphic ring operations act slot-wise.
    """

    def __init__(self, params: ParameterSet) -> None:
        t = params.t
        if (t - 1) % (2 * params.n) != 0:
            raise ParameterError(
                f"batching needs t ≡ 1 (mod {2 * params.n}); t = {t} is not"
            )
        self.params = params
        self._transformer = NegacyclicTransformer(params.n, t)

    @property
    def slot_count(self) -> int:
        return self.params.n

    def encode(self, values) -> Plaintext:
        arr = np.zeros(self.params.n, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(values) > self.params.n:
            raise EncodingError(
                f"{len(values)} values exceed {self.params.n} slots"
            )
        arr[: len(values)] = values % self.params.t
        coeffs = self._transformer.inverse(arr)
        return Plaintext(coeffs, self.params.t)

    def decode(self, plain: Plaintext) -> np.ndarray:
        return self._transformer.forward(plain.coeffs)
