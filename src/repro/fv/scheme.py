"""FV context: key generation, encryption, decryption, additive ops.

Everything here computes in the RNS representation (Sec. III-B of the
paper); the exact big-integer route lives in :mod:`repro.fv.reference` and
is used by the tests to validate this module bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath.batch import count_roundtrip, intt_rows, ntt_rows
from ..params import ParameterSet
from ..poly.rns_poly import RnsPoly
from ..rns.basis import basis_for, lift_context, scale_context
from ..utils import round_half_away
from .ciphertext import Ciphertext
from .encoder import Plaintext
from .keys import KeySet, PublicKey, RelinKey, SecretKey
from .sampler import discrete_gaussian, uniform_rns_rows, uniform_ternary


class FvContext:
    """Instantiated FV scheme over one parameter set.

    Holds the RNS bases, ring contexts, and the lift/scale contexts shared
    by every operation. A context is deterministic given its seed, which
    keeps every test and benchmark reproducible.
    """

    def __init__(self, params: ParameterSet, seed: int = 2019) -> None:
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.q_basis = basis_for(params.q_primes)
        self.p_basis = basis_for(params.p_primes)
        self.full_basis = basis_for(params.q_primes + params.p_primes)
        self.lift_ctx = lift_context(params.q_primes,
                                     params.q_primes + params.p_primes)
        self.scale_ctx = scale_context(params.q_primes, params.p_primes,
                                       params.t)
        self.delta_rows = np.array(
            [params.delta % qi for qi in params.q_primes], dtype=np.int64
        )[:, None]

    # -- helpers -------------------------------------------------------------------

    def _ntt_rows(self, residues: np.ndarray) -> np.ndarray:
        """Batched forward NTT over the q basis ((k, n) or (j, k, n))."""
        return ntt_rows(self.params.q_primes, residues)

    def _intt_rows(self, values: np.ndarray) -> np.ndarray:
        """Batched inverse NTT over the q basis ((k, n) or (j, k, n))."""
        return intt_rows(self.params.q_primes, values)

    def to_ntt_ct(self, ct: Ciphertext) -> Ciphertext:
        """NTT-resident copy of a ciphertext (per-part forward NTT).

        Already-resident parts are reused as-is, so repeated calls are
        free — this is what keeps :class:`~repro.api.backends.LocalBackend`
        chains in the evaluation domain.
        """
        if all(part.ntt_domain for part in ct.parts):
            return ct
        parts = tuple(
            part if part.ntt_domain else part.to_ntt() for part in ct.parts
        )
        return Ciphertext(parts, ct.params)

    def to_coeff_ct(self, ct: Ciphertext) -> Ciphertext:
        """Coefficient-domain copy of a ciphertext (per-part inverse NTT).

        Every conversion is recorded as a *round trip* on the
        transform instrument (:func:`~repro.nttmath.batch.count_roundtrip`):
        an NTT-resident operand forced back to coefficients is exactly
        the waste the resident executor exists to avoid, so a zero
        ``roundtrip_calls`` reading over a program run is the telemetry
        proof that the resident loop stayed closed.
        """
        resident = [part for part in ct.parts if part.ntt_domain]
        if not resident:
            return ct
        count_roundtrip(sum(part.residues.shape[0] for part in resident))
        parts = tuple(
            part.to_coeff() if part.ntt_domain else part
            for part in ct.parts
        )
        return Ciphertext(parts, ct.params)

    def _small_poly_rows(self, coeffs: np.ndarray) -> np.ndarray:
        """Residues of a polynomial with small signed coefficients."""
        return coeffs[None, :] % self.q_basis.primes_col

    # -- key generation --------------------------------------------------------------

    def keygen(self) -> KeySet:
        """Generate secret, public, and RNS relinearisation keys."""
        params = self.params
        n = params.n
        s_coeffs = uniform_ternary(self.rng, n)
        s_rows = self._small_poly_rows(s_coeffs)
        s_ntt = self._ntt_rows(s_rows)
        secret = SecretKey(
            coeffs=s_coeffs,
            rns=RnsPoly(self.q_basis, s_rows),
            ntt_rows=s_ntt,
        )

        a_rows = uniform_rns_rows(self.rng, n, params.q_primes)
        e_rows = self._small_poly_rows(
            discrete_gaussian(self.rng, n, params.sigma)
        )
        a_ntt = self._ntt_rows(a_rows)
        a_s = self._intt_rows(
            (a_ntt * s_ntt) % self.q_basis.primes_col
        )
        p0_rows = (-(a_s + e_rows)) % self.q_basis.primes_col
        public = PublicKey(
            p0=RnsPoly(self.q_basis, p0_rows),
            p1=RnsPoly(self.q_basis, a_rows),
            p0_ntt=self._ntt_rows(p0_rows),
            p1_ntt=a_ntt,
        )

        relin = self._relin_keygen(s_ntt)
        return KeySet(secret=secret, public=public, relin=relin,
                      basis=self.q_basis)

    def _relin_keygen(self, s_ntt: np.ndarray) -> RelinKey:
        """One key pair per q prime, encrypting (q~_i q*_i) * s^2.

        The RNS digits used at relinearisation time are the *raw residue
        rows* of c2 (each already < 2^30), so the CRT weights q~_i q*_i
        are folded into the key. This matches the paper's coprocessor,
        whose Table II shows no extra multiplications for WordDecomp —
        the decomposition is pure data movement.
        """
        params = self.params
        primes_col = self.q_basis.primes_col
        s_sq_ntt = (s_ntt * s_ntt) % primes_col
        pairs = []
        for i in range(params.k_q):
            a_rows = uniform_rns_rows(self.rng, params.n, params.q_primes)
            a_ntt = self._ntt_rows(a_rows)
            e_rows = self._small_poly_rows(
                discrete_gaussian(self.rng, params.n, params.sigma)
            )
            e_ntt = self._ntt_rows(e_rows)
            weight = self.q_basis.q_tilde[i] * self.q_basis.q_star[i]
            weight_col = np.array(
                [weight % qj for qj in params.q_primes], dtype=np.int64,
            )[:, None]
            b_ntt = (weight_col * s_sq_ntt - a_ntt * s_ntt
                     - e_ntt) % primes_col
            pairs.append((b_ntt, a_ntt))
        return RelinKey(pairs=pairs)

    def relin_keygen_grouped(self, secret: SecretKey,
                             group_size: int) -> GroupedRelinKey:
        """Grouped RNS relinearisation key (HPS digit grouping).

        Component j encrypts ``w_j * s^2`` with ``w_j = q~_j q*_j`` for
        the prime group Q_j; the digits at relinearisation time are the
        group residues ``[c2]_{Q_j}``. Groups of two 30-bit primes give
        60-bit digits and halve the component count — this is what keeps
        the Table V scaling at ~2.17x per doubling instead of the ~3.6x
        that per-prime digits would cost (see EXPERIMENTS.md).
        """
        from ..rns.decompose import grouped_reconstruction_weights
        from .keys import GroupedRelinKey

        params = self.params
        primes_col = self.q_basis.primes_col
        weights = grouped_reconstruction_weights(self.q_basis, group_size)
        s_ntt = secret.ntt_rows
        s_sq_ntt = (s_ntt * s_ntt) % primes_col
        pairs = []
        for weight in weights:
            a_rows = uniform_rns_rows(self.rng, params.n, params.q_primes)
            a_ntt = self._ntt_rows(a_rows)
            e_rows = self._small_poly_rows(
                discrete_gaussian(self.rng, params.n, params.sigma)
            )
            e_ntt = self._ntt_rows(e_rows)
            weight_col = np.array(
                [weight % qj for qj in params.q_primes], dtype=np.int64,
            )[:, None]
            b_ntt = (weight_col * s_sq_ntt - a_ntt * s_ntt
                     - e_ntt) % primes_col
            pairs.append((b_ntt, a_ntt))
        return GroupedRelinKey(pairs=pairs, group_size=group_size)

    def relin_keygen_digit(self, secret: SecretKey,
                           base_bits: int) -> DigitRelinKey:
        """Signed base-2^base_bits relinearisation key (Sec. II-B form).

        This is the variant the paper's slower, traditional-CRT
        coprocessor uses; it can pick the digit count freely (the paper
        uses two 90-bit digits — a "three times smaller" key than the
        HPS design's six components).
        """
        from .keys import DigitRelinKey

        params = self.params
        primes_col = self.q_basis.primes_col
        count = -(-params.q.bit_length() // base_bits)
        s_ntt = secret.ntt_rows
        s_sq_ntt = (s_ntt * s_ntt) % primes_col
        pairs = []
        w_power = 1
        for _ in range(count):
            a_rows = uniform_rns_rows(self.rng, params.n, params.q_primes)
            a_ntt = self._ntt_rows(a_rows)
            e_rows = self._small_poly_rows(
                discrete_gaussian(self.rng, params.n, params.sigma)
            )
            e_ntt = self._ntt_rows(e_rows)
            w_col = np.array(
                [w_power % qj for qj in params.q_primes], dtype=np.int64,
            )[:, None]
            b_ntt = (w_col * s_sq_ntt - a_ntt * s_ntt - e_ntt) % primes_col
            pairs.append((b_ntt, a_ntt))
            w_power = (w_power << base_bits) % params.q
        return DigitRelinKey(pairs=pairs, base_bits=base_bits)

    # -- encryption / decryption -------------------------------------------------------

    def encrypt(self, plain: Plaintext, public: PublicKey, *,
                resident: bool = False) -> Ciphertext:
        """FV.Encrypt with fresh randomness from the context RNG.

        With ``resident=True`` the ciphertext is born NTT-resident (see
        :meth:`encrypt_with`) — the entry point of the end-to-end
        resident pipeline.
        """
        params = self.params
        u = uniform_ternary(self.rng, params.n)
        e1 = discrete_gaussian(self.rng, params.n, params.sigma)
        e2 = discrete_gaussian(self.rng, params.n, params.sigma)
        return self.encrypt_with(plain, public, u, e1, e2,
                                 resident=resident)

    def encrypt_with(self, plain: Plaintext, public: PublicKey,
                     u: np.ndarray, e1: np.ndarray,
                     e2: np.ndarray, *,
                     resident: bool = False) -> Ciphertext:
        """Deterministic encryption from caller-supplied randomness.

        Exposed so tests can feed identical randomness to this RNS path
        and to the textbook big-integer path and compare ciphertexts
        bit-for-bit.

        ``resident=True`` keeps the public-key products in the
        evaluation domain: the masks ``p0*u`` / ``p1*u`` stay as the
        pointwise products the key material already lives in, and the
        noise/message terms join them through one stacked forward
        transform — so a fresh ciphertext is *born* NTT-resident with
        no inverse transform at all (three forward row-sets in one
        call, versus one forward plus two inverse on the legacy path).
        Because every transform is exact, converting the resident
        ciphertext back to the coefficient domain yields bit-for-bit
        the legacy ciphertext for the same randomness.
        """
        params = self.params
        if plain.t != params.t or plain.n != params.n:
            raise ParameterError("plaintext does not match the parameter set")
        primes_col = self.q_basis.primes_col
        e1_rows = self._small_poly_rows(np.asarray(e1))
        e2_rows = self._small_poly_rows(np.asarray(e2))
        m_rows = plain.coeffs[None, :] % primes_col
        delta_m = (self.delta_rows * m_rows) % primes_col
        u_rows = self._small_poly_rows(np.asarray(u))
        if resident:
            # One stacked forward transform for the mask polynomial and
            # both additive terms; the pk products never leave the
            # evaluation domain.
            u_ntt, x0_ntt, e2_ntt = self._ntt_rows(np.stack([
                u_rows,
                (e1_rows + delta_m) % primes_col,
                e2_rows,
            ]))
            c0 = (public.p0_ntt * u_ntt + x0_ntt) % primes_col
            c1 = (public.p1_ntt * u_ntt + e2_ntt) % primes_col
            return Ciphertext(
                (RnsPoly.trusted(self.q_basis, c0, ntt_domain=True),
                 RnsPoly.trusted(self.q_basis, c1, ntt_domain=True)),
                params,
            )
        u_ntt = self._ntt_rows(u_rows)
        # One stacked inverse transform for both mask polynomials.
        p0_u, p1_u = self._intt_rows(np.stack([
            (public.p0_ntt * u_ntt) % primes_col,
            (public.p1_ntt * u_ntt) % primes_col,
        ]))
        c0 = (p0_u + e1_rows + delta_m) % primes_col
        c1 = (p1_u + e2_rows) % primes_col
        return Ciphertext(
            (RnsPoly.trusted(self.q_basis, c0),
             RnsPoly.trusted(self.q_basis, c1)),
            params,
        )

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Plaintext:
        return self.decrypt_with_noise(ct, secret)[0]

    def decrypt_with_noise(self, ct: Ciphertext,
                           secret: SecretKey) -> tuple[Plaintext, int]:
        """Decrypt and also report the infinity norm of the noise term.

        The noise norm drives :func:`repro.fv.noise.noise_budget_bits` and
        the depth experiments.
        """
        params = self.params
        primes_col = self.q_basis.primes_col
        # w = c0 + c1*s (+ c2*s^2 for three-part ciphertexts), computed in
        # the NTT domain per residue. NTT-resident parts skip their
        # forward transform entirely — decrypting a resident result is
        # cheaper than decrypting a coefficient-domain one — and the
        # remaining coefficient-domain parts share one stacked batched
        # call (the same gemm flow encryption uses).
        pending = [i for i, part in enumerate(ct.parts)
                   if not part.ntt_domain]
        parts_ntt: dict[int, np.ndarray] = {
            i: ct.parts[i].residues for i in range(ct.size)
            if ct.parts[i].ntt_domain
        }
        if pending:
            transformed = self._ntt_rows(np.stack(
                [ct.parts[i].residues for i in pending]
            ))
            parts_ntt.update(zip(pending, transformed, strict=True))
        acc = parts_ntt[0]
        s_power = secret.ntt_rows
        for index in range(1, ct.size):
            acc = (acc + parts_ntt[index] * s_power) % primes_col
            s_power = (s_power * secret.ntt_rows) % primes_col
        w_rows = self._intt_rows(acc)
        w_coeffs = self.q_basis.reconstruct_coeffs_centered(w_rows)
        q, t = params.q, params.t
        m_coeffs = [round_half_away(t * w, q) % t for w in w_coeffs]
        plain = Plaintext(np.array(m_coeffs, dtype=np.int64), t)
        delta = params.delta
        noise = 0
        for w, m in zip(w_coeffs, m_coeffs, strict=True):
            diff = (w - delta * m) % q
            if diff > q // 2:
                diff = q - diff
            noise = max(noise, diff)
        return plain, noise

    # -- additive homomorphic operations -----------------------------------------------

    def _align_domains(self, a: Ciphertext,
                       b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts into a common domain for linear ops.

        Mixed operands converge on the NTT domain (addition commutes
        with the transform), which keeps NTT-resident execution chains
        resident when a fresh coefficient-domain operand joins in.
        """
        a_resident = a.c0.ntt_domain
        b_resident = b.c0.ntt_domain
        if a_resident == b_resident:
            return a, b
        if a_resident:
            return a, self.to_ntt_ct(b)
        return self.to_ntt_ct(a), b

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """FV.Add: element-wise addition of ciphertext parts.

        Works in either domain (the NTT is linear); mixed-domain
        operands are aligned onto the NTT domain first.
        """
        if a.size != b.size:
            raise ParameterError("cannot add ciphertexts of different sizes")
        a, b = self._align_domains(a, b)
        parts = tuple(pa + pb for pa, pb in zip(a.parts, b.parts, strict=True))
        return Ciphertext(parts, self.params)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        if a.size != b.size:
            raise ParameterError("cannot subtract ciphertexts of different sizes")
        a, b = self._align_domains(a, b)
        parts = tuple(pa - pb for pa, pb in zip(a.parts, b.parts, strict=True))
        return Ciphertext(parts, self.params)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(tuple(-p for p in a.parts), self.params)

    def delta_plain_rows(self, plain: Plaintext) -> np.ndarray:
        """Residue rows of ``Delta * m`` (what Encrypt/AddPlain embed)."""
        primes_col = self.q_basis.primes_col
        m_rows = plain.coeffs[None, :] % primes_col
        return (self.delta_rows * m_rows) % primes_col

    def plain_ntt_rows(self, plain: Plaintext) -> np.ndarray:
        """NTT rows of a plaintext polynomial (for MulPlain)."""
        primes_col = self.q_basis.primes_col
        return self._ntt_rows(plain.coeffs[None, :] % primes_col)

    def add_plain(self, a: Ciphertext, plain: Plaintext,
                  delta_m_ntt: np.ndarray | None = None) -> Ciphertext:
        """Add an unencrypted plaintext into a ciphertext (free operation).

        NTT-resident ciphertexts stay resident: ``Delta * m`` is added
        in the evaluation domain (``delta_m_ntt`` lets the session's
        plaintext-constant pool supply the transform).
        """
        primes_col = self.q_basis.primes_col
        if a.c0.ntt_domain:
            if delta_m_ntt is None:
                delta_m_ntt = self._ntt_rows(self.delta_plain_rows(plain))
            c0 = RnsPoly.trusted(
                self.q_basis,
                (a.c0.residues + delta_m_ntt) % primes_col,
                ntt_domain=True,
            )
        else:
            c0 = RnsPoly.trusted(
                self.q_basis,
                (a.c0.residues + self.delta_plain_rows(plain)) % primes_col,
            )
        return Ciphertext((c0,) + a.parts[1:], self.params)

    def mul_plain(self, a: Ciphertext, plain: Plaintext,
                  m_ntt: np.ndarray | None = None) -> Ciphertext:
        """Multiply a ciphertext by a plaintext polynomial (no relin needed).

        The product is computed in the NTT domain. Coefficient-domain
        inputs are transformed (one stacked call for all parts) and
        converted back, preserving the legacy contract; NTT-resident
        inputs stay resident and pay only the pointwise products —
        the big win of the NTT-resident executor, especially when
        ``m_ntt`` comes from the session's plaintext-constant pool.
        """
        primes_col = self.q_basis.primes_col
        if m_ntt is None:
            m_ntt = self.plain_ntt_rows(plain)
        resident = a.c0.ntt_domain
        stacked = np.stack([part.residues for part in a.parts])
        parts_ntt = stacked if resident else self._ntt_rows(stacked)
        products = (parts_ntt * m_ntt) % primes_col
        if resident:
            return Ciphertext(
                tuple(
                    RnsPoly.trusted(self.q_basis, products[i],
                                    ntt_domain=True)
                    for i in range(a.size)
                ),
                self.params,
            )
        coeff = self._intt_rows(products)
        return Ciphertext(
            tuple(
                RnsPoly.trusted(self.q_basis, coeff[i])
                for i in range(a.size)
            ),
            self.params,
        )
