"""Randomness sources of the FV scheme (paper Fig. 1: GaussNoise, u).

All samplers draw from an explicit :class:`numpy.random.Generator` so every
experiment in the repository is reproducible from a seed. The discrete
Gaussian uses rounded rejection-free sampling from the continuous normal —
adequate for a functional reproduction (the paper's security argument only
needs the standard deviation, sigma = 102); it is *not* a constant-time
sampler and must not be reused in a production cryptosystem.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

#: Tail cut in standard deviations; beyond ~10 sigma the probability mass
#: is below 2^-70 and the paper's noise analysis ignores it.
TAIL_CUT_SIGMAS = 10.0


def uniform_ternary(rng: np.random.Generator, n: int) -> np.ndarray:
    """Coefficients uniform over {-1, 0, 1} (the distribution of u and s)."""
    return rng.integers(-1, 2, size=n).astype(np.int64)


def discrete_gaussian(rng: np.random.Generator, n: int,
                      sigma: float) -> np.ndarray:
    """Rounded-Gaussian error polynomial with standard deviation sigma."""
    if sigma <= 0:
        raise ParameterError("sigma must be positive")
    samples = np.rint(rng.normal(0.0, sigma, size=n)).astype(np.int64)
    bound = int(TAIL_CUT_SIGMAS * sigma) + 1
    return np.clip(samples, -bound, bound)


def uniform_mod(rng: np.random.Generator, n: int, modulus: int) -> np.ndarray:
    """Coefficients uniform over [0, modulus) for a single machine-word modulus."""
    if modulus.bit_length() > 62:
        raise ParameterError("uniform_mod is limited to machine-word moduli")
    return rng.integers(0, modulus, size=n).astype(np.int64)


def uniform_rns_rows(rng: np.random.Generator, n: int,
                     primes: tuple[int, ...]) -> np.ndarray:
    """A uniform element of R_q sampled directly in RNS form.

    Sampling each residue row independently and uniformly is exactly
    uniform over Z_q by the CRT bijection, so no big-integer sampling is
    needed — the same trick the hardware uses for the public key stream.
    """
    return np.stack([uniform_mod(rng, n, p) for p in primes])
