"""The Fan–Vercauteren (FV/BFV) somewhat homomorphic encryption scheme.

This package is a complete, self-contained FV implementation:

* :mod:`~repro.fv.sampler` — error and key distributions;
* :mod:`~repro.fv.encoder` — plaintext encoders (bits, integers, SIMD
  batching when the plaintext modulus allows it);
* :mod:`~repro.fv.keys` — secret/public/relinearisation keys;
* :mod:`~repro.fv.scheme` — :class:`FvContext`: keygen, encrypt, decrypt,
  and the additive homomorphic operations;
* :mod:`~repro.fv.evaluator` — homomorphic multiplication in the RNS-HPS
  form the paper's hardware computes, plus relinearisation;
* :mod:`~repro.fv.reference` — a textbook big-integer FV used as ground
  truth in tests;
* :mod:`~repro.fv.noise` — invariant-noise budget measurement.
"""

from .ciphertext import Ciphertext
from .encoder import BatchEncoder, IntegerEncoder, Plaintext
from .evaluator import Evaluator
from .galois import GaloisEngine, GaloisKey
from .keys import (
    DigitRelinKey,
    GroupedRelinKey,
    KeySet,
    PublicKey,
    RelinKey,
    SecretKey,
)
from .noise import noise_budget_bits
from .scheme import FvContext

__all__ = [
    "Ciphertext",
    "Plaintext",
    "IntegerEncoder",
    "BatchEncoder",
    "SecretKey",
    "PublicKey",
    "RelinKey",
    "DigitRelinKey",
    "GroupedRelinKey",
    "KeySet",
    "FvContext",
    "Evaluator",
    "GaloisEngine",
    "GaloisKey",
    "noise_budget_bits",
]
