"""Homomorphic multiplication — the operation the paper's hardware targets.

The steps mirror paper Fig. 2 exactly; each private helper corresponds to
one box of that figure, and the hardware compiler
(:mod:`repro.hw.compiler`) emits the instruction sequence for the same
decomposition, so software and simulated hardware can be cross-checked
step by step:

1. ``Lift q->Q`` of the four input polynomials (HPS, Fig. 6);
2. tensor product over R_Q via per-residue NTTs;
3. ``Scale Q->q`` of the three results (HPS, Fig. 9);
4. ``WordDecomp`` + ``ReLin`` with the six-component RNS key.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath import batch
from ..nttmath.batch import intt_rows, ntt_rows
from ..parallel import inproc_executor, split_range
from ..poly.rns_poly import RnsPoly
from ..rns.lift import lift_hps, lift_hps_ntt, lift_traditional
from ..rns.scale import scale_hps, scale_hps_ntt, scale_traditional
from .ciphertext import Ciphertext
from .keys import RelinKey
from .scheme import FvContext


class Evaluator:
    """Multiplication and relinearisation over one :class:`FvContext`.

    ``use_hps=True`` (default) follows the paper's fast coprocessor;
    ``use_hps=False`` switches both conversions to the traditional
    multi-precision CRT route of the slower coprocessor (Sec. VI-C), which
    is functionally identical but reproduces a different cost profile.
    """

    #: Safe lazy-accumulation width: summands are < 2^60 (products of
    #: 30-bit residues), so eight of them stay below int64 overflow.
    _LAZY_TERMS = 8

    def __init__(self, context: FvContext, use_hps: bool = True) -> None:
        self.context = context
        self.use_hps = use_hps
        params = context.params
        self._full_primes = params.q_primes + params.p_primes

    # -- Fig. 2 boxes ------------------------------------------------------------

    def _lift(self, poly: RnsPoly,
              out: np.ndarray | None = None) -> np.ndarray:
        """Lift q->Q: returns (k_total x n) residues over the full basis.

        ``out``, when given, receives the result in place (the tensor
        step lifts all four operands straight into its stacked
        transform input).
        """
        if self.use_hps:
            return lift_hps(self.context.lift_ctx, poly.residues, out)
        rows = lift_traditional(self.context.lift_ctx, poly.residues)
        if out is not None:
            out[...] = rows
            return out
        return rows

    def _scale(self, residues: np.ndarray) -> RnsPoly:
        """Scale Q->q: returns an R_q polynomial."""
        rows = (scale_hps(self.context.scale_ctx, residues)
                if self.use_hps
                else scale_traditional(self.context.scale_ctx, residues))
        # Both scale routes produce canonical residues.
        return RnsPoly.trusted(self.context.q_basis, rows)

    def _full_ntt(self, residues: np.ndarray) -> np.ndarray:
        """Batched forward NTT over the full basis ((k, n) or stacks)."""
        return ntt_rows(self._full_primes, residues)

    def _full_ntt_lazy(self, residues: np.ndarray) -> np.ndarray:
        """Forward NTT with lazy [0, 2q) outputs where the batched
        engine runs; canonical (a subset of lazy) via the guarded
        dispatcher otherwise, so large-degree or wide-prime parameter
        sets degrade instead of crashing."""
        from ..nttmath.batch import basis_transformer, batched_engine_ok

        n = self.context.params.n
        if not batched_engine_ok(self._full_primes, n):
            return ntt_rows(self._full_primes, residues)
        return basis_transformer(self._full_primes, n).forward(
            residues, lazy=True
        )

    def _full_intt(self, values: np.ndarray) -> np.ndarray:
        """Batched inverse NTT over the full basis ((k, n) or stacks)."""
        return intt_rows(self._full_primes, values)

    def tensor(self, a: Ciphertext, b: Ciphertext) -> tuple[np.ndarray, ...]:
        """Lift both ciphertexts and form (c~0, c~1, c~2) over the full basis.

        All four lifted operands go through one stacked forward call and
        the three tensor parts through one stacked inverse call — the
        limb-parallel schedule of the paper's Fig. 2 datapath. The cross
        term accumulates both 60-bit products before a single reduction.
        """
        return self._tensor_parts(a, b, prescaled=False)

    @property
    def resident_tensor_ok(self) -> bool:
        """Can the evaluation-domain tensor path serve this context?

        Public form of :meth:`_resident_tensor_ok`, used by the domain
        planner in :class:`~repro.api.backends.LocalBackend` to decide
        whether MULTIPLY inputs may stay NTT-resident.
        """
        return self._resident_tensor_ok()

    def _resident_tensor_ok(self) -> bool:
        """Can the evaluation-domain tensor path serve this context?

        The resident lift needs the target basis to start with the
        source primes (Lift q->Q always does), 60-bit-safe reciprocal
        tables, and the batched engine on every basis involved.
        """
        params = self.context.params
        lift_ctx = self.context.lift_ctx
        n = params.n
        return (self.use_hps and not batch._PER_ROW_MODE
                and lift_ctx.gemm_safe
                and lift_ctx.source_prefix == params.k_q
                and batch.batched_engine_ok(params.q_primes, n)
                and batch.batched_engine_ok(params.p_primes, n)
                and batch.batched_engine_ok(self._full_primes, n))

    def _tensor_ntt(self, a: Ciphertext,
                    b: Ciphertext) -> np.ndarray:
        """NTT-domain tensor products over the full basis.

        Returns the canonical ``(3, k_total, n)`` stack of
        ``(c~0, c~1, c~2)`` in the evaluation domain — the shared core
        of :meth:`tensor` and :meth:`multiply_raw`. Resident operands
        take the evaluation-domain lift (:func:`lift_hps_ntt`): their
        q-channel rows pass straight through as the leading channels of
        the full-basis operands (zero coefficient round trips), and
        only the Fig. 6 quotient estimate visits coefficients, via one
        stacked scaled inverse transform of all four operands.
        Coefficient operands keep the legacy in-place lift + stacked
        lazy forward. Both routes produce bit-identical products: the
        Block-1 ``x'`` values agree exactly, the lazy/canonical input
        bounds both stay inside the point-wise reductions' headroom,
        and the products are reduced canonically before returning.
        """
        if a.size != 2 or b.size != 2:
            raise ParameterError("tensor expects two-part ciphertexts")
        full_col = np.array(self._full_primes, dtype=np.int64)[:, None]
        k_total = len(self._full_primes)
        n = self.context.params.n
        resident = ((a.ntt_resident or b.ntt_resident)
                    and self._resident_tensor_ok())
        if resident:
            # Align both operands on the evaluation domain (forward
            # transforms only — never a round trip) and lift the four
            # resident q-row matrices in one stacked call.
            a = self.context.to_ntt_ct(a)
            b = self.context.to_ntt_ct(b)
            stack = np.stack([a.c0.residues, a.c1.residues,
                              b.c0.residues, b.c1.residues])
            ops = lift_hps_ntt(self.context.lift_ctx, stack, lazy=True)
            a0, a1, b0, b1 = ops
            prods = np.empty_like(ops)
        else:
            a = self.context.to_coeff_ct(a)
            b = self.context.to_coeff_ct(b)
            lifted = np.empty((4, k_total, n), dtype=np.int64)
            parts = (a.c0, a.c1, b.c0, b.c1)
            executor = inproc_executor()
            if executor is not None and self.use_hps:
                # The four lifts are independent gemms over shared
                # read-only tables; materialise the tables once here so
                # worker threads only ever read them.
                self.context.lift_ctx.gemm_tables()
                executor.map(
                    lambda idx: self._lift(parts[idx], lifted[idx]),
                    range(4),
                )
            else:
                for idx, part in enumerate(parts):
                    self._lift(part, lifted[idx])
            # Lazy forward transforms: entries land in [0, 2q), which
            # the point-wise reductions below absorb (products stay
            # under 2^62 and the cross pair under 2^63).
            a0, a1, b0, b1 = self._full_ntt_lazy(lifted)
            prods = lifted  # reuse: the forwards no longer need it

        def products(c0: int, c1: int) -> None:
            # Pure element-wise passes on one channel band; any tile
            # split yields the exact same entries as one full pass.
            np.multiply(a0[c0:c1], b0[c0:c1], out=prods[0][c0:c1])
            prods[0][c0:c1] %= full_col[c0:c1]
            np.multiply(a0[c0:c1], b1[c0:c1], out=prods[1][c0:c1])
            np.multiply(a1[c0:c1], b0[c0:c1], out=prods[3][c0:c1])
            prods[1][c0:c1] += prods[3][c0:c1]
            prods[1][c0:c1] %= full_col[c0:c1]
            np.multiply(a1[c0:c1], b1[c0:c1], out=prods[2][c0:c1])
            prods[2][c0:c1] %= full_col[c0:c1]

        executor = inproc_executor()
        if executor is None:
            products(0, k_total)
        else:
            executor.map(lambda band: products(*band),
                         split_range(k_total, 2 * executor.workers))
        return prods[:3]

    def _tensor_parts(self, a: Ciphertext, b: Ciphertext,
                      prescaled: bool) -> tuple[np.ndarray, ...]:
        """Tensor core; ``prescaled=True`` folds Scale's Q~_k constants
        into the inverse transforms (the outputs then feed
        ``scale_hps(..., prescaled=True)``)."""
        if batch._PER_ROW_MODE:
            if a.size != 2 or b.size != 2:
                raise ParameterError(
                    "tensor expects two-part ciphertexts"
                )
            a = self.context.to_coeff_ct(a)
            b = self.context.to_coeff_ct(b)
            full_col = np.array(self._full_primes,
                                dtype=np.int64)[:, None]
            a0, a1, b0, b1 = self._full_ntt(np.stack([
                self._lift(a.c0), self._lift(a.c1),
                self._lift(b.c0), self._lift(b.c1),
            ]))
            # Pre-batching cross term: both products reduced separately.
            cross = ((a0 * b1) % full_col + (a1 * b0) % full_col) % full_col
            t0, t1, t2 = self._full_intt(np.stack([
                (a0 * b0) % full_col,
                cross,
                (a1 * b1) % full_col,
            ]))
            return t0, t1, t2
        prods = self._tensor_ntt(a, b)
        t0, t1, t2 = (
            batch.intt_rows_scaled(self._full_primes, prods,
                                   self.context.scale_ctx.full_q_tilde)
            if prescaled else self._full_intt(prods)
        )
        return t0, t1, t2

    def multiply_raw(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """FV.Mult without relinearisation: a three-part ciphertext.

        The tensor products stay in the evaluation domain until
        :func:`~repro.rns.scale.scale_hps_ntt` consumes them: one
        stacked scaled inverse transform recovers the prescaled
        coefficient values Fig. 9 needs (Scale is column-wise, so the
        three parts share a single triple-width gemm). The output is
        coefficient-domain — c2's raw residue rows are what WordDecomp
        broadcasts — and bit-identical whichever domain the inputs
        arrived in. ``per_row_mode`` keeps the pre-batching
        one-call-per-part schedule.
        """
        if batch._PER_ROW_MODE or not self.use_hps:
            t0, t1, t2 = self.tensor(a, b)
            parts = (self._scale(t0), self._scale(t1), self._scale(t2))
            return Ciphertext(parts, self.context.params)
        scaled = scale_hps_ntt(self.context.scale_ctx,
                               self._tensor_ntt(a, b))
        parts = tuple(
            RnsPoly.trusted(self.context.q_basis,
                            np.ascontiguousarray(scaled[i]))
            for i in range(3)
        )
        return Ciphertext(parts, self.context.params)

    def rns_digits(self, residues: np.ndarray) -> np.ndarray:
        """Raw-residue digits: row i broadcast to every q-basis channel.

        Each digit value is already < 2^30, so "decomposition" is pure
        data movement (the paper's cheap WordDecomp); the CRT weights
        q~_i q*_i live inside the relinearisation key.
        """
        from ..rns.decompose import broadcast_digit_rows

        return broadcast_digit_rows(residues, self.context.q_basis)

    def _fold_keyswitch(self, ct: Ciphertext, d_ntt: np.ndarray,
                        pairs, lazy_digits: bool = False,
                        resident: bool = False) -> Ciphertext:
        """Fold the NTT-domain digit/key sum of products back into (c0, c1).

        ``d_ntt`` holds the already-transformed digits (one stacked
        batched call at every call site — the paper's "all digits in
        flight at once" schedule). Products of 30-bit residues are
        below 2^60, so up to eight accumulate lazily in int64 before a
        reduction; both accumulators share one stacked inverse call.

        With ``resident=True`` (batched engine only) the accumulators
        never leave the evaluation domain: instead of inverse-
        transforming them, (c0, c1) are forward-transformed (one
        stacked call, or reused as-is when already resident) and the
        sums are formed in the NTT domain — the transform count is the
        same, but the result is born NTT-resident, which is what keeps
        a Mult-heavy resident chain free of coefficient round trips.
        The NTT being linear and every row canonical, the resident
        result is exactly the forward transform of the legacy one.
        """
        context = self.context
        primes_col = context.q_basis.primes_col
        acc0 = np.zeros_like(ct.c0.residues)
        acc1 = np.zeros_like(ct.c1.residues)
        if batch._PER_ROW_MODE:
            # Pre-batching accumulation: reduce after every product.
            for i, (b_ntt, a_ntt) in enumerate(pairs):
                acc0 = (acc0 + d_ntt[i] * b_ntt) % primes_col
                acc1 = (acc1 + d_ntt[i] * a_ntt) % primes_col
        else:
            # Lazy [0, 2q) digits double each summand, so halve the
            # accumulation window (4 * 2 * q^2 still fits int64).
            window = self._LAZY_TERMS // 2 if lazy_digits \
                else self._LAZY_TERMS

            def fold(c0: int, c1: int) -> None:
                # One channel band of the digit-pair accumulation: the
                # digit order and reduction window per channel are the
                # serial schedule exactly, so banding is bit-invisible.
                pending = 0
                tmp = np.empty_like(acc0[c0:c1])
                for i, (b_ntt, a_ntt) in enumerate(pairs):
                    np.multiply(d_ntt[i][c0:c1], b_ntt[c0:c1], out=tmp)
                    acc0[c0:c1] += tmp
                    np.multiply(d_ntt[i][c0:c1], a_ntt[c0:c1], out=tmp)
                    acc1[c0:c1] += tmp
                    pending += 1
                    if pending == window:
                        acc0[c0:c1] %= primes_col[c0:c1]
                        acc1[c0:c1] %= primes_col[c0:c1]
                        pending = 0
                if pending:
                    acc0[c0:c1] %= primes_col[c0:c1]
                    acc1[c0:c1] %= primes_col[c0:c1]

            executor = inproc_executor()
            if executor is None:
                fold(0, acc0.shape[0])
            else:
                executor.map(lambda band: fold(*band),
                             split_range(acc0.shape[0],
                                         2 * executor.workers))
        if resident and not batch._PER_ROW_MODE:
            # Evaluation-domain fold: bring (c0, c1) to the NTT domain
            # (free when the chain already is) and add the accumulators
            # where they live.
            if ct.c0.ntt_domain and ct.c1.ntt_domain:
                c0_ntt, c1_ntt = ct.c0.residues, ct.c1.residues
            elif ct.c0.ntt_domain or ct.c1.ntt_domain:
                aligned = context.to_ntt_ct(
                    Ciphertext((ct.c0, ct.c1), context.params)
                )
                c0_ntt = aligned.c0.residues
                c1_ntt = aligned.c1.residues
            else:
                c0_ntt, c1_ntt = context._ntt_rows(np.stack(
                    [ct.c0.residues, ct.c1.residues]
                ))
            c0_rows = c0_ntt + acc0
            c1_rows = c1_ntt + acc1
            for rows in (c0_rows, c1_rows):
                over = rows - primes_col
                np.minimum(rows.view(np.uint64), over.view(np.uint64),
                           out=rows.view(np.uint64))
            return Ciphertext(
                (RnsPoly.trusted(context.q_basis, c0_rows,
                                 ntt_domain=True),
                 RnsPoly.trusted(context.q_basis, c1_rows,
                                 ntt_domain=True)),
                context.params,
            )
        delta0, delta1 = context._intt_rows(np.stack([acc0, acc1]))
        if batch._PER_ROW_MODE:
            c0_rows = (ct.c0.residues + delta0) % primes_col
            c1_rows = (ct.c1.residues + delta1) % primes_col
        else:
            # Sums of two canonical rows are < 2q: one unsigned-minimum
            # conditional subtract instead of an integer division.
            c0_rows = ct.c0.residues + delta0
            c1_rows = ct.c1.residues + delta1
            for rows in (c0_rows, c1_rows):
                over = rows - primes_col
                np.minimum(rows.view(np.uint64), over.view(np.uint64),
                           out=rows.view(np.uint64))
        c0 = RnsPoly.trusted(context.q_basis, c0_rows)
        c1 = RnsPoly.trusted(context.q_basis, c1_rows)
        return Ciphertext((c0, c1), context.params)

    def relinearize(self, ct: Ciphertext, relin: RelinKey,
                    resident: bool = False) -> Ciphertext:
        """ReLin: fold c2 back into (c0, c1) using the RNS key.

        The sum of products runs in the NTT domain. By default its two
        accumulator polynomials are inverse-transformed once and added
        to c~0/c~1 in the coefficient domain — the ordering that
        yields the paper's 14 NTT + 8 INTT instruction counts. With
        ``resident=True`` the fold happens in the evaluation domain
        instead and the result is born NTT-resident (see
        :meth:`_fold_keyswitch`); the flag is ignored inside
        ``per_row_mode``, whose baseline schedule has no resident
        notion.
        """
        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        if ct.c2.ntt_domain:
            # WordDecomp broadcasts raw coefficient residues; a
            # resident c2 must round-trip. The multiply pipeline never
            # produces one (multiply_raw emits coefficient parts), so
            # this conversion is visible in the round-trip telemetry if
            # it ever happens.
            batch.count_roundtrip(ct.c2.residues.shape[0])
            ct = Ciphertext((ct.c0, ct.c1, ct.c2.to_coeff()),
                            context.params)
        if len(relin.pairs) != ct.c2.residues.shape[0]:
            raise ParameterError(
                "relinearisation key does not match the RNS decomposition"
            )
        if batch._PER_ROW_MODE:
            d_ntt = context._ntt_rows(self.rns_digits(ct.c2.residues))
            return self._fold_keyswitch(ct, d_ntt, relin.pairs)
        # Fused WordDecomp + NTT: each raw-residue digit row is
        # transformed under every channel directly — one shared stage-0
        # dgemm across all digits (see apply_broadcast_many) — left
        # lazy in [0, 2q) (the narrower accumulation window below
        # absorbs it).
        d_ntt = batch.ntt_broadcast_rows(context.params.q_primes,
                                         ct.c2.residues, lazy=True)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs,
                                    lazy_digits=True,
                                    resident=resident)

    def relinearize_grouped(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with grouped RNS digits (60-bit group residues).

        Same NTT-domain sum of products as :meth:`relinearize`, but with
        ``k_q / group_size`` components instead of ``k_q`` — the scaling
        mode that keeps Table V's growth model honest.
        """
        from ..rns.decompose import grouped_rns_digits

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        digits = grouped_rns_digits(context.q_basis, ct.c2.residues,
                                    relin.group_size)
        if len(relin.pairs) != digits.shape[0]:
            raise ParameterError(
                "grouped key does not match the digit count"
            )
        d_ntt = context._ntt_rows(digits)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs)

    def relinearize_digit(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with the signed base-w digit key (slow coprocessor).

        Decomposes c2's centered big-integer coefficients into
        ``relin.num_components`` signed digits; needs the CRT
        reconstruction the traditional architecture performs anyway.
        """
        from ..rns.decompose import decompose_poly_signed

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        params = context.params
        coeffs = ct.c2.to_int_coeffs()
        digit_polys = decompose_poly_signed(
            coeffs, params.q, 1 << relin.base_bits, relin.num_components
        )
        # Digits may exceed 64 bits (e.g. 90-bit digits); reduce each
        # channel with exact integer arithmetic before vectorising.
        digit_rows = np.stack([
            np.array(
                [[d % p for d in digits] for p in params.q_primes],
                dtype=np.int64,
            )
            for digits in digit_polys
        ])
        d_ntt = context._ntt_rows(digit_rows)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relin: RelinKey, resident: bool = False) -> Ciphertext:
        """Full FV.Mult as in paper Fig. 2 (tensor, scale, relinearise).

        ``resident=True`` asks for an NTT-resident product (the
        relinearisation fold stays in the evaluation domain); the
        inputs may arrive in either domain — resident inputs take the
        evaluation-domain base extension and never round-trip through
        coefficients.
        """
        return self.relinearize(self.multiply_raw(a, b), relin,
                                resident=resident)
