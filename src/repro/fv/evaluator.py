"""Homomorphic multiplication — the operation the paper's hardware targets.

The steps mirror paper Fig. 2 exactly; each private helper corresponds to
one box of that figure, and the hardware compiler
(:mod:`repro.hw.compiler`) emits the instruction sequence for the same
decomposition, so software and simulated hardware can be cross-checked
step by step:

1. ``Lift q->Q`` of the four input polynomials (HPS, Fig. 6);
2. tensor product over R_Q via per-residue NTTs;
3. ``Scale Q->q`` of the three results (HPS, Fig. 9);
4. ``WordDecomp`` + ``ReLin`` with the six-component RNS key.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..poly.ring import ring_context
from ..poly.rns_poly import RnsPoly
from ..rns.lift import lift_hps, lift_traditional
from ..rns.scale import scale_hps, scale_traditional
from .ciphertext import Ciphertext
from .keys import RelinKey
from .scheme import FvContext


class Evaluator:
    """Multiplication and relinearisation over one :class:`FvContext`.

    ``use_hps=True`` (default) follows the paper's fast coprocessor;
    ``use_hps=False`` switches both conversions to the traditional
    multi-precision CRT route of the slower coprocessor (Sec. VI-C), which
    is functionally identical but reproduces a different cost profile.
    """

    def __init__(self, context: FvContext, use_hps: bool = True) -> None:
        self.context = context
        self.use_hps = use_hps
        params = context.params
        self._full_primes = params.q_primes + params.p_primes
        self._full_rings = [
            ring_context(params.n, prime) for prime in self._full_primes
        ]

    # -- Fig. 2 boxes ------------------------------------------------------------

    def _lift(self, poly: RnsPoly) -> np.ndarray:
        """Lift q->Q: returns (k_total x n) residues over the full basis."""
        if self.use_hps:
            return lift_hps(self.context.lift_ctx, poly.residues)
        return lift_traditional(self.context.lift_ctx, poly.residues)

    def _scale(self, residues: np.ndarray) -> RnsPoly:
        """Scale Q->q: returns an R_q polynomial."""
        if self.use_hps:
            rows = scale_hps(self.context.scale_ctx, residues)
        else:
            rows = scale_traditional(self.context.scale_ctx, residues)
        return RnsPoly(self.context.q_basis, rows)

    def _full_ntt(self, residues: np.ndarray) -> np.ndarray:
        return np.stack([
            ring.ntt(residues[i]) for i, ring in enumerate(self._full_rings)
        ])

    def _full_intt(self, values: np.ndarray) -> np.ndarray:
        return np.stack([
            ring.intt(values[i]) for i, ring in enumerate(self._full_rings)
        ])

    def tensor(self, a: Ciphertext, b: Ciphertext) -> tuple[np.ndarray, ...]:
        """Lift both ciphertexts and form (c~0, c~1, c~2) over the full basis."""
        if a.size != 2 or b.size != 2:
            raise ParameterError("tensor expects two-part ciphertexts")
        full_col = np.array(self._full_primes, dtype=np.int64)[:, None]
        a0 = self._full_ntt(self._lift(a.c0))
        a1 = self._full_ntt(self._lift(a.c1))
        b0 = self._full_ntt(self._lift(b.c0))
        b1 = self._full_ntt(self._lift(b.c1))
        t0 = self._full_intt((a0 * b0) % full_col)
        cross = ((a0 * b1) % full_col + (a1 * b0) % full_col) % full_col
        t1 = self._full_intt(cross)
        t2 = self._full_intt((a1 * b1) % full_col)
        return t0, t1, t2

    def multiply_raw(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """FV.Mult without relinearisation: a three-part ciphertext."""
        t0, t1, t2 = self.tensor(a, b)
        parts = (self._scale(t0), self._scale(t1), self._scale(t2))
        return Ciphertext(parts, self.context.params)

    def rns_digits(self, residues: np.ndarray) -> np.ndarray:
        """Raw-residue digits: row i broadcast to every q-basis channel.

        Each digit value is already < 2^30, so "decomposition" is pure
        data movement (the paper's cheap WordDecomp); the CRT weights
        q~_i q*_i live inside the relinearisation key.
        """
        primes_col = self.context.q_basis.primes_col
        k = residues.shape[0]
        return np.stack([
            residues[i][None, :] % primes_col for i in range(k)
        ])

    def relinearize(self, ct: Ciphertext, relin: RelinKey) -> Ciphertext:
        """ReLin: fold c2 back into (c0, c1) using the RNS key.

        The sum of products runs in the NTT domain; its two accumulator
        polynomials are inverse-transformed once and added to c~0/c~1 in
        the coefficient domain — the ordering that yields the paper's
        14 NTT + 8 INTT instruction counts.
        """
        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        primes_col = context.q_basis.primes_col
        digits = self.rns_digits(ct.c2.residues)
        if len(relin.pairs) != digits.shape[0]:
            raise ParameterError(
                "relinearisation key does not match the RNS decomposition"
            )
        acc0 = np.zeros_like(ct.c0.residues)
        acc1 = np.zeros_like(ct.c1.residues)
        for i, (b_ntt, a_ntt) in enumerate(relin.pairs):
            d_ntt = context._ntt_rows(digits[i])
            acc0 = (acc0 + d_ntt * b_ntt) % primes_col
            acc1 = (acc1 + d_ntt * a_ntt) % primes_col
        c0 = RnsPoly(
            context.q_basis,
            (ct.c0.residues + context._intt_rows(acc0)) % primes_col,
        )
        c1 = RnsPoly(
            context.q_basis,
            (ct.c1.residues + context._intt_rows(acc1)) % primes_col,
        )
        return Ciphertext((c0, c1), context.params)

    def relinearize_grouped(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with grouped RNS digits (60-bit group residues).

        Same NTT-domain sum of products as :meth:`relinearize`, but with
        ``k_q / group_size`` components instead of ``k_q`` — the scaling
        mode that keeps Table V's growth model honest.
        """
        from ..rns.decompose import grouped_rns_digits

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        primes_col = context.q_basis.primes_col
        digits = grouped_rns_digits(context.q_basis, ct.c2.residues,
                                    relin.group_size)
        if len(relin.pairs) != digits.shape[0]:
            raise ParameterError(
                "grouped key does not match the digit count"
            )
        acc0 = np.zeros_like(ct.c0.residues)
        acc1 = np.zeros_like(ct.c1.residues)
        for j, (b_ntt, a_ntt) in enumerate(relin.pairs):
            d_ntt = context._ntt_rows(digits[j])
            acc0 = (acc0 + d_ntt * b_ntt) % primes_col
            acc1 = (acc1 + d_ntt * a_ntt) % primes_col
        c0 = RnsPoly(
            context.q_basis,
            (ct.c0.residues + context._intt_rows(acc0)) % primes_col,
        )
        c1 = RnsPoly(
            context.q_basis,
            (ct.c1.residues + context._intt_rows(acc1)) % primes_col,
        )
        return Ciphertext((c0, c1), context.params)

    def relinearize_digit(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with the signed base-w digit key (slow coprocessor).

        Decomposes c2's centered big-integer coefficients into
        ``relin.num_components`` signed digits; needs the CRT
        reconstruction the traditional architecture performs anyway.
        """
        from ..rns.decompose import decompose_poly_signed

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        params = context.params
        primes_col = context.q_basis.primes_col
        coeffs = ct.c2.to_int_coeffs()
        digit_polys = decompose_poly_signed(
            coeffs, params.q, 1 << relin.base_bits, relin.num_components
        )
        acc0 = np.zeros_like(ct.c0.residues)
        acc1 = np.zeros_like(ct.c1.residues)
        for digits, (b_ntt, a_ntt) in zip(digit_polys, relin.pairs):
            # Digits may exceed 64 bits (e.g. 90-bit digits); reduce each
            # channel with exact integer arithmetic before vectorising.
            rows = np.array(
                [[d % p for d in digits] for p in params.q_primes],
                dtype=np.int64,
            )
            d_ntt = context._ntt_rows(rows)
            acc0 = (acc0 + d_ntt * b_ntt) % primes_col
            acc1 = (acc1 + d_ntt * a_ntt) % primes_col
        c0 = RnsPoly(
            context.q_basis,
            (ct.c0.residues + context._intt_rows(acc0)) % primes_col,
        )
        c1 = RnsPoly(
            context.q_basis,
            (ct.c1.residues + context._intt_rows(acc1)) % primes_col,
        )
        return Ciphertext((c0, c1), context.params)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relin: RelinKey) -> Ciphertext:
        """Full FV.Mult as in paper Fig. 2 (tensor, scale, relinearise)."""
        return self.relinearize(self.multiply_raw(a, b), relin)
