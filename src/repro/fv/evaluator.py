"""Homomorphic multiplication — the operation the paper's hardware targets.

The steps mirror paper Fig. 2 exactly; each private helper corresponds to
one box of that figure, and the hardware compiler
(:mod:`repro.hw.compiler`) emits the instruction sequence for the same
decomposition, so software and simulated hardware can be cross-checked
step by step:

1. ``Lift q->Q`` of the four input polynomials (HPS, Fig. 6);
2. tensor product over R_Q via per-residue NTTs;
3. ``Scale Q->q`` of the three results (HPS, Fig. 9);
4. ``WordDecomp`` + ``ReLin`` with the six-component RNS key.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..nttmath import batch
from ..nttmath.batch import intt_rows, ntt_rows
from ..parallel import inproc_executor, split_range
from ..poly.rns_poly import RnsPoly
from ..rns.lift import lift_hps, lift_traditional
from ..rns.scale import scale_hps, scale_traditional
from .ciphertext import Ciphertext
from .keys import RelinKey
from .scheme import FvContext


class Evaluator:
    """Multiplication and relinearisation over one :class:`FvContext`.

    ``use_hps=True`` (default) follows the paper's fast coprocessor;
    ``use_hps=False`` switches both conversions to the traditional
    multi-precision CRT route of the slower coprocessor (Sec. VI-C), which
    is functionally identical but reproduces a different cost profile.
    """

    #: Safe lazy-accumulation width: summands are < 2^60 (products of
    #: 30-bit residues), so eight of them stay below int64 overflow.
    _LAZY_TERMS = 8

    def __init__(self, context: FvContext, use_hps: bool = True) -> None:
        self.context = context
        self.use_hps = use_hps
        params = context.params
        self._full_primes = params.q_primes + params.p_primes

    # -- Fig. 2 boxes ------------------------------------------------------------

    def _lift(self, poly: RnsPoly,
              out: np.ndarray | None = None) -> np.ndarray:
        """Lift q->Q: returns (k_total x n) residues over the full basis.

        ``out``, when given, receives the result in place (the tensor
        step lifts all four operands straight into its stacked
        transform input).
        """
        if self.use_hps:
            return lift_hps(self.context.lift_ctx, poly.residues, out)
        rows = lift_traditional(self.context.lift_ctx, poly.residues)
        if out is not None:
            out[...] = rows
            return out
        return rows

    def _scale(self, residues: np.ndarray) -> RnsPoly:
        """Scale Q->q: returns an R_q polynomial."""
        rows = (scale_hps(self.context.scale_ctx, residues)
                if self.use_hps
                else scale_traditional(self.context.scale_ctx, residues))
        # Both scale routes produce canonical residues.
        return RnsPoly.trusted(self.context.q_basis, rows)

    def _full_ntt(self, residues: np.ndarray) -> np.ndarray:
        """Batched forward NTT over the full basis ((k, n) or stacks)."""
        return ntt_rows(self._full_primes, residues)

    def _full_ntt_lazy(self, residues: np.ndarray) -> np.ndarray:
        """Forward NTT with lazy [0, 2q) outputs where the batched
        engine runs; canonical (a subset of lazy) via the guarded
        dispatcher otherwise, so large-degree or wide-prime parameter
        sets degrade instead of crashing."""
        from ..nttmath.batch import basis_transformer, batched_engine_ok

        n = self.context.params.n
        if not batched_engine_ok(self._full_primes, n):
            return ntt_rows(self._full_primes, residues)
        return basis_transformer(self._full_primes, n).forward(
            residues, lazy=True
        )

    def _full_intt(self, values: np.ndarray) -> np.ndarray:
        """Batched inverse NTT over the full basis ((k, n) or stacks)."""
        return intt_rows(self._full_primes, values)

    def tensor(self, a: Ciphertext, b: Ciphertext) -> tuple[np.ndarray, ...]:
        """Lift both ciphertexts and form (c~0, c~1, c~2) over the full basis.

        All four lifted operands go through one stacked forward call and
        the three tensor parts through one stacked inverse call — the
        limb-parallel schedule of the paper's Fig. 2 datapath. The cross
        term accumulates both 60-bit products before a single reduction.
        """
        return self._tensor_parts(a, b, prescaled=False)

    def _tensor_parts(self, a: Ciphertext, b: Ciphertext,
                      prescaled: bool) -> tuple[np.ndarray, ...]:
        """Tensor core; ``prescaled=True`` folds Scale's Q~_k constants
        into the inverse transforms (the outputs then feed
        ``scale_hps(..., prescaled=True)``)."""
        if a.size != 2 or b.size != 2:
            raise ParameterError("tensor expects two-part ciphertexts")
        a = self.context.to_coeff_ct(a)
        b = self.context.to_coeff_ct(b)
        full_col = np.array(self._full_primes, dtype=np.int64)[:, None]
        k_total = len(self._full_primes)
        n = self.context.params.n
        if batch._PER_ROW_MODE:
            a0, a1, b0, b1 = self._full_ntt(np.stack([
                self._lift(a.c0), self._lift(a.c1),
                self._lift(b.c0), self._lift(b.c1),
            ]))
            # Pre-batching cross term: both products reduced separately.
            cross = ((a0 * b1) % full_col + (a1 * b0) % full_col) % full_col
            t0, t1, t2 = self._full_intt(np.stack([
                (a0 * b0) % full_col,
                cross,
                (a1 * b1) % full_col,
            ]))
            return t0, t1, t2
        lifted = np.empty((4, k_total, n), dtype=np.int64)
        parts = (a.c0, a.c1, b.c0, b.c1)
        executor = inproc_executor()
        if executor is not None and self.use_hps:
            # The four lifts are independent gemms over shared
            # read-only tables; materialise the tables once here so
            # worker threads only ever read them.
            self.context.lift_ctx.gemm_tables()
            executor.map(lambda idx: self._lift(parts[idx], lifted[idx]),
                         range(4))
        else:
            for idx, part in enumerate(parts):
                self._lift(part, lifted[idx])
        # Lazy forward transforms: entries land in [0, 2q), which the
        # point-wise reductions below absorb (products stay under 2^62
        # and the cross pair under 2^63).
        a0, a1, b0, b1 = self._full_ntt_lazy(lifted)
        prods = lifted  # reuse: the forwards no longer need it

        def products(c0: int, c1: int) -> None:
            # Pure element-wise passes on one channel band; any tile
            # split yields the exact same entries as one full pass.
            np.multiply(a0[c0:c1], b0[c0:c1], out=prods[0][c0:c1])
            prods[0][c0:c1] %= full_col[c0:c1]
            np.multiply(a0[c0:c1], b1[c0:c1], out=prods[1][c0:c1])
            np.multiply(a1[c0:c1], b0[c0:c1], out=prods[3][c0:c1])
            prods[1][c0:c1] += prods[3][c0:c1]
            prods[1][c0:c1] %= full_col[c0:c1]
            np.multiply(a1[c0:c1], b1[c0:c1], out=prods[2][c0:c1])
            prods[2][c0:c1] %= full_col[c0:c1]

        if executor is None:
            products(0, k_total)
        else:
            executor.map(lambda band: products(*band),
                         split_range(k_total, 2 * executor.workers))
        t0, t1, t2 = (
            batch.intt_rows_scaled(self._full_primes, prods[:3],
                                   self.context.scale_ctx.full_q_tilde)
            if prescaled else self._full_intt(prods[:3])
        )
        return t0, t1, t2

    def multiply_raw(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """FV.Mult without relinearisation: a three-part ciphertext.

        Scale Q->q is column-wise throughout (Blocks 1-5 of Fig. 9 act
        per coefficient), so the three tensor parts go through *one*
        column-stacked call — one gemm at triple width and one fixed
        overhead instead of three. ``per_row_mode`` keeps the
        pre-batching one-call-per-part schedule.
        """
        if batch._PER_ROW_MODE or not self.use_hps:
            t0, t1, t2 = self.tensor(a, b)
            parts = (self._scale(t0), self._scale(t1), self._scale(t2))
            return Ciphertext(parts, self.context.params)
        t0, t1, t2 = self._tensor_parts(a, b, prescaled=True)
        n = self.context.params.n
        stacked = scale_hps(self.context.scale_ctx,
                            np.concatenate([t0, t1, t2], axis=1),
                            prescaled=True)
        parts = tuple(
            RnsPoly.trusted(self.context.q_basis,
                            np.ascontiguousarray(
                                stacked[:, i * n: (i + 1) * n]))
            for i in range(3)
        )
        return Ciphertext(parts, self.context.params)

    def rns_digits(self, residues: np.ndarray) -> np.ndarray:
        """Raw-residue digits: row i broadcast to every q-basis channel.

        Each digit value is already < 2^30, so "decomposition" is pure
        data movement (the paper's cheap WordDecomp); the CRT weights
        q~_i q*_i live inside the relinearisation key.
        """
        from ..rns.decompose import broadcast_digit_rows

        return broadcast_digit_rows(residues, self.context.q_basis)

    def _fold_keyswitch(self, ct: Ciphertext, d_ntt: np.ndarray,
                        pairs, lazy_digits: bool = False) -> Ciphertext:
        """Fold the NTT-domain digit/key sum of products back into (c0, c1).

        ``d_ntt`` holds the already-transformed digits (one stacked
        batched call at every call site — the paper's "all digits in
        flight at once" schedule). Products of 30-bit residues are
        below 2^60, so up to eight accumulate lazily in int64 before a
        reduction; both accumulators share one stacked inverse call.
        """
        context = self.context
        primes_col = context.q_basis.primes_col
        acc0 = np.zeros_like(ct.c0.residues)
        acc1 = np.zeros_like(ct.c1.residues)
        if batch._PER_ROW_MODE:
            # Pre-batching accumulation: reduce after every product.
            for i, (b_ntt, a_ntt) in enumerate(pairs):
                acc0 = (acc0 + d_ntt[i] * b_ntt) % primes_col
                acc1 = (acc1 + d_ntt[i] * a_ntt) % primes_col
        else:
            # Lazy [0, 2q) digits double each summand, so halve the
            # accumulation window (4 * 2 * q^2 still fits int64).
            window = self._LAZY_TERMS // 2 if lazy_digits \
                else self._LAZY_TERMS

            def fold(c0: int, c1: int) -> None:
                # One channel band of the digit-pair accumulation: the
                # digit order and reduction window per channel are the
                # serial schedule exactly, so banding is bit-invisible.
                pending = 0
                tmp = np.empty_like(acc0[c0:c1])
                for i, (b_ntt, a_ntt) in enumerate(pairs):
                    np.multiply(d_ntt[i][c0:c1], b_ntt[c0:c1], out=tmp)
                    acc0[c0:c1] += tmp
                    np.multiply(d_ntt[i][c0:c1], a_ntt[c0:c1], out=tmp)
                    acc1[c0:c1] += tmp
                    pending += 1
                    if pending == window:
                        acc0[c0:c1] %= primes_col[c0:c1]
                        acc1[c0:c1] %= primes_col[c0:c1]
                        pending = 0
                if pending:
                    acc0[c0:c1] %= primes_col[c0:c1]
                    acc1[c0:c1] %= primes_col[c0:c1]

            executor = inproc_executor()
            if executor is None:
                fold(0, acc0.shape[0])
            else:
                executor.map(lambda band: fold(*band),
                             split_range(acc0.shape[0],
                                         2 * executor.workers))
        delta0, delta1 = context._intt_rows(np.stack([acc0, acc1]))
        if batch._PER_ROW_MODE:
            c0_rows = (ct.c0.residues + delta0) % primes_col
            c1_rows = (ct.c1.residues + delta1) % primes_col
        else:
            # Sums of two canonical rows are < 2q: one unsigned-minimum
            # conditional subtract instead of an integer division.
            c0_rows = ct.c0.residues + delta0
            c1_rows = ct.c1.residues + delta1
            for rows in (c0_rows, c1_rows):
                over = rows - primes_col
                np.minimum(rows.view(np.uint64), over.view(np.uint64),
                           out=rows.view(np.uint64))
        c0 = RnsPoly.trusted(context.q_basis, c0_rows)
        c1 = RnsPoly.trusted(context.q_basis, c1_rows)
        return Ciphertext((c0, c1), context.params)

    def relinearize(self, ct: Ciphertext, relin: RelinKey) -> Ciphertext:
        """ReLin: fold c2 back into (c0, c1) using the RNS key.

        The sum of products runs in the NTT domain; its two accumulator
        polynomials are inverse-transformed once and added to c~0/c~1 in
        the coefficient domain — the ordering that yields the paper's
        14 NTT + 8 INTT instruction counts.
        """
        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        if len(relin.pairs) != ct.c2.residues.shape[0]:
            raise ParameterError(
                "relinearisation key does not match the RNS decomposition"
            )
        if batch._PER_ROW_MODE:
            d_ntt = context._ntt_rows(self.rns_digits(ct.c2.residues))
            return self._fold_keyswitch(ct, d_ntt, relin.pairs)
        # Fused WordDecomp + NTT: each raw-residue digit row is
        # transformed under every channel directly, left lazy in
        # [0, 2q) (the narrower accumulation window below absorbs it).
        d_ntt = batch.ntt_broadcast_rows(context.params.q_primes,
                                         ct.c2.residues, lazy=True)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs,
                                    lazy_digits=True)

    def relinearize_grouped(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with grouped RNS digits (60-bit group residues).

        Same NTT-domain sum of products as :meth:`relinearize`, but with
        ``k_q / group_size`` components instead of ``k_q`` — the scaling
        mode that keeps Table V's growth model honest.
        """
        from ..rns.decompose import grouped_rns_digits

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        digits = grouped_rns_digits(context.q_basis, ct.c2.residues,
                                    relin.group_size)
        if len(relin.pairs) != digits.shape[0]:
            raise ParameterError(
                "grouped key does not match the digit count"
            )
        d_ntt = context._ntt_rows(digits)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs)

    def relinearize_digit(self, ct: Ciphertext, relin) -> Ciphertext:
        """ReLin with the signed base-w digit key (slow coprocessor).

        Decomposes c2's centered big-integer coefficients into
        ``relin.num_components`` signed digits; needs the CRT
        reconstruction the traditional architecture performs anyway.
        """
        from ..rns.decompose import decompose_poly_signed

        if ct.size != 3:
            raise ParameterError("relinearize expects a three-part ciphertext")
        context = self.context
        params = context.params
        coeffs = ct.c2.to_int_coeffs()
        digit_polys = decompose_poly_signed(
            coeffs, params.q, 1 << relin.base_bits, relin.num_components
        )
        # Digits may exceed 64 bits (e.g. 90-bit digits); reduce each
        # channel with exact integer arithmetic before vectorising.
        digit_rows = np.stack([
            np.array(
                [[d % p for d in digits] for p in params.q_primes],
                dtype=np.int64,
            )
            for digits in digit_polys
        ])
        d_ntt = context._ntt_rows(digit_rows)
        return self._fold_keyswitch(ct, d_ntt, relin.pairs)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relin: RelinKey) -> Ciphertext:
        """Full FV.Mult as in paper Fig. 2 (tensor, scale, relinearise)."""
        return self.relinearize(self.multiply_raw(a, b), relin)
