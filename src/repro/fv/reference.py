"""Textbook big-integer FV — the ground truth for the RNS implementation.

Every operation here works on :class:`~repro.poly.dense.IntPoly` with
exact arbitrary-precision arithmetic and no RNS tricks: encryption follows
Fig. 1 literally, multiplication computes the integer tensor product over
Q and scales by t/q with exact rounding, and relinearisation uses the
classic signed base-w WordDecomp of Sec. II-B (the variant the paper's
*slower* coprocessor implements, with its freely choosable digit count).

Tests drive this class and :class:`~repro.fv.scheme.FvContext` with
identical randomness and require identical ciphertexts for the linear
operations and identical decryptions after multiplications.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..params import ParameterSet
from ..poly.dense import IntPoly
from ..rns.decompose import decompose_poly_signed
from ..utils import round_half_away
from .ciphertext import Ciphertext
from .encoder import Plaintext
from .sampler import discrete_gaussian


class TextbookRelinKey:
    """Digit-decomposition relinearisation key (ell signed base-w digits)."""

    def __init__(self, pairs: list[tuple[IntPoly, IntPoly]], base_bits: int):
        self.pairs = pairs
        self.base_bits = base_bits

    @property
    def num_components(self) -> int:
        return len(self.pairs)

    def key_bytes(self, n: int, q_bits: int) -> int:
        """Serialised size, for the DMA overhead model of the slow design."""
        words = (q_bits + 31) // 32
        return 2 * self.num_components * n * words * 4


class TextbookFv:
    """Exact FV over IntPoly; see module docstring."""

    def __init__(self, params: ParameterSet, seed: int = 77) -> None:
        params.validate_tensor_capacity()
        self.params = params
        self.rng = np.random.default_rng(seed)

    # -- conversions from the RNS world ------------------------------------------

    def poly_from_rns(self, rns_poly) -> IntPoly:
        """Exact CRT image of an RNS polynomial."""
        return IntPoly(tuple(rns_poly.to_int_coeffs()), self.params.q)

    def ciphertext_from_rns(self, ct: Ciphertext) -> tuple[IntPoly, ...]:
        return tuple(self.poly_from_rns(part) for part in ct.parts)

    # -- key generation -------------------------------------------------------------

    def keygen_from(self, s_coeffs, a_coeffs, e_coeffs):
        """Build (s, p0, p1) from explicit randomness (Fig. 1 formulas)."""
        q, n = self.params.q, self.params.n
        s = IntPoly(tuple(int(c) for c in s_coeffs), q)
        a = IntPoly(tuple(int(c) for c in a_coeffs), q)
        e = IntPoly(tuple(int(c) for c in e_coeffs), q)
        p0 = -(a * s + e)
        return s, p0, a

    def relin_keygen(self, s: IntPoly, base_bits: int) -> TextbookRelinKey:
        """rlk_j encrypts w^j * s^2 for signed base-w digits, w = 2^base_bits."""
        params = self.params
        q, n = params.q, params.n
        count = -(-q.bit_length() // base_bits)  # ceil(log2 q / base_bits)
        s_sq = s * s
        pairs = []
        w_power = 1
        for _ in range(count):
            a = IntPoly(
                tuple(int(x) for x in uniform_mod_big(self.rng, n, q)), q
            )
            e = IntPoly(
                tuple(int(x) for x in
                      discrete_gaussian(self.rng, n, params.sigma)), q
            )
            b = s_sq.scalar_mul(w_power) - (a * s + e)
            pairs.append((b, a))
            w_power = (w_power << base_bits) % q
        return TextbookRelinKey(pairs, base_bits)

    # -- encrypt / decrypt -------------------------------------------------------------

    def encrypt_with(self, plain: Plaintext, p0: IntPoly, p1: IntPoly,
                     u, e1, e2) -> tuple[IntPoly, IntPoly]:
        params = self.params
        q = params.q
        u_poly = IntPoly(tuple(int(c) for c in u), q)
        e1_poly = IntPoly(tuple(int(c) for c in e1), q)
        e2_poly = IntPoly(tuple(int(c) for c in e2), q)
        m_poly = IntPoly(tuple(int(c) for c in plain.coeffs), q)
        c0 = p0 * u_poly + e1_poly + m_poly.scalar_mul(params.delta)
        c1 = p1 * u_poly + e2_poly
        return c0, c1

    def decrypt(self, parts: tuple[IntPoly, ...], s: IntPoly) -> Plaintext:
        params = self.params
        q, t = params.q, params.t
        acc = parts[0]
        s_power = s
        for part in parts[1:]:
            acc = acc + part * s_power
            s_power = s_power * s
        m = [
            round_half_away(t * w, q) % t for w in acc.centered()
        ]
        return Plaintext(np.array(m, dtype=np.int64), t)

    # -- homomorphic operations --------------------------------------------------------

    def add(self, a: tuple[IntPoly, ...],
            b: tuple[IntPoly, ...]) -> tuple[IntPoly, ...]:
        if len(a) != len(b):
            raise ParameterError("size mismatch")
        return tuple(pa + pb for pa, pb in zip(a, b, strict=True))

    def multiply_raw(self, a: tuple[IntPoly, IntPoly],
                     b: tuple[IntPoly, IntPoly]) -> tuple[IntPoly, ...]:
        """Exact tensor over Q followed by exact t/q scaling (Fig. 2)."""
        params = self.params
        big_q, q, t = params.big_q, params.q, params.t
        a0, a1 = (part.lift_to(big_q) for part in a)
        b0, b1 = (part.lift_to(big_q) for part in b)
        t0 = a0 * b0
        t1 = a0 * b1 + a1 * b0
        t2 = a1 * b1
        return tuple(
            poly.scale_round(t, q, q) for poly in (t0, t1, t2)
        )

    def relinearize(self, parts: tuple[IntPoly, IntPoly, IntPoly],
                    rlk: TextbookRelinKey) -> tuple[IntPoly, IntPoly]:
        """WordDecomp + SoP with the digit key (paper Sec. II-B)."""
        params = self.params
        q = params.q
        base = 1 << rlk.base_bits
        digit_polys = decompose_poly_signed(
            list(parts[2].coeffs), q, base, rlk.num_components
        )
        c0, c1 = parts[0], parts[1]
        for digits, (b, a) in zip(digit_polys, rlk.pairs, strict=True):
            d_poly = IntPoly(tuple(digits), q)
            c0 = c0 + d_poly * b
            c1 = c1 + d_poly * a
        return c0, c1

    def multiply(self, a, b, rlk: TextbookRelinKey):
        return self.relinearize(self.multiply_raw(a, b), rlk)


def uniform_mod_big(rng: np.random.Generator, n: int, modulus: int):
    """Uniform big-integer coefficients in [0, modulus) of any size."""
    byte_len = (modulus.bit_length() + 15) // 8
    values = []
    for _ in range(n):
        values.append(int.from_bytes(rng.bytes(byte_len), "little") % modulus)
    return values
