"""Noise budget measurement and depth estimation (paper Sec. II-A).

The paper frames the multiplicative depth as the analogue of a circuit's
critical path: each FV.Mult multiplies the noise by roughly a fixed
factor, and decryption fails once the noise passes q/(2t). The functions
here measure the actual noise of a ciphertext (given the secret key) and
estimate how many further multiplications it can absorb — the executable
form of the paper's "depth 4 with 180-bit q" claim.
"""

from __future__ import annotations

import math

from .ciphertext import Ciphertext
from .keys import SecretKey
from .scheme import FvContext


def noise_of(context: FvContext, ct: Ciphertext, secret: SecretKey) -> int:
    """Infinity norm of the ciphertext's noise term."""
    return context.decrypt_with_noise(ct, secret)[1]


def noise_budget_bits(context: FvContext, ct: Ciphertext,
                      secret: SecretKey) -> float:
    """Remaining noise budget in bits.

    Defined as log2(q / (2 t * noise)); decryption is guaranteed correct
    while this stays positive (the same invariant-noise convention SEAL
    reports).
    """
    noise = noise_of(context, ct, secret)
    q, t = context.params.q, context.params.t
    if noise == 0:
        return math.log2(q / (2 * t))
    return math.log2(q / (2 * t)) - math.log2(noise)


def per_mult_cost_bits(context: FvContext, fresh_budget: float,
                       after_one_mult: float) -> float:
    """Observed budget consumption of one multiplication level."""
    return fresh_budget - after_one_mult


def estimated_depth(fresh_budget: float, mult_cost: float) -> int:
    """How many sequential multiplications the budget supports."""
    if mult_cost <= 0:
        return 0
    return max(0, int(fresh_budget // mult_cost))
