"""Key material for the FV scheme.

The relinearisation key follows the RNS form used by the paper's HPS
coprocessor: one key pair per q-basis prime, each encrypting
``q*_i * s^2`` (the CRT reconstruction weights), stored in the NTT domain
exactly as the hardware keeps them so that the SoP of Fig. 2 needs no
forward transform of the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..poly.rns_poly import RnsPoly
from ..rns.basis import RnsBasis


@dataclass
class SecretKey:
    """Ternary secret polynomial s, kept in both raw and RNS forms."""

    coeffs: np.ndarray                    # ternary, int64, length n
    rns: RnsPoly                          # residues over the q basis
    ntt_rows: np.ndarray = field(repr=False, default=None)
    """Per-prime NTT of s, cached for fast decryption."""


@dataclass
class PublicKey:
    """Public key pair (p0, p1) with p0 = [-(a*s + e)]_q and p1 = a."""

    p0: RnsPoly
    p1: RnsPoly
    p0_ntt: np.ndarray = field(repr=False, default=None)
    p1_ntt: np.ndarray = field(repr=False, default=None)


@dataclass
class RelinKey:
    """RNS relinearisation key (the fast coprocessor's six components).

    ``pairs[i] = (b_i, a_i)`` are (k_q x n) NTT-domain residue matrices
    with ``b_i = [-(a_i s + e_i) + q~_i q*_i s^2]_q``. Relinearisation
    computes ``c0 += sum_i D_i * b_i`` and ``c1 += sum_i D_i * a_i`` where
    digit ``D_i`` is simply residue row i of c2 broadcast across the basis
    (the CRT weights live in the key) — six summands for the paper's six
    q-primes, matching its six-polynomial key.
    """

    pairs: list[tuple[np.ndarray, np.ndarray]]

    @property
    def num_components(self) -> int:
        return len(self.pairs)

    def key_bytes(self, n: int) -> int:
        """Serialised size (drives the rlk DMA-streaming overhead model)."""
        total_rows = sum(b.shape[0] + a.shape[0] for b, a in self.pairs)
        return total_rows * n * 4


@dataclass
class GroupedRelinKey:
    """Grouped-RNS relinearisation key (HPS digit grouping).

    ``pairs[j]`` encrypts ``q~_j q*_j s^2`` for prime group Q_j; digits
    are the 60-bit group residues [c2]_{Q_j}, so twelve primes need only
    six components — the scaling behaviour the paper's Table V model
    implicitly assumes.
    """

    pairs: list[tuple[np.ndarray, np.ndarray]]
    group_size: int

    @property
    def num_components(self) -> int:
        return len(self.pairs)

    def key_bytes(self, n: int) -> int:
        total_rows = sum(b.shape[0] + a.shape[0] for b, a in self.pairs)
        return total_rows * n * 4


@dataclass
class DigitRelinKey:
    """Signed base-w relinearisation key (the slow coprocessor's variant).

    ``pairs[j]`` encrypts ``w^j * s^2`` for ``w = 2^base_bits``; the paper
    uses two 90-bit digits, one third the size of the RNS key.
    """

    pairs: list[tuple[np.ndarray, np.ndarray]]
    base_bits: int

    @property
    def num_components(self) -> int:
        return len(self.pairs)

    def key_bytes(self, n: int) -> int:
        total_rows = sum(b.shape[0] + a.shape[0] for b, a in self.pairs)
        return total_rows * n * 4


@dataclass
class KeySet:
    """Everything a client generates once per session."""

    secret: SecretKey
    public: PublicKey
    relin: RelinKey
    basis: RnsBasis
