"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parameter problems from simulator problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError):
    """A parameter set is malformed or unsupported.

    Raised, for example, when a modulus is not NTT-friendly for the ring
    degree, when the polynomial degree is not a power of two, or when a
    residue does not fit the 30-bit datapath of the modelled hardware.
    """


class EncodingError(ReproError):
    """A plaintext cannot be encoded, or a ciphertext cannot be decoded."""


class NoiseBudgetExhausted(ReproError):
    """Decryption would fail because ciphertext noise crossed the threshold."""


class HardwareModelError(ReproError):
    """The hardware simulator was driven into an invalid state."""


class MemoryConflictError(HardwareModelError):
    """Two accesses hit the same BRAM port in the same cycle.

    The dual-core NTT access schedule of the paper (Fig. 3) is designed to
    make this impossible; the simulator raises this error if a schedule
    would violate the port constraints, which turns the paper's correctness
    argument into an executable check.
    """


class CapacityError(HardwareModelError):
    """An on-chip memory allocation exceeded the configured BRAM budget."""


class IsaError(HardwareModelError):
    """An instruction is malformed or references an invalid operand slot."""
