"""Tests for the low-level circuit models: reduction, multiplier, butterfly
(paper Fig. 4 and Sec. V-A4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError, ParameterError
from repro.hw.butterfly import ButterflyCore
from repro.hw.config import HardwareConfig
from repro.hw.datapath import (
    DSP_PER_30X30,
    MacUnit,
    ModAddSub,
    PipelinedMultiplier,
)
from repro.hw.modred import (
    BarrettReducer,
    MontgomeryReducer,
    SlidingWindowReducer,
)
from repro.params import hpca19

PRIMES = hpca19().q_primes + hpca19().p_primes
CONFIG = HardwareConfig()


class TestSlidingWindowReducer:
    @pytest.mark.parametrize("prime", PRIMES[:4])
    def test_random_60bit_inputs(self, prime, rng):
        reducer = SlidingWindowReducer(prime)
        for _ in range(500):
            value = int(rng.integers(0, 1 << 60))
            assert reducer.reduce(value) == value % prime

    def test_worst_case_inputs(self):
        prime = PRIMES[0]
        reducer = SlidingWindowReducer(prime)
        for value in (0, 1, prime - 1, prime, 2 * prime,
                      (1 << 60) - 1, (prime - 1) ** 2):
            assert reducer.reduce(value) == value % prime

    def test_products_of_residues(self, rng):
        """The actual butterfly usage: products of two 30-bit residues."""
        prime = PRIMES[1]
        reducer = SlidingWindowReducer(prime)
        for _ in range(500):
            a = int(rng.integers(0, prime))
            b = int(rng.integers(0, prime))
            assert reducer.reduce(a * b) == (a * b) % prime

    def test_table_contents(self):
        prime = PRIMES[0]
        reducer = SlidingWindowReducer(prime, window_bits=6)
        assert len(reducer.table) == 64
        for w in range(64):
            assert reducer.table[w] == (w << 30) % prime

    def test_paper_structure(self):
        """6-bit window over a 60-bit operand: 5 steps + correction."""
        reducer = SlidingWindowReducer(PRIMES[0], window_bits=6,
                                       input_bits=60)
        assert reducer.steps == 5
        assert reducer.pipeline_stages == 6

    def test_window_size_tradeoff(self):
        """Wider windows need fewer steps but bigger tables."""
        narrow = SlidingWindowReducer(PRIMES[0], window_bits=4)
        wide = SlidingWindowReducer(PRIMES[0], window_bits=8)
        assert narrow.steps > wide.steps
        assert narrow.table_entries < wide.table_entries

    def test_rejects_wide_modulus(self):
        with pytest.raises(ParameterError):
            SlidingWindowReducer(1 << 31)

    def test_rejects_out_of_range_operand(self):
        reducer = SlidingWindowReducer(PRIMES[0])
        with pytest.raises(HardwareModelError):
            reducer.reduce(1 << 61)
        with pytest.raises(HardwareModelError):
            reducer.reduce(-1)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, (1 << 60) - 1))
    def test_matches_modulo_property(self, value):
        reducer = SlidingWindowReducer(PRIMES[2])
        assert reducer.reduce(value) == value % PRIMES[2]


class TestBarrettReducer:
    def test_matches_modulo(self, rng):
        prime = PRIMES[0]
        barrett = BarrettReducer(prime)
        for _ in range(300):
            value = int(rng.integers(0, 1 << 60))
            assert barrett.reduce(value) == value % prime

    def test_agrees_with_sliding_window(self, rng):
        """The paper's design choice changes cost, not results."""
        prime = PRIMES[3]
        sliding = SlidingWindowReducer(prime)
        barrett = BarrettReducer(prime)
        for _ in range(200):
            value = int(rng.integers(0, 1 << 60))
            assert sliding.reduce(value) == barrett.reduce(value)

    def test_extra_multiplier_cost(self):
        assert BarrettReducer(PRIMES[0]).extra_multipliers == 2


class TestMontgomeryReducer:
    @pytest.fixture(scope="class")
    def mont(self):
        return MontgomeryReducer(PRIMES[0])

    def test_domain_roundtrip(self, mont, rng):
        for _ in range(300):
            value = int(rng.integers(0, mont.modulus))
            assert mont.from_montgomery(mont.to_montgomery(value)) == value

    def test_modmul_in_domain(self, mont, rng):
        prime = mont.modulus
        for _ in range(300):
            a = int(rng.integers(0, prime))
            b = int(rng.integers(0, prime))
            product = mont.modmul(mont.to_montgomery(a),
                                  mont.to_montgomery(b))
            assert mont.from_montgomery(product) == (a * b) % prime

    def test_redc_range_guard(self, mont):
        with pytest.raises(HardwareModelError):
            mont.reduce(mont.modulus * mont.r)
        with pytest.raises(HardwareModelError):
            mont.reduce(-1)

    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            MontgomeryReducer(1 << 20)

    def test_one_extra_multiplier(self, mont):
        """Design-space triangle: Montgomery 1 extra mult, Barrett 2,
        sliding window 0 (but a ROM per prime)."""
        assert mont.extra_multipliers == 1
        assert BarrettReducer(PRIMES[0]).extra_multipliers == 2

    def test_agreement_with_other_reducers(self, rng):
        prime = PRIMES[2]
        mont = MontgomeryReducer(prime)
        sliding = SlidingWindowReducer(prime)
        for _ in range(200):
            a = int(rng.integers(0, prime))
            b = int(rng.integers(0, prime))
            via_mont = mont.from_montgomery(
                mont.modmul(mont.to_montgomery(a), mont.to_montgomery(b))
            )
            assert via_mont == sliding.reduce(a * b)


class TestPipelinedMultiplier:
    def test_product(self):
        mult = PipelinedMultiplier(stages=4)
        assert mult.multiply(12345, 67890) == 12345 * 67890

    def test_rejects_oversized_operands(self):
        mult = PipelinedMultiplier(stages=4)
        with pytest.raises(HardwareModelError):
            mult.multiply(1 << 30, 2)

    def test_dsp_cost_30x30(self):
        assert PipelinedMultiplier(stages=4).dsp_cost == DSP_PER_30X30

    def test_latency(self):
        assert PipelinedMultiplier(stages=4).latency == 4


class TestModAddSub:
    def test_add_with_correction(self):
        unit = ModAddSub(stages=1)
        prime = PRIMES[0]
        assert unit.add(prime - 1, 5, prime) == 4
        assert unit.add(1, 2, prime) == 3

    def test_sub_with_correction(self):
        unit = ModAddSub(stages=1)
        prime = PRIMES[0]
        assert unit.sub(3, 5, prime) == prime - 2
        assert unit.sub(5, 3, prime) == 2


class TestMacUnit:
    def test_mac(self):
        mac = MacUnit(multiplier_stages=4, modred_stages=6)
        prime = PRIMES[0]
        assert mac.mac(10, 3, 7, prime) == 31
        assert mac.latency == 11


class TestButterflyCore:
    @pytest.fixture(scope="class")
    def core(self):
        return ButterflyCore(PRIMES[0], CONFIG)

    def test_butterfly_equation(self, core, rng):
        prime = PRIMES[0]
        for _ in range(200):
            u = int(rng.integers(0, prime))
            t = int(rng.integers(0, prime))
            w = int(rng.integers(0, prime))
            hi, lo = core.compute(u, t, w)
            assert hi == (u + w * t) % prime
            assert lo == (u - w * t) % prime

    def test_scalar_matches_vectorised(self, core, rng):
        prime = PRIMES[0]
        u = rng.integers(0, prime, 100)
        t = rng.integers(0, prime, 100)
        w = rng.integers(0, prime, 100)
        hi_vec, lo_vec = core.compute_many(u, t, w)
        for i in range(100):
            hi, lo = core.compute(int(u[i]), int(t[i]), int(w[i]))
            assert hi_vec[i] == hi and lo_vec[i] == lo

    def test_pipeline_depth_composition(self, core):
        expected = (CONFIG.multiplier_stages
                    + core.reducer.pipeline_stages
                    + CONFIG.addsub_stages)
        assert core.pipeline_depth == expected
        assert core.pipeline_depth == CONFIG.butterfly_pipeline_depth
