"""Unit tests for repro.utils."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.utils import (
    bit_length_of,
    ceil_div,
    centered,
    chunks,
    is_power_of_two,
    log2_exact,
    round_half_away,
)


class TestIsPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 1000):
            assert not is_power_of_two(value)


class TestLog2Exact:
    def test_exact_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(4096) == 12

    def test_rejects_non_power(self):
        with pytest.raises(ParameterError):
            log2_exact(12)

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            log2_exact(0)


class TestBitLength:
    def test_values(self):
        assert bit_length_of(0) == 0
        assert bit_length_of(1) == 1
        assert bit_length_of(255) == 8
        assert bit_length_of(256) == 9

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_length_of(-1)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4
        assert ceil_div(1, 4) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0


class TestRoundHalfAway:
    def test_exact(self):
        assert round_half_away(10, 5) == 2

    def test_rounds_nearest(self):
        assert round_half_away(7, 5) == 1
        assert round_half_away(8, 5) == 2

    def test_half_rounds_away_positive(self):
        assert round_half_away(5, 2) == 3  # 2.5 -> 3

    def test_half_rounds_away_negative(self):
        assert round_half_away(-5, 2) == -3  # -2.5 -> -3

    def test_negative_values(self):
        assert round_half_away(-7, 5) == -1
        assert round_half_away(-8, 5) == -2

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            round_half_away(1, 0)

    @given(st.integers(-10**12, 10**12), st.integers(1, 10**6))
    def test_matches_rational_rounding(self, numerator, denominator):
        result = round_half_away(numerator, denominator)
        # |numerator - result*denominator| <= denominator/2 and the
        # result is within 1 of the true quotient.
        assert abs(numerator - result * denominator) * 2 <= denominator


class TestCentered:
    def test_small_values_unchanged(self):
        assert centered(3, 17) == 3

    def test_wraps_large_values(self):
        assert centered(16, 17) == -1
        assert centered(9, 17) == -8

    def test_half_stays_positive(self):
        assert centered(8, 17) == 8
        assert centered(8, 16) == 8

    @given(st.integers(-10**9, 10**9), st.integers(2, 10**6))
    def test_congruent_and_bounded(self, value, modulus):
        result = centered(value, modulus)
        assert (result - value) % modulus == 0
        assert -modulus // 2 <= result <= modulus // 2


class TestChunks:
    def test_exact_split(self):
        assert chunks(100, 25) == [25, 25, 25, 25]

    def test_remainder(self):
        assert chunks(100, 30) == [30, 30, 30, 10]

    def test_single_chunk(self):
        assert chunks(10, 100) == [10]

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            chunks(10, 0)

    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_conserves_total(self, total, size):
        pieces = chunks(total, size)
        assert sum(pieces) == total
        assert all(0 < piece <= size for piece in pieces)
