"""Tests for the compiler and the instruction-set coprocessor.

The headline properties: the compiled Mult reproduces the paper's
Table II call counts, and the coprocessor's results are bit-identical to
the software evaluator's for both coprocessor variants.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import HardwareModelError, IsaError
from repro.fv.encoder import Plaintext
from repro.fv.evaluator import Evaluator
from repro.hw.compiler import compile_add, compile_mult, expected_table2_calls
from repro.hw.config import HardwareConfig, slow_coprocessor_config
from repro.hw.coprocessor import Coprocessor
from repro.hw.isa import Opcode
from repro.nttmath.ntt import negacyclic_convolution

CONFIG = HardwareConfig()

# Paper Table II call counts per Mult.
PAPER_CALLS = {
    Opcode.NTT: 14,
    Opcode.INTT: 8,
    Opcode.CMUL: 20,
    Opcode.CADD: 26,
    Opcode.REARRANGE: 22,
    Opcode.LIFT: 4,
    Opcode.SCALE: 3,
}


class TestCompiler:
    def test_mult_call_counts_match_paper(self, paper_params):
        """NTT/INTT/CMUL/LIFT/SCALE counts are exactly the paper's;
        CADD and REARRANGE follow our documented bookkeeping (see
        EXPERIMENTS.md for the deviation discussion)."""
        program = compile_mult(paper_params, CONFIG)
        histogram = program.opcode_histogram()
        assert histogram[Opcode.NTT] == PAPER_CALLS[Opcode.NTT]
        assert histogram[Opcode.INTT] == PAPER_CALLS[Opcode.INTT]
        assert histogram[Opcode.CMUL] == PAPER_CALLS[Opcode.CMUL]
        assert histogram[Opcode.LIFT] == PAPER_CALLS[Opcode.LIFT]
        assert histogram[Opcode.SCALE] == PAPER_CALLS[Opcode.SCALE]
        assert histogram[Opcode.REARRANGE] == PAPER_CALLS[Opcode.REARRANGE]

    def test_histogram_matches_expected_model(self, paper_params):
        program = compile_mult(paper_params, CONFIG)
        histogram = program.opcode_histogram()
        expected = expected_table2_calls(paper_params, CONFIG)
        for op, count in expected.items():
            if count:
                assert histogram.get(op, 0) == count, op

    def test_one_rearrange_per_transform(self, paper_params):
        histogram = compile_mult(paper_params, CONFIG).opcode_histogram()
        assert histogram[Opcode.REARRANGE] == \
            histogram[Opcode.NTT] + histogram[Opcode.INTT]

    def test_slow_variant_uses_two_components(self, paper_params):
        program = compile_mult(paper_params, slow_coprocessor_config())
        histogram = program.opcode_histogram()
        # 8 forward + 2 digit NTTs; relin SoP has 2x2 products.
        assert histogram[Opcode.NTT] == 10
        assert histogram[Opcode.CMUL] == 12
        assert histogram[Opcode.LOAD_RLK] == 2

    def test_on_chip_key_removes_loads(self, paper_params):
        config = replace(CONFIG, relin_key_on_chip=True)
        histogram = compile_mult(paper_params, config).opcode_histogram()
        assert Opcode.LOAD_RLK not in histogram

    def test_add_program(self, paper_params):
        histogram = compile_add(paper_params).opcode_histogram()
        assert histogram == {Opcode.CADD: 2}


class TestCoprocessorFunctional:
    @pytest.fixture(scope="class")
    def setup(self, mini_context, mini_keys, ):
        rng = np.random.default_rng(55)
        params = mini_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = mini_context.encrypt(a, mini_keys.public)
        ct_b = mini_context.encrypt(b, mini_keys.public)
        return a, b, ct_a, ct_b

    def test_mult_bit_identical_to_evaluator(self, mini_context, mini_keys,
                                             setup, mini_params):
        _, _, ct_a, ct_b = setup
        coprocessor = Coprocessor(mini_params)
        hw_result, _ = coprocessor.mult(ct_a, ct_b, mini_keys.relin)
        sw_result = Evaluator(mini_context).multiply(ct_a, ct_b,
                                                     mini_keys.relin)
        for hw_part, sw_part in zip(hw_result.parts, sw_result.parts, strict=True):
            assert np.array_equal(hw_part.residues, sw_part.residues)

    def test_mult_decrypts_to_product(self, mini_context, mini_keys, setup,
                                      mini_params):
        a, b, ct_a, ct_b = setup
        coprocessor = Coprocessor(mini_params)
        hw_result, _ = coprocessor.mult(ct_a, ct_b, mini_keys.relin)
        expected = negacyclic_convolution(
            a.coeffs.tolist(), b.coeffs.tolist(), mini_params.t
        )
        decrypted = mini_context.decrypt(hw_result, mini_keys.secret)
        assert decrypted.coeffs.tolist() == expected

    def test_add_bit_identical(self, mini_context, mini_keys, setup,
                               mini_params):
        _, _, ct_a, ct_b = setup
        coprocessor = Coprocessor(mini_params)
        hw_result, _ = coprocessor.add(ct_a, ct_b)
        sw_result = mini_context.add(ct_a, ct_b)
        for hw_part, sw_part in zip(hw_result.parts, sw_result.parts, strict=True):
            assert np.array_equal(hw_part.residues, sw_part.residues)

    def test_slow_coprocessor_decrypts_correctly(self, mini_context,
                                                 mini_keys, setup,
                                                 mini_params):
        """Traditional-CRT variant with a 2-component digit key."""
        a, b, ct_a, ct_b = setup
        config = slow_coprocessor_config()
        coprocessor = Coprocessor(mini_params, config)
        base_bits = -(-mini_params.q.bit_length() // 2)
        digit_key = mini_context.relin_keygen_digit(mini_keys.secret,
                                                    base_bits)
        hw_result, report = coprocessor.mult(ct_a, ct_b, digit_key)
        expected = negacyclic_convolution(
            a.coeffs.tolist(), b.coeffs.tolist(), mini_params.t
        )
        decrypted = mini_context.decrypt(hw_result, mini_keys.secret)
        assert decrypted.coeffs.tolist() == expected

    def test_on_chip_key_same_result(self, mini_context, mini_keys, setup,
                                     mini_params):
        _, _, ct_a, ct_b = setup
        streamed = Coprocessor(mini_params)
        pinned = Coprocessor(mini_params,
                             replace(CONFIG, relin_key_on_chip=True))
        result_streamed, report_streamed = streamed.mult(
            ct_a, ct_b, mini_keys.relin
        )
        result_pinned, report_pinned = pinned.mult(ct_a, ct_b,
                                                   mini_keys.relin)
        assert np.array_equal(result_streamed.c0.residues,
                              result_pinned.c0.residues)
        assert report_pinned.transfer_cycles == 0
        assert report_streamed.transfer_cycles > 0

    def test_missing_relin_key_raises(self, mini_params, setup):
        _, _, ct_a, ct_b = setup
        coprocessor = Coprocessor(mini_params)
        program = compile_mult(mini_params, CONFIG)
        coprocessor.registers.clear()
        coprocessor.load_polynomial("a0", ct_a.c0.residues)
        coprocessor.load_polynomial("a1", ct_a.c1.residues)
        coprocessor.load_polynomial("b0", ct_b.c0.residues)
        coprocessor.load_polynomial("b1", ct_b.c1.residues)
        with pytest.raises(HardwareModelError):
            coprocessor.execute(program, relin_key=None)

    def test_uninitialised_register_raises(self, mini_params):
        coprocessor = Coprocessor(mini_params)
        with pytest.raises(IsaError):
            coprocessor._reg("nope")

    def test_strict_mode_full_mult(self, toy_context, toy_keys, rng):
        """End-to-end strict mode: the complete Mult program with every
        transform replayed cycle-by-cycle through port-checked BRAMs.
        Results AND cycle reports must equal fast mode exactly."""
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = toy_context.encrypt(a, toy_keys.public)
        ct_b = toy_context.encrypt(b, toy_keys.public)
        fast = Coprocessor(params)
        strict = Coprocessor(params, strict=True)
        fast_result, fast_report = fast.mult(ct_a, ct_b, toy_keys.relin)
        strict_result, strict_report = strict.mult(ct_a, ct_b,
                                                   toy_keys.relin)
        for f_part, s_part in zip(fast_result.parts, strict_result.parts):
            assert np.array_equal(f_part.residues, s_part.residues)
        assert fast_report.total_cycles == strict_report.total_cycles
        for op, stat in fast_report.op_stats.items():
            assert strict_report.op_stats[op].cycles == stat.cycles, op

    def test_toy_geometry_coprocessor(self, toy_context, toy_keys, rng):
        """The coprocessor generalises to other basis geometries
        (toy: 3+4 primes on 4 RPAUs) with the same bit-exactness."""
        params = toy_context.params
        a = Plaintext(rng.integers(0, params.t, params.n), params.t)
        b = Plaintext(rng.integers(0, params.t, params.n), params.t)
        ct_a = toy_context.encrypt(a, toy_keys.public)
        ct_b = toy_context.encrypt(b, toy_keys.public)
        coprocessor = Coprocessor(params)
        assert coprocessor.num_rpaus == max(params.k_q, params.k_p)
        hw_result, _ = coprocessor.mult(ct_a, ct_b, toy_keys.relin)
        sw_result = Evaluator(toy_context).multiply(ct_a, ct_b,
                                                    toy_keys.relin)
        for hw_part, sw_part in zip(hw_result.parts, sw_result.parts, strict=True):
            assert np.array_equal(hw_part.residues, sw_part.residues)


class TestCoprocessorTiming:
    @pytest.fixture(scope="class")
    def paper_report(self, mini_context, mini_keys, paper_params):
        """One full Mult on the paper-sized coprocessor (uses the mini
        ciphertexts' rng but paper-sized zero polys for speed)."""
        from repro.fv.scheme import FvContext

        context = FvContext(paper_params, seed=3)
        keys = context.keygen()
        plain = Plaintext.from_list([1], paper_params.n, paper_params.t)
        ct = context.encrypt(plain, keys.public)
        coprocessor = Coprocessor(paper_params)
        _, report = coprocessor.mult(ct, ct, keys.relin)
        return report

    def test_mult_time_close_to_paper(self, paper_report):
        """Table I: 4.458 ms; the model must land within 10%."""
        assert abs(paper_report.seconds - 4.458e-3) / 4.458e-3 < 0.10

    def test_mult_arm_cycles_close_to_paper(self, paper_report):
        assert abs(paper_report.arm_cycles - 5_349_567) / 5_349_567 < 0.10

    def test_transfer_share_near_30_percent(self, paper_report):
        """Paper: ~30% of Mult is relin-key data transfer."""
        share = paper_report.transfer_cycles / paper_report.total_cycles
        assert 0.15 < share < 0.40

    def test_instruction_cycle_model_vs_paper(self, paper_params):
        """Every Table II row within 10% (most within 2%)."""
        paper_arm = {
            Opcode.NTT: 87_582,
            Opcode.INTT: 102_043,
            Opcode.CMUL: 15_662,
            Opcode.CADD: 16_292,
            Opcode.REARRANGE: 25_006,
            Opcode.LIFT: 99_137,
            Opcode.SCALE: 99_274,
        }
        coprocessor = Coprocessor(paper_params)
        model = coprocessor.instruction_cycle_model()
        for op, expected in paper_arm.items():
            arm = CONFIG.fpga_to_arm_cycles(model[op])
            assert abs(arm - expected) / expected < 0.10, op

    def test_add_time_close_to_paper(self, mini_keys, paper_params):
        """Table I: Add in HW = 31,339 Arm cycles."""
        from repro.fv.scheme import FvContext

        context = FvContext(paper_params, seed=4)
        keys = context.keygen()
        plain = Plaintext.from_list([1], paper_params.n, paper_params.t)
        ct = context.encrypt(plain, keys.public)
        _, report = Coprocessor(paper_params).add(ct, ct)
        assert abs(report.arm_cycles - 31_339) / 31_339 < 0.10

    def test_report_table_renders(self, paper_report):
        table = paper_report.table()
        assert "ntt" in table and "total" in table

    def test_slow_coprocessor_mult_time(self, mini_context, mini_keys,
                                        paper_params):
        """Sec. VI-C: the traditional coprocessor needs ~8.3 ms; ours
        lands within 20% and is clearly slower than the fast one."""
        from repro.fv.scheme import FvContext

        context = FvContext(paper_params, seed=5)
        keys = context.keygen()
        digit_key = context.relin_keygen_digit(
            keys.secret, -(-paper_params.q.bit_length() // 2)
        )
        plain = Plaintext.from_list([1], paper_params.n, paper_params.t)
        ct = context.encrypt(plain, keys.public)
        coprocessor = Coprocessor(paper_params, slow_coprocessor_config())
        _, report = coprocessor.mult(ct, ct, digit_key)
        assert abs(report.seconds - 8.3e-3) / 8.3e-3 < 0.20
        assert report.seconds > 4.458e-3
